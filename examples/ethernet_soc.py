#!/usr/bin/env python3
"""System-level scenario: the paper's Fig. 10/11 Ethernet experiment.

Assembles the Cheshire-like SoC (two CVA6 traffic generators, an iDMA
engine, AXI crossbar, DRAM, boot ROM, and an Ethernet MAC monitored by
the TMU), pushes a 250-beat frame through, then injects faults at the
beginning, middle and end of the transaction and compares Tiny- vs
Full-Counter detection latencies — the Fig. 11 series.

Run:  python examples/ethernet_soc.py
"""

# Allow running straight from a source checkout, from any directory.
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.faults import InjectionStage
from repro.soc import CheshireSoC, system_tmu_config
from repro.soc.experiment import FIG11_LABELS, FIG11_STAGES, run_system_injection
from repro.tmu import Variant


def healthy_frame() -> None:
    soc = CheshireSoC(system_tmu_config(Variant.FULL))
    soc.send_ethernet_frame(beats=250)
    soc.submit_background_traffic(20, manager=0)
    soc.submit_background_traffic(20, manager=1)
    done = soc.run_until_idle()
    print("== healthy 250-beat frame with background traffic ==")
    print(f"  all managers idle at cycle {done}")
    print(f"  MAC received {soc.ethernet.beats_received} beats "
          f"({soc.ethernet.frames_sent} frame)")
    print(f"  CVA6 transactions completed: "
          f"{len(soc.cva6[0].completed)} + {len(soc.cva6[1].completed)}")
    print(f"  TMU faults: {soc.tmu.faults_handled} (expected 0)")
    write_log = soc.tmu.write_guard.perf
    print(f"  TMU write log: {write_log.completed} txns, "
          f"{write_log.beats_transferred} beats, "
          f"worst latency {write_log.txn_latency.maximum} cycles")


def fig11_series() -> None:
    print("\n== Fig. 11: fault injections at every phase of the frame ==")
    header = f"  {'stage':22s} {'Fc latency':>10s} {'Tc latency':>10s}  recovery"
    print(header)
    for label, stage in zip(FIG11_LABELS, FIG11_STAGES):
        fc = run_system_injection(Variant.FULL, stage)
        tc = run_system_injection(Variant.TINY, stage)
        print(
            f"  {label:22s} {fc.fig11_latency:>10d} "
            f"{tc.latency_from_start:>10d}  "
            f"{'ok' if fc.recovered and tc.recovered else 'FAILED'}"
        )
    print("  (Fc: cycles from the failing phase's start; Tc: cycles from")
    print("   transaction start — always the full 320-cycle budget.)")


def recovery_detail() -> None:
    print("\n== recovery walkthrough (mute_b during the frame) ==")
    soc = CheshireSoC(system_tmu_config(Variant.FULL))
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(beats=250)
    detect = soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
    print(f"  cycle {detect}: TMU interrupt — {soc.tmu.last_fault}")
    reset = soc.sim.run_until(lambda s: soc.ethernet.resets_taken == 1, timeout=5_000)
    print(f"  cycle {reset}: Ethernet IP reset by the reset unit")
    service = soc.sim.run_until(lambda s: len(soc.cpu.recoveries) == 1, timeout=5_000)
    record = soc.cpu.recoveries[0]
    print(f"  cycle {service}: CPU serviced IRQ from '{record.source}' "
          f"(fault code {record.fault_kind_code})")
    soc.sim.run_until(lambda s: soc.all_idle, timeout=5_000)
    print(f"  DMA frame response: {soc.dma.completed[-1].resp.name} (aborted)")
    resumed = soc.sim.run_until(
        lambda s: soc.tmu.state.value == "monitor", timeout=5_000
    )
    print(f"  cycle {resumed}: TMU monitoring resumed")
    soc.send_ethernet_frame(beats=250)
    soc.run_until_idle()
    print(f"  second frame after recovery: {soc.dma.completed[-1].resp.name}")


def main() -> None:
    healthy_frame()
    fig11_series()
    recovery_detail()


if __name__ == "__main__":
    main()
