#!/usr/bin/env python3
"""Design-space exploration: choosing a prescaler step (paper Figs. 7-8).

For a capacity and a worst-case detection-latency requirement, sweeps
the prescaler step, reporting GF12 area (model) and measured worst-case
detection latency (simulated total stall), then picks the cheapest
configuration meeting the requirement — the workflow the paper's
design-space exploration supports.

Run:  python examples/prescaler_tuning.py
"""

# Allow running straight from a source checkout, from any directory.
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import render_series
from repro.area import estimate_area
from repro.faults import measure_stall_detection_latency
from repro.tmu import (
    AdaptiveBudgetPolicy,
    PhaseBudgets,
    SpanBudgets,
    TmuConfig,
    Variant,
)

OUTSTANDING = 64
BUDGET = 256
LATENCY_REQUIREMENT = 300  # cycles: detection must not exceed this
STEPS = [1, 2, 4, 8, 16, 32, 64, 128]


def config_for(variant: Variant, step: int) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=BUDGET), SpanBudgets(base=BUDGET, per_beat=0)
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=OUTSTANDING // 4,
        prescale_step=step,
        budgets=budgets,
        max_txn_cycles=BUDGET,
    )


def explore(variant: Variant):
    rows = []
    for step in STEPS:
        area = estimate_area(
            variant, OUTSTANDING, step, sticky=True, budget_cycles=BUDGET
        ).total_um2
        latency = measure_stall_detection_latency(
            config_for(variant, step), offsets=range(min(step, 8))
        )
        rows.append((step, area, latency))
    return rows


def main() -> None:
    for variant in (Variant.TINY, Variant.FULL):
        rows = explore(variant)
        print(
            render_series(
                "step",
                [row[0] for row in rows],
                [
                    ("area [um^2]", [row[1] for row in rows]),
                    ("worst detect latency", [row[2] for row in rows]),
                ],
                title=(
                    f"\n{variant.value}: {OUTSTANDING} outstanding, "
                    f"{BUDGET}-cycle budget"
                ),
            )
        )
        feasible = [row for row in rows if row[2] <= LATENCY_REQUIREMENT]
        best = min(feasible, key=lambda row: row[1])
        baseline = rows[0]
        saving = (baseline[1] - best[1]) / baseline[1] * 100
        print(
            f"-> requirement: detect within {LATENCY_REQUIREMENT} cycles\n"
            f"-> pick step {best[0]}: {best[1]:.0f} um^2 "
            f"({saving:.0f}% smaller than step 1), "
            f"worst latency {best[2]} cycles"
        )


if __name__ == "__main__":
    main()
