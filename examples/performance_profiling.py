#!/usr/bin/env python3
"""Observability: using Fc per-phase logs to find a bus bottleneck (§II-H).

"By providing real-time tracking of each AXI4 request, the TMU captures
latency metrics, identifies bottlenecks, and quickly isolates faulty
devices."

A mixed workload runs against a subordinate with a deliberately slow
write-response path.  The Full-Counter TMU's per-phase statistics point
straight at the WLAST_BVLD phase; a VCD waveform of the device-side
channels is dumped for inspection in GTKWave.

Run:  python examples/performance_profiling.py
"""

import pathlib

# Allow running straight from a source checkout, from any directory.
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.axi import AxiInterface, Manager, RandomTraffic, Subordinate
from repro.sim import Simulator, VcdWriter
from repro.tmu import TransactionMonitoringUnit, full_config

VCD_PATH = pathlib.Path("profiling_trace.vcd")


def main() -> None:
    sim = Simulator()
    host = AxiInterface("host")
    device = AxiInterface("device")
    manager = Manager("cpu", host)
    tmu = TransactionMonitoringUnit("tmu", host, device, full_config())
    # The bottleneck under investigation: a write-response path that is
    # 10x slower than everything else.
    subordinate = Subordinate("ddr_ctrl", device, b_latency=20, r_latency=2)
    for component in (manager, tmu, subordinate):
        sim.add(component)

    # Dump the device-side handshakes to a VCD for waveform inspection.
    with VCD_PATH.open("w") as stream:
        wires = [
            device.aw.valid, device.aw.ready,
            device.w.valid, device.w.ready,
            device.b.valid, device.b.ready,
            device.ar.valid, device.ar.ready,
            device.r.valid, device.r.ready,
            tmu.irq,
        ]
        writer = VcdWriter(stream, wires, module="tmu_device_side")
        sim.add_probe(writer.sample)

        manager.submit_all(
            RandomTraffic(ids=(0, 1, 2, 3), max_beats=8, seed=42).take(60)
        )
        sim.run_until(lambda s: manager.idle, timeout=60_000)
        writer.close()

    print(f"workload: 60 mixed transactions, finished at cycle {sim.cycle}")
    print(f"waveform: {VCD_PATH} ({VCD_PATH.stat().st_size} bytes)\n")

    print("== Full-Counter per-phase latency profile (writes) ==")
    print(f"  {'phase':14s} {'count':>5s} {'mean':>7s} {'max':>5s}")
    phase_means = {}
    for label, stat in tmu.write_guard.perf.phase_summary().items():
        phase_means[label] = stat.mean
        print(f"  {label:14s} {stat.count:>5d} {stat.mean:>7.1f} "
              f"{stat.maximum if stat.maximum is not None else 0:>5d}")

    bottleneck = max(phase_means, key=phase_means.get)
    print(f"\n  -> bottleneck: {bottleneck} "
          f"(mean {phase_means[bottleneck]:.1f} cycles)")
    assert bottleneck == "WLAST_BVLD", "expected the slow B path to dominate"

    print("\n== read-side profile for contrast ==")
    for label, stat in tmu.read_guard.perf.phase_summary().items():
        print(f"  {label:14s} {stat.count:>5d} {stat.mean:>7.1f}")

    write_perf = tmu.write_guard.perf
    read_perf = tmu.read_guard.perf
    print(f"\nthroughput: "
          f"{(write_perf.beats_transferred + read_perf.beats_transferred) / sim.cycle:.2f} "
          f"beats/cycle over {sim.cycle} cycles")
    print("the WLAST_BVLD mean directly exposes the DDR controller's slow "
          "response path — no external analyzer needed")


if __name__ == "__main__":
    main()
