#!/usr/bin/env python3
"""Quickstart: drop a TMU between an AXI manager and a subordinate.

Builds the canonical closed loop (traffic manager ↔ TMU ↔ memory-backed
subordinate ↔ reset unit), runs healthy traffic, then makes the
subordinate hang a response and watches the TMU detect the fault, abort
outstanding transactions with SLVERR, reset the device, and resume.

Run:  python examples/quickstart.py
"""

# Allow running straight from a source checkout, from any directory.
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.axi import AxiInterface, Manager, Subordinate, read_spec, write_spec
from repro.sim import Simulator
from repro.soc import ResetUnit
from repro.tmu import TmuRegisters, TransactionMonitoringUnit, full_config


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the loop.
    # ------------------------------------------------------------------
    sim = Simulator()
    host = AxiInterface("host")        # manager <-> TMU
    device = AxiInterface("device")    # TMU <-> subordinate

    manager = Manager("manager", host)
    tmu = TransactionMonitoringUnit("tmu", host, device, full_config())
    subordinate = Subordinate("subordinate", device, b_latency=2, r_latency=2)
    reset_unit = ResetUnit(
        "reset_unit", tmu.reset_req, tmu.reset_ack, subordinate
    )
    for component in (manager, tmu, subordinate, reset_unit):
        sim.add(component)
    regs = TmuRegisters(tmu)

    # ------------------------------------------------------------------
    # 2. Healthy traffic: the TMU is a transparent wire that listens.
    # ------------------------------------------------------------------
    manager.submit(write_spec(txn_id=0, addr=0x1000, beats=8))
    manager.submit(read_spec(txn_id=1, addr=0x1000, beats=8))
    sim.run_until(lambda s: manager.idle, timeout=1_000)

    print("== healthy traffic ==")
    for txn in manager.completed:
        print(
            f"  {txn.direction.value:5s} id={txn.txn_id} "
            f"addr={txn.addr:#x} {txn.beats} beats -> {txn.resp.name} "
            f"in {txn.latency} cycles"
        )
    print(f"  TMU write-phase latencies:")
    for label, stat in tmu.write_guard.perf.phase_summary().items():
        print(f"    {label:12s} mean={stat.mean:.1f} cycles")

    # ------------------------------------------------------------------
    # 3. Break the subordinate: the write response never comes.
    # ------------------------------------------------------------------
    subordinate.faults.mute_b = True
    manager.submit(write_spec(txn_id=2, addr=0x2000, beats=4))
    detect = sim.run_until(lambda s: tmu.irq.value, timeout=5_000)
    fault = tmu.last_fault
    print("\n== fault injected: b_valid never asserted ==")
    print(f"  detected at cycle {detect}")
    print(f"  fault: {fault.kind.value} in phase {fault.phase_label}")
    print(f"  STATUS register: {regs.read(0x04):#x} (irq | fault-active)")

    # ------------------------------------------------------------------
    # 4. Recovery: SLVERR abort, hardware reset, resume monitoring.
    # ------------------------------------------------------------------
    sim.run_until(lambda s: manager.idle, timeout=5_000)
    aborted = manager.completed[-1]
    print(f"  aborted txn id={aborted.txn_id} -> {aborted.resp.name}")
    sim.run_until(lambda s: tmu.state.value == "monitor", timeout=5_000)
    regs.write(0x08, 1)  # clear the interrupt, as a driver would
    print(f"  subordinate resets taken: {subordinate.resets_taken}")

    manager.submit(write_spec(txn_id=3, addr=0x3000, beats=4))
    sim.run_until(lambda s: manager.idle, timeout=5_000)
    print(f"  post-recovery txn -> {manager.completed[-1].resp.name}")
    print(f"\nfaults handled: {tmu.faults_handled}; total cycles: {sim.cycle}")


if __name__ == "__main__":
    main()
