#!/usr/bin/env python3
"""Mixed-criticality SoC: Fc and Tc TMUs side by side (paper §IV).

"Its configurability permits mixing Tiny-Counter and Full-Counter
monitors within the same SoC, tailoring overhead and detection
granularity to each subordinate's requirements."

This example builds a two-subordinate system behind one crossbar:

* a *critical* endpoint (flight-control actuator bus, say) watched by a
  Full-Counter TMU — earliest possible detection, detailed logs;
* a *best-effort* endpoint (debug UART buffer) watched by a
  Tiny-Counter TMU with a prescaler — minimal area.

Faults are injected into both endpoints; the example reports detection
latency, attribution, and the modelled area each monitor costs.

Run:  python examples/mixed_criticality.py
"""

# Allow running straight from a source checkout, from any directory.
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.area import tmu_area
from repro.axi import AxiInterface, Manager, Subordinate, write_spec
from repro.axi.crossbar import AddressRange, Crossbar
from repro.sim import Simulator
from repro.soc import ResetUnit
from repro.tmu import (
    AdaptiveBudgetPolicy,
    PhaseBudgets,
    SpanBudgets,
    TmuConfig,
    TransactionMonitoringUnit,
    Variant,
)

CRITICAL_BASE = 0x1000_0000
BEST_EFFORT_BASE = 0x2000_0000
WINDOW = 0x1_0000


def budgets() -> AdaptiveBudgetPolicy:
    return AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=8, w_entry=16, w_first_hs=8, b_wait=12,
                     b_handshake=16, w_data_base=8, w_data_per_beat=2),
        SpanBudgets(base=48, per_beat=2),
    )


def build():
    sim = Simulator()
    mgr_bus = AxiInterface("cpu")
    manager = Manager("cpu", mgr_bus)

    critical_host = AxiInterface("critical_host")
    critical_dev = AxiInterface("critical_dev")
    best_host = AxiInterface("best_host")
    best_dev = AxiInterface("best_dev")

    fc_config = TmuConfig(variant=Variant.FULL, max_uniq_ids=4, txn_per_id=4,
                          budgets=budgets())
    tc_config = TmuConfig(variant=Variant.TINY, max_uniq_ids=2, txn_per_id=4,
                          budgets=budgets(), prescale_step=16)

    fc_tmu = TransactionMonitoringUnit("fc_tmu", critical_host, critical_dev, fc_config)
    tc_tmu = TransactionMonitoringUnit("tc_tmu", best_host, best_dev, tc_config)

    critical = Subordinate("actuator", critical_dev, b_latency=2)
    best_effort = Subordinate("uart_buf", best_dev, b_latency=4)

    xbar = Crossbar(
        "xbar",
        [mgr_bus],
        [
            (critical_host, AddressRange(CRITICAL_BASE, WINDOW)),
            (best_host, AddressRange(BEST_EFFORT_BASE, WINDOW)),
        ],
    )
    resets = [
        ResetUnit("rst_critical", fc_tmu.reset_req, fc_tmu.reset_ack, critical),
        ResetUnit("rst_best", tc_tmu.reset_req, tc_tmu.reset_ack, best_effort),
    ]
    for component in (manager, xbar, fc_tmu, tc_tmu, critical, best_effort, *resets):
        sim.add(component)
    return sim, manager, fc_tmu, tc_tmu, critical, best_effort


def main() -> None:
    sim, manager, fc_tmu, tc_tmu, critical, best_effort = build()

    fc_area = tmu_area(fc_tmu.config).total_um2
    tc_area = tmu_area(tc_tmu.config).total_um2
    print("== monitor provisioning ==")
    print(f"  critical endpoint: Full-Counter, {fc_tmu.config.max_outstanding} "
          f"outstanding -> {fc_area:.0f} um^2 (GF12 model)")
    print(f"  best-effort endpoint: Tiny-Counter + prescaler(16), "
          f"{tc_tmu.config.max_outstanding} outstanding -> {tc_area:.0f} um^2")
    print(f"  area saved on the non-critical port: "
          f"{(1 - tc_area / fc_area) * 100:.0f}%")

    # Healthy traffic to both endpoints.
    manager.submit(write_spec(0, CRITICAL_BASE + 0x100, beats=4))
    manager.submit(write_spec(1, BEST_EFFORT_BASE + 0x100, beats=4))
    sim.run_until(lambda s: manager.idle, timeout=2_000)
    print("\n== healthy traffic ==")
    print(f"  completions: {[(t.txn_id, t.resp.name) for t in manager.completed]}")

    # Fault on the critical endpoint: Fc pinpoints the phase fast.
    critical.faults.mute_b = True
    manager.submit(write_spec(0, CRITICAL_BASE + 0x200, beats=4))
    detect = sim.run_until(lambda s: fc_tmu.irq.value, timeout=5_000)
    fault = fc_tmu.last_fault
    print("\n== fault on the critical endpoint ==")
    print(f"  Fc detected at cycle {detect}: {fault.kind.value} "
          f"in {fault.phase_label}")
    sim.run_until(lambda s: manager.idle and fc_tmu.state.value == "monitor",
                  timeout=5_000)
    fc_tmu.clear_irq()
    print(f"  recovered; actuator resets: {critical.resets_taken}")

    # Fault on the best-effort endpoint: Tc detects at the span budget.
    best_effort.faults.mute_b = True
    manager.submit(write_spec(1, BEST_EFFORT_BASE + 0x200, beats=4))
    detect = sim.run_until(lambda s: tc_tmu.irq.value, timeout=5_000)
    fault = tc_tmu.last_fault
    print("\n== fault on the best-effort endpoint ==")
    print(f"  Tc detected at cycle {detect}: {fault.kind.value} "
          f"over {fault.phase_label} (coarse but cheap)")
    sim.run_until(lambda s: manager.idle and tc_tmu.state.value == "monitor",
                  timeout=5_000)
    print(f"  recovered; uart_buf resets: {best_effort.resets_taken}")

    print(f"\nboth endpoints protected; independent recovery domains intact")


if __name__ == "__main__":
    main()
