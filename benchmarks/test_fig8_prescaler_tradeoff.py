"""Fig. 8 — Prescaler step vs area and detection latency (128 outstanding).

For prescaler steps 1-128 at a fixed 128-outstanding capacity and the
paper's 256-cycle budget, the bench reports the modelled area and the
*measured* worst-case detection latency under the paper's scenario —
"the datapath never asserts a valid signal, effectively modelling a
total stall" — swept over prescaler phase alignments.

Claims checked: area decreases and detection latency increases with the
step, for both variants (Figs. 8a and 8b).
"""

from conftest import report, run_once

from repro.analysis.report import render_series
from repro.area.model import detection_latency_bound, estimate_area
from repro.faults.campaign import measure_stall_detection_latency
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant

STEPS = [1, 2, 4, 8, 16, 32, 64, 128]
BUDGET = 256
OUTSTANDING = 128


def stall_config(variant: Variant, step: int) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=BUDGET),
        SpanBudgets(base=BUDGET, per_beat=0),
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=32,
        prescale_step=step,
        budgets=budgets,
        max_txn_cycles=BUDGET,
    )


def sweep(variant: Variant):
    areas, latencies = [], []
    for step in STEPS:
        areas.append(
            estimate_area(
                variant, OUTSTANDING, step, sticky=True, budget_cycles=BUDGET
            ).total_um2
        )
        latencies.append(
            measure_stall_detection_latency(
                stall_config(variant, step),
                offsets=range(min(step, 8)),
            )
        )
    return areas, latencies


def run_both():
    return {variant: sweep(variant) for variant in (Variant.FULL, Variant.TINY)}


def test_fig8_prescaler_tradeoff(benchmark):
    results = run_once(benchmark, run_both)
    for variant, label in ((Variant.FULL, "8a Fc"), (Variant.TINY, "8b Tc")):
        areas, latencies = results[variant]
        body = render_series(
            "prescale_step",
            STEPS,
            [
                ("area_um2", areas),
                ("worst_detect_latency_cycles", latencies),
                (
                    "analytic_bound",
                    [detection_latency_bound(BUDGET, step) for step in STEPS],
                ),
            ],
            title=(
                f"{variant.value} @ {OUTSTANDING} outstanding, "
                f"budget {BUDGET} cycles, total-stall scenario"
            ),
        )
        report(f"Fig. {label}: prescaler step vs area and detection latency", body)

        # Area monotone decreasing with the step.
        assert areas == sorted(areas, reverse=True)
        # Latency never better than the budget, never beyond the bound.
        for step, latency in zip(STEPS, latencies):
            assert BUDGET <= latency <= detection_latency_bound(BUDGET, step)
        # Latency monotone non-decreasing across the sweep.
        assert latencies == sorted(latencies)
        # The trade-off is real: the largest step saves meaningful area...
        assert areas[-1] < 0.8 * areas[0]
        # ...at a meaningful latency cost.
        assert latencies[-1] > latencies[0]
