"""Fig. 11 — System-level detection-latency comparison (Cheshire + Ethernet).

The paper's system experiment: a 250-beat write on a 64-bit bus into the
Ethernet peripheral, faults injected at the beginning, middle and end of
the transaction.  Tc uses a single 320-cycle budget; Fc uses per-phase
budgets (10 / 20 / 10 / 250 / 10 / 20).

Expected series (paper Fig. 11):

* Fc detects when the failing phase's budget expires — 10, 20, 10, 250,
  10, 20 cycles for the six stages;
* Tc always detects after the entire 320-cycle budget.
"""

import pytest
from conftest import report, run_once

from repro.analysis.report import render_bar_chart, render_series
from repro.soc.cheshire import SYSTEM_TC_BUDGET
from repro.soc.experiment import FIG11_LABELS, FIG11_STAGES, run_fig11

PAPER_FC_SERIES = [10, 20, 10, 250, 10, 20]
PAPER_TC_SERIES = [SYSTEM_TC_BUDGET] * 6


def test_fig11_system_latency(benchmark):
    results = run_once(benchmark, run_fig11)
    fc = [r.fig11_latency for r in results["full"]]
    tc = [r.latency_from_start for r in results["tiny"]]
    body = render_series(
        "injection stage",
        list(FIG11_LABELS),
        [
            ("Fc measured", fc),
            ("Fc paper", PAPER_FC_SERIES),
            ("Tc measured", tc),
            ("Tc paper", PAPER_TC_SERIES),
        ],
        title="250-beat Ethernet write, Cheshire integration",
    )
    body += "\n\n" + render_bar_chart(
        list(FIG11_LABELS), [float(v) for v in fc], title="Fc detection latency"
    )
    report("Fig. 11: system-level detection latency, Fc vs Tc", body)

    for stage, measured, expected in zip(FIG11_STAGES, fc, PAPER_FC_SERIES):
        assert measured == pytest.approx(expected, abs=2), stage
    for stage, measured in zip(FIG11_STAGES, tc):
        assert measured == pytest.approx(SYSTEM_TC_BUDGET, abs=2), stage
    # Every injection recovered via reset + interrupt service.
    for series in results.values():
        for result in series:
            assert result.recovered
            assert result.ethernet_resets == 1
            assert result.cpu_recoveries == 1
