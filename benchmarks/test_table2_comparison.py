"""Table II — Comparison of AXI Transaction Monitors in the Literature.

Regenerates the feature matrix.  Rows for monitors implemented in this
repository are cross-checked against live instances: each implemented
baseline is exercised and must demonstrate (or provably lack) the
capabilities its row claims.
"""

from types import SimpleNamespace

from conftest import report, run_once

from repro.analysis.report import render_table
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.baselines import (
    AxiChecker,
    AxiPerfMonitor,
    TABLE2_COLUMNS,
    XilinxStyleTimeout,
    table2_profiles,
)
from repro.sim.kernel import Simulator


def demonstrate_capabilities():
    """Exercise implemented monitors to validate their Table II rows."""
    outcomes = {}

    def loop(monitor_cls, fault=None, **kwargs):
        sim = Simulator()
        bus = AxiInterface("bus")
        manager = Manager("manager", bus)
        subordinate = Subordinate("subordinate", bus)
        monitor = monitor_cls("monitor", bus, **kwargs)
        for component in (manager, subordinate, monitor):
            sim.add(component)
        if fault:
            setattr(subordinate.faults, fault, True)
        manager.submit(write_spec(0, 0x100, beats=4))
        sim.run(300)
        return SimpleNamespace(monitor=monitor, manager=manager)

    env = loop(XilinxStyleTimeout, fault="mute_b", window=32)
    outcomes["xilinx_fault_detection"] = bool(env.monitor.timeouts)

    env = loop(AxiPerfMonitor)
    outcomes["perfmon_metrics"] = env.monitor.write.transactions == 1
    outcomes["perfmon_no_fault_detection"] = not hasattr(env.monitor, "irq")

    env = loop(AxiChecker, fault="spurious_b")
    outcomes["axichecker_protocol_check"] = not env.monitor.clean
    outcomes["axichecker_no_timing"] = not hasattr(env.monitor, "timeouts")

    from repro.faults.campaign import run_injection
    from repro.faults.types import InjectionStage
    from repro.tmu.config import full_config, tiny_config

    fc = run_injection(full_config(), InjectionStage.WLAST_TO_BVALID, beats=4)
    tc = run_injection(tiny_config(), InjectionStage.WLAST_TO_BVALID, beats=4)
    outcomes["tmu_fc_phase_level"] = fc.fault_phase == "WLAST_BVLD"
    outcomes["tmu_tc_txn_level"] = tc.fault_phase == "AWVALID_BRESP"
    outcomes["tmu_fault_detection"] = fc.detected and tc.detected
    outcomes["tmu_recovery"] = fc.recovered and tc.recovered
    return outcomes


def test_table2_comparison(benchmark):
    outcomes = run_once(benchmark, demonstrate_capabilities)
    profiles = table2_profiles()
    body = render_table(
        TABLE2_COLUMNS, [profile.row() for profile in profiles]
    )
    built = [p.name for p in profiles if p.implemented_as]
    body += "\n\nRows backed by an implementation in this repo: " + ", ".join(built)
    report("Table II: Comparison of AXI Transaction Monitors", body)
    assert all(outcomes.values()), {k: v for k, v in outcomes.items() if not v}
