"""Sharded campaign orchestration — scaling harness (not in the paper).

Runs the Fig. 11 system sweep (both variants × six write stages ×
phase-offset seeds) through the orchestration engine — serial, across a
4-process pool, and through the distributed TCP coordinator with
loopback workers — verifies the result lists are *identical*, and
reports the wall-clock for each.  The speedup column is the
thousands-of-runs scaling story of `repro.orchestrate`; on single-core
CI runners the parallel paths can only demonstrate correctness (plus
the distributed row quantifying the wire/lease overhead), so the
speedup assertion is gated on available cores.
"""

import os
import time

from conftest import report, run_once

from repro.analysis.report import render_table
from repro.orchestrate import CampaignSpec, DistributedExecutor, run_campaign_spec
from repro.soc.experiment import FIG11_STAGES
from repro.tmu.config import Variant

WORKERS = 4
SEEDS = (0, 1)
BEATS = 64


def spec():
    return CampaignSpec.system(
        (Variant.FULL, Variant.TINY), FIG11_STAGES, beats=BEATS, seeds=SEEDS
    )


def run():
    timings = {}
    start = time.perf_counter()
    serial = run_campaign_spec(spec(), workers=1)
    timings["serial"] = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_campaign_spec(spec(), workers=WORKERS)
    timings[f"{WORKERS} workers"] = time.perf_counter() - start
    start = time.perf_counter()
    distributed = run_campaign_spec(
        spec(),
        executor=DistributedExecutor(local_workers=2, result_timeout=300),
    )
    timings["distributed x2"] = time.perf_counter() - start
    return serial, sharded, distributed, timings


def test_sharded_campaign_identical_and_scales(benchmark):
    serial, sharded, distributed, timings = run_once(benchmark, run)

    assert len(serial) == 2 * len(FIG11_STAGES) * len(SEEDS)
    assert sharded == serial  # determinism: full dataclass equality
    assert distributed == serial  # ...whatever transport ran the shards
    assert all(r.detected and r.recovered for r in serial)

    speedup = timings["serial"] / timings[f"{WORKERS} workers"]
    rows = [[label, f"{seconds * 1000:.1f}"] for label, seconds in timings.items()]
    usable_cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count() or 1
    )
    rows.append(["speedup", f"{speedup:.2f}x"])
    rows.append(["usable cores", usable_cores])
    report(
        f"Campaign sharding: Fig. 11 sweep x {len(SEEDS)} seeds "
        f"({len(serial)} runs), serial vs {WORKERS}-process pool vs "
        f"distributed coordinator + 2 loopback workers",
        render_table(["path", "wall [ms]"], rows),
    )

    # Pool overhead must never dominate; real speedup needs real
    # *usable* cores (cpu_count ignores cgroup quotas/affinity masks).
    if usable_cores >= 4:
        assert speedup > 1.2
