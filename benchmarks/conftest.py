"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment once inside the ``benchmark`` fixture (so
``pytest benchmarks/ --benchmark-only`` times the harness), prints the
reproduced rows/series, and asserts the paper's qualitative claims
(orderings, bands, crossovers) hold.

Reports are echoed to stdout and appended to ``benchmarks/results.txt``
so the numbers survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def report(title: str, body: str) -> None:
    """Print a reproduced table/figure and append it to results.txt."""
    block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n"
    print(block)
    with RESULTS_PATH.open("a") as stream:
        stream.write(block)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
