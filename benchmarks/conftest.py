"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment once inside the ``benchmark`` fixture (so
``pytest benchmarks/ --benchmark-only`` times the harness), prints the
reproduced rows/series, and asserts the paper's qualitative claims
(orderings, bands, crossovers) hold.

Reports are echoed to stdout and recorded in ``benchmarks/results.txt``
so the numbers survive pytest's output capture.  The recorder is
*idempotent*: each report is keyed by its title, and a re-run replaces
the existing block in place instead of appending a duplicate — so the
file holds exactly one (the latest) copy of every table however many
times the suite runs.  Machine-readable metrics go to
``benchmarks/BENCH_kernel.json`` via :func:`record_json`, keyed the
same way, so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
BENCH_JSON_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"

_DELIM = "=" * 72


def _parse_blocks(text: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split results.txt into (preamble, [(title, body), ...]).

    A block is ``<delim>\\n<title>\\n<delim>\\n<body>``; the body runs to
    the next block header (or EOF).  Re-parsing what :func:`report`
    writes round-trips exactly.
    """
    lines = text.split("\n")
    headers = [
        i
        for i in range(len(lines) - 2)
        if lines[i] == _DELIM and lines[i + 2] == _DELIM
    ]
    if not headers:
        return text, []
    preamble = "\n".join(lines[: headers[0]]).strip("\n")
    blocks: List[Tuple[str, str]] = []
    for n, start in enumerate(headers):
        end = headers[n + 1] if n + 1 < len(headers) else len(lines)
        title = lines[start + 1]
        body = "\n".join(lines[start + 3 : end]).strip("\n")
        blocks.append((title, body))
    return preamble, blocks


def _write_blocks(preamble: str, blocks: List[Tuple[str, str]]) -> None:
    parts = [preamble] if preamble else []
    for title, body in blocks:
        parts.append(f"\n{_DELIM}\n{title}\n{_DELIM}\n{body}\n")
    RESULTS_PATH.write_text("".join(parts))


def report(title: str, body: str) -> None:
    """Print a reproduced table/figure and record it in results.txt.

    Keyed by *title*: a block with the same title is replaced in place
    (re-runs refresh rather than append), a new title appends.
    """
    print(f"\n{_DELIM}\n{title}\n{_DELIM}\n{body}\n")
    text = RESULTS_PATH.read_text() if RESULTS_PATH.exists() else ""
    preamble, blocks = _parse_blocks(text)
    for i, (existing, _) in enumerate(blocks):
        if existing == title:
            blocks[i] = (title, body)
            break
    else:
        blocks.append((title, body))
    _write_blocks(preamble, blocks)


def record_json(key: str, data: Dict) -> None:
    """Merge ``{key: data}`` into BENCH_kernel.json (idempotent by key)."""
    existing = {}
    if BENCH_JSON_PATH.exists():
        existing = json.loads(BENCH_JSON_PATH.read_text())
    existing[key] = data
    BENCH_JSON_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
