"""Kernel scheduling micro-benchmark: dirty-set worklist vs exhaustive sweep.

Times the same manager↔subordinate farm under both settle strategies at
two activity levels:

* **dense** — every link streams transactions continuously, so nearly
  every component is on the worklist every cycle (worst case for the
  dirty scheduler: bookkeeping with no skippable work);
* **sparse** — one link out of N is active, the rest idle, the regime
  the dirty scheduler exists for (an SoC mostly waiting on one
  peripheral, e.g. the paper's total-stall measurement scenario).

Asserts that both strategies complete identical work, and that the
dirty scheduler beats the exhaustive sweep on the sparse workload.
"""

import time

from conftest import report, run_once

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.sim import Simulator

LINKS = 8
CYCLES = 1500
BURSTS = 40


def build_farm(strategy, active_links):
    sim = Simulator(strategy=strategy)
    managers = []
    for i in range(LINKS):
        bus = AxiInterface(f"link{i}")
        manager = Manager(f"mgr{i}", bus)
        sim.add(manager)
        sim.add(Subordinate(f"sub{i}", bus, b_latency=2))
        managers.append(manager)
    for i in range(active_links):
        for n in range(BURSTS):
            managers[i].submit(write_spec(n % 4, 0x100 + 0x40 * n, beats=4))
    return sim, managers


def run_farm(strategy, active_links):
    sim, managers = build_farm(strategy, active_links)
    start = time.perf_counter()
    sim.run(CYCLES)
    elapsed = time.perf_counter() - start
    completed = sum(len(m.completed) for m in managers)
    return elapsed, completed


def measure():
    results = {}
    for label, active in (("dense", LINKS), ("sparse", 1)):
        for strategy in ("dirty", "exhaustive"):
            results[(label, strategy)] = run_farm(strategy, active)
    return results


def test_kernel_scheduling(benchmark):
    results = run_once(benchmark, measure)

    rows = []
    for label in ("dense", "sparse"):
        dirty_s, dirty_done = results[(label, "dirty")]
        exact_s, exact_done = results[(label, "exhaustive")]
        # Same architectural work under both strategies.
        assert dirty_done == exact_done, label
        rows.append(
            f"{label:<7}| {1000 * dirty_s:8.1f} ms | {1000 * exact_s:8.1f} ms "
            f"| {exact_s / dirty_s:5.1f}x"
        )
    body = "\n".join(
        [
            f"{LINKS} manager/subordinate links, {CYCLES} cycles",
            "activity | dirty-set   | exhaustive  | speedup",
            "---------+-------------+-------------+--------",
            *rows,
        ]
    )
    report("Kernel scheduling: dirty-set worklist vs exhaustive sweep", body)

    # The dirty scheduler's reason to exist: sparse activity must be
    # decisively cheaper than a full sweep (typically >5x; assert a
    # conservative margin so loaded CI machines stay green).
    sparse_dirty = results[("sparse", "dirty")][0]
    sparse_exact = results[("sparse", "exhaustive")][0]
    assert sparse_exact > 1.5 * sparse_dirty
    # Dense activity must not regress past the exhaustive sweep.
    dense_dirty = results[("dense", "dirty")][0]
    dense_exact = results[("dense", "exhaustive")][0]
    assert dense_dirty < 1.5 * dense_exact
