"""Kernel scheduling micro-benchmarks: settle worklist + update live set.

Three experiments on the same kernel:

* **settle** — the original dirty-set-vs-exhaustive comparison on a
  manager↔subordinate farm at dense and sparse activity;
* **update skip (idle-fraction sweep)** — the quiescence-aware update
  phase against the pre-quiescence static updater list (``Simulator
  (update_skipping=False)``) as the idle fraction of the farm grows;
* **stall-dominated campaign** — the paper's Fig. 9/11 regime: a muted
  response channel hangs the Cheshire SoC for thousands of cycles while
  only the TMU's armed counters tick.  This is the scenario the
  quiescence contract exists for; asserts the ≥1.5x win.

All variants must complete identical architectural work.
"""

import time

from conftest import report, run_once

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.sim import Simulator

LINKS = 8
CYCLES = 1500
BURSTS = 40

STALL_BUDGET = 6000  # long-timeout Fig. 9/11 point: detection after ~6k cycles


def build_farm(strategy, active_links, update_skipping=True):
    sim = Simulator(strategy=strategy, update_skipping=update_skipping)
    managers = []
    for i in range(LINKS):
        bus = AxiInterface(f"link{i}")
        manager = Manager(f"mgr{i}", bus)
        sim.add(manager)
        sim.add(Subordinate(f"sub{i}", bus, b_latency=2))
        managers.append(manager)
    for i in range(active_links):
        for n in range(BURSTS):
            managers[i].submit(write_spec(n % 4, 0x100 + 0x40 * n, beats=4))
    return sim, managers


def run_farm(strategy, active_links, update_skipping=True):
    sim, managers = build_farm(strategy, active_links, update_skipping)
    start = time.perf_counter()
    sim.run(CYCLES)
    elapsed = time.perf_counter() - start
    completed = sum(len(m.completed) for m in managers)
    return elapsed, completed


def build_stalled_soc(update_skipping):
    """Cheshire SoC hung by a mute-B Ethernet fault under a long budget."""
    import dataclasses

    from repro.soc.cheshire import CheshireSoC, system_tmu_config
    from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
    from repro.tmu.config import Variant

    budget = STALL_BUDGET
    phases = PhaseBudgets(
        aw_handshake=budget, w_entry=budget, w_first_hs=budget,
        w_data_base=budget, b_wait=budget, b_handshake=budget,
        ar_handshake=budget, r_entry=budget, r_first_hs=budget,
        r_data_base=budget,
    )
    config = dataclasses.replace(
        system_tmu_config(Variant.FULL),
        budgets=AdaptiveBudgetPolicy(phases, SpanBudgets(base=budget, per_beat=1)),
    )
    soc = CheshireSoC(config, sim_update_skipping=update_skipping)
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(64)
    return soc


def run_stalled_soc(update_skipping):
    soc = build_stalled_soc(update_skipping)
    start = time.perf_counter()
    detect = soc.sim.run_until(lambda _s: soc.tmu.irq.value, timeout=20_000)
    elapsed = time.perf_counter() - start
    return elapsed, detect


def measure():
    results = {}
    for label, active in (("dense", LINKS), ("sparse", 1)):
        for strategy in ("dirty", "exhaustive"):
            results[(label, strategy)] = run_farm(strategy, active)
    return results


def measure_update_skip():
    results = {}
    for label, active in (("0/8 idle", 8), ("4/8 idle", 4), ("7/8 idle", 1)):
        for skipping in (True, False):
            results[(label, skipping)] = run_farm("dirty", active, skipping)
    return results


def measure_stall():
    return {
        skipping: run_stalled_soc(skipping) for skipping in (True, False)
    }


def test_kernel_scheduling(benchmark):
    results = run_once(benchmark, measure)

    rows = []
    for label in ("dense", "sparse"):
        dirty_s, dirty_done = results[(label, "dirty")]
        exact_s, exact_done = results[(label, "exhaustive")]
        # Same architectural work under both strategies.
        assert dirty_done == exact_done, label
        rows.append(
            f"{label:<7}| {1000 * dirty_s:8.1f} ms | {1000 * exact_s:8.1f} ms "
            f"| {exact_s / dirty_s:5.1f}x"
        )
    body = "\n".join(
        [
            f"{LINKS} manager/subordinate links, {CYCLES} cycles",
            "activity | dirty-set   | exhaustive  | speedup",
            "---------+-------------+-------------+--------",
            *rows,
        ]
    )
    report("Kernel scheduling: dirty-set worklist vs exhaustive sweep", body)

    # The dirty scheduler's reason to exist: sparse activity must be
    # decisively cheaper than a full sweep (typically >5x; assert a
    # conservative margin so loaded CI machines stay green).
    sparse_dirty = results[("sparse", "dirty")][0]
    sparse_exact = results[("sparse", "exhaustive")][0]
    assert sparse_exact > 1.5 * sparse_dirty
    # Dense activity must not regress past the exhaustive sweep.
    dense_dirty = results[("dense", "dirty")][0]
    dense_exact = results[("dense", "exhaustive")][0]
    assert dense_dirty < 1.5 * dense_exact


def test_update_skip_idle_fraction(benchmark):
    results = run_once(benchmark, measure_update_skip)

    rows = []
    for label in ("0/8 idle", "4/8 idle", "7/8 idle"):
        skip_s, skip_done = results[(label, True)]
        static_s, static_done = results[(label, False)]
        assert skip_done == static_done, label
        rows.append(
            f"{label:<9}| {1000 * skip_s:8.1f} ms | {1000 * static_s:8.1f} ms "
            f"| {static_s / skip_s:5.2f}x"
        )
    body = "\n".join(
        [
            f"{LINKS} links (dirty settle in both), {CYCLES} cycles",
            "idle     | live set    | static list | speedup",
            "---------+-------------+-------------+--------",
            *rows,
        ]
    )
    report("Update-phase quiescence: live updater set vs static list", body)

    # Mostly-idle farms are where quiescence pays; fully-busy ones must
    # not regress materially (every component stays in the live set).
    idle_skip = results[("7/8 idle", True)][0]
    idle_static = results[("7/8 idle", False)][0]
    assert idle_static > 1.3 * idle_skip
    busy_skip = results[("0/8 idle", True)][0]
    busy_static = results[("0/8 idle", False)][0]
    assert busy_skip < 1.3 * busy_static


def test_update_skip_stall_campaign(benchmark):
    results = run_once(benchmark, measure_stall)

    skip_s, skip_detect = results[True]
    static_s, static_detect = results[False]
    # Identical physics: the detection cycle must not move.
    assert skip_detect == static_detect
    body = "\n".join(
        [
            f"Cheshire SoC, mute-B Ethernet stall, {STALL_BUDGET}-cycle budget",
            f"detected at cycle {skip_detect} under both update phases",
            "update phase | wall clock | speedup",
            "-------------+------------+--------",
            f"live set     | {1000 * skip_s:7.1f} ms |"
            f" {static_s / skip_s:5.2f}x",
            f"static list  | {1000 * static_s:7.1f} ms |  1.00x",
        ]
    )
    report(
        "Update-phase quiescence: stall-dominated campaign (Fig. 9/11 regime)",
        body,
    )

    # The acceptance bar for the quiescence contract: a stall-dominated
    # campaign runs at least 1.5x faster end to end.
    assert static_s > 1.5 * skip_s
