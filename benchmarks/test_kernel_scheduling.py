"""Kernel scheduling micro-benchmarks: settle worklist + update live set.

Four experiments on the same kernel:

* **settle** — the original dirty-set-vs-exhaustive comparison on a
  manager↔subordinate farm at dense and sparse activity;
* **update skip (idle-fraction sweep)** — the quiescence-aware update
  phase against the pre-quiescence static updater list (``Simulator
  (update_skipping=False)``) as the idle fraction of the farm grows;
* **stall-dominated campaign** — the paper's Fig. 9/11 regime: a muted
  response channel hangs the Cheshire SoC for thousands of cycles while
  only the TMU's armed counters tick.  This is the scenario the
  quiescence contract exists for; asserts the ≥1.5x win.
* **time leap** — the same stall under the timed-wake queue: with only
  countdowns pending, ``run_until`` fast-forwards the clock to the
  TMU's declared expiry instead of ticking the empty cycles, so the
  stall costs one heap pop however long the budget.  Asserts ≥3x over
  the quiescence-only kernel (typically far more: the leaped span is
  O(1) instead of O(budget)).
* **lockstep batch campaign** — the seed axis itself: a 64-seed stall
  campaign through the lockstep batch executor, which simulates one
  leader per congruence pack and derives the other lanes in O(1).
  Measures a runs/sec series over pack widths against the PR 4 scalar
  path; asserts byte-equal results and the ≥3x throughput bar at 64
  lanes.

All variants must complete identical architectural work; each test also
records machine-readable metrics (cycles/sec, speedups, leap counts) in
``BENCH_kernel.json`` via ``record_json``.
"""

import time

from conftest import record_json, report, run_once

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.sim import Simulator

LINKS = 8
CYCLES = 1500
BURSTS = 40

STALL_BUDGET = 6000  # long-timeout Fig. 9/11 point: detection after ~6k cycles

#: Budget for the time-leap bench: long enough that the run is utterly
#: stall-dominated (the paper's watchdog-class budgets), so the win
#: measures the leap itself rather than the surrounding traffic.
LEAP_BUDGET = 60_000


def build_farm(strategy, active_links, update_skipping=True):
    sim = Simulator(strategy=strategy, update_skipping=update_skipping)
    managers = []
    for i in range(LINKS):
        bus = AxiInterface(f"link{i}")
        manager = Manager(f"mgr{i}", bus)
        sim.add(manager)
        sim.add(Subordinate(f"sub{i}", bus, b_latency=2))
        managers.append(manager)
    for i in range(active_links):
        for n in range(BURSTS):
            managers[i].submit(write_spec(n % 4, 0x100 + 0x40 * n, beats=4))
    return sim, managers


def run_farm(strategy, active_links, update_skipping=True):
    sim, managers = build_farm(strategy, active_links, update_skipping)
    start = time.perf_counter()
    sim.run(CYCLES)
    elapsed = time.perf_counter() - start
    completed = sum(len(m.completed) for m in managers)
    return elapsed, completed


def build_stalled_soc(update_skipping, time_leaping=False, budget=STALL_BUDGET):
    """Cheshire SoC hung by a mute-B Ethernet fault under a long budget."""
    import dataclasses

    from repro.soc.cheshire import CheshireSoC, system_tmu_config
    from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
    from repro.tmu.config import Variant

    phases = PhaseBudgets(
        aw_handshake=budget, w_entry=budget, w_first_hs=budget,
        w_data_base=budget, b_wait=budget, b_handshake=budget,
        ar_handshake=budget, r_entry=budget, r_first_hs=budget,
        r_data_base=budget,
    )
    config = dataclasses.replace(
        system_tmu_config(Variant.FULL),
        budgets=AdaptiveBudgetPolicy(phases, SpanBudgets(base=budget, per_beat=1)),
    )
    soc = CheshireSoC(
        config,
        sim_update_skipping=update_skipping,
        sim_time_leaping=time_leaping,
    )
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(64)
    return soc


def run_stalled_soc(update_skipping, time_leaping=False, budget=STALL_BUDGET):
    soc = build_stalled_soc(update_skipping, time_leaping, budget)
    timeout = max(20_000, 2 * budget)
    start = time.perf_counter()
    detect = soc.sim.run_until(lambda _s: soc.tmu.irq.value, timeout=timeout)
    elapsed = time.perf_counter() - start
    return elapsed, detect, soc.sim.leaps, soc.sim.cycles_leaped


def measure():
    results = {}
    for label, active in (("dense", LINKS), ("sparse", 1)):
        for strategy in ("dirty", "exhaustive"):
            results[(label, strategy)] = run_farm(strategy, active)
    return results


def measure_update_skip():
    results = {}
    for label, active in (("0/8 idle", 8), ("4/8 idle", 4), ("7/8 idle", 1)):
        for skipping in (True, False):
            results[(label, skipping)] = run_farm("dirty", active, skipping)
    return results


def measure_stall():
    return {
        skipping: run_stalled_soc(skipping) for skipping in (True, False)
    }


def measure_time_leap():
    results = {}
    for label, skipping, leaping in (
        ("leap", True, True),
        ("no-leap", True, False),
        ("static", False, False),
    ):
        results[label] = run_stalled_soc(skipping, leaping, budget=LEAP_BUDGET)
    return results


def test_kernel_scheduling(benchmark):
    results = run_once(benchmark, measure)

    rows = []
    for label in ("dense", "sparse"):
        dirty_s, dirty_done = results[(label, "dirty")]
        exact_s, exact_done = results[(label, "exhaustive")]
        # Same architectural work under both strategies.
        assert dirty_done == exact_done, label
        rows.append(
            f"{label:<7}| {1000 * dirty_s:8.1f} ms | {1000 * exact_s:8.1f} ms "
            f"| {exact_s / dirty_s:5.1f}x"
        )
    body = "\n".join(
        [
            f"{LINKS} manager/subordinate links, {CYCLES} cycles",
            "activity | dirty-set   | exhaustive  | speedup",
            "---------+-------------+-------------+--------",
            *rows,
        ]
    )
    report("Kernel scheduling: dirty-set worklist vs exhaustive sweep", body)

    record_json(
        "settle_dirty_vs_exhaustive",
        {
            "cycles": CYCLES,
            "links": LINKS,
            "dense_dirty_seconds": results[("dense", "dirty")][0],
            "dense_exhaustive_seconds": results[("dense", "exhaustive")][0],
            "sparse_dirty_seconds": results[("sparse", "dirty")][0],
            "sparse_exhaustive_seconds": results[("sparse", "exhaustive")][0],
            "sparse_speedup": (
                results[("sparse", "exhaustive")][0]
                / results[("sparse", "dirty")][0]
            ),
        },
    )

    # The dirty scheduler's reason to exist: sparse activity must be
    # decisively cheaper than a full sweep (typically >5x; assert a
    # conservative margin so loaded CI machines stay green).
    sparse_dirty = results[("sparse", "dirty")][0]
    sparse_exact = results[("sparse", "exhaustive")][0]
    assert sparse_exact > 1.5 * sparse_dirty
    # Dense activity must not regress past the exhaustive sweep.
    dense_dirty = results[("dense", "dirty")][0]
    dense_exact = results[("dense", "exhaustive")][0]
    assert dense_dirty < 1.5 * dense_exact


def test_update_skip_idle_fraction(benchmark):
    results = run_once(benchmark, measure_update_skip)

    rows = []
    for label in ("0/8 idle", "4/8 idle", "7/8 idle"):
        skip_s, skip_done = results[(label, True)]
        static_s, static_done = results[(label, False)]
        assert skip_done == static_done, label
        rows.append(
            f"{label:<9}| {1000 * skip_s:8.1f} ms | {1000 * static_s:8.1f} ms "
            f"| {static_s / skip_s:5.2f}x"
        )
    body = "\n".join(
        [
            f"{LINKS} links (dirty settle in both), {CYCLES} cycles",
            "idle     | live set    | static list | speedup",
            "---------+-------------+-------------+--------",
            *rows,
        ]
    )
    report("Update-phase quiescence: live updater set vs static list", body)

    record_json(
        "update_skip_idle_fraction",
        {
            "cycles": CYCLES,
            "links": LINKS,
            "idle_7_8_live_seconds": results[("7/8 idle", True)][0],
            "idle_7_8_static_seconds": results[("7/8 idle", False)][0],
            "busy_live_seconds": results[("0/8 idle", True)][0],
            "busy_static_seconds": results[("0/8 idle", False)][0],
            "idle_speedup": (
                results[("7/8 idle", False)][0] / results[("7/8 idle", True)][0]
            ),
        },
    )

    # Mostly-idle farms are where quiescence pays; fully-busy ones must
    # not regress materially (every component stays in the live set).
    idle_skip = results[("7/8 idle", True)][0]
    idle_static = results[("7/8 idle", False)][0]
    assert idle_static > 1.3 * idle_skip
    busy_skip = results[("0/8 idle", True)][0]
    busy_static = results[("0/8 idle", False)][0]
    assert busy_skip < 1.3 * busy_static


def test_update_skip_stall_campaign(benchmark):
    results = run_once(benchmark, measure_stall)

    skip_s, skip_detect, _, _ = results[True]
    static_s, static_detect, _, _ = results[False]
    # Identical physics: the detection cycle must not move.
    assert skip_detect == static_detect
    body = "\n".join(
        [
            f"Cheshire SoC, mute-B Ethernet stall, {STALL_BUDGET}-cycle budget",
            f"detected at cycle {skip_detect} under both update phases",
            "update phase | wall clock | speedup",
            "-------------+------------+--------",
            f"live set     | {1000 * skip_s:7.1f} ms |"
            f" {static_s / skip_s:5.2f}x",
            f"static list  | {1000 * static_s:7.1f} ms |  1.00x",
        ]
    )
    report(
        "Update-phase quiescence: stall-dominated campaign (Fig. 9/11 regime)",
        body,
    )
    record_json(
        "stall_campaign_update_skip",
        {
            "budget_cycles": STALL_BUDGET,
            "detect_cycle": skip_detect,
            "live_set_seconds": skip_s,
            "static_list_seconds": static_s,
            "speedup": static_s / skip_s,
        },
    )

    # The acceptance bar for the quiescence contract: a stall-dominated
    # campaign runs at least 1.5x faster end to end.
    assert static_s > 1.5 * skip_s


BATCH_SEEDS = 64
BATCH_LANES = (1, 8, 64)
BATCH_BUDGET = 2000  # per-run stall long enough that simulating dominates


def build_batch_campaign_spec():
    """64-seed AW-stall campaign: one config, one stage, the seed axis."""
    from repro.faults.types import InjectionStage
    from repro.orchestrate import CampaignSpec
    from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
    from repro.tmu.config import TmuConfig, Variant

    config = TmuConfig(
        variant=Variant.FULL,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=4,
        budgets=AdaptiveBudgetPolicy(
            PhaseBudgets(aw_handshake=BATCH_BUDGET),
            SpanBudgets(base=2 * BATCH_BUDGET, per_beat=1),
        ),
        max_txn_cycles=4 * BATCH_BUDGET,
    )
    return CampaignSpec.ip(
        [config],
        [InjectionStage.AW_READY_MISSING],
        beats=4,
        seeds=tuple(range(BATCH_SEEDS)),
    )


def measure_batch_campaign():
    import dataclasses

    from repro.orchestrate import BatchExecutor, run_campaign_spec

    spec = build_batch_campaign_spec()
    start = time.perf_counter()
    serial = run_campaign_spec(spec)
    serial_s = time.perf_counter() - start

    results = {"serial": (serial_s, None)}
    reference = [dataclasses.asdict(result) for result in serial]
    for lanes in BATCH_LANES:
        executor = BatchExecutor(lanes)
        start = time.perf_counter()
        batched = run_campaign_spec(spec, executor=executor)
        elapsed = time.perf_counter() - start
        # Identical physics: batching must not move a single field,
        # scheduler statistics included.
        assert [dataclasses.asdict(r) for r in batched] == reference, lanes
        results[lanes] = (elapsed, executor.stats)
    return results


def test_batch_campaign_throughput(benchmark):
    results = run_once(benchmark, measure_batch_campaign)

    serial_s, _ = results["serial"]
    serial_rps = BATCH_SEEDS / serial_s
    rows = [f"scalar (PR 4)  | {1000 * serial_s:7.1f} ms | {serial_rps:7.1f} |   1.00x"]
    series = {"serial_runs_per_second": serial_rps, "serial_seconds": serial_s}
    for lanes in BATCH_LANES:
        elapsed, stats = results[lanes]
        rps = BATCH_SEEDS / elapsed
        rows.append(
            f"batch lanes={lanes:<3}| {1000 * elapsed:7.1f} ms | {rps:7.1f} |"
            f" {serial_s / elapsed:6.2f}x  ({stats.simulated} simulated,"
            f" {stats.derived} derived)"
        )
        series[f"lanes_{lanes}_runs_per_second"] = rps
        series[f"lanes_{lanes}_seconds"] = elapsed
        series[f"lanes_{lanes}_simulated"] = stats.simulated
        series[f"lanes_{lanes}_derived"] = stats.derived
    body = "\n".join(
        [
            f"{BATCH_SEEDS}-seed AW-stall campaign, {BATCH_BUDGET}-cycle budget,"
            " prescale step 4",
            "executor       | wall clock | runs/s  | speedup",
            "---------------+------------+---------+--------",
            *rows,
        ]
    )
    report("Lockstep batch execution: campaign runs/sec over pack width", body)

    record_json(
        "campaign_batch_lockstep",
        {
            "runs": BATCH_SEEDS,
            "budget_cycles": BATCH_BUDGET,
            "prescale_step": 4,
            **series,
            "speedup_64_lanes": serial_s / results[64][0],
        },
    )

    # Acceptance bar: 64-lane packs must deliver at least 3x runs/sec
    # over the scalar executor on the stall campaign (typically far
    # more — a 16-lane congruence class costs ~2 simulations).
    assert BATCH_SEEDS / results[64][0] >= 3.0 * serial_rps
    # Width-1 packs are the scalar degenerate: no material regression.
    assert results[1][0] < 1.5 * serial_s


def test_time_leap_stall_campaign(benchmark):
    results = run_once(benchmark, measure_time_leap)

    leap_s, leap_detect, leaps, cycles_leaped = results["leap"]
    tick_s, tick_detect, tick_leaps, _ = results["no-leap"]
    static_s, static_detect, _, _ = results["static"]
    # Identical physics across all three kernels — the leap must not
    # move the detection cycle by even one.
    assert leap_detect == tick_detect == static_detect
    assert tick_leaps == 0
    # The whole stall collapses into a handful of heap pops.
    assert leaps >= 1
    assert cycles_leaped > 0.9 * LEAP_BUDGET
    body = "\n".join(
        [
            f"Cheshire SoC, mute-B Ethernet stall, {LEAP_BUDGET}-cycle budget",
            f"detected at cycle {leap_detect} under all kernels; "
            f"{leaps} leaps covered {cycles_leaped} cycles",
            "kernel             | wall clock | speedup",
            "-------------------+------------+--------",
            f"timed-wake leap    | {1000 * leap_s:7.1f} ms |"
            f" {tick_s / leap_s:6.2f}x",
            f"quiescence (PR 3)  | {1000 * tick_s:7.1f} ms |   1.00x",
            f"static updates     | {1000 * static_s:7.1f} ms |"
            f" {tick_s / static_s:6.2f}x",
        ]
    )
    report(
        "Timed-wake queue: clock fast-forward over a stall-dominated campaign",
        body,
    )
    record_json(
        "stall_campaign_time_leap",
        {
            "budget_cycles": LEAP_BUDGET,
            "detect_cycle": leap_detect,
            "leaps": leaps,
            "cycles_leaped": cycles_leaped,
            "leap_seconds": leap_s,
            "no_leap_seconds": tick_s,
            "static_seconds": static_s,
            "speedup_vs_quiescence": tick_s / leap_s,
            "speedup_vs_static": static_s / leap_s,
            "cycles_per_second_leap": leap_detect / leap_s,
            "cycles_per_second_no_leap": tick_detect / tick_s,
        },
    )

    # Acceptance bar: the timed-wake queue must deliver at least 3x on
    # top of PR 3's quiescence kernel for a stall-dominated campaign
    # (typically far more — the leaped span costs O(1), not O(budget)).
    assert tick_s > 3.0 * leap_s


def measure_tracer_overhead():
    """Min-of-repeats wall clock for the 64-seed stall campaign, bare
    vs with a no-op base :class:`Tracer` riding in every simulator.

    A live tracer is not JSON-serializable, so the traced arm goes
    through ``run_campaign`` (the serial path specs fall back to) with
    the *same* config/stage/seed axis as ``build_batch_campaign_spec``.
    The two arms interleave so drift hits both equally, and each takes
    its best of several repeats — the standard noise floor for
    sub-100ms timings.
    """
    from repro.faults.campaign import run_campaign
    from repro.faults.types import InjectionStage
    from repro.telemetry import Tracer
    from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
    from repro.tmu.config import TmuConfig, Variant

    config = TmuConfig(
        variant=Variant.FULL,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=4,
        budgets=AdaptiveBudgetPolicy(
            PhaseBudgets(aw_handshake=BATCH_BUDGET),
            SpanBudgets(base=2 * BATCH_BUDGET, per_beat=1),
        ),
        max_txn_cycles=4 * BATCH_BUDGET,
    )

    def campaign(harness_kwargs):
        start = time.perf_counter()
        results = run_campaign(
            [config],
            [InjectionStage.AW_READY_MISSING],
            beats=4,
            seeds=tuple(range(BATCH_SEEDS)),
            harness_kwargs=harness_kwargs,
        )
        return time.perf_counter() - start, results

    import dataclasses

    bare_best = traced_best = float("inf")
    reference = None
    for _ in range(7):
        bare_s, bare_results = campaign(None)
        traced_s, traced_results = campaign({"sim_tracer": Tracer()})
        bare_best = min(bare_best, bare_s)
        traced_best = min(traced_best, traced_s)
        # Observation, not perturbation: identical physics either way.
        snapshot = [dataclasses.asdict(r) for r in traced_results]
        if reference is None:
            reference = [dataclasses.asdict(r) for r in bare_results]
        assert snapshot == reference
    return bare_best, traced_best


def test_noop_tracer_overhead(benchmark):
    bare_s, traced_s = run_once(benchmark, measure_tracer_overhead)
    overhead = traced_s / bare_s - 1.0

    body = "\n".join(
        [
            f"{BATCH_SEEDS}-seed AW-stall campaign, {BATCH_BUDGET}-cycle"
            " budget, best of 7",
            "harness            | wall clock | overhead",
            "-------------------+------------+---------",
            f"bare               | {1000 * bare_s:7.1f} ms |    —",
            f"no-op Tracer       | {1000 * traced_s:7.1f} ms | {100 * overhead:+6.1f}%",
        ]
    )
    report("Kernel tracing: no-op tracer overhead on the stall campaign", body)
    record_json(
        "tracer_noop_overhead",
        {
            "runs": BATCH_SEEDS,
            "budget_cycles": BATCH_BUDGET,
            "bare_seconds": bare_s,
            "traced_seconds": traced_s,
            "overhead_fraction": overhead,
        },
    )

    # Acceptance bar: the base (cycle-tier) tracer costs at most 5% —
    # leaped cycles never touch the tracer, and stepped cycles pay two
    # attribute-lookup calls.
    assert overhead <= 0.05
