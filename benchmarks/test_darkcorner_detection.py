"""Dark-corner detection gap: per-transaction TMU vs. shared-timer watchdog.

The dark corner: a narrow write whose B response never arrives
(``mute_b``), buried under a stream of outstanding narrow reads that a
reorder-window subordinate keeps serving.  Every R beat rewinds the
watchdog's single shared stall timer, so the stuck write stays
invisible to it until the whole read stream drains; the TMU budgets
each transaction separately and raises its IRQ on schedule regardless
of unrelated progress.  The protocol checker never fires at all — a
subordinate that simply stays silent is protocol-clean.

Reproduces the paper's core claim (per-transaction monitoring beats
interface-level timeouts) on traffic the earlier benchmarks never
generated: narrow beats, deep outstanding queues, reordered responses.
"""

from conftest import record_json, report, run_once

from repro.axi.traffic import read_spec, write_spec
from repro.baselines import AxiChecker, XilinxStyleTimeout
from repro.faults.campaign import IpHarness
from repro.tmu.config import full_config

READS = 12
READ_BEATS = 32
SIZE = 1  # 2-byte beats on the 8-byte bus
REORDER_DEPTH = 4
WATCHDOG_WINDOW = 64


def build(tmu_enabled):
    """The dark-corner loop with every monitor attached.

    With ``tmu_enabled=False`` the TMU degenerates to a pure wire, so
    the watchdog and checker observe the identical workload without
    the TMU's fault-state recovery perturbing the bus mid-measurement.
    """
    harness = IpHarness(
        full_config(enabled=tmu_enabled),
        reorder_depth=REORDER_DEPTH,
        r_latency=2,
        with_reset_unit=tmu_enabled,
    )
    watchdog = XilinxStyleTimeout(
        "watchdog", harness.host, window=WATCHDOG_WINDOW
    )
    checker = AxiChecker("checker", harness.host)
    harness.sim.add(watchdog)
    harness.sim.add(checker)
    harness.subordinate.faults.mute_b = True
    harness.manager.submit(write_spec(0, 0x1000, beats=4, size=SIZE))
    for i in range(READS):
        harness.manager.submit(
            read_spec(
                1 + i % 3, 0x2000 + i * 0x1000, beats=READ_BEATS, size=SIZE
            )
        )
    return harness, watchdog, checker


def run_gap():
    # TMU run: stop at the IRQ, before recovery reshapes the traffic.
    harness, _, _ = build(tmu_enabled=True)
    tmu_detect = harness.run_until(
        lambda h: bool(h.tmu.irq.value), timeout=20_000
    )
    assert tmu_detect is not None, "TMU missed the muted B response"
    tmu_latency = tmu_detect - harness.wlast_cycle

    # Watchdog run: identical workload, TMU as a pure wire.
    harness, watchdog, checker = build(tmu_enabled=False)
    wd_detect = harness.run_until(
        lambda h: bool(watchdog.timeouts), timeout=60_000
    )
    assert wd_detect is not None, "watchdog never timed out"
    wd_latency = watchdog.timeouts[0] - harness.wlast_cycle
    reads_done_at_detect = sum(
        1 for t in harness.manager.completed if t.data is not None
    )
    return {
        "tmu_latency": tmu_latency,
        "wd_latency": wd_latency,
        "reads_done_at_detect": reads_done_at_detect,
        "checker_violations": len(checker.violations),
    }


def test_darkcorner_detection_gap(benchmark):
    outcome = run_once(benchmark, run_gap)
    gap = outcome["wd_latency"] - outcome["tmu_latency"]

    # The whole read stream had to drain before the shared timer could
    # even engage on the stuck write — the structural reason for the gap.
    assert outcome["reads_done_at_detect"] == READS
    # A silent subordinate is protocol-clean: the checker is blind here.
    assert outcome["checker_violations"] == 0
    assert outcome["tmu_latency"] < outcome["wd_latency"], outcome

    watchdog_label = f"watchdog (window {WATCHDOG_WINDOW})"
    body = "\n".join(
        [
            f"workload: 1 narrow write (muted B) + {READS} outstanding "
            f"narrow reads of {READ_BEATS} beats, AxSIZE={SIZE}, "
            f"reorder window {REORDER_DEPTH}",
            "",
            f"{'monitor':<28}{'detect latency (cycles)':>24}",
            f"{'TMU (per-transaction)':<28}{outcome['tmu_latency']:>24}",
            f"{watchdog_label:<28}{outcome['wd_latency']:>24}",
            f"{'protocol checker':<28}{'never (0 violations)':>24}",
            "",
            f"detection gap: {gap} cycles — every R beat of the "
            "unrelated reads rewound the watchdog's shared stall timer.",
        ]
    )
    report("Dark-corner detection gap: TMU vs. interface watchdog", body)
    record_json(
        "darkcorner_detection_gap",
        {
            "size": SIZE,
            "outstanding_reads": READS,
            "read_beats": READ_BEATS,
            "reorder_depth": REORDER_DEPTH,
            "watchdog_window": WATCHDOG_WINDOW,
            "tmu_detect_latency": outcome["tmu_latency"],
            "watchdog_detect_latency": outcome["wd_latency"],
            "detection_gap_cycles": gap,
            "checker_violations": outcome["checker_violations"],
        },
    )
