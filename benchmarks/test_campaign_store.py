"""Run-granular store reuse — incremental sweep harness (not in the paper).

Two measurements of `repro.orchestrate.store`:

* **Superset sweep wall-time.**  A system campaign runs cold into a
  store, then a superset of it (one extra seed) runs against the same
  store.  The superset must simulate only its frontier, so its
  wall-time collapses from "all runs" to "new runs plus lookups" —
  the incremental-reuse story, asserted at >= 5x.
* **Lookup throughput.**  Point `get`s against the hot LRU and the warm
  SQLite tier, in lookups/second — the overhead a store hit charges a
  campaign compared to the milliseconds a simulation costs.

Both land in ``BENCH_kernel.json`` under ``campaign_store_reuse``.
"""

import time

from conftest import record_json, report, run_once

from repro.orchestrate import CampaignSpec, ResultStore, run_campaign_spec
from repro.soc.experiment import FIG11_STAGES
from repro.telemetry import MetricsRegistry
from repro.tmu.config import Variant

BEATS = 250
STAGES = FIG11_STAGES[:3]
SUBSET_SEEDS = 15
SUPERSET_SEEDS = 16
LOOKUPS = 2000


def spec(seed_count):
    return CampaignSpec.system(
        (Variant.FULL,), STAGES, beats=BEATS, seeds=range(seed_count)
    )


def measure(tmp_root):
    store_dir = tmp_root / "store"
    timings = {}

    start = time.perf_counter()
    run_campaign_spec(spec(SUBSET_SEEDS), store=store_dir)
    timings["cold_subset_seconds"] = time.perf_counter() - start

    metrics = MetricsRegistry()
    start = time.perf_counter()
    superset = run_campaign_spec(
        spec(SUPERSET_SEEDS), store=store_dir, metrics=metrics
    )
    timings["warm_superset_seconds"] = time.perf_counter() - start

    start = time.perf_counter()
    cold = run_campaign_spec(spec(SUPERSET_SEEDS))
    timings["cold_superset_seconds"] = time.perf_counter() - start
    assert superset == cold  # reuse must be invisible in the results

    counters = metrics.to_dict()["counters"]

    # Lookup throughput: hot (in-process LRU), then warm (fresh view,
    # hot tier disabled so every get pays the SQLite round trip).
    runs = spec(SUBSET_SEEDS).runs()
    hot = ResultStore.open(store_dir)
    for run in runs:
        hot.get(run)  # prime the LRU
    start = time.perf_counter()
    for index in range(LOOKUPS):
        hot.get(runs[index % len(runs)])
    timings["hot_lookup_seconds"] = (time.perf_counter() - start) / LOOKUPS

    warm = ResultStore.open(store_dir, hot_capacity=0)
    start = time.perf_counter()
    for index in range(LOOKUPS):
        warm.get(runs[index % len(runs)])
    timings["warm_lookup_seconds"] = (time.perf_counter() - start) / LOOKUPS

    return timings, counters


def test_store_superset_reuse_speedup(benchmark, tmp_path):
    timings, counters = run_once(benchmark, lambda: measure(tmp_path))

    total = len(STAGES) * SUPERSET_SEEDS
    frontier = len(STAGES) * (SUPERSET_SEEDS - SUBSET_SEEDS)
    assert counters["store.frontier_runs"] == frontier
    assert counters["campaign.runs_executed"] == frontier
    assert counters["store.reused_runs"] == total - frontier

    speedup = timings["cold_superset_seconds"] / timings["warm_superset_seconds"]
    hot_rate = 1.0 / timings["hot_lookup_seconds"]
    warm_rate = 1.0 / timings["warm_lookup_seconds"]
    body = "\n".join(
        [
            f"system sweep, {len(STAGES)} stages x seeds, {BEATS} beats",
            f"cold subset  ({len(STAGES) * SUBSET_SEEDS} runs): "
            f"{1000 * timings['cold_subset_seconds']:7.1f} ms",
            f"cold superset ({total} runs): "
            f"{1000 * timings['cold_superset_seconds']:7.1f} ms",
            f"warm superset ({frontier} simulated): "
            f"{1000 * timings['warm_superset_seconds']:7.1f} ms  "
            f"({speedup:.2f}x)",
            f"store lookups: hot {hot_rate:,.0f}/s | warm {warm_rate:,.0f}/s",
        ]
    )
    report("Result store: superset-sweep reuse and lookup throughput", body)

    record_json(
        "campaign_store_reuse",
        {
            "runs_superset": total,
            "frontier_runs": frontier,
            "beats": BEATS,
            "cold_subset_seconds": timings["cold_subset_seconds"],
            "cold_superset_seconds": timings["cold_superset_seconds"],
            "warm_superset_seconds": timings["warm_superset_seconds"],
            "superset_speedup": speedup,
            "hot_lookups_per_second": hot_rate,
            "warm_lookups_per_second": warm_rate,
        },
    )

    # Acceptance bar: a one-seed-wider sweep over a warm store must be
    # at least 5x faster than running it cold (typically ~10x: 3 of 48
    # runs simulate).
    assert speedup >= 5.0
    # A store lookup must stay orders of magnitude under a simulation.
    assert timings["warm_lookup_seconds"] < 0.005
