"""Ablations — sticky bit (paper §II-G) and ID remapper (paper §II-A).

**Sticky bit.** Prescaled counters only update on prescaler edges; a
stall observed strictly *between* edges is lost without the sticky bit.
The bench replays intermittent-stall traces and reports how much stall
time each configuration registers.

**ID remapper.** The remapper compacts a wide, sparse ID space so the
OTT is sized by *live* IDs, not by ID-space width.  The bench compares
the modelled tracking-structure cost with and without remapping across
AXI ID widths.
"""

from conftest import report, run_once

from repro.analysis.report import render_series
from repro.area.gf12 import TC_BIT_UM2
from repro.area.model import estimate_area
from repro.tmu.config import Variant
from repro.tmu.counters import Prescaler, PrescaledCounter

STEP = 16
BUDGET = 256


def sticky_ablation():
    """Registered stall units for duty-cycled stalls, sticky vs not."""
    duty_cycles = [1.0, 0.5, 0.25, 0.125]
    with_sticky, without = [], []
    for duty in duty_cycles:
        period = max(1, int(1 / duty))
        counters = {
            True: PrescaledCounter(BUDGET, step=STEP, sticky=True),
            False: PrescaledCounter(BUDGET, step=STEP, sticky=False),
        }
        prescalers = {True: Prescaler(STEP), False: Prescaler(STEP)}
        for cycle in range(512):
            stalled = cycle % period == 0  # short recurring stall pulses
            for sticky, counter in counters.items():
                counter.tick(stalled, prescalers[sticky].advance())
        with_sticky.append(counters[True].count)
        without.append(counters[False].count)
    return duty_cycles, with_sticky, without


def remap_ablation():
    """Tracking cost vs AXI ID width, with and without the remapper."""
    id_widths = [2, 4, 6, 8, 10, 12]
    live_ids = 4
    per_id = 8
    with_remap, without_remap = [], []
    for width in id_widths:
        # With remapping the HT table is sized by live IDs; the remap
        # CAM costs one entry (orig-ID tag + refcount) per live ID.
        remap_cam = live_ids * (width + 6) * TC_BIT_UM2
        with_remap.append(
            estimate_area(Variant.TINY, live_ids * per_id).total_um2 + remap_cam
        )
        # Without remapping the HT table must exist for every possible
        # ID: capacity scales with 2^width even though only 4 are live.
        naive_ids = 2 ** width
        ht_entry_cost = (2 * 7 + 2) * TC_BIT_UM2  # head/tail ptrs + state
        without_remap.append(
            estimate_area(Variant.TINY, live_ids * per_id).total_um2
            + naive_ids * ht_entry_cost
        )
    return id_widths, with_remap, without_remap


def run():
    return sticky_ablation(), remap_ablation()


def test_ablation_sticky_bit(benchmark):
    (duty, with_sticky, without), (widths, remap, naive) = run_once(
        benchmark, run
    )
    body = render_series(
        "stall duty",
        duty,
        [
            ("sticky: stall units registered", with_sticky),
            ("no sticky: stall units registered", without),
        ],
        title=f"Intermittent stalls, prescale step {STEP}",
    )
    body += "\n\n" + render_series(
        "AXI ID width (bits)",
        widths,
        [
            ("with ID remapper [um^2]", remap),
            ("without (HT per raw ID) [um^2]", naive),
        ],
        title="Tracking-structure cost, 4 live IDs x 8 outstanding",
    )
    report("Ablations: sticky bit and ID remapper", body)

    # Sticky registers every intermittent stall; plain counters miss
    # everything below 100% duty.
    assert with_sticky[0] == without[0]  # continuous stall: identical
    assert all(s > 0 for s in with_sticky)
    assert all(n == 0 for n in without[1:])

    # Remapper cost is flat in ID width; the naive structure explodes.
    assert remap[-1] - remap[0] < 200
    assert naive[-1] > 10 * remap[-1]
    # At very narrow ID widths the two are comparable (within ~5%);
    # the remapper pays off as soon as the ID space outgrows the OTT.
    assert abs(naive[0] - remap[0]) / remap[0] < 0.05
    assert naive[2] > remap[2]
