"""Ablation — adaptive time budgeting vs fixed budgets (paper §II-F).

The adaptive mechanism exists "to avoid false timeouts in systems with
large bursts or burst chaining".  This bench runs identical fault-free
workloads of growing burst length under (a) the adaptive policy and
(b) a fixed-budget policy sized for short bursts, and reports the false-
timeout rate of each.

Expected shape: the adaptive policy is false-positive-free at every
burst length; the fixed policy starts failing once bursts outgrow its
budget, with a crossover between 16 and 64 beats for the chosen sizing.
"""

from conftest import report, run_once

from repro.analysis.report import render_series
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.sim.kernel import Simulator
from repro.tmu.budget import AdaptiveBudgetPolicy, FixedBudgetPolicy
from repro.tmu.config import TmuConfig, Variant
from repro.tmu.unit import TransactionMonitoringUnit

BURSTS = [1, 4, 16, 64, 256]
FIXED_BUDGET = 96


def false_timeout_rate(policy, beats, txns=4):
    config = TmuConfig(
        variant=Variant.TINY,
        budgets=policy,
        max_txn_cycles=4096,
    )
    sim = Simulator()
    host, device = AxiInterface("host"), AxiInterface("device")
    manager = Manager("manager", host)
    tmu = TransactionMonitoringUnit(
        "tmu", host, device, config, standalone_ack_after=4
    )
    subordinate = Subordinate("subordinate", device)
    for component in (manager, tmu, subordinate):
        sim.add(component)
    for i in range(txns):
        manager.submit(write_spec(0, 0x1000 * (i + 1), beats=beats))
    sim.run_until(lambda s: manager.idle, timeout=100_000)
    return tmu.faults_handled / txns


def run():
    adaptive = [
        false_timeout_rate(AdaptiveBudgetPolicy(), beats) for beats in BURSTS
    ]
    fixed = [
        false_timeout_rate(
            FixedBudgetPolicy(span_budget_cycles=FIXED_BUDGET), beats
        )
        for beats in BURSTS
    ]
    return adaptive, fixed


def test_ablation_adaptive_budget(benchmark):
    adaptive, fixed = run_once(benchmark, run)
    body = render_series(
        "burst beats",
        BURSTS,
        [
            ("adaptive false-timeout rate", adaptive),
            (f"fixed({FIXED_BUDGET}cyc) false-timeout rate", fixed),
        ],
        title="Fault-free workload; any TMU fault is a false positive",
    )
    report("Ablation: adaptive vs fixed time budgets", body)
    assert all(rate == 0.0 for rate in adaptive), adaptive
    assert fixed[0] == 0.0  # short bursts fit the fixed budget
    assert fixed[-1] > 0.0  # long bursts falsely time out
    # Crossover where burst duration outgrows the fixed budget.
    assert any(
        fixed[i] == 0.0 and fixed[i + 1] > 0.0 for i in range(len(fixed) - 1)
    )
