"""Table I — Key Design Parameters.

Regenerates the parameter table and verifies the capacity relationship
``MaxOutstdTxns = MaxUniqIDs × TxnPerUniqID`` on the paper's IP-level
sweep configurations (4 unique IDs, 1-32 transactions per ID).
"""

from conftest import report, run_once

from repro.analysis.report import render_table
from repro.tmu.config import TmuConfig


def build_table():
    rows = [
        ["MaxUniqIDs", "Number of unique Transaction IDs that can be tracked"],
        ["TxnPerUniqID", "Outstanding transactions allowed per ID"],
        ["MaxOutstdTxns", "Total outstanding transactions supported"],
    ]
    sweep = []
    for per_id in (1, 2, 4, 8, 16, 32):
        config = TmuConfig(max_uniq_ids=4, txn_per_id=per_id)
        sweep.append([4, per_id, config.max_outstanding])
    return rows, sweep


def test_table1_parameters(benchmark):
    rows, sweep = run_once(benchmark, build_table)
    body = render_table(["Parameter", "Description"], rows)
    body += "\n\n" + render_table(
        ["MaxUniqIDs", "TxnPerUniqID", "MaxOutstdTxns"],
        sweep,
        title="IP-level sweep configurations (paper §III-A1)",
    )
    report("Table I: Key Design Parameters", body)
    for max_ids, per_id, total in sweep:
        assert total == max_ids * per_id
    assert sweep[-1][2] == 128  # the paper's largest configuration
