"""Fig. 9 — IP-level fault-injection tests.

Injects the paper's six write-stage error classes (and the read-side
mirrors) on the IP-level harness for both variants, and reports the
detection latency and fault attribution.

Claims checked (§III-A3): "Phase-specific counters in the Fc solution
detect errors earlier and provide detailed performance logging ... the
Tc approach ... detects errors only after the full transaction time
budget."
"""

from conftest import report, run_once

from repro.analysis.report import render_table
from repro.faults.campaign import run_campaign
from repro.faults.types import FIG9_WRITE_STAGES, InjectionStage
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import full_config, tiny_config

BEATS = 16

READ_STAGES = (
    InjectionStage.AR_READY_MISSING,
    InjectionStage.R_VALID_MISSING,
    InjectionStage.R_MID_BURST_STALL,
    InjectionStage.R_ID_MISMATCH,
    InjectionStage.R_LAST_DROPPED,
    InjectionStage.R_READY_MISSING,
)


def budgets():
    return AdaptiveBudgetPolicy(
        PhaseBudgets(
            aw_handshake=16,
            w_entry=24,
            w_first_hs=16,
            w_data_base=8,
            w_data_per_beat=2,
            b_wait=16,
            b_handshake=24,
            ar_handshake=16,
            r_entry=24,
            r_first_hs=16,
            r_data_base=8,
            r_data_per_beat=2,
        ),
        SpanBudgets(base=104, per_beat=2),
    )


def run():
    configs = [full_config(budgets=budgets()), tiny_config(budgets=budgets())]
    stages = list(FIG9_WRITE_STAGES) + list(READ_STAGES)
    return run_campaign(configs, stages, beats=BEATS)


def test_fig9_fault_injection(benchmark):
    results = run_once(benchmark, run)
    rows = [
        [
            r.stage.value,
            r.variant,
            r.latency_from_injection,
            r.latency_from_start,
            r.fault_kind,
            r.fault_phase,
            "yes" if r.recovered else "NO",
        ]
        for r in results
    ]
    body = render_table(
        [
            "injection stage",
            "variant",
            "latency(inj)",
            "latency(start)",
            "kind",
            "attributed phase",
            "recovered",
        ],
        rows,
        title=f"{BEATS}-beat transactions, IP-level harness",
    )
    report("Fig. 9: IP-level fault injection, Fc vs Tc", body)

    by_key = {(r.variant, r.stage): r for r in results}
    span = budgets().span_budget(BEATS)  # 104 + 2*16 = 136
    for stage in list(FIG9_WRITE_STAGES) + list(READ_STAGES):
        fc = by_key[("full", stage)]
        tc = by_key[("tiny", stage)]
        assert fc.detected and tc.detected
        assert fc.recovered and tc.recovered
        # Fc attributes the correct phase; Tc only knows the whole span.
        assert fc.fault_phase == stage.expected_fc_phase.label
        assert tc.fault_phase in ("AWVALID_BRESP", "ARVALID_RLAST")
        # Tc detects at the full transaction budget (±2 observation skew).
        assert abs(tc.latency_from_start - span) <= 2
        # Fc is never slower, and strictly earlier for early-stage faults.
        assert fc.latency_from_start <= tc.latency_from_start
    early = by_key[("full", InjectionStage.AW_READY_MISSING)]
    assert early.latency_from_start <= span // 4
