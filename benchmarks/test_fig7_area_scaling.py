"""Fig. 7 — Area comparison of the four configurations (Tc/Fc ± prescaler).

Sweeps outstanding-transaction capacity 1-128 (4 unique IDs, as in the
paper's setup) for Tc, Tc+Pre(32), Fc, Fc+Pre(32) and checks the
paper's claims:

* exact published endpoints at 16/32 outstanding;
* area grows linearly with capacity;
* ordering Fc > Fc+Pre > Tc > Tc+Pre everywhere (Tc+Pre least);
* Tc ≈ 38 % of Fc on average;
* prescaler savings inside the published 18-39 % (Tc) / 19-32 % (Fc)
  bands at the published capacities.
"""

import pytest
from conftest import report, run_once

from repro.analysis.report import render_series
from repro.area.gf12 import REFERENCE_PRESCALE_STEP
from repro.area.model import estimate_area, prescaler_saving
from repro.tmu.config import Variant

CAPACITIES = [1, 2, 4, 8, 16, 32, 64, 128]


def sweep():
    series = {"Tc": [], "Tc+Pre": [], "Fc": [], "Fc+Pre": []}
    for n in CAPACITIES:
        series["Tc"].append(estimate_area(Variant.TINY, n).total_um2)
        series["Tc+Pre"].append(
            estimate_area(
                Variant.TINY, n, REFERENCE_PRESCALE_STEP, sticky=True
            ).total_um2
        )
        series["Fc"].append(estimate_area(Variant.FULL, n).total_um2)
        series["Fc+Pre"].append(
            estimate_area(
                Variant.FULL, n, REFERENCE_PRESCALE_STEP, sticky=True
            ).total_um2
        )
    savings = {
        variant: [
            prescaler_saving(v, n) * 100 for n in CAPACITIES
        ]
        for variant, v in (("Tc", Variant.TINY), ("Fc", Variant.FULL))
    }
    return series, savings


def test_fig7_area_scaling(benchmark):
    series, savings = run_once(benchmark, sweep)
    body = render_series(
        "outstanding",
        CAPACITIES,
        [(name, values) for name, values in series.items()],
        title="Area [um^2] vs outstanding transactions (GF12 model)",
    )
    body += "\n\n" + render_series(
        "outstanding",
        CAPACITIES,
        [(f"{name} saving %", values) for name, values in savings.items()],
        title=f"Prescaler (step {REFERENCE_PRESCALE_STEP}) area saving",
    )
    report("Fig. 7: Area comparison of the four TMU configurations", body)

    # Published endpoints (paper abstract / §III-A2).
    i16, i32 = CAPACITIES.index(16), CAPACITIES.index(32)
    assert series["Tc"][i16] == pytest.approx(1330.0)
    assert series["Tc"][i32] == pytest.approx(2616.0)
    assert series["Fc"][i16] == pytest.approx(3452.0)
    assert series["Fc"][i32] == pytest.approx(6787.0)

    # Ordering: Fc largest, Tc+Pre consistently the least.
    for i, n in enumerate(CAPACITIES):
        assert (
            series["Fc"][i]
            > series["Fc+Pre"][i]
            > series["Tc"][i]
            > series["Tc+Pre"][i]
        ), f"ordering broken at {n}"

    # Linearity.
    tc = series["Tc"]
    assert tc[i32] - tc[i16] == pytest.approx(2 * (tc[i16] - tc[CAPACITIES.index(8)]))

    # Tc ≈ 38 % of Fc on average.
    ratios = [series["Tc"][i] / series["Fc"][i] for i in range(len(CAPACITIES))]
    assert 0.33 < sum(ratios) / len(ratios) < 0.43

    # Savings inside the published bands at the published capacities.
    assert 18 <= savings["Tc"][i16] <= 39 and 18 <= savings["Tc"][i32] <= 39
    assert 19 <= savings["Fc"][i16] <= 32 and 19 <= savings["Fc"][i32] <= 32
