"""§III-B recovery claims — fault → sever → SLVERR → reset → resume.

The paper: "On detecting a timeout or protocol violation, the TMU raises
an interrupt and requests an external reset of the Ethernet IP.  Upon
reset completion, the TMU resumes normal monitoring to ensure continued
system stability."

This bench times every leg of that sequence on the Cheshire model and
verifies the system transmits frames normally after recovery.
"""

from conftest import report, run_once

from repro.analysis.report import render_table
from repro.soc.cheshire import CheshireSoC, system_tmu_config
from repro.tmu.config import Variant


def run_recovery(variant: Variant):
    soc = CheshireSoC(system_tmu_config(variant))
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(250)

    detect = soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
    reset_done = soc.sim.run_until(
        lambda s: soc.ethernet.resets_taken == 1 and not soc.tmu.reset_req.value,
        timeout=5_000,
    )
    resumed = soc.sim.run_until(
        lambda s: soc.tmu.state.value == "monitor", timeout=5_000
    )
    serviced = soc.sim.run_until(lambda s: len(soc.cpu.recoveries) == 1, timeout=5_000)
    aborted = soc.sim.run_until(lambda s: soc.all_idle, timeout=5_000)

    # Post-recovery health check: a second frame must transmit cleanly.
    soc.send_ethernet_frame(250)
    healthy = soc.run_until_idle(timeout=20_000)
    return {
        "variant": variant.value,
        "detect": detect,
        "reset_done": reset_done,
        "resumed": resumed,
        "irq_serviced": serviced,
        "aborts_drained": aborted,
        "second_frame_done": healthy,
        "frames_after": soc.ethernet.frames_sent,
        "faults": soc.tmu.faults_handled,
        "resets": soc.ethernet.resets_taken,
        "ok_resp": soc.dma.completed[-1].resp.name,
    }


def run_both():
    return [run_recovery(Variant.FULL), run_recovery(Variant.TINY)]


def test_system_recovery(benchmark):
    results = run_once(benchmark, run_both)
    rows = [
        [
            r["variant"],
            r["detect"],
            r["reset_done"],
            r["resumed"],
            r["irq_serviced"],
            r["second_frame_done"],
            r["resets"],
            r["ok_resp"],
        ]
        for r in results
    ]
    body = render_table(
        [
            "variant",
            "fault detected @",
            "reset complete @",
            "monitoring resumed @",
            "irq serviced @",
            "2nd frame done @",
            "resets",
            "2nd frame resp",
        ],
        rows,
        title="mute_b fault injected into a 250-beat Ethernet write",
    )
    report("System-level fault recovery sequence (paper §III-B)", body)

    for r in results:
        for leg in (
            "detect",
            "reset_done",
            "resumed",
            "irq_serviced",
            "aborts_drained",
            "second_frame_done",
        ):
            assert r[leg] is not None, f"{r['variant']}: {leg} never happened"
        assert r["detect"] <= r["reset_done"] <= r["resumed"]
        assert r["faults"] == 1
        assert r["resets"] == 1
        assert r["ok_resp"] == "OKAY"
        # The faulted frame's W data did reach the MAC (only its response
        # hung), so the MAC counts two received frames; the first was
        # answered with SLVERR toward the manager.
        assert r["frames_after"] == 2
    # Fc detects the mute_b fault earlier than Tc.
    assert results[0]["detect"] < results[1]["detect"]
