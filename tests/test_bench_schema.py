"""Schema guard for the committed benchmark record.

``benchmarks/BENCH_kernel.json`` is the ledger CI uploads and the
README quotes; a benchmark that records a malformed entry (nested
dicts, NaN, a stringified number) would silently corrupt it.  The
shape contract: a JSON object mapping benchmark name -> flat object
of finite numeric measurements.
"""

import json
import math
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_kernel.json"

# Benchmarks that must not silently vanish from the record.
EXPECTED_ENTRIES = {
    "campaign_batch_lockstep",
    "campaign_store_reuse",
    "darkcorner_detection_gap",
    "settle_dirty_vs_exhaustive",
    "stall_campaign_time_leap",
    "stall_campaign_update_skip",
    "tracer_noop_overhead",
    "update_skip_idle_fraction",
}


@pytest.fixture(scope="module")
def bench():
    assert BENCH_PATH.exists(), f"missing benchmark record {BENCH_PATH}"
    with open(BENCH_PATH) as stream:
        return json.load(stream)


def test_record_is_a_named_mapping(bench):
    assert isinstance(bench, dict) and bench
    assert all(isinstance(name, str) for name in bench)


def test_known_benchmarks_are_present(bench):
    missing = EXPECTED_ENTRIES - set(bench)
    assert not missing, f"benchmark entries disappeared: {sorted(missing)}"


def test_entries_are_flat_and_finite(bench):
    for name, entry in bench.items():
        assert isinstance(entry, dict) and entry, name
        for key, value in entry.items():
            assert isinstance(key, str), (name, key)
            assert isinstance(value, (int, float)) and not isinstance(
                value, bool
            ), f"{name}.{key} is {type(value).__name__}, want a number"
            assert math.isfinite(value), f"{name}.{key} is not finite"


def test_seconds_and_counts_are_positive(bench):
    for name, entry in bench.items():
        for key, value in entry.items():
            if key.endswith("_seconds") or key.endswith("seconds"):
                assert value > 0, f"{name}.{key} should be positive wall time"
            if key in ("runs", "cycles", "budget_cycles"):
                assert value > 0 and value == int(value), f"{name}.{key}"


def test_record_round_trips_deterministically(bench):
    # The file is machine-written with sort_keys; a hand edit that
    # breaks ordering would churn every future benchmark commit.
    on_disk = BENCH_PATH.read_text()
    assert json.dumps(bench, indent=2, sort_keys=True) + "\n" == on_disk
