"""Cache hardening: atomic writes, defensive loads, corruption recovery.

Any machine may write the shared cache directory at any time, and any
process holding it may die mid-write — so every defect a shard file can
exhibit must demote it to a cache miss (logged, re-simulated), never a
crash or a half-loaded result.
"""

import json
import logging

import pytest

from tests.conftest import fast_budgets

from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, plan_shards
from repro.orchestrate.cache import CACHE_FORMAT, ResultCache
from repro.orchestrate.executor import execute_shard
from repro.tmu.config import full_config


@pytest.fixture
def spec():
    return CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID],
        beats=4,
    )


@pytest.fixture
def populated(tmp_path, spec):
    """A cache with every shard stored, plus the shard plan and results."""
    cache = ResultCache(tmp_path, spec)
    shards = plan_shards(spec.runs())
    results = {}
    for shard in shards:
        results[shard.index] = execute_shard(shard)[1]
        cache.store_shard(shard, results[shard.index])
    return cache, shards, results


def shard_file(cache, shard):
    return cache._shard_path(shard)


# ----------------------------------------------------------------------
# Writes
# ----------------------------------------------------------------------
def test_store_leaves_no_temp_litter(populated):
    cache, _shards, _results = populated
    assert list(cache.dir.glob("*.tmp")) == []


def test_temp_litter_is_not_counted_or_loaded(populated):
    cache, shards, results = populated
    # Stale litter from a writer killed between mkstemp and replace.
    litter = cache.dir / f"{shard_file(cache, shards[0]).name}.12345.tmp"
    litter.write_text("{half a paylo")
    assert cache.completed_shards() == len(shards)
    assert cache.load_shard(shards[0]) == results[shards[0].index]


def test_store_round_trips_scheduler_stats(populated):
    cache, shards, results = populated
    loaded = cache.load_shard(shards[0])
    assert loaded == results[shards[0].index]
    for fresh, cached in zip(results[shards[0].index], loaded):
        assert cached.sim_leaps == fresh.sim_leaps
        assert cached.sim_cycles_leaped == fresh.sim_cycles_leaped


def test_overwrite_replaces_corrupt_entry(populated):
    cache, shards, results = populated
    path = shard_file(cache, shards[0])
    path.write_text("garbage")
    cache.store_shard(shards[0], results[shards[0].index])
    assert cache.load_shard(shards[0]) == results[shards[0].index]


# ----------------------------------------------------------------------
# Defensive loads: every defect is a logged miss
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "content",
    [
        "",                                        # zero bytes (crash mid-create)
        "{not json",                               # hand-corrupted
        '{"format": 2, "results": [{"trunca',      # truncated mid-write
        '["a", "list"]',                           # valid JSON, wrong shape
        '{"format": 2}',                           # missing everything
    ],
    ids=["empty", "corrupt", "truncated", "wrong-shape", "missing-keys"],
)
def test_defective_entries_are_logged_misses(populated, caplog, content):
    cache, shards, _results = populated
    shard_file(cache, shards[0]).write_text(content)
    with caplog.at_level(logging.INFO, logger="repro.orchestrate.cache"):
        assert cache.load_shard(shards[0]) is None
    assert any("re-simulating" in record.message for record in caplog.records)


def test_result_entry_that_fails_deserialization_is_a_miss(populated, caplog):
    cache, shards, _results = populated
    path = shard_file(cache, shards[0])
    payload = json.loads(path.read_text())
    del payload["results"][0]["stage"]  # schema-mangled result
    path.write_text(json.dumps(payload))
    with caplog.at_level(logging.WARNING, logger="repro.orchestrate.cache"):
        assert cache.load_shard(shards[0]) is None
    assert any("malformed" in record.message for record in caplog.records)


def test_result_count_mismatch_is_a_miss(populated):
    cache, shards, _results = populated
    path = shard_file(cache, shards[0])
    payload = json.loads(path.read_text())
    payload["results"] = payload["results"] + payload["results"]
    path.write_text(json.dumps(payload))
    assert cache.load_shard(shards[0]) is None


def test_foreign_format_version_is_a_miss(populated):
    cache, shards, _results = populated
    path = shard_file(cache, shards[0])
    payload = json.loads(path.read_text())
    payload["format"] = CACHE_FORMAT + 1
    path.write_text(json.dumps(payload))
    assert cache.load_shard(shards[0]) is None


def test_foreign_run_ids_are_a_miss(populated):
    cache, shards, _results = populated
    path = shard_file(cache, shards[0])
    payload = json.loads(path.read_text())
    payload["run_ids"] = ["ip-999999-full-other-s0"]
    path.write_text(json.dumps(payload))
    assert cache.load_shard(shards[0]) is None


def test_missing_file_is_a_silent_miss(tmp_path, spec, caplog):
    cache = ResultCache(tmp_path, spec)
    shard = plan_shards(spec.runs())[0]
    with caplog.at_level(logging.DEBUG, logger="repro.orchestrate.cache"):
        assert cache.load_shard(shard) is None
    assert not caplog.records  # a plain miss is not worth a log line


# ----------------------------------------------------------------------
# Stale tmp sweep at open
# ----------------------------------------------------------------------
def test_stale_tmp_swept_at_open(tmp_path, spec):
    import os

    from repro.orchestrate.cache import STALE_TMP_SECONDS

    namespace = tmp_path / spec.spec_hash()
    namespace.mkdir()
    stale = namespace / "shard-000000-of-000004.json.999.tmp"
    stale.write_text("{half a paylo")
    old = stale.stat().st_mtime - STALE_TMP_SECONDS - 60
    os.utime(stale, (old, old))
    ResultCache(tmp_path, spec)
    assert not stale.exists()


def test_young_tmp_spared_at_open(tmp_path, spec):
    # A young .tmp may be a live concurrent writer mid-replace; sweeping
    # it would corrupt that writer's atomic store.
    namespace = tmp_path / spec.spec_hash()
    namespace.mkdir()
    young = namespace / "shard-000001-of-000004.json.123.tmp"
    young.write_text("{in flight")
    ResultCache(tmp_path, spec)
    assert young.exists()


def test_sweep_reports_count_and_tolerates_races(tmp_path):
    import os

    from repro.orchestrate.cache import sweep_stale_tmp

    for index in range(3):
        litter = tmp_path / f"litter-{index}.tmp"
        litter.write_text("x")
        old = litter.stat().st_mtime - 7200
        os.utime(litter, (old, old))
    (tmp_path / "keep.json").write_text("{}")
    assert sweep_stale_tmp(tmp_path) == 3
    assert sweep_stale_tmp(tmp_path) == 0
    assert (tmp_path / "keep.json").exists()
