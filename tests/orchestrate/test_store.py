"""Result-store hardening: tiers, concurrency, corruption, migration.

The store is shared infrastructure — many campaigns, many processes,
any of which may die mid-write — so the battery here mirrors the cache
battery one level down: every defect a row or a database file can
exhibit must demote to a logged, run-granular miss (re-simulated,
repaired), never a crash, a wrong result, or a wedged store.
"""

import dataclasses
import json
import logging
import multiprocessing
import sqlite3

import pytest

from tests.conftest import fast_budgets

from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, ResultStore, plan_shards
from repro.orchestrate.cache import ResultCache
from repro.orchestrate.executor import execute_shard
from repro.orchestrate.store import DB_NAME, STORE_FORMAT
from repro.telemetry import MetricsRegistry
from repro.tmu.config import full_config, tiny_config


@pytest.fixture
def spec():
    return CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID],
        beats=4,
        seeds=(0, 1),
    )


@pytest.fixture
def executed(spec):
    """The spec's runs plus their simulated results, in canonical order."""
    runs = spec.runs()
    results = []
    for shard in plan_shards(runs):
        results.extend(execute_shard(shard)[1])
    return runs, results


@pytest.fixture
def populated(tmp_path, executed):
    """A store holding every result of the executed spec."""
    store = ResultStore.open(tmp_path / "store")
    runs, results = executed
    for run, result in zip(runs, results):
        assert store.put(run, result)
    return store, runs, results


def corrupt_row(store, key, **columns):
    """Rewrite one warm row in place (simulating on-disk damage)."""
    sets = ", ".join(f"{name}=?" for name in columns)
    with store._db:
        store._db.execute(
            f"UPDATE results SET {sets} WHERE param_key=?",
            (*columns.values(), key),
        )


def fresh_view(store):
    """Reopen the same store directory with an empty hot tier."""
    return ResultStore.open(store.root, metrics=MetricsRegistry())


# ----------------------------------------------------------------------
# Tiers
# ----------------------------------------------------------------------
def test_round_trip_preserves_results_exactly(populated):
    store, runs, results = populated
    for run, result in zip(runs, results):
        assert store.get(run) == result


def test_warm_tier_survives_reopen(populated):
    store, runs, results = populated
    view = fresh_view(store)
    for run, result in zip(runs, results):
        assert view.get(run) == result
    counters = view.metrics.to_dict()["counters"]
    assert counters["store.warm_hit"] == len(runs)
    assert "store.hot_hit" not in counters


def test_hot_tier_serves_repeats(populated):
    store, runs, results = populated
    store.metrics = MetricsRegistry()
    assert store.get(runs[0]) == results[0]
    counters = store.metrics.to_dict()["counters"]
    assert counters == {"store.hot_hit": 1}


def test_scheduler_stats_round_trip(populated):
    store, runs, results = populated
    view = fresh_view(store)
    for run, fresh in zip(runs, results):
        loaded = view.get(run)
        assert loaded.sim_leaps == fresh.sim_leaps
        assert loaded.sim_cycles_leaped == fresh.sim_cycles_leaped


def test_lru_evicts_but_warm_backstops(tmp_path, executed):
    runs, results = executed
    store = ResultStore.open(
        tmp_path / "store", hot_capacity=1, metrics=MetricsRegistry()
    )
    for run, result in zip(runs, results):
        store.put(run, result)
    assert len(store._hot) == 1
    # Every run still resolves — through the warm tier, not the LRU.
    for run, result in zip(runs, results):
        assert store.get(run) == result
    counters = store.metrics.to_dict()["counters"]
    assert counters["store.warm_hit"] + counters.get("store.hot_hit", 0) == len(runs)


def test_zero_hot_capacity_is_valid(tmp_path, executed):
    runs, results = executed
    store = ResultStore.open(tmp_path / "store", hot_capacity=0)
    store.put(runs[0], results[0])
    assert store._hot == {}
    assert store.get(runs[0]) == results[0]


def test_param_key_ignores_campaign_index(spec):
    """The same parameters hash identically from different campaigns."""
    wider = CampaignSpec.ip(
        [tiny_config(budgets=fast_budgets()), full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID],
        beats=4,
        seeds=(0, 1, 2),
    )
    narrow_keys = {run.param_key(): run.run_id for run in spec.runs()}
    wide_keys = {run.param_key(): run.run_id for run in wider.runs()}
    shared = set(narrow_keys) & set(wide_keys)
    # Every narrow run reappears in the superset under the same key,
    # even though its run_id (campaign-local index) differs.
    assert shared == set(narrow_keys)
    assert any(narrow_keys[key] != wide_keys[key] for key in shared)


def test_miss_returns_none_and_counts(tmp_path, spec):
    store = ResultStore.open(tmp_path / "store", metrics=MetricsRegistry())
    assert store.get(spec.runs()[0]) is None
    assert store.metrics.to_dict()["counters"] == {"store.miss": 1}


def test_iter_results_streams_in_order(populated):
    store, runs, results = populated
    assert list(store.iter_results(runs)) == results
    assert list(store.iter_results(list(reversed(runs)))) == list(
        reversed(results)
    )


def test_iter_results_raises_on_gap(populated, spec):
    store, runs, _results = populated
    stranger = dataclasses.replace(runs[0], seed=99)
    with pytest.raises(KeyError):
        list(store.iter_results([runs[0], stranger]))


# ----------------------------------------------------------------------
# First-result-wins
# ----------------------------------------------------------------------
def test_duplicate_put_keeps_first(populated):
    store, runs, results = populated
    impostor = dataclasses.replace(results[0], inject_cycle=123456)
    assert store.put(runs[0], impostor) is False
    assert fresh_view(store).get(runs[0]) == results[0]


def _racing_writer(root, runs, results, tag, wins):
    """Child process: put a tagged variant of every result."""
    store = ResultStore.open(root)
    for run, result in zip(runs, results):
        tagged = dataclasses.replace(result, inject_cycle=tag)
        if store.put(run, tagged):
            wins.append((run.param_key(), tag))


def test_two_processes_first_result_wins(tmp_path, executed):
    """Two writers race every key of a shared store; exactly one wins each."""
    runs, results = executed
    root = tmp_path / "store"
    ResultStore.open(root).close()  # create schema before the race
    context = multiprocessing.get_context("fork")
    with multiprocessing.Manager() as manager:
        wins = manager.list()
        writers = [
            context.Process(
                target=_racing_writer, args=(root, runs, results, tag, wins)
            )
            for tag in (1001, 2002)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        wins = list(wins)
    # Exactly one insert won per key, and the surviving row is the
    # winner's payload, untorn.
    assert len(wins) == len(runs)
    winner_by_key = dict(wins)
    assert len(winner_by_key) == len(runs)
    store = ResultStore.open(root)
    for run in runs:
        assert store.get(run).inject_cycle == winner_by_key[run.param_key()]


# ----------------------------------------------------------------------
# Row-granular corruption: logged miss, then repair
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "damage",
    [
        {"payload": '{"truncated'},
        {"payload": '"not a dict"'},
        {"payload": "{}"},
        {"format": STORE_FORMAT + 1},
        {"format": 0},
    ],
    ids=["truncated", "wrong-shape", "empty-dict", "future-format", "foreign-format"],
)
def test_defective_row_is_logged_miss(populated, caplog, damage):
    store, runs, results = populated
    corrupt_row(store, runs[0].param_key(), **damage)
    view = fresh_view(store)
    with caplog.at_level(logging.WARNING, logger="repro.orchestrate.store"):
        assert view.get(runs[0]) is None
    assert caplog.records, "defective row must be logged"
    counters = view.metrics.to_dict()["counters"]
    assert counters["store.corrupt"] == 1
    assert counters["store.miss"] == 1
    # Other rows are untouched...
    assert view.get(runs[1]) == results[1]
    # ...and the defective key is evicted, so a re-simulation repairs it.
    assert view.put(runs[0], results[0]) is True
    assert fresh_view(store).get(runs[0]) == results[0]


def test_wholly_corrupt_database_is_moved_aside(tmp_path, executed, caplog):
    runs, results = executed
    root = tmp_path / "store"
    root.mkdir()
    (root / DB_NAME).write_bytes(b"this is not a sqlite file at all")
    with caplog.at_level(logging.WARNING, logger="repro.orchestrate.store"):
        store = ResultStore.open(root)
    assert (root / "store.sqlite.corrupt").exists()
    assert any("unusable" in record.message for record in caplog.records)
    store.put(runs[0], results[0])
    assert fresh_view(store).get(runs[0]) == results[0]


def test_future_schema_version_is_refused_then_recovered(tmp_path):
    root = tmp_path / "store"
    ResultStore.open(root).close()
    db = sqlite3.connect(root / DB_NAME)
    db.execute("PRAGMA user_version=99")
    db.close()
    # A future schema is hopeless for this reader: moved aside, fresh start.
    store = ResultStore.open(root)
    assert (root / "store.sqlite.corrupt").exists()
    assert store.stats()["warm_rows"] == 0


def test_stale_tmp_litter_swept_at_open(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    stale = root / "shard-000001.json.4242.tmp"
    stale.write_text("{half a")
    import os

    old = stale.stat().st_mtime - 7200
    os.utime(stale, (old, old))
    young = root / "inflight.tmp"
    young.write_text("{live writer}")
    ResultStore.open(root)
    assert not stale.exists(), "stale tmp litter must be swept at open"
    assert young.exists(), "young tmp files may be live concurrent writers"


# ----------------------------------------------------------------------
# Cold tier: read-through over shard-JSON caches
# ----------------------------------------------------------------------
@pytest.fixture
def cold_cache(tmp_path, spec, executed):
    """A shard cache populated the way a real campaign writes it."""
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir, spec)
    runs, results = executed
    for shard in plan_shards(runs):
        cache.store_shard(shard, [results[run.index] for run in shard.runs])
    return cache_dir


def test_cold_tier_read_through(tmp_path, executed, cold_cache):
    runs, results = executed
    store = ResultStore.open(
        tmp_path / "store", cold_roots=(cold_cache,), metrics=MetricsRegistry()
    )
    for run, result in zip(runs, results):
        assert store.get(run) == result
    counters = store.metrics.to_dict()["counters"]
    assert counters["store.cold_hit"] == len(runs)
    # Promotion: a fresh view (no cold roots) now warm-hits everything.
    view = fresh_view(store)
    for run, result in zip(runs, results):
        assert view.get(run) == result
    assert view.metrics.to_dict()["counters"]["store.warm_hit"] == len(runs)


def test_cold_tier_ignores_foreign_format(tmp_path, executed, cold_cache):
    runs, _results = executed
    for shard_file in cold_cache.glob("*/shard-*.json"):
        payload = json.loads(shard_file.read_text())
        payload["format"] = 999
        shard_file.write_text(json.dumps(payload))
    store = ResultStore.open(
        tmp_path / "store", cold_roots=(cold_cache,), metrics=MetricsRegistry()
    )
    assert store.get(runs[0]) is None
    assert store.metrics.to_dict()["counters"]["store.miss"] == 1


def test_cold_tier_survives_unreadable_namespace(tmp_path, executed, cold_cache):
    runs, results = executed
    (cold_cache / "not-a-campaign").mkdir()
    (cold_cache / "not-a-campaign" / "spec.json").write_text("{broken")
    store = ResultStore.open(tmp_path / "store", cold_roots=(cold_cache,))
    assert store.get(runs[0]) == results[0]


def test_cold_tier_mismatched_plan_is_safe_miss(tmp_path, executed, cold_cache):
    """A shard file whose run_ids disagree with the derived plan misses."""
    runs, _results = executed
    target = sorted(cold_cache.glob("*/shard-*.json"))[0]
    payload = json.loads(target.read_text())
    payload["run_ids"] = ["someone-else-entirely"] * len(payload["run_ids"])
    target.write_text(json.dumps(payload))
    store = ResultStore.open(tmp_path / "store", cold_roots=(cold_cache,))
    assert store.get(runs[0]) is None


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
def test_migrate_imports_every_run(tmp_path, executed, cold_cache):
    runs, results = executed
    store = ResultStore.open(tmp_path / "store")
    outcome = store.migrate_cache(cold_cache)
    assert outcome == {"imported": len(runs), "skipped": 0}
    view = fresh_view(store)
    for run, result in zip(runs, results):
        assert view.get(run) == result


def test_migrate_is_idempotent(tmp_path, executed, cold_cache):
    runs, _results = executed
    store = ResultStore.open(tmp_path / "store")
    assert store.migrate_cache(cold_cache)["imported"] == len(runs)
    assert store.migrate_cache(cold_cache) == {
        "imported": 0, "skipped": len(runs)
    }


def test_migrate_skips_malformed_entries(tmp_path, executed, cold_cache, caplog):
    runs, _results = executed
    target = sorted(cold_cache.glob("*/shard-*.json"))[0]
    payload = json.loads(target.read_text())
    dropped = len(payload["results"])
    payload["results"] = [{"nonsense": True} for _ in payload["results"]]
    target.write_text(json.dumps(payload))
    store = ResultStore.open(tmp_path / "store")
    with caplog.at_level(logging.WARNING, logger="repro.orchestrate.store"):
        outcome = store.migrate_cache(cold_cache)
    assert outcome["imported"] == len(runs) - dropped
    assert any("malformed" in record.message for record in caplog.records)


def test_stats_reports_tiers(populated, cold_cache):
    store, runs, _results = populated
    store.add_cold_root(cold_cache)
    assert store.index_cold() == len(runs)
    stats = store.stats()
    assert stats["warm_rows"] == len(runs)
    assert stats["format"] == STORE_FORMAT
    assert stats["cold_indexed_runs"] == len(runs)
    assert str(cold_cache) in stats["cold_roots"]
