"""Unit tests for campaign specs, run enumeration, hashing and shards."""

import pytest

from repro.faults.types import FIG9_WRITE_STAGES, InjectionStage
from repro.orchestrate import (
    CampaignSpec,
    SpecSerializationError,
    config_from_dict,
    config_to_dict,
    plan_shards,
    result_from_dict,
    result_to_dict,
)
from repro.soc.experiment import FIG11_STAGES, SystemInjectionResult
from repro.faults.campaign import InjectionResult
from repro.tmu.budget import AdaptiveBudgetPolicy, FixedBudgetPolicy
from repro.tmu.config import Variant, full_config, tiny_config


def ip_spec(**kwargs):
    kwargs.setdefault("beats", 4)
    return CampaignSpec.ip(
        [full_config(), tiny_config()],
        [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID],
        **kwargs,
    )


# ----------------------------------------------------------------------
# Config serialization
# ----------------------------------------------------------------------
def test_config_round_trip_adaptive():
    config = full_config(prescale_step=4, max_txn_cycles=128)
    assert config_to_dict(config_from_dict(config_to_dict(config))) == (
        config_to_dict(config)
    )


def test_config_round_trip_fixed_budgets():
    config = tiny_config(budgets=FixedBudgetPolicy(32, span_budget_cycles=48))
    restored = config_from_dict(config_to_dict(config))
    assert isinstance(restored.budgets, FixedBudgetPolicy)
    assert restored.budgets.span_budget(beats=200) == 48


def test_custom_budget_policy_rejected():
    class Custom(AdaptiveBudgetPolicy):
        pass

    with pytest.raises(SpecSerializationError):
        config_to_dict(full_config(budgets=Custom()))


def test_unserializable_harness_kwargs_rejected():
    with pytest.raises(SpecSerializationError):
        ip_spec(harness_kwargs={"callback": lambda: None})


# ----------------------------------------------------------------------
# Run enumeration and identity
# ----------------------------------------------------------------------
def test_runs_enumerate_config_major_stage_then_seed():
    spec = ip_spec(seeds=(0, 1))
    runs = spec.runs()
    assert len(runs) == 2 * 2 * 2
    assert [run.index for run in runs] == list(range(8))
    # config-major nesting: first half full, second half tiny.
    assert [run.config["variant"] for run in runs] == ["full"] * 4 + ["tiny"] * 4
    # then stage, then seed.
    assert [run.stage for run in runs[:4]] == [
        "aw_stage_error", "aw_stage_error",
        "wlast_bvalid_error", "wlast_bvalid_error",
    ]
    assert [run.seed for run in runs[:4]] == [0, 1, 0, 1]


def test_run_ids_unique_and_stable():
    ids_a = [run.run_id for run in ip_spec(seeds=(0, 1)).runs()]
    ids_b = [run.run_id for run in ip_spec(seeds=(0, 1)).runs()]
    assert ids_a == ids_b
    assert len(set(ids_a)) == len(ids_a)
    assert ids_a[0] == "ip-000000-full-aw_stage_error-s0"


def test_spec_hash_stable_and_parameter_sensitive():
    assert ip_spec().spec_hash() == ip_spec().spec_hash()
    assert ip_spec().spec_hash() != ip_spec(beats=8).spec_hash()
    assert ip_spec().spec_hash() != ip_spec(seeds=(0, 1)).spec_hash()
    system = CampaignSpec.system((Variant.FULL,), FIG11_STAGES)
    assert system.spec_hash() != ip_spec().spec_hash()


def test_spec_requires_nonempty_axes():
    with pytest.raises(ValueError):
        CampaignSpec.ip([], FIG9_WRITE_STAGES)
    with pytest.raises(ValueError):
        CampaignSpec.ip([full_config()], [])


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
def test_plan_shards_partitions_in_order():
    runs = ip_spec(seeds=(0, 1)).runs()  # 8 runs
    shards = plan_shards(runs, shard_size=3)
    assert [shard.index for shard in shards] == [0, 1, 2]
    assert all(shard.count == 3 for shard in shards)
    assert [len(shard.runs) for shard in shards] == [3, 3, 2]
    flattened = [run for shard in shards for run in shard.runs]
    assert flattened == runs


def test_plan_shards_default_one_run_per_shard():
    runs = ip_spec().runs()
    shards = plan_shards(runs)
    assert len(shards) == len(runs)
    assert all(len(shard.runs) == 1 for shard in shards)


def test_plan_shards_rejects_bad_size():
    with pytest.raises(ValueError):
        plan_shards(ip_spec().runs(), shard_size=0)


# ----------------------------------------------------------------------
# Result round trips
# ----------------------------------------------------------------------
def test_ip_result_round_trip():
    result = InjectionResult(
        stage=InjectionStage.WLAST_TO_BVALID,
        variant="full",
        txn_start_cycle=3,
        inject_cycle=10,
        detect_cycle=42,
        fault_kind="timeout",
        fault_phase="WLAST_BVLD",
        recovered=True,
        resets_taken=1,
    )
    assert result_from_dict(result_to_dict(result)) == result


def test_system_result_round_trip():
    result = SystemInjectionResult(
        stage=InjectionStage.DATA_TRANSFER_STALL,
        variant="tiny",
        txn_start_cycle=7,
        inject_cycle=130,
        w_first_cycle=12,
        detect_cycle=340,
        fault_phase=None,
        fault_kind="timeout",
        ethernet_resets=1,
        cpu_recoveries=1,
        recovered=True,
    )
    restored = result_from_dict(result_to_dict(result))
    assert restored == result
    assert restored.fig11_latency == result.fig11_latency
