"""ProgressReporter ETA accounting.

The estimate must extrapolate from the runs that actually consumed
wall-clock — weighted by runs (not shards, which vary in size), and
excluding both cache hits and lanes the batch executor derived without
simulating.  Either class of free run projected into the rate would
under-report the time remaining for the genuinely simulated work.
"""

import io

from repro.orchestrate import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_reporter(total):
    clock = FakeClock()
    return ProgressReporter(total, stream=io.StringIO(), clock=clock), clock


def test_eta_weighted_by_runs_not_shards():
    reporter, clock = make_reporter(10)
    # Two shards of very different sizes, completing out of order: the
    # rate must come from the 4 runs done, not from "2 of N shards".
    clock.advance(4.0)
    reporter.shard_done(3)
    clock.advance(1.0)
    reporter.shard_done(1)
    # 4 runs in 5s -> 1.25 s/run; 6 remaining -> 7.5s.
    assert reporter.eta_seconds() == 7.5


def test_cached_runs_do_not_skew_eta():
    reporter, clock = make_reporter(8)
    reporter.shard_done(4, cached=True)  # instant, free
    clock.advance(6.0)
    reporter.shard_done(2)
    # 2 executed runs in 6s -> 3 s/run; 2 remaining -> 6s.
    assert reporter.eta_seconds() == 6.0


def test_derived_runs_do_not_skew_eta():
    reporter, clock = make_reporter(64)
    # A 32-lane pack: one leader simulated, 31 lanes derived for free.
    reporter.runs_derived(31)
    clock.advance(10.0)
    reporter.shard_done(32)
    # 1 simulated run in 10s; 32 remaining -> 320s.  Counting the 31
    # derived lanes as executed would claim ~10s instead.
    assert reporter.eta_seconds() == 320.0
    assert reporter.derived == 31


def test_eta_unknowable_before_any_simulated_run():
    reporter, clock = make_reporter(16)
    reporter.runs_derived(7)
    reporter.shard_done(8, cached=True)
    clock.advance(3.0)
    assert reporter.eta_seconds() is None


def test_eta_zero_when_done():
    reporter, clock = make_reporter(2)
    clock.advance(1.0)
    reporter.shard_done(2)
    assert reporter.eta_seconds() == 0.0


def test_render_and_finish_stream_shape():
    reporter, clock = make_reporter(4)
    clock.advance(2.0)
    reporter.shard_done(2)
    reporter.set_status("batch: 1 pack(s)")
    reporter.finish()
    text = reporter.stream.getvalue()
    assert "2/4 runs" in text
    assert "batch: 1 pack(s)" in text
    assert text.endswith("\n")


# ----------------------------------------------------------------------
# Edge cases: empty campaigns, rate-window races, live status
# ----------------------------------------------------------------------
def test_zero_run_campaign_final_line_is_sane():
    # An empty stage filter produces a 0-run campaign; the final line
    # must read as vacuously complete, not divide by zero or show NaN.
    reporter, clock = make_reporter(0)
    reporter.finish()
    text = reporter.stream.getvalue()
    assert "0/0 runs (100.0%)" in text
    assert "nan" not in text.lower()
    assert reporter.eta_seconds() == 0.0


def test_eta_never_negative_when_derived_outpaces_done():
    # The batch executor flags derived lanes *before* their shard
    # reports done, so mid-pack executed = done - cached - derived can
    # dip below zero.  That window has no rate information — eta must
    # be None, never a negative projection.
    reporter, clock = make_reporter(64)
    reporter.runs_derived(31)
    clock.advance(5.0)
    assert reporter.eta_seconds() is None
    reporter.shard_done(32)  # the pack lands; executed is positive again
    eta = reporter.eta_seconds()
    assert eta is not None and eta >= 0.0


def test_eta_clamped_against_clock_regression():
    # A non-monotonic clock hiccup must surface as eta 0, not eta -0.3s.
    reporter, clock = make_reporter(8)
    reporter.shard_done(4)
    clock.now = -1.0
    eta = reporter.eta_seconds()
    assert eta is not None and eta == 0.0


def test_set_status_renders_immediately():
    reporter, clock = make_reporter(10)
    assert reporter.stream.getvalue() == ""
    reporter.set_status("2 worker(s)")
    text = reporter.stream.getvalue()
    # One redraw happened without waiting for a shard completion…
    assert "2 worker(s)" in text
    assert "0/10 runs" in text
    # …and the next shard keeps the status segment on the line.
    reporter.shard_done(1)
    assert reporter.stream.getvalue().count("2 worker(s)") == 2
