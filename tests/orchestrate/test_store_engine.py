"""Engine x store integration: frontier execution and byte-identity.

The acceptance bar for run-granular reuse: a sweep that supersets an
earlier one simulates *only* its frontier (asserted by counting actual
simulations), and the campaign JSON it exports — scheduler statistics
included — is byte-for-byte what an uninterrupted cold run produces.
"""

import io

import pytest

from tests.conftest import fast_budgets

from repro.analysis.export import campaign_dict, to_json, write_campaign_json
from repro.faults.campaign import run_campaign
from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, ResultStore, run_campaign_spec
from repro.orchestrate import executor as executor_module
from repro.soc.experiment import FIG11_STAGES, run_fig11
from repro.telemetry import MetricsRegistry
from repro.tmu.config import Variant, full_config, tiny_config

FIG9_SUBSET = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.WLAST_TO_BVALID,
)


def fig9_configs():
    return [full_config(budgets=fast_budgets()), tiny_config(budgets=fast_budgets())]


@pytest.fixture
def simulated(monkeypatch):
    """Count every actual simulation, without changing any result."""
    calls = []
    real = executor_module.execute_run

    def counting(run, trace=None):
        calls.append(run.run_id)
        return real(run, trace)

    monkeypatch.setattr(executor_module, "execute_run", counting)
    return calls


def fig11_spec(seeds):
    return CampaignSpec.system(
        (Variant.FULL, Variant.TINY), FIG11_STAGES, seeds=seeds
    )


def flatten(series):
    """run_fig11's per-variant dict back to canonical flat run order."""
    return series[Variant.FULL.value] + series[Variant.TINY.value]


def test_fig11_superset_simulates_only_frontier(tmp_path, simulated):
    """Fig. 11, then the same sweep +2 seeds: only the new runs simulate."""
    store = tmp_path / "store"
    run_fig11(seeds=(0,), store=store)
    first = len(simulated)
    assert first == 2 * len(FIG11_STAGES)

    simulated.clear()
    metrics = MetricsRegistry()
    superset = run_fig11(seeds=(0, 1, 2), store=store, metrics=metrics)
    frontier = 2 * len(FIG11_STAGES) * 2  # the two new seeds, both variants
    assert len(simulated) == frontier
    assert all(run_id.endswith(("-s1", "-s2")) for run_id in simulated)
    counters = metrics.to_dict()["counters"]
    assert counters["store.frontier_runs"] == frontier
    assert counters["campaign.runs_executed"] == frontier
    assert counters["store.reused_runs"] == first

    # Byte-identity against a cold, storeless run — scheduler stats and
    # all, through both the dict exporter and the streamed writer.
    cold = run_fig11(seeds=(0, 1, 2))
    spec = fig11_spec((0, 1, 2))
    expected = to_json(campaign_dict(flatten(cold), spec=spec))
    assert to_json(campaign_dict(flatten(superset), spec=spec)) == expected
    stream = io.StringIO()
    write_campaign_json(flatten(superset), stream, spec=spec)
    assert stream.getvalue() == expected


def test_identical_rerun_has_empty_frontier(tmp_path, simulated):
    kwargs = dict(beats=4, seeds=(0, 1), store=tmp_path / "store")
    first = run_campaign(fig9_configs(), FIG9_SUBSET, **kwargs)
    simulated.clear()
    metrics = MetricsRegistry()
    second = run_campaign(fig9_configs(), FIG9_SUBSET, metrics=metrics, **kwargs)
    assert simulated == []
    assert second == first
    counters = metrics.to_dict()["counters"]
    assert counters["store.frontier_runs"] == 0
    assert counters["store.reused_runs"] == len(first)


def test_overlap_across_different_campaign_shapes(tmp_path, simulated):
    """Reuse crosses campaign boundaries, not just seed extensions."""
    store = tmp_path / "store"
    narrow = run_campaign(
        [full_config(budgets=fast_budgets())], FIG9_SUBSET, beats=4, store=store
    )
    simulated.clear()
    wide = run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, store=store)
    # Only the tiny-variant half is new; the full-variant half is reused
    # even though its run_ids (campaign-local indices) differ.
    assert len(simulated) == len(FIG9_SUBSET)
    assert wide[: len(FIG9_SUBSET)] == narrow


def test_store_with_cache_writes_both_substrates(tmp_path, simulated):
    cache = tmp_path / "cache"
    store = tmp_path / "store"
    kwargs = dict(beats=4, cache_dir=cache, store=store)
    first = run_campaign(fig9_configs(), FIG9_SUBSET, **kwargs)
    # The cache namespace is complete despite frontier-planned shards,
    # so --resume keeps working with the store in play.
    namespaces = list(cache.iterdir())
    assert len(namespaces) == 1
    shard_files = list(namespaces[0].glob("shard-*.json"))
    assert len(shard_files) == len(first)  # shard_size=1
    # A cache-only re-run (no store) hits every shard.
    simulated.clear()
    assert run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, cache_dir=cache) == first
    assert simulated == []
    # A store-only re-run (no cache) warm-hits every run.
    simulated.clear()
    assert run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, store=store) == first
    assert simulated == []


def test_cache_hits_promote_into_store(tmp_path, simulated):
    cache = tmp_path / "cache"
    first = run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, cache_dir=cache)
    # Re-run with a fresh store alongside the warm cache: zero
    # simulation, and the store comes out fully populated.
    simulated.clear()
    store = tmp_path / "store"
    second = run_campaign(
        fig9_configs(), FIG9_SUBSET, beats=4, cache_dir=cache, store=store
    )
    assert simulated == [] and second == first
    third = run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, store=store)
    assert simulated == [] and third == first


def test_workers_with_store_equal_serial(tmp_path):
    store = tmp_path / "store"
    spec = CampaignSpec.ip(fig9_configs(), FIG9_SUBSET, beats=4, seeds=(0, 1))
    serial = run_campaign_spec(spec)
    sharded = run_campaign_spec(spec, workers=4, store=store)
    assert sharded == serial
    # And the parallel run's store holds every result.
    reopened = ResultStore.open(store)
    assert list(reopened.iter_results(spec.runs())) == serial


def test_collect_false_streams_through_store(tmp_path):
    spec = CampaignSpec.ip(fig9_configs(), FIG9_SUBSET, beats=4)
    expected = to_json(campaign_dict(run_campaign_spec(spec), spec=spec))
    store = ResultStore.open(tmp_path / "store")
    assert run_campaign_spec(spec, store=store, collect=False) is None
    stream = io.StringIO()
    write_campaign_json(
        lambda: store.iter_results(spec.runs()), stream, spec=spec
    )
    assert stream.getvalue() == expected


def test_collect_false_requires_store():
    spec = CampaignSpec.ip(fig9_configs(), FIG9_SUBSET[:1], beats=4)
    with pytest.raises(ValueError, match="store"):
        run_campaign_spec(spec, collect=False)
