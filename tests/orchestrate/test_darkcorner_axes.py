"""The dark-corner sweep axes (size / outstanding / reorder_depth)
threaded through the orchestration engine.

The guarantees mirror the engine's headline ones: the axes are part of
every run's identity (param hash, batch pack key, spec hash), and a
campaign swept over them returns byte-identical measurements whatever
the executor — serial, process pool, lockstep batch — and whatever the
kernel strategy (``dirty``/``verify``).  Scheduler diagnostics
(``sim_leaps``/``sim_cycles_leaped``) are ``compare=False`` fields and
are excluded from the byte-identity claim, as everywhere else.
"""

import json

from tests.conftest import fast_budgets

from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, ResultStore, run_campaign_spec
from repro.orchestrate.batch import BatchExecutor
from repro.orchestrate.serialize import result_to_dict
from repro.telemetry import MetricsRegistry
from repro.tmu.config import full_config

STAGES = (InjectionStage.AW_READY_MISSING, InjectionStage.DATA_TRANSFER_STALL)

AXES = dict(size=1, outstanding=3, reorder_depth=2)


def axes_spec(seeds=(0, 1), harness_kwargs=None, **overrides):
    params = dict(AXES, **overrides)
    return CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        STAGES,
        beats=4,
        seeds=seeds,
        harness_kwargs=harness_kwargs,
        **params,
    )


def measurement_json(results):
    """Canonical JSON of the results minus scheduler diagnostics."""
    payload = []
    for result in results:
        data = result_to_dict(result)
        payload.append(
            {k: v for k, v in data.items() if not k.startswith("sim_")}
        )
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# Identity: the axes distinguish runs everywhere they must
# ----------------------------------------------------------------------
def test_axes_are_part_of_run_identity():
    base = axes_spec().runs()[0]
    for field in ("size", "outstanding", "reorder_depth"):
        varied = axes_spec(**{field: getattr(base, field) + 1}).runs()[0]
        assert varied.param_key() != base.param_key(), field
        assert (
            BatchExecutor._batch_key(varied) != BatchExecutor._batch_key(base)
        ), field


def test_axes_change_the_spec_hash():
    hashes = {
        axes_spec().spec_hash(),
        axes_spec(size=0).spec_hash(),
        axes_spec(outstanding=1).spec_hash(),
        axes_spec(reorder_depth=0).spec_hash(),
    }
    assert len(hashes) == 4


def test_axes_survive_the_canonical_dict():
    canonical = axes_spec().canonical_dict()
    assert canonical["size"] == 1
    assert canonical["outstanding"] == 3
    assert canonical["reorder_depth"] == 2


# ----------------------------------------------------------------------
# Byte-identity across executors and kernel strategies
# ----------------------------------------------------------------------
def test_axes_campaign_identical_across_executors_and_strategies():
    serial = run_campaign_spec(axes_spec())
    reference = measurement_json(serial)
    assert all(result.detected and result.recovered for result in serial)

    pooled = run_campaign_spec(axes_spec(), workers=2)
    assert measurement_json(pooled) == reference

    batched = run_campaign_spec(axes_spec(), batch_lanes=4)
    assert measurement_json(batched) == reference

    verified = run_campaign_spec(
        axes_spec(harness_kwargs={"sim_strategy": "verify"})
    )
    assert measurement_json(verified) == reference
    # Dataclass equality (which already excludes the diagnostics) agrees.
    assert verified == serial


def test_batch_verify_holds_on_dark_corner_lanes():
    """Every derived lane of an axes sweep replays clean on the scalar
    verify kernel — the batch executor's own divergence check."""
    results = run_campaign_spec(
        axes_spec(seeds=(0, 1, 2)), batch_lanes=4, batch_verify=True
    )
    assert measurement_json(results) == measurement_json(
        run_campaign_spec(axes_spec(seeds=(0, 1, 2)))
    )


# ----------------------------------------------------------------------
# Result store: the axes partition the cache, frontier math holds
# ----------------------------------------------------------------------
def test_store_never_conflates_axis_points(tmp_path):
    store = ResultStore(tmp_path)
    metrics = MetricsRegistry()
    run_campaign_spec(axes_spec(), store=store, metrics=metrics)
    counters = metrics.to_dict()["counters"]
    assert counters["store.frontier_runs"] == 4
    assert counters["store.reused_runs"] == 0

    # A different reorder depth is a different experiment: full frontier.
    metrics = MetricsRegistry()
    run_campaign_spec(
        axes_spec(reorder_depth=0), store=store, metrics=metrics
    )
    counters = metrics.to_dict()["counters"]
    assert counters["store.frontier_runs"] == 4
    assert counters["store.reused_runs"] == 0


def test_store_reuses_axis_points_across_seed_supersets(tmp_path):
    store = ResultStore(tmp_path)
    first = run_campaign_spec(axes_spec(seeds=(0, 1)), store=store)

    metrics = MetricsRegistry()
    superset = run_campaign_spec(
        axes_spec(seeds=(0, 1, 2)), store=store, metrics=metrics
    )
    counters = metrics.to_dict()["counters"]
    assert counters["store.reused_runs"] == len(first)
    assert counters["store.frontier_runs"] == len(superset) - len(first)
    assert counters["campaign.runs_executed"] == len(superset) - len(first)
    # The reused slice is the earlier campaign, byte for byte.
    reused = [
        result
        for run, result in zip(axes_spec(seeds=(0, 1, 2)).runs(), superset)
        if run.seed in (0, 1)
    ]
    assert measurement_json(reused) == measurement_json(first)


# ----------------------------------------------------------------------
# System level: the Fig. 11-shaped dark-corner campaign
# ----------------------------------------------------------------------
def system_axes_spec(harness_kwargs=None, **axes):
    from repro.tmu.config import Variant

    return CampaignSpec.system(
        (Variant.FULL, Variant.TINY),
        (InjectionStage.DATA_TRANSFER_STALL, InjectionStage.B_READY_MISSING),
        beats=16,
        seeds=(0, 1),
        harness_kwargs=harness_kwargs,
        **dict(dict(size=1, outstanding=3, reorder_depth=2), **axes),
    )


def test_system_dark_corner_campaign_identical_everywhere():
    serial = run_campaign_spec(system_axes_spec())
    reference = measurement_json(serial)
    assert all(result.detected for result in serial)

    assert measurement_json(
        run_campaign_spec(system_axes_spec(), workers=2)
    ) == reference
    assert measurement_json(
        run_campaign_spec(system_axes_spec(), batch_lanes=4)
    ) == reference
    verified = run_campaign_spec(
        system_axes_spec(harness_kwargs={"sim_strategy": "verify"})
    )
    assert measurement_json(verified) == reference


def test_system_axes_reach_the_hardware():
    """The axes reconfigure the SoC and reshape its workload — they are
    not mere run labels: *reorder_depth* lands on both subordinates,
    *size* narrows the DMA descriptor's beats, and *outstanding* stacks
    extra in-flight DRAM reads that all complete."""
    from repro.soc.cheshire import CheshireSoC

    soc = CheshireSoC(reorder_depth=2)
    assert soc.dram.reorder_depth == 2
    assert soc.ethernet.reorder_depth == 2

    soc.send_ethernet_frame(beats=16, size=1)
    soc.submit_outstanding_reads(2, beats=4, size=1)
    assert soc.sim.run_until(lambda s: soc.all_idle, timeout=20_000)
    # Narrow frame: 16 handshakes of 2 bytes each reached the MAC.
    assert soc.ethernet.beats_received == 16
    assert soc.dram.reads_done == 2
