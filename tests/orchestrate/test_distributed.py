"""Fault-tolerance battery for the distributed campaign executor.

Three layers:

* :class:`ShardBoard` unit tests — the lease ledger in isolation, with
  a fake clock driving expiry.
* Executor integration — coordinator + real workers over loopback
  sockets, including a silent (lease-expired) worker and a SIGKILLed
  one, both of which must be invisible in the aggregated results.
* The acceptance bar — a Fig. 11-shaped campaign through coordinator +
  2 workers, one of them killed mid-shard, serializes byte-identically
  to the serial run, and a subsequent ``--resume``-style pass against
  the same cache directory reproduces it without simulating anything.
"""

import os
import signal
import socket
import threading
import time

import pytest

from tests.conftest import fast_budgets

from repro.analysis.export import campaign_dict, to_json
from repro.faults.types import InjectionStage
from repro.orchestrate import (
    CampaignSpec,
    DistributedExecutor,
    DistributedTimeout,
    ProgressReporter,
    SerialExecutor,
    ShardBoard,
    make_executor,
    plan_shards,
    run_campaign_spec,
    worker_loop,
)
from repro.orchestrate import executor as executor_module
from repro.orchestrate.executor import execute_shard
from repro.orchestrate.remote import (
    expect,
    hello_message,
    recv_frame,
    result_message,
    send_frame,
)
from repro.soc.experiment import FIG11_STAGES
from repro.tmu.config import Variant, full_config, tiny_config

import io
import multiprocessing


def ip_spec(seeds=(0,), stages=None):
    return CampaignSpec.ip(
        [full_config(budgets=fast_budgets()), tiny_config(budgets=fast_budgets())],
        stages
        or (
            InjectionStage.AW_READY_MISSING,
            InjectionStage.WLAST_TO_BVALID,
            InjectionStage.R_VALID_MISSING,
        ),
        beats=4,
        seeds=seeds,
    )


def fig11_spec():
    return CampaignSpec.system((Variant.FULL, Variant.TINY), FIG11_STAGES, beats=16)


def campaign_json(spec, results):
    return to_json(campaign_dict(results, spec=spec))


# ----------------------------------------------------------------------
# ShardBoard: the lease ledger
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def shards():
    return plan_shards(ip_spec().runs())


def test_board_hands_out_pending_in_order(shards):
    board = ShardBoard(shards, lease_timeout=60)
    claimed = [board.claim("w0") for _ in shards]
    assert [shard.index for shard in claimed] == [s.index for s in shards]


def test_board_done_after_all_complete(shards):
    board = ShardBoard(shards, lease_timeout=60)
    for _ in shards:
        shard = board.claim("w0")
        assert board.complete(shard.index, "w0")
    assert board.all_done
    assert board.claim("w1") is None


def test_board_duplicate_completion_dropped(shards):
    board = ShardBoard(shards, lease_timeout=60)
    shard = board.claim("w0")
    assert board.complete(shard.index, "w0") is True
    assert board.complete(shard.index, "w1") is False


def test_board_release_requeues_at_front(shards):
    board = ShardBoard(shards, lease_timeout=60)
    first = board.claim("w0")
    second = board.claim("w0")
    assert board.release_worker("w0") == 2
    # Forfeited shards come back before the untouched tail, oldest first.
    assert board.claim("w1").index in (first.index, second.index)


def test_board_release_ignores_stolen_lease(shards):
    clock = FakeClock()
    board = ShardBoard(shards[:1], lease_timeout=1.0, clock=clock)
    stolen = board.claim("w0")
    clock.now = 2.0
    assert board.claim("w1").index == stolen.index  # stolen after expiry
    # The original holder dying must not requeue a shard it no longer owns.
    assert board.release_worker("w0") == 0
    assert board.complete(stolen.index, "w1")
    assert board.all_done


def test_board_lease_expiry_allows_steal(shards):
    clock = FakeClock()
    board = ShardBoard(shards, lease_timeout=5.0, clock=clock)
    held = board.claim("slow")
    for _ in shards[1:]:
        board.claim("fast")
    # Everything is leased; a fresh claim must wait...
    start = time.monotonic()
    assert board.claim("fast", should_stop=lambda: True) is None
    assert time.monotonic() - start < 1.0
    # ...until the slow worker's lease expires.
    clock.now = 6.0
    assert board.claim("fast").index == held.index
    assert board.reassignments == 1


def test_board_rejects_nonpositive_lease(shards):
    with pytest.raises(ValueError):
        ShardBoard(shards, lease_timeout=0)


def test_board_renew_extends_only_live_leases(shards):
    clock = FakeClock()
    board = ShardBoard(shards, lease_timeout=1.0, clock=clock)
    shard = board.claim("w0")
    clock.now = 0.8
    assert board.renew(shard.index, "w0") is True  # heartbeat arrived
    clock.now = 1.5  # would have expired without the renewal
    assert board._expired_lease() is None
    assert board.renew(shard.index, "thief") is False  # not the holder
    assert board.renew(99999, "w0") is False  # no such lease
    board.complete(shard.index, "w0")
    assert board.renew(shard.index, "w0") is False  # already done


def test_board_stale_pending_entry_is_not_rehanded(shards):
    """A requeued-then-completed shard must not burn another worker."""
    clock = FakeClock()
    board = ShardBoard(shards[:2], lease_timeout=1.0, clock=clock)
    s0 = board.claim("A")           # deadline 1.0
    clock.now = 0.9
    s1 = board.claim("B")           # deadline 1.9
    clock.now = 1.0                 # only A's lease has expired
    assert board.claim("C").index == s0.index  # C steals s0
    board.release_worker("C")       # C dies; s0 goes back to pending
    assert board.complete(s0.index, "A")  # ...but A finishes it first
    # The stale pending copy of s0 must be skipped: with s1 validly
    # leased, there is nothing claimable right now.
    assert board.claim("D", should_stop=lambda: True) is None
    board.complete(s1.index, "B")
    assert board.all_done


def test_board_claim_blocks_until_completion_unblocks(shards):
    board = ShardBoard(shards[:1], lease_timeout=60)
    shard = board.claim("w0")
    outcome = {}

    def late_claimer():
        outcome["shard"] = board.claim("w1")

    thread = threading.Thread(target=late_claimer)
    thread.start()
    time.sleep(0.1)
    board.complete(shard.index, "w0")
    thread.join(timeout=5)
    assert outcome["shard"] is None  # all work done, claimer released


# ----------------------------------------------------------------------
# Executor integration over loopback
# ----------------------------------------------------------------------
def test_make_executor_distributed_slot():
    executor = DistributedExecutor()
    assert make_executor(1, distributed=executor) is executor
    built = make_executor(1, distributed={"local_workers": 3})
    assert isinstance(built, DistributedExecutor)
    assert built.local_workers == 3
    assert isinstance(make_executor(1), SerialExecutor)


def test_empty_shard_list_never_binds():
    executor = DistributedExecutor(port=0)
    assert list(executor.map([])) == []
    assert executor._server is None


def test_distributed_matches_serial_with_local_workers():
    spec = ip_spec(seeds=(0, 1))
    serial = run_campaign_spec(spec)
    executor = DistributedExecutor(local_workers=2, result_timeout=120)
    distributed = run_campaign_spec(spec, executor=executor)
    assert distributed == serial


def test_distributed_with_external_worker_threads():
    spec = ip_spec()
    serial = run_campaign_spec(spec)
    executor = DistributedExecutor(result_timeout=120)
    host, port = executor.bind()
    workers = [
        threading.Thread(target=worker_loop, args=(host, port), daemon=True)
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    distributed = run_campaign_spec(spec, executor=executor)
    for worker in workers:
        worker.join(timeout=10)
    assert distributed == serial


def test_result_timeout_raises_without_workers():
    executor = DistributedExecutor(result_timeout=0.6)
    shards = plan_shards(ip_spec().runs())
    with pytest.raises(DistributedTimeout, match="0 worker"):
        list(executor.map(shards))


def test_progress_status_shows_workers():
    spec = ip_spec()
    stream = io.StringIO()
    reporter = ProgressReporter(len(spec.runs()), stream=stream)
    executor = DistributedExecutor(local_workers=1, result_timeout=120)
    run_campaign_spec(spec, executor=executor, progress=reporter)
    assert "worker(s)" in stream.getvalue()


def _hold_first_shard(port, claimed, release):
    """Protocol-level worker that leases one shard and sits on it."""
    sock = socket.create_connection(("127.0.0.1", port))
    try:
        send_frame(sock, hello_message("staller"))
        expect(recv_frame(sock), "welcome")
        message = recv_frame(sock)
        assert message["type"] == "shard"
        claimed.set()
        release.wait(timeout=120)
    finally:
        sock.close()


def test_heartbeat_keeps_slow_healthy_shard_leased(monkeypatch):
    """A shard slower than the lease timeout is not stolen from a live
    worker: heartbeats (at a third of the timeout) renew the lease."""
    from repro.orchestrate import distributed as distributed_module

    spec = ip_spec(stages=(InjectionStage.AW_READY_MISSING,))
    serial = run_campaign_spec(spec)
    original = distributed_module.execute_shard
    executions = []

    def slow_execute(shard):
        executions.append(shard.index)
        time.sleep(1.3)  # far past the 0.5s lease
        return original(shard)

    monkeypatch.setattr(distributed_module, "execute_shard", slow_execute)
    executor = DistributedExecutor(lease_timeout=0.5, result_timeout=120)
    host, port = executor.bind()
    workers = [
        threading.Thread(target=worker_loop, args=(host, port), daemon=True)
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    results = run_campaign_spec(spec, executor=executor)
    for worker in workers:
        worker.join(timeout=30)
    assert results == serial
    assert executor._board.reassignments == 0
    assert sorted(executions) == sorted(set(executions))  # nothing re-run


def test_worker_exits_cleanly_when_coordinator_offers_no_work():
    """A coordinator that hangs up before the welcome (campaign already
    satisfied from cache, or dead) is a clean zero-shard exit."""
    server = socket.create_server(("127.0.0.1", 0))
    _host, port = server.getsockname()
    outcome = {}

    def pull():
        outcome["executed"] = worker_loop("127.0.0.1", port)

    worker = threading.Thread(target=pull)
    worker.start()
    conn, _addr = server.accept()
    assert recv_frame(conn)["type"] == "hello"
    conn.close()  # no work for you — hang up instead of welcoming
    server.close()
    worker.join(timeout=10)
    assert not worker.is_alive()
    assert outcome["executed"] == 0


def test_fully_cached_campaign_closes_bound_server(tmp_path):
    """A resume whose cache is complete must release the announced port
    immediately, so waiting workers see EOF instead of hanging."""
    from repro.orchestrate.distributed import connect_with_retry

    spec = ip_spec()
    run_campaign_spec(spec, cache_dir=tmp_path)  # warm the cache fully
    executor = DistributedExecutor(result_timeout=120)
    host, port = executor.bind()
    cached = run_campaign_spec(spec, cache_dir=tmp_path, executor=executor)
    assert executor._server is None
    with pytest.raises(OSError):
        connect_with_retry(host, port, retry_seconds=0.3)
    assert cached == run_campaign_spec(spec)


def test_silent_worker_lease_expires_and_campaign_completes():
    """A connected-but-hung worker only costs its lease, not the campaign."""
    spec = ip_spec()
    serial = run_campaign_spec(spec)
    executor = DistributedExecutor(lease_timeout=0.5, result_timeout=120)
    host, port = executor.bind()

    claimed, release = threading.Event(), threading.Event()
    staller = threading.Thread(
        target=_hold_first_shard, args=(port, claimed, release), daemon=True
    )
    results = {}

    def campaign():
        results["out"] = run_campaign_spec(spec, executor=executor)

    runner = threading.Thread(target=campaign)
    staller.start()
    runner.start()
    assert claimed.wait(timeout=30), "staller never got a lease"
    # Only now admit a real worker: the staller provably holds a shard
    # that the real worker can only obtain by expiring the lease.
    real = threading.Thread(target=worker_loop, args=(host, port), daemon=True)
    real.start()
    runner.join(timeout=120)
    release.set()
    assert not runner.is_alive(), "campaign did not complete"
    assert results["out"] == serial
    assert executor._board.reassignments >= 1


def _worker_process_loop(port):
    worker_loop("127.0.0.1", port, retry_seconds=30)


def test_sigkilled_worker_forfeits_lease_immediately():
    """SIGKILL (EOF), unlike silence, requeues without waiting the lease out."""
    spec = ip_spec(seeds=(0, 1))
    serial = run_campaign_spec(spec)
    # Lease far longer than the test: only the EOF path can requeue.
    executor = DistributedExecutor(lease_timeout=600, result_timeout=120)
    host, port = executor.bind()

    context = multiprocessing.get_context()
    claimed = context.Event()
    release = context.Event()
    victim = context.Process(
        target=_hold_first_shard, args=(port, claimed, release), daemon=True
    )
    results = {}

    def campaign():
        results["out"] = run_campaign_spec(spec, executor=executor)

    runner = threading.Thread(target=campaign)
    victim.start()
    runner.start()
    assert claimed.wait(timeout=30), "victim never got a lease"
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    real = threading.Thread(target=worker_loop, args=(host, port), daemon=True)
    real.start()
    runner.join(timeout=120)
    assert not runner.is_alive(), "campaign did not complete after the kill"
    assert results["out"] == serial


# ----------------------------------------------------------------------
# Fleet health: board events, status snapshots, the status wire frame
# ----------------------------------------------------------------------
def test_board_narrates_lease_lifecycle(shards):
    from repro.telemetry import EventLog

    clock = FakeClock()
    log = EventLog()
    board = ShardBoard(
        shards[:2], lease_timeout=1.0, clock=clock, event_hook=log.append
    )
    first = board.claim("A")
    board.renew(first.index, "A")
    clock.now = 2.0  # A's lease expires silently
    stolen = board.claim("B")  # B steals A's expired shard or takes #2
    board.complete(stolen.index, "B")
    board.complete(stolen.index, "B")  # duplicate: dropped, narrated
    board.release_worker("B")

    kinds = [e["event"] for e in log.snapshot()]
    assert "lease_claimed" in kinds
    assert "lease_renewed" in kinds
    assert "shard_completed" in kinds
    assert "duplicate_dropped" in kinds
    claimed = next(e for e in log.snapshot() if e["event"] == "lease_claimed")
    assert claimed["worker"] == "A" and claimed["shard"] == first.index


def test_board_steal_emits_expired_and_stolen(shards):
    from repro.telemetry import EventLog

    clock = FakeClock()
    log = EventLog()
    board = ShardBoard(
        shards[:1], lease_timeout=1.0, clock=clock, event_hook=log.append
    )
    shard = board.claim("victim")
    clock.now = 5.0
    stolen = board.claim("thief")
    assert stolen.index == shard.index
    events = {e["event"]: e for e in log.snapshot()}
    assert events["lease_expired"]["worker"] == "victim"
    assert events["lease_stolen"]["worker"] == "thief"
    assert events["lease_stolen"]["shard"] == shard.index
    assert board.reassignments == 1


def test_board_snapshot_shows_expired_lease(shards):
    clock = FakeClock()
    board = ShardBoard(shards[:2], lease_timeout=1.0, clock=clock)
    shard = board.claim("gone")
    clock.now = 3.0
    snapshot = board.snapshot()
    assert snapshot["total"] == 2
    assert snapshot["completed"] == 0
    (lease,) = snapshot["leases"]
    assert lease["shard"] == shard.index
    assert lease["worker"] == "gone"
    assert lease["expired"] is True
    assert lease["expires_in"] <= 0


def test_status_frame_reflects_killed_workers_lease_expiry():
    """The acceptance scenario: a worker SIGKILLs mid-shard; a status
    poll against the live coordinator must show the forfeiture — the
    worker gone (EOF event) and its shard back in play."""
    from repro.orchestrate.distributed import request_status

    spec = ip_spec(seeds=(0, 1))
    executor = DistributedExecutor(lease_timeout=600, result_timeout=120)
    host, port = executor.bind()

    context = multiprocessing.get_context()
    claimed = context.Event()
    release = context.Event()
    victim = context.Process(
        target=_hold_first_shard, args=(port, claimed, release), daemon=True
    )
    shards = plan_shards(spec.runs())
    results = {}

    def campaign():
        results["out"] = run_campaign_spec(spec, executor=executor)

    runner = threading.Thread(target=campaign)
    victim.start()
    runner.start()
    try:
        assert claimed.wait(timeout=30), "victim never got a lease"
        before = request_status(host, port)
        assert before["connected_workers"] == 1
        assert "staller" in before["workers"]
        leased = {
            lease["shard"] for lease in before["campaign"]["leases"]
        }
        assert leased, "victim's lease must be visible"

        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        deadline = time.monotonic() + 30
        after = request_status(host, port)
        while time.monotonic() < deadline and (
            after["connected_workers"] or "worker_eof" not in
            {e["event"] for e in after["events"]}
        ):
            time.sleep(0.1)
            after = request_status(host, port)
        # The kill is an EOF: worker marked gone, leases released.
        assert after["connected_workers"] == 0
        assert after["workers"]["staller"]["connected"] is False
        kinds = {e["event"] for e in after["events"]}
        assert "worker_connect" in kinds
        assert "worker_eof" in kinds
        assert "leases_released" in kinds
        held = {lease["shard"] for lease in after["campaign"]["leases"]}
        assert not (leased & held), "forfeited lease still held"
    finally:
        real = threading.Thread(target=worker_loop, args=(host, port),
                                daemon=True)
        real.start()
        runner.join(timeout=120)
    assert not runner.is_alive()
    assert results["out"] == run_campaign_spec(spec)


def test_status_snapshot_counts_completed_shards():
    spec = ip_spec()
    executor = DistributedExecutor(local_workers=1, result_timeout=120)
    run_campaign_spec(spec, executor=executor)
    status = executor.status_snapshot()
    # The board survives the campaign for post-mortem polls: fully
    # completed, nothing pending or leased.
    campaign = status["campaign"]
    assert campaign["completed"] == campaign["total"]
    assert campaign["pending"] == 0 and campaign["leases"] == []
    assert status["connected_workers"] == 0
    total = sum(
        info["shards_completed"] for info in status["workers"].values()
    )
    assert total == len(plan_shards(spec.runs()))
    kinds = {e["event"] for e in status["events"]}
    assert {"worker_connect", "shard_completed", "worker_eof"} <= kinds


def test_executor_metrics_count_fleet_activity():
    from repro.telemetry import MetricsRegistry

    spec = ip_spec()
    metrics = MetricsRegistry()
    executor = DistributedExecutor(local_workers=1, result_timeout=120)
    results = run_campaign_spec(spec, executor=executor, metrics=metrics)
    assert results == run_campaign_spec(spec)
    snapshot = metrics.to_dict()
    shards = len(plan_shards(spec.runs()))
    assert snapshot["counters"]["fleet.shard_completed"] == shards
    assert snapshot["counters"]["fleet.worker_connect"] == 1
    assert snapshot["counters"]["campaign.runs_executed"] == len(spec.runs())


# ----------------------------------------------------------------------
# Acceptance: Fig. 11 byte-identity through kill and resume
# ----------------------------------------------------------------------
def test_fig11_distributed_byte_identical_with_worker_kill_and_resume(
    tmp_path, monkeypatch
):
    spec = fig11_spec()
    serial_json = campaign_json(spec, run_campaign_spec(spec))

    # Coordinator + 2 loopback workers; one is SIGKILLed while it holds
    # a shard lease, mid-campaign.
    executor = DistributedExecutor(lease_timeout=600, result_timeout=120)
    host, port = executor.bind()
    context = multiprocessing.get_context()
    claimed, release = context.Event(), context.Event()
    victim = context.Process(
        target=_hold_first_shard, args=(port, claimed, release), daemon=True
    )
    results = {}

    def campaign():
        results["out"] = run_campaign_spec(
            spec, cache_dir=tmp_path, executor=executor
        )

    runner = threading.Thread(target=campaign)
    victim.start()
    runner.start()
    assert claimed.wait(timeout=30)
    os.kill(victim.pid, signal.SIGKILL)
    survivor = threading.Thread(target=worker_loop, args=(host, port), daemon=True)
    survivor.start()
    runner.join(timeout=120)
    assert not runner.is_alive()
    assert campaign_json(spec, results["out"]) == serial_json

    # Resume against the same cache directory: every shard is already
    # there, so nothing may simulate, and the JSON stays byte-identical.
    monkeypatch.setattr(
        executor_module,
        "execute_shard",
        lambda shard: pytest.fail("resume must not re-simulate"),
    )
    resumed = run_campaign_spec(spec, cache_dir=tmp_path)
    assert campaign_json(spec, resumed) == serial_json


def test_partial_cache_resume_only_runs_missing_shards(tmp_path):
    """Crash-shaped cache state: some shards present, the rest missing."""
    spec = ip_spec(seeds=(0, 1))
    serial_json = campaign_json(spec, run_campaign_spec(spec))
    shards = plan_shards(spec.runs())

    # Simulate a campaign killed after three shards: only they are cached.
    from repro.orchestrate.cache import ResultCache

    cache = ResultCache(tmp_path, spec)
    for shard in shards[:3]:
        cache.store_shard(shard, execute_shard(shard)[1])

    executed = []
    original = execute_shard

    class Counting(SerialExecutor):
        def map(self, pending):
            for shard in pending:
                executed.append(shard.index)
                yield original(shard)

    resumed = run_campaign_spec(spec, cache_dir=tmp_path, executor=Counting())
    assert campaign_json(spec, resumed) == serial_json
    assert sorted(executed) == [shard.index for shard in shards[3:]]


# ----------------------------------------------------------------------
# Shared result store: workers short-circuit runs another worker pushed
# ----------------------------------------------------------------------
def test_worker_with_store_skips_prepopulated_runs(tmp_path, monkeypatch):
    """A worker handed runs already in the shared store must not
    re-simulate them — the reassigned-shard reuse path."""
    from repro.orchestrate import ResultStore
    from repro.orchestrate import executor as executor_module

    spec = ip_spec(seeds=(0, 1))
    serial = run_campaign_spec(spec)
    store_dir = tmp_path / "store"
    store = ResultStore.open(store_dir)
    runs = spec.runs()
    for run, result in zip(runs, serial):
        store.put(run, result)
    store.close()

    simulated = []
    real = executor_module.execute_run

    def counting(run, trace=None):
        simulated.append(run.run_id)
        return real(run, trace)

    monkeypatch.setattr(executor_module, "execute_run", counting)

    executor = DistributedExecutor(result_timeout=120)
    host, port = executor.bind()
    worker = threading.Thread(
        target=worker_loop,
        args=(host, port),
        kwargs={"store": str(store_dir)},
        daemon=True,
    )
    worker.start()
    distributed = run_campaign_spec(spec, executor=executor)
    worker.join(timeout=10)
    assert distributed == serial
    assert simulated == []  # every run came out of the shared store


def test_local_workers_inherit_store_dir(tmp_path):
    """DistributedExecutor(store_dir=...) hands the store to the loopback
    workers it spawns; results land in it for the next campaign."""
    from repro.orchestrate import ResultStore

    store_dir = tmp_path / "store"
    spec = ip_spec()
    executor = DistributedExecutor(
        local_workers=2, result_timeout=120, store_dir=str(store_dir)
    )
    results = run_campaign_spec(spec, executor=executor)
    store = ResultStore.open(store_dir)
    assert list(store.iter_results(spec.runs())) == results
