"""Wire-protocol unit tests: framing, hostile peers, work-unit codecs."""

import json
import socket
import struct
import threading

import pytest

from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, plan_shards
from repro.orchestrate.remote import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    done_message,
    expect,
    hello_message,
    recv_frame,
    result_message,
    send_frame,
    shard_message,
    welcome_message,
)
from repro.orchestrate.serialize import (
    run_from_dict,
    run_to_dict,
    shard_from_dict,
    shard_to_dict,
)
from repro.tmu.config import Variant, full_config


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def sample_spec(**kwargs):
    kwargs.setdefault("beats", 4)
    kwargs.setdefault("harness_kwargs", {"sim_strategy": "verify"})
    return CampaignSpec.ip(
        [full_config()],
        [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID],
        seeds=(0, 1),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_round_trip(pair):
    left, right = pair
    send_frame(left, {"type": "hello", "worker": "w", "version": 1})
    assert recv_frame(right) == {"type": "hello", "worker": "w", "version": 1}


def test_many_frames_one_stream(pair):
    left, right = pair
    for index in range(20):
        send_frame(left, {"type": "n", "value": index})
    assert [recv_frame(right)["value"] for _ in range(20)] == list(range(20))


def test_clean_eof_returns_none(pair):
    left, right = pair
    left.close()
    assert recv_frame(right) is None


def test_eof_mid_frame_raises(pair):
    left, right = pair
    body = json.dumps({"type": "x"}).encode()
    left.sendall(struct.pack(">I", len(body) + 10) + body)  # advertise more
    left.close()
    with pytest.raises(ProtocolError, match="mid-frame|frame body"):
        recv_frame(right)


def test_eof_mid_header_raises(pair):
    left, right = pair
    left.sendall(b"\x00\x00")  # half a length prefix
    left.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        recv_frame(right)


def test_oversized_length_prefix_rejected(pair):
    left, right = pair
    left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="exceeds"):
        recv_frame(right)


def test_garbage_payload_rejected(pair):
    left, right = pair
    body = b"{not json"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="undecodable"):
        recv_frame(right)


def test_untyped_message_rejected(pair):
    left, right = pair
    body = json.dumps(["a", "list"]).encode()
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="typed"):
        recv_frame(right)


def test_large_frame_round_trips(pair):
    left, right = pair
    payload = {"type": "blob", "data": "x" * 300_000}
    received = {}

    def reader():
        received["frame"] = recv_frame(right)

    # Concurrent reader: a 300 kB frame overflows the socketpair buffer,
    # so a serial send would deadlock.
    thread = threading.Thread(target=reader)
    thread.start()
    send_frame(left, payload)
    thread.join(timeout=5)
    assert received["frame"] == payload


def test_expect_validates_type_and_eof():
    assert expect({"type": "welcome"}, "welcome") == {"type": "welcome"}
    with pytest.raises(ProtocolError, match="closed"):
        expect(None, "welcome")
    with pytest.raises(ProtocolError, match="expected 'welcome'"):
        expect({"type": "done"}, "welcome")


# ----------------------------------------------------------------------
# Message constructors
# ----------------------------------------------------------------------
def test_message_constructors_are_json_frames(pair):
    left, right = pair
    shard = plan_shards(sample_spec().runs())[0]
    for message in (
        hello_message("w0"),
        welcome_message(4),
        shard_message(shard),
        result_message(0, shard.run_ids, []),
        done_message(),
    ):
        send_frame(left, message)
        assert recv_frame(right) == message
    assert hello_message("w0")["version"] == PROTOCOL_VERSION


# ----------------------------------------------------------------------
# Work-unit codecs
# ----------------------------------------------------------------------
def test_run_spec_round_trips_through_json():
    runs = sample_spec().runs()
    for run in runs:
        decoded = run_from_dict(json.loads(json.dumps(run_to_dict(run))))
        assert decoded == run
        assert decoded.run_id == run.run_id
        assert decoded.harness_kwargs == run.harness_kwargs


def test_shard_round_trips_through_json():
    for shard in plan_shards(sample_spec().runs(), shard_size=3):
        decoded = shard_from_dict(json.loads(json.dumps(shard_to_dict(shard))))
        assert decoded == shard
        assert decoded.run_ids == shard.run_ids


def test_system_run_round_trips():
    spec = CampaignSpec.system(
        (Variant.FULL,), (InjectionStage.WLAST_TO_BVALID,), beats=16
    )
    run = spec.runs()[0]
    assert run_from_dict(json.loads(json.dumps(run_to_dict(run)))) == run
