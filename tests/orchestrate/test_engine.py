"""Engine tests: sharded determinism, caching, progress, executors.

The headline guarantees: a campaign sharded across 4 worker processes
returns the *identical* result list the serial path produces (for both
the Fig. 9 IP sweep and the Fig. 11 system sweep), and a warm cache
returns identical results without simulating anything.
"""

import io

import pytest

from tests.conftest import fast_budgets

from repro.faults.campaign import run_campaign
from repro.faults.types import FIG9_WRITE_STAGES, InjectionStage
from repro.orchestrate import (
    CampaignSpec,
    ProgressReporter,
    SerialExecutor,
    WorkerPoolExecutor,
    default_workers,
    make_executor,
    plan_shards,
    run_campaign_spec,
)
from repro.orchestrate import executor as executor_module
from repro.soc.experiment import run_fig11
from repro.tmu.config import full_config, tiny_config

FIG9_SUBSET = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.DATA_TRANSFER_STALL,
    InjectionStage.WLAST_TO_BVALID,
)


def fig9_configs():
    return [full_config(budgets=fast_budgets()), tiny_config(budgets=fast_budgets())]


# ----------------------------------------------------------------------
# Determinism: sharded == serial
# ----------------------------------------------------------------------
def test_fig9_sweep_sharded_equals_serial():
    serial = run_campaign(fig9_configs(), FIG9_SUBSET, beats=4, seeds=(0, 1))
    sharded = run_campaign(
        fig9_configs(), FIG9_SUBSET, beats=4, seeds=(0, 1), workers=4
    )
    assert len(serial) == 2 * len(FIG9_SUBSET) * 2
    assert sharded == serial
    assert all(result.detected and result.recovered for result in serial)


def test_fig11_sweep_sharded_equals_serial():
    serial = run_fig11(beats=16)
    sharded = run_fig11(beats=16, workers=4)
    assert sharded == serial
    assert set(serial) == {"full", "tiny"}
    assert all(
        result.detected for series in serial.values() for result in series
    )


def test_sharded_campaign_under_verify_strategy():
    """The parallel path holds up the kernel's own correctness check."""
    results = run_campaign(
        [full_config(budgets=fast_budgets())],
        (InjectionStage.AW_READY_MISSING, InjectionStage.R_VALID_MISSING),
        beats=4,
        workers=2,
        harness_kwargs={"sim_strategy": "verify"},
    )
    assert all(result.detected for result in results)


def test_shard_size_does_not_change_results():
    spec = CampaignSpec.ip(
        fig9_configs(), FIG9_SUBSET, beats=4, recovery_timeout=2_000
    )
    fine = run_campaign_spec(spec, workers=1, shard_size=1)
    coarse = run_campaign_spec(spec, workers=2, shard_size=4)
    assert fine == coarse


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_cache_hit_skips_simulation_and_matches(tmp_path, monkeypatch):
    kwargs = dict(beats=4, seeds=(0,), cache_dir=tmp_path)
    first = run_campaign(fig9_configs(), FIG9_SUBSET, **kwargs)
    # Any attempt to simulate on the second pass is a test failure.
    monkeypatch.setattr(
        executor_module,
        "execute_shard",
        lambda shard: pytest.fail("cache hit must not re-simulate"),
    )
    second = run_campaign(fig9_configs(), FIG9_SUBSET, **kwargs)
    assert second == first


def test_cache_namespace_follows_spec_hash(tmp_path):
    run_campaign(fig9_configs(), FIG9_SUBSET[:1], beats=4, cache_dir=tmp_path)
    run_campaign(fig9_configs(), FIG9_SUBSET[:1], beats=8, cache_dir=tmp_path)
    # Two different sweeps, two cache namespaces.
    assert len(list(tmp_path.iterdir())) == 2


def test_corrupt_cache_entry_is_re_executed(tmp_path):
    kwargs = dict(beats=4, cache_dir=tmp_path)
    first = run_campaign(fig9_configs(), FIG9_SUBSET[:1], **kwargs)
    for shard_file in tmp_path.glob("*/shard-*.json"):
        shard_file.write_text("{not json")
    second = run_campaign(fig9_configs(), FIG9_SUBSET[:1], **kwargs)
    assert second == first


# ----------------------------------------------------------------------
# Executors and workers resolution
# ----------------------------------------------------------------------
def test_make_executor_selects_by_worker_count():
    assert isinstance(make_executor(1), SerialExecutor)
    assert isinstance(make_executor(4), WorkerPoolExecutor)
    with pytest.raises(ValueError):
        WorkerPoolExecutor(0)


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert default_workers() == 6
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError):
        default_workers()


def test_worker_pool_reorders_are_invisible():
    """Unordered shard completion must not leak into result order."""
    spec = CampaignSpec.ip(fig9_configs(), FIG9_SUBSET, beats=4)
    shards = plan_shards(spec.runs())

    class Reversed(SerialExecutor):
        def map(self, pending):
            yield from reversed(list(super().map(pending)))

    scrambled = run_campaign_spec(spec, workers=1)
    # Hand the engine a deliberately reversed completion stream.
    from repro.orchestrate import engine as engine_module

    original = engine_module.make_executor
    try:
        engine_module.make_executor = lambda workers: Reversed()
        reordered = run_campaign_spec(spec, workers=1)
    finally:
        engine_module.make_executor = original
    assert reordered == scrambled
    assert len(shards) == len(scrambled)


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def test_progress_reporter_eta_and_rendering():
    now = [0.0]
    stream = io.StringIO()
    reporter = ProgressReporter(4, stream=stream, clock=lambda: now[0])
    now[0] = 2.0
    reporter.shard_done(1)            # 1/4 executed in 2s -> eta 6s
    assert reporter.eta_seconds() == pytest.approx(6.0)
    reporter.shard_done(2, cached=True)  # cached runs don't skew ETA
    assert reporter.eta_seconds() == pytest.approx(2.0)
    reporter.shard_done(1)
    reporter.finish()
    output = stream.getvalue()
    assert "4/4 runs (100.0%)" in output
    assert "2 cached" in output
    assert output.endswith("\n")


def test_engine_reports_progress_through_stream():
    stream = io.StringIO()
    run_campaign(
        fig9_configs()[:1], FIG9_SUBSET[:1], beats=4, progress=stream
    )
    assert "campaign: 1/1 runs (100.0%)" in stream.getvalue()
