"""Differential tests for the demand-driven Table II baselines.

Each baseline that opted into ``demand_driven = True`` (checker,
watchdog, Xilinx-style timeout, firewall) gets a fault-exercising
scenario run three ways: ``dirty`` vs ``exhaustive`` in lockstep with
full wire traces compared every cycle, and once under
``strategy="verify"`` so any missed ``schedule_drive()`` raises
:class:`~repro.sim.kernel.SchedulerDivergenceError` at the offending
cycle.
"""

import pytest

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.baselines import (
    AxiChecker,
    AxiFirewall,
    FirewallRule,
    Sp805Watchdog,
    XilinxStyleTimeout,
)
from repro.sim import Simulator


def build_xilinx_scenario(strategy):
    """Healthy write, then a muted B response, detection, irq clear."""
    sim = Simulator(strategy=strategy)
    bus = AxiInterface("bus")
    manager = Manager("mgr", bus)
    subordinate = Subordinate("sub", bus, b_latency=2)
    monitor = XilinxStyleTimeout("timeout", bus, window=24)
    for component in (manager, subordinate, monitor):
        sim.add(component)
    manager.submit(write_spec(0, 0x100, beats=2))

    def events(cycle):
        if cycle == 20:
            subordinate.faults.mute_b = True
            manager.submit(write_spec(1, 0x200, beats=2))
        if cycle == 90:
            monitor.clear_irq()

    state = lambda: (  # noqa: E731 - compact scenario closure
        monitor.timeouts,
        monitor.irq.value,
        len(manager.completed),
    )
    return sim, events, state


def build_watchdog_scenario(strategy):
    """Kicked, then starved into irq and reset escalation, then cleared."""
    sim = Simulator(strategy=strategy)
    dog = sim.add(Sp805Watchdog("dog", load=12))

    def events(cycle):
        if cycle < 10:
            dog.kick()
        if cycle == 30:
            dog.clear_irq()

    state = lambda: (  # noqa: E731
        dog.interrupts_raised,
        dog.resets_raised,
        dog.irq.value,
        dog.reset_out.value,
    )
    return sim, events, state


def build_checker_scenario(strategy):
    """Clean traffic, then a spurious B response trips the error flag."""
    sim = Simulator(strategy=strategy)
    bus = AxiInterface("bus")
    manager = Manager("mgr", bus)
    subordinate = Subordinate("sub", bus)
    checker = AxiChecker("checker", bus, log_depth=4)
    for component in (manager, subordinate, checker):
        sim.add(component)
    manager.submit(write_spec(0, 0x100, beats=2))

    def events(cycle):
        if cycle == 25:
            subordinate.faults.spurious_b = 9
        if cycle == 45:
            subordinate.faults.spurious_b = None
            checker.clear_error()

    state = lambda: (  # noqa: E731
        checker.error.value,
        len(checker.violations),
        checker.clean,
    )
    return sim, events, state


def build_firewall_scenario(strategy):
    """Mixed allowed/rejected writes and reads through the firewall."""
    sim = Simulator(strategy=strategy)
    host = AxiInterface("host")
    device = AxiInterface("device")
    manager = Manager("mgr", host)
    firewall = AxiFirewall(
        "fw",
        host,
        device,
        [FirewallRule(base=0x0, size=0x1000, allow_write=True, allow_read=False)],
    )
    subordinate = Subordinate("sub", device, b_latency=1)
    for component in (manager, firewall, subordinate):
        sim.add(component)
    manager.submit(write_spec(0, 0x100, beats=2))

    def events(cycle):
        if cycle == 10:
            manager.submit(write_spec(1, 0x4000, beats=2))  # rejected write
        if cycle == 25:
            manager.submit(read_spec(2, 0x200, beats=2))    # rejected read
        if cycle == 40:
            manager.submit(write_spec(3, 0x300))            # allowed again

    state = lambda: (  # noqa: E731
        firewall.rejected_writes,
        firewall.rejected_reads,
        len(manager.completed),
        [txn.resp for txn in manager.completed],
        subordinate.writes_done,
    )
    return sim, events, state


SCENARIOS = {
    "xilinx_timeout": build_xilinx_scenario,
    "watchdog": build_watchdog_scenario,
    "axichecker": build_checker_scenario,
    "firewall": build_firewall_scenario,
}
CYCLES = {
    "xilinx_timeout": 120,
    "watchdog": 60,
    "axichecker": 60,
    "firewall": 80,
}


def trace(sim):
    return {wire.name: wire.value for wire in sim.wires}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_dirty_and_exhaustive_traces_identical(name):
    build = SCENARIOS[name]
    dirty_sim, dirty_events, dirty_state = build("dirty")
    exact_sim, exact_events, exact_state = build("exhaustive")
    for cycle in range(CYCLES[name]):
        dirty_events(cycle)
        exact_events(cycle)
        dirty_sim.step()
        exact_sim.step()
        assert trace(dirty_sim) == trace(exact_sim), f"cycle {cycle}"
    assert dirty_state() == exact_state()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_verify_strategy_confirms_fixed_point(name):
    sim, events, _state = SCENARIOS[name]("verify")
    for cycle in range(CYCLES[name]):
        events(cycle)
        sim.step()  # SchedulerDivergenceError on any under-evaluation
