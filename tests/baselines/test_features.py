"""Tests for the Table II capability matrix."""

from repro.baselines.features import (
    TABLE2_COLUMNS,
    implemented_profiles,
    table2_profiles,
)


def test_all_thirteen_rows_present():
    profiles = table2_profiles()
    assert len(profiles) == 13  # 11 literature + 2 TMU variants


def test_tmu_rows_dominant_feature_set():
    """Table II's thesis: only the TMU offers M.O. support + scalability
    + fault detection + protocol checks together."""
    profiles = table2_profiles()
    tmu_rows = [p for p in profiles if p.name.startswith("This work")]
    other_rows = [p for p in profiles if not p.name.startswith("This work")]
    assert len(tmu_rows) == 2
    for row in tmu_rows:
        assert row.multiple_outstanding and row.scalable
        assert row.fault_detection and row.protocol_check
    for row in other_rows:
        assert not (row.multiple_outstanding and row.scalable)


def test_tiny_vs_full_granularity_split():
    by_name = {p.name: p for p in table2_profiles()}
    tc = by_name["This work: Tiny-Counter"]
    fc = by_name["This work: Full-Counter"]
    assert tc.transaction_level and not tc.phase_level
    assert fc.phase_level and not fc.transaction_level


def test_edelman_is_the_only_software_monitor():
    sw_rows = [p for p in table2_profiles() if not p.hw_based]
    assert [p.name for p in sw_rows] == ["Edelman Transac. Mon. [15]"]


def test_implemented_profiles_reference_real_classes():
    import repro.baselines as baselines

    for profile in implemented_profiles():
        if profile.name.startswith("This work"):
            continue
        class_name = profile.implemented_as.rsplit(".", 1)[1]
        assert hasattr(baselines, class_name), profile.implemented_as


def test_row_rendering_matches_columns():
    for profile in table2_profiles():
        assert len(profile.row()) == len(TABLE2_COLUMNS)
        assert set(profile.row()[3:]) <= {"Y", "x"}


def test_watchdog_row_matches_paper():
    by_name = {p.name: p for p in table2_profiles()}
    dog = by_name["ARM Watchdog [6]"]
    assert dog.target_protocol == "APB"
    assert dog.fault_detection
    assert not dog.perf_metrics and not dog.protocol_check
