"""Tests for the Table II baseline monitors."""

from types import SimpleNamespace

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.axi.types import Resp
from repro.baselines import (
    AxiChecker,
    AxiFirewall,
    AxiPerfMonitor,
    FirewallRule,
    Sp805Watchdog,
    XilinxStyleTimeout,
)
from repro.sim.kernel import Simulator


def observed_loop(monitor_cls, *args, sub_kwargs=None, **kwargs):
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **(sub_kwargs or {}))
    monitor = monitor_cls("monitor", bus, *args, **kwargs)
    for component in (manager, subordinate, monitor):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, bus=bus, manager=manager, subordinate=subordinate, monitor=monitor
    )


# ---------------------------------------------------------------------------
# Xilinx-style timeout block
# ---------------------------------------------------------------------------
def test_xilinx_quiet_on_healthy_traffic():
    env = observed_loop(XilinxStyleTimeout, window=64)
    env.manager.submit_all(RandomTraffic(seed=1).take(15))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=10_000)
    assert not env.monitor.irq.value
    assert env.monitor.timeouts == []


def test_xilinx_detects_hung_response():
    env = observed_loop(XilinxStyleTimeout, window=32)
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    detect = env.sim.run_until(lambda s: env.monitor.irq.value, timeout=2_000)
    assert detect is not None
    assert len(env.monitor.timeouts) == 1


def test_xilinx_cannot_attribute_but_flags_globally():
    """One shared timer: progress on ANY transaction rewinds it."""
    env = observed_loop(XilinxStyleTimeout, window=16, sub_kwargs={"b_latency": 4})
    env.subordinate.faults.mute_r = True  # reads hang
    env.manager.submit(read_spec(0, 0x100))
    # Keep writes flowing; the shared window never expires.
    for i in range(30):
        env.manager.submit(write_spec(1, 0x200 + 8 * i))
    env.sim.run(120)
    assert not env.monitor.irq.value  # the hung read hides behind write progress
    env.sim.run(400)
    assert env.monitor.irq.value  # detected only after all writes drained


def test_xilinx_clear_irq_rearms():
    env = observed_loop(XilinxStyleTimeout, window=16)
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.monitor.irq.value, timeout=1_000)
    env.monitor.clear_irq()
    assert env.sim.run_until(lambda s: env.monitor.irq.value, timeout=1_000)
    assert len(env.monitor.timeouts) == 2


# ---------------------------------------------------------------------------
# SP805 watchdog
# ---------------------------------------------------------------------------
def test_watchdog_kicked_never_fires():
    sim = Simulator()
    dog = sim.add(Sp805Watchdog("dog", load=10))
    for _ in range(100):
        sim.step()
        dog.kick()
    assert dog.interrupts_raised == 0


def test_watchdog_two_stage_escalation():
    sim = Simulator()
    dog = sim.add(Sp805Watchdog("dog", load=10))
    sim.run(11)  # one extra cycle for the wire to reflect the state
    assert dog.irq.value
    assert not dog.reset_out.value
    sim.run(10)
    assert dog.reset_out.value
    assert dog.resets_raised == 1


def test_watchdog_irq_clear_prevents_reset():
    sim = Simulator()
    dog = sim.add(Sp805Watchdog("dog", load=10))
    sim.run(10)
    dog.clear_irq()
    sim.run(9)
    assert not dog.reset_out.value


# ---------------------------------------------------------------------------
# Performance monitor
# ---------------------------------------------------------------------------
def test_perf_monitor_counts_match_scoreboard():
    env = observed_loop(AxiPerfMonitor)
    env.manager.submit_all(
        [write_spec(0, 0x100, beats=4), write_spec(1, 0x200, beats=2), read_spec(0, 0x100, beats=8)]
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.monitor.write.transactions == 2
    assert env.monitor.read.transactions == 1
    assert env.monitor.write.beats == 6
    assert env.monitor.read.beats == 8
    assert env.monitor.write.bytes == 6 * 8


def test_perf_monitor_latency_tracks_subordinate_delay():
    fast = observed_loop(AxiPerfMonitor)
    fast.manager.submit(write_spec(0, 0x100))
    assert fast.sim.run_until(lambda s: fast.manager.idle, timeout=2_000)
    slow = observed_loop(AxiPerfMonitor, sub_kwargs={"b_latency": 20})
    slow.manager.submit(write_spec(0, 0x100))
    assert slow.sim.run_until(lambda s: slow.manager.idle, timeout=2_000)
    assert slow.monitor.write.latency.maximum > fast.monitor.write.latency.maximum


def test_perf_monitor_throughput_positive():
    env = observed_loop(AxiPerfMonitor)
    env.manager.submit(write_spec(0, 0x100, beats=16))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert 0 < env.monitor.throughput() <= 1.0


# ---------------------------------------------------------------------------
# AXIChecker baseline
# ---------------------------------------------------------------------------
def test_axichecker_clean_then_flags_fault():
    env = observed_loop(AxiChecker)
    env.manager.submit(write_spec(0, 0x100, beats=2))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert env.monitor.clean
    env.subordinate.faults.spurious_b = 9
    env.sim.run(10)
    assert not env.monitor.clean
    assert env.monitor.error.value


def test_axichecker_log_bounded():
    env = observed_loop(AxiChecker, log_depth=4)
    env.subordinate.faults.spurious_r = 1
    env.sim.run(100)
    assert len(env.monitor.violations) <= 4


def test_axichecker_clear_error():
    env = observed_loop(AxiChecker)
    env.subordinate.faults.spurious_b = 9
    env.sim.run(10)
    env.monitor.clear_error()
    env.sim.run(1)
    # No new violation: flag stays down.
    env.subordinate.faults.spurious_b = None
    env.sim.run(5)
    assert not env.monitor.error.value


# ---------------------------------------------------------------------------
# Firewall
# ---------------------------------------------------------------------------
def firewall_loop(rules):
    sim = Simulator()
    host = AxiInterface("host")
    device = AxiInterface("device")
    manager = Manager("manager", host)
    firewall = AxiFirewall("firewall", host, device, rules)
    subordinate = Subordinate("subordinate", device)
    for component in (manager, firewall, subordinate):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, manager=manager, firewall=firewall, subordinate=subordinate
    )


ALLOW_LOW = FirewallRule(base=0x0, size=0x1000)
READONLY_HIGH = FirewallRule(base=0x8000, size=0x1000, allow_write=False)


def test_firewall_permits_allowed_traffic():
    env = firewall_loop([ALLOW_LOW])
    env.manager.submit_all([write_spec(0, 0x100, beats=2), read_spec(1, 0x100)])
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)
    assert env.firewall.rejected_writes == 0


def test_firewall_rejects_out_of_range_write_with_slverr():
    env = firewall_loop([ALLOW_LOW])
    env.manager.submit(write_spec(0, 0x4000, beats=2))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert env.manager.completed[0].resp == Resp.SLVERR
    assert env.firewall.rejected_writes == 1
    assert env.subordinate.writes_done == 0  # never reached the device


def test_firewall_direction_specific_rules():
    env = firewall_loop([ALLOW_LOW, READONLY_HIGH])
    env.manager.submit(read_spec(0, 0x8000))
    env.manager.submit(write_spec(1, 0x8000))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    by_dir = {t.direction.value: t.resp for t in env.manager.completed}
    assert by_dir["read"] == Resp.OKAY
    assert by_dir["write"] == Resp.SLVERR


def test_firewall_rejected_read_gets_slverr_last_beat():
    env = firewall_loop([ALLOW_LOW])
    env.manager.submit(read_spec(2, 0x9000, beats=4))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    txn = env.manager.completed[0]
    assert txn.resp == Resp.SLVERR
    assert env.firewall.rejected_reads == 1


def test_firewall_mixed_allowed_and_rejected():
    env = firewall_loop([ALLOW_LOW])
    env.manager.submit_all(
        [
            write_spec(0, 0x100, beats=2),
            write_spec(1, 0x5000, beats=2),
            write_spec(2, 0x200, beats=2),
        ]
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    responses = {t.addr: t.resp for t in env.manager.completed}
    assert responses[0x100] == Resp.OKAY
    assert responses[0x5000] == Resp.SLVERR
    assert responses[0x200] == Resp.OKAY
