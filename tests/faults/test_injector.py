"""Tests for the signal-level fault injector."""

from types import SimpleNamespace

import pytest

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.axi.types import Resp
from repro.faults.injector import ChannelForce, FaultInjector
from repro.sim.kernel import Simulator


def injected_loop(**sub_kwargs):
    sim = Simulator()
    upstream = AxiInterface("up")
    downstream = AxiInterface("down")
    manager = Manager("manager", upstream)
    injector = FaultInjector("injector", upstream, downstream)
    subordinate = Subordinate("subordinate", downstream, **sub_kwargs)
    for component in (manager, injector, subordinate):
        sim.add(component)
    return SimpleNamespace(
        sim=sim,
        manager=manager,
        injector=injector,
        subordinate=subordinate,
        up=upstream,
        down=downstream,
    )


def test_transparent_when_no_force():
    env = injected_loop()
    env.manager.submit_all([write_spec(0, 0x100, beats=4), read_spec(1, 0x100)])
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert len(env.manager.completed) == 2
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)
    assert env.injector.forced_cycles == 0


def test_force_ready_low_stalls_aw():
    env = injected_loop()
    env.injector.force("aw", ready=False)
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(50)
    assert len(env.manager.completed) == 0
    assert env.injector.forced_cycles > 0
    env.injector.release("aw")
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)


def test_force_valid_low_hides_requests_from_subordinate():
    env = injected_loop()
    env.injector.force("aw", valid=False)
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(50)
    assert env.subordinate.writes_done == 0


def test_payload_mutation_corrupts_response_id():
    import dataclasses

    env = injected_loop()
    env.injector.force("b", mutate=lambda beat: dataclasses.replace(beat, id=9))
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(100)
    assert env.manager.surprises  # response with unknown ID 9


def test_release_all_channels():
    env = injected_loop()
    env.injector.force("aw", ready=False)
    env.injector.force("r", valid=False)
    assert env.injector.any_force_active
    env.injector.release()
    assert not env.injector.any_force_active


def test_unknown_channel_rejected():
    env = injected_loop()
    with pytest.raises(KeyError):
        env.injector.force("x", valid=False)


def test_channel_force_flags():
    force = ChannelForce()
    assert not force.any_active
    force.ready = False
    assert force.any_active
    force.clear()
    assert not force.any_active
