"""Tests for the campaign runner and stall-latency measurement."""

import pytest

from tests.conftest import fast_budgets

from repro.area.model import detection_latency_bound
from repro.faults.campaign import (
    measure_stall_detection_latency,
    run_campaign,
    run_injection,
)
from repro.faults.types import FIG9_WRITE_STAGES, FaultSite, InjectionStage
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import Variant, full_config, tiny_config


def test_stage_metadata_consistent():
    for stage in InjectionStage:
        assert stage.direction.value in ("write", "read")
        assert stage.site in (FaultSite.MANAGER, FaultSite.SUBORDINATE)
        assert stage.expected_fc_phase is not None
    assert len(FIG9_WRITE_STAGES) == 6


def test_result_latency_properties():
    result = run_injection(
        full_config(budgets=fast_budgets()), InjectionStage.AW_READY_MISSING
    )
    assert result.detected
    assert result.latency_from_injection is not None
    assert result.latency_from_start >= result.latency_from_injection


def test_campaign_cross_product():
    configs = [full_config(budgets=fast_budgets()), tiny_config(budgets=fast_budgets())]
    stages = [InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID]
    results = run_campaign(configs, stages, beats=4)
    assert len(results) == 4
    assert all(result.detected for result in results)
    assert {result.variant for result in results} == {"full", "tiny"}


def stall_config(variant, step, budget=64):
    """Configuration used for the Fig. 8 total-stall measurement."""
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=budget),
        SpanBudgets(base=budget, per_beat=0),
    )
    ctor = full_config if variant == Variant.FULL else tiny_config
    return ctor(budgets=budgets, prescale_step=step, max_txn_cycles=budget)


@pytest.mark.parametrize("variant", [Variant.FULL, Variant.TINY], ids=["fc", "tc"])
def test_stall_latency_without_prescaler_equals_budget(variant):
    latency = measure_stall_detection_latency(stall_config(variant, 1))
    assert latency == 64


@pytest.mark.parametrize("step", [2, 4, 8, 16])
def test_stall_latency_bounded_by_analytic_model(step):
    latency = measure_stall_detection_latency(stall_config(Variant.FULL, step))
    assert 64 <= latency <= detection_latency_bound(64, step)


def test_stall_latency_monotone_in_prescaler_step():
    latencies = [
        measure_stall_detection_latency(stall_config(Variant.TINY, step))
        for step in (1, 8, 32, 64)
    ]
    assert latencies == sorted(latencies)
