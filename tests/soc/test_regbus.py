"""Tests for the Regbus configuration path (Fig. 10's Regbus demux)."""

from types import SimpleNamespace

from tests.conftest import build_loop

from repro.axi.traffic import write_spec
from repro.sim.kernel import Simulator
from repro.soc.cheshire import CheshireSoC, system_tmu_config
from repro.soc.regbus import (
    RegBusDemux,
    RegBusMaster,
    RegBusPort,
    RegRequest,
    TmuRegbusAdapter,
)
from repro.tmu import registers as R
from repro.tmu.config import Variant
from repro.tmu.registers import TmuRegisters


def regbus_env():
    env = build_loop()
    port = RegBusPort("rb")
    master = RegBusMaster("master", port)
    demux = RegBusDemux(
        "demux",
        port,
        [(0x000, 0x100, TmuRegbusAdapter(TmuRegisters(env.tmu)))],
    )
    env.sim.add(master)
    env.sim.add(demux)
    return SimpleNamespace(master=master, demux=demux, **vars(env))


def test_read_ctrl_register_over_regbus():
    env = regbus_env()
    results = []
    env.master.read(R.REG_CTRL, lambda rsp: results.append(rsp))
    env.sim.run_until(lambda s: env.master.idle, timeout=50)
    assert results[0].rdata == 1
    assert not results[0].error


def test_write_then_readback_over_regbus():
    env = regbus_env()
    env.master.write(R.REG_SPAN_BASE, 500)
    results = []
    env.master.read(R.REG_SPAN_BASE, lambda rsp: results.append(rsp))
    env.sim.run_until(lambda s: env.master.idle, timeout=100)
    assert results[0].rdata == 500
    assert env.tmu.config.budgets.span.base == 500


def test_unmapped_address_returns_error():
    env = regbus_env()
    results = []
    env.master.read(0x9000, lambda rsp: results.append(rsp))
    env.sim.run_until(lambda s: env.master.idle, timeout=50)
    assert results[0].error
    assert env.demux.errors == 1


def test_readonly_register_write_returns_error():
    env = regbus_env()
    results = []
    env.master.write(R.REG_STATUS, 1, lambda rsp: results.append(rsp))
    env.sim.run_until(lambda s: env.master.idle, timeout=50)
    assert results[0].error


def test_requests_serialized_in_order():
    env = regbus_env()
    order = []
    env.master.read(R.REG_CTRL, lambda rsp: order.append(("ctrl", rsp.rdata)))
    env.master.read(R.REG_PRESCALE, lambda rsp: order.append(("pre", rsp.rdata)))
    env.master.write(R.REG_IRQ_CLEAR, 1, lambda rsp: order.append(("clr", rsp.error)))
    env.sim.run_until(lambda s: env.master.idle, timeout=100)
    assert [name for name, _ in order] == ["ctrl", "pre", "clr"]


def test_demux_counts_accesses():
    env = regbus_env()
    for _ in range(5):
        env.master.read(R.REG_CTRL)
    env.sim.run_until(lambda s: env.master.idle, timeout=200)
    assert env.demux.accesses == 5
    assert len(env.master.responses) == 5


def test_cheshire_with_regbus_recovers_via_bus():
    soc = CheshireSoC(system_tmu_config(Variant.FULL), use_regbus=True)
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(250)
    assert soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
    assert soc.sim.run_until(lambda s: len(soc.cpu.recoveries) == 1, timeout=5_000)
    record = soc.cpu.recoveries[0]
    assert record.fault_kind_code != 0
    assert record.status & 1  # irq was pending when STATUS was read
    assert soc.regbus_demux.accesses >= 3  # status, kind, clear
    assert not soc.tmu.irq_pending  # cleared through the bus
    assert soc.sim.run_until(lambda s: soc.all_idle, timeout=5_000)


def test_regbus_recovery_slower_than_direct():
    def recovery_cycle(use_regbus):
        soc = CheshireSoC(
            system_tmu_config(Variant.FULL), use_regbus=use_regbus
        )
        soc.ethernet.faults.deaf_aw = True
        soc.send_ethernet_frame(250)
        soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
        return soc.sim.run_until(
            lambda s: len(soc.cpu.recoveries) == 1, timeout=5_000
        )

    assert recovery_cycle(True) > recovery_cycle(False)
