"""System-level tests: the Cheshire assembly and the Fig. 11 experiment."""

import pytest

from repro.faults.types import InjectionStage
from repro.soc.cheshire import (
    ETHERNET_BASE,
    SYSTEM_FC_BUDGETS,
    SYSTEM_TC_BUDGET,
    CheshireSoC,
    system_budget_policy,
    system_tmu_config,
)
from repro.soc.experiment import FIG11_STAGES, run_system_injection
from repro.tmu.config import Variant
from repro.tmu.phases import WritePhase


def test_system_budget_policy_matches_paper_numbers():
    policy = system_budget_policy(frame_beats=250)
    assert policy.span_budget(250) == SYSTEM_TC_BUDGET == 320
    assert policy.write_phase_budget(WritePhase.AW_HANDSHAKE, 250) == 10
    assert policy.write_phase_budget(WritePhase.W_ENTRY, 250) == 20
    assert policy.write_phase_budget(WritePhase.W_FIRST_HS, 250) == 10
    assert policy.write_phase_budget(WritePhase.W_DATA, 250) == 250
    assert policy.write_phase_budget(WritePhase.B_WAIT, 250) == 10
    assert policy.write_phase_budget(WritePhase.B_HANDSHAKE, 250) == 20
    # Fc per-phase budgets sum to the Tc whole-transaction budget.
    assert sum(SYSTEM_FC_BUDGETS.values()) == SYSTEM_TC_BUDGET


def test_ethernet_frame_healthy_run():
    soc = CheshireSoC(system_tmu_config(Variant.FULL))
    soc.send_ethernet_frame(250)
    done = soc.run_until_idle()
    assert done is not None
    assert soc.ethernet.frames_sent == 1
    assert soc.ethernet.beats_received == 250
    assert soc.tmu.faults_handled == 0
    assert soc.dma.completed[0].resp.name == "OKAY"


def test_frame_with_background_traffic_no_false_positives():
    soc = CheshireSoC(system_tmu_config(Variant.FULL))
    soc.send_ethernet_frame(250)
    soc.submit_background_traffic(15, manager=0)
    soc.submit_background_traffic(15, manager=1)
    assert soc.run_until_idle() is not None
    assert soc.tmu.faults_handled == 0
    assert all(m.surprises == [] for m in soc.managers)
    assert len(soc.cva6[0].completed) == 15
    assert len(soc.cva6[1].completed) == 15


def test_ethernet_address_decode():
    soc = CheshireSoC()
    assert soc.xbar.route(ETHERNET_BASE) == 2
    assert soc.xbar.route(0x8000_0000) == 0


@pytest.mark.parametrize(
    "stage", FIG11_STAGES, ids=[stage.value for stage in FIG11_STAGES]
)
def test_fig11_full_counter_latency_matches_phase_budget(stage):
    expected = {
        InjectionStage.AW_READY_MISSING: 10,
        InjectionStage.W_VALID_MISSING: 20,
        InjectionStage.W_READY_MISSING: 10,
        InjectionStage.DATA_TRANSFER_STALL: 250,
        InjectionStage.WLAST_TO_BVALID: 10,
        InjectionStage.B_READY_MISSING: 20,
    }[stage]
    result = run_system_injection(Variant.FULL, stage)
    assert result.fig11_latency == pytest.approx(expected, abs=2)
    assert result.recovered
    assert result.ethernet_resets == 1


@pytest.mark.parametrize(
    "stage", FIG11_STAGES, ids=[stage.value for stage in FIG11_STAGES]
)
def test_fig11_tiny_counter_always_full_budget(stage):
    result = run_system_injection(Variant.TINY, stage)
    assert result.latency_from_start == pytest.approx(SYSTEM_TC_BUDGET, abs=2)
    assert result.recovered
    assert result.ethernet_resets == 1


def test_system_recovery_interrupt_serviced_by_cpu():
    result = run_system_injection(Variant.FULL, InjectionStage.WLAST_TO_BVALID)
    assert result.cpu_recoveries == 1


def test_system_resumes_after_recovery():
    """After reset + recovery, a second frame transmits cleanly."""
    soc = CheshireSoC(system_tmu_config(Variant.FULL))
    soc.ethernet.faults.mute_b = True
    soc.send_ethernet_frame(250)
    assert soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
    assert soc.sim.run_until(
        lambda s: soc.all_idle and soc.tmu.state.value == "monitor", timeout=5_000
    )
    frames_before = soc.ethernet.frames_sent
    soc.send_ethernet_frame(250)
    assert soc.run_until_idle() is not None
    assert soc.ethernet.frames_sent == frames_before + 1
    assert soc.dma.completed[-1].resp.name == "OKAY"
    assert soc.ethernet.resets_taken == 1
