"""Mixed-criticality deployment: Fc on Ethernet, Tc on DRAM (paper §IV)."""

from repro.soc.cheshire import CheshireSoC, system_tmu_config
from repro.tmu.config import Variant


def dual_soc():
    return CheshireSoC(
        system_tmu_config(Variant.FULL),
        monitor_dram=True,
        dram_tmu_config=system_tmu_config(Variant.TINY),
    )


def test_dual_monitor_healthy_traffic():
    soc = dual_soc()
    soc.send_ethernet_frame(250)
    soc.submit_background_traffic(20, manager=0)
    assert soc.run_until_idle() is not None
    assert soc.tmu.faults_handled == 0
    assert soc.dram_tmu.faults_handled == 0
    assert len(soc.cva6[0].completed) == 20
    assert soc.ethernet.frames_sent == 1


def test_dram_fault_detected_by_dram_tmu_only():
    soc = dual_soc()
    soc.dram.faults.mute_b = True
    soc.submit_background_traffic(5, manager=0)
    soc.send_ethernet_frame(250)
    assert soc.sim.run_until(lambda s: soc.dram_tmu.irq.value, timeout=20_000)
    assert soc.dram_tmu.faults_handled == 1
    # The Ethernet path is unaffected: its frame completes cleanly.
    assert soc.sim.run_until(lambda s: soc.dma.idle, timeout=20_000)
    assert soc.dma.completed[-1].resp.name == "OKAY"
    assert soc.tmu.faults_handled == 0
    assert soc.sim.run_until(lambda s: soc.dram.resets_taken == 1, timeout=5_000)


def test_ethernet_fault_leaves_dram_traffic_untouched():
    soc = dual_soc()
    soc.ethernet.faults.deaf_aw = True
    soc.send_ethernet_frame(250)
    soc.submit_background_traffic(10, manager=1)
    assert soc.sim.run_until(lambda s: soc.tmu.irq.value, timeout=20_000)
    assert soc.sim.run_until(lambda s: soc.cva6[1].idle, timeout=20_000)
    assert all(t.resp.name == "OKAY" for t in soc.cva6[1].completed)
    assert soc.dram_tmu.faults_handled == 0
    assert soc.dram.resets_taken == 0


def test_both_domains_fault_and_recover_independently():
    soc = dual_soc()
    soc.ethernet.faults.mute_b = True
    soc.dram.faults.mute_b = True
    soc.send_ethernet_frame(250)
    soc.submit_background_traffic(3, manager=0)
    assert soc.sim.run_until(
        lambda s: soc.tmu.faults_handled == 1 and soc.dram_tmu.faults_handled == 1,
        timeout=30_000,
    )
    assert soc.sim.run_until(
        lambda s: soc.ethernet.resets_taken == 1 and soc.dram.resets_taken == 1,
        timeout=20_000,
    )
    assert soc.sim.run_until(lambda s: soc.all_idle, timeout=20_000)
    # The PLIC saw interrupts from both monitors.
    assert soc.plic.irq_counts["tmu"] == 1
    assert soc.plic.irq_counts["dram_tmu"] == 1
    # The CPU serviced both.
    assert soc.sim.run_until(lambda s: len(soc.cpu.recoveries) == 2, timeout=10_000)
