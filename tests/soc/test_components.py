"""Tests for SoC building blocks: reset unit, PLIC, Ethernet MAC, DMA."""

from types import SimpleNamespace

import pytest

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.types import AxiDir
from repro.sim.kernel import Simulator
from repro.sim.signal import Wire
from repro.soc.dma import DmaDescriptor, DmaEngine
from repro.soc.ethernet import EthernetMac
from repro.soc.plic import Plic
from repro.soc.reset_unit import ResetUnit


# ---------------------------------------------------------------------------
# Reset unit
# ---------------------------------------------------------------------------
def reset_env(duration=4):
    sim = Simulator()
    req = Wire("req", False)
    ack = Wire("ack", False)
    bus = AxiInterface("bus")
    subordinate = Subordinate("subordinate", bus)
    unit = ResetUnit("unit", req, ack, subordinate, reset_duration=duration)
    sim.add(subordinate)
    sim.add(unit)
    return SimpleNamespace(sim=sim, req=req, ack=ack, sub=subordinate, unit=unit)


def test_reset_unit_idle_without_request():
    env = reset_env()
    env.sim.run(20)
    assert env.unit.resets_issued == 0
    assert not env.ack.value


def test_reset_unit_four_phase_handshake():
    env = reset_env(duration=3)
    env.req.value = True
    env.sim.run(1)  # request sampled
    env.sim.run(3)  # reset held
    assert env.sub.resets_taken == 1
    done = env.sim.run_until(lambda s: env.ack.value, timeout=10)
    assert done is not None
    env.req.value = False
    env.sim.run(2)
    assert not env.ack.value
    assert env.unit.resets_issued == 1


def test_reset_unit_duration_validated():
    with pytest.raises(ValueError):
        ResetUnit("bad", Wire("r"), Wire("a"), None, reset_duration=0)


def test_reset_unit_without_subordinate_still_acks():
    sim = Simulator()
    req, ack = Wire("req", False), Wire("ack", False)
    unit = ResetUnit("unit", req, ack, None, reset_duration=2)
    sim.add(unit)
    req.value = True
    assert sim.run_until(lambda s: ack.value, timeout=10)


# ---------------------------------------------------------------------------
# PLIC
# ---------------------------------------------------------------------------
def test_plic_latches_and_claims():
    sim = Simulator()
    plic = Plic("plic")
    irq = Wire("irq", False)
    source = plic.connect(irq, "tmu")
    sim.add(plic)
    sim.run(3)
    assert plic.claim() is None
    irq.value = True
    sim.run(1)
    assert plic.any_pending
    claimed = plic.claim()
    assert claimed == source
    assert plic.source_name(claimed) == "tmu"
    assert plic.irq_counts["tmu"] == 1


def test_plic_no_reraise_while_claimed():
    sim = Simulator()
    plic = Plic("plic")
    irq = Wire("irq", False)
    source = plic.connect(irq, "tmu")
    sim.add(plic)
    irq.value = True
    sim.run(1)
    plic.claim()
    sim.run(5)  # level still high, but claimed: no new pend
    assert not plic.any_pending
    plic.complete(source)
    sim.run(1)  # level still high: re-raises after completion
    assert plic.any_pending


def test_plic_priority_lowest_id_first():
    sim = Simulator()
    plic = Plic("plic")
    a, b = Wire("a", False), Wire("b", False)
    plic.connect(a, "a")
    plic.connect(b, "b")
    sim.add(plic)
    a.value = True
    b.value = True
    sim.run(1)
    assert plic.source_name(plic.claim()) == "a"
    assert plic.source_name(plic.claim()) == "b"


def test_plic_complete_validates_source():
    plic = Plic("plic")
    with pytest.raises(ValueError):
        plic.complete(3)


# ---------------------------------------------------------------------------
# Ethernet MAC
# ---------------------------------------------------------------------------
def eth_env():
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    mac = EthernetMac("mac", bus)
    sim.add(manager)
    sim.add(mac)
    return SimpleNamespace(sim=sim, manager=manager, mac=mac)


def test_ethernet_counts_frames_and_beats():
    from repro.axi.traffic import write_spec

    env = eth_env()
    env.manager.submit(write_spec(0, EthernetMac.TX_BUFFER_OFFSET, beats=16))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert env.mac.frames_sent == 1
    assert env.mac.beats_received == 16


def test_ethernet_tx_buffer_drains_at_line_rate():
    from repro.axi.traffic import write_spec

    env = eth_env()
    env.manager.submit(write_spec(0, 0, beats=32))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    buffered = env.mac.tx_beats_buffered
    assert buffered > 0
    env.sim.run(int(buffered / env.mac.line_rate) + 2)
    assert env.mac.tx_beats_buffered == 0


def test_ethernet_reset_flushes_tx_buffer():
    from repro.axi.traffic import write_spec

    env = eth_env()
    env.manager.submit(write_spec(0, 0, beats=32))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    env.mac.hw_reset.value = True
    env.sim.run(1)
    assert env.mac.tx_beats_buffered == 0


# ---------------------------------------------------------------------------
# DMA engine
# ---------------------------------------------------------------------------
def dma_env():
    sim = Simulator()
    bus = AxiInterface("bus")
    dma = DmaEngine("dma", bus)
    subordinate = Subordinate("subordinate", bus)
    sim.add(dma)
    sim.add(subordinate)
    return SimpleNamespace(sim=sim, dma=dma, sub=subordinate)


def test_dma_single_burst_descriptor():
    env = dma_env()
    bursts = env.dma.enqueue_descriptor(DmaDescriptor(dst=0x1000, length_bytes=128 * 8))
    assert bursts == 1
    assert env.sim.run_until(lambda s: env.dma.idle, timeout=2_000)
    assert env.dma.descriptors_done == 1


def test_dma_splits_at_256_beats():
    env = dma_env()
    # 300 beats of 8 bytes: must split into >= 2 bursts.
    bursts = env.dma.enqueue_descriptor(DmaDescriptor(dst=0x0, length_bytes=300 * 8))
    assert bursts >= 2
    assert env.sim.run_until(lambda s: env.dma.idle, timeout=5_000)
    assert env.dma.descriptors_done == 1
    assert env.sub.writes_done == bursts


def test_dma_respects_4k_boundaries():
    from repro.axi.types import crosses_4k_boundary

    env = dma_env()
    env.dma.enqueue_descriptor(DmaDescriptor(dst=0xF80, length_bytes=64 * 8))
    seen = []
    env.sim.add_probe(
        lambda sim: seen.append(env.dma.bus.aw.payload.value)
        if env.dma.bus.aw.fired()
        else None
    )
    assert env.sim.run_until(lambda s: env.dma.idle, timeout=5_000)
    for beat in seen:
        assert not crosses_4k_boundary(beat.addr, beat.len, beat.size, beat.burst)


def test_dma_validates_length():
    env = dma_env()
    with pytest.raises(ValueError):
        env.dma.enqueue_descriptor(DmaDescriptor(dst=0, length_bytes=13))
    with pytest.raises(ValueError):
        env.dma.enqueue_descriptor(DmaDescriptor(dst=0, length_bytes=0))


def test_dma_read_descriptor():
    env = dma_env()
    env.sub.memory.write_word(0x100, 0xABCD, 8)
    env.dma.enqueue_descriptor(
        DmaDescriptor(dst=0x100, length_bytes=8, direction=AxiDir.READ)
    )
    assert env.sim.run_until(lambda s: env.dma.idle, timeout=2_000)
    assert env.dma.completed[0].data == [0xABCD]
