"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.sim.kernel import Simulator
from repro.soc.reset_unit import ResetUnit
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig
from repro.tmu.unit import TransactionMonitoringUnit


def fast_budgets() -> AdaptiveBudgetPolicy:
    """Small budgets so timeout tests run in tens of cycles."""
    return AdaptiveBudgetPolicy(
        PhaseBudgets(
            aw_handshake=10,
            w_entry=20,
            w_first_hs=10,
            w_data_base=4,
            w_data_per_beat=4,
            b_wait=10,
            b_handshake=20,
            ar_handshake=10,
            r_entry=20,
            r_first_hs=10,
            r_data_base=4,
            r_data_per_beat=4,
            queue_factor=8,
        ),
        SpanBudgets(base=60, per_beat=2, queue_factor=8),
    )


def build_loop(
    config: TmuConfig = None,
    with_reset_unit: bool = True,
    reset_duration: int = 4,
    **sub_kwargs,
) -> SimpleNamespace:
    """Canonical manager ↔ TMU ↔ subordinate closed loop."""
    if config is None:
        config = TmuConfig(budgets=fast_budgets())
    sim = Simulator()
    host = AxiInterface("host")
    device = AxiInterface("device")
    manager = Manager("manager", host)
    tmu = TransactionMonitoringUnit(
        "tmu",
        host,
        device,
        config,
        standalone_ack_after=None if with_reset_unit else reset_duration,
    )
    subordinate = Subordinate("subordinate", device, **sub_kwargs)
    sim.add(manager)
    sim.add(tmu)
    sim.add(subordinate)
    reset_unit = None
    if with_reset_unit:
        reset_unit = ResetUnit(
            "reset_unit",
            tmu.reset_req,
            tmu.reset_ack,
            subordinate,
            reset_duration=reset_duration,
        )
        sim.add(reset_unit)
    return SimpleNamespace(
        sim=sim,
        host=host,
        device=device,
        manager=manager,
        tmu=tmu,
        subordinate=subordinate,
        reset_unit=reset_unit,
        config=config,
    )


@pytest.fixture
def loop():
    """Factory fixture: build a closed TMU loop with optional overrides."""
    return build_loop
