"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # artifacts (VCD dumps) land in a scratch dir
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
