"""Tests for structured result export."""

import json

from tests.conftest import build_loop, fast_budgets

from repro.analysis.export import (
    area_report_dict,
    campaign_dict,
    injection_result_dict,
    perf_log_dict,
    scheduler_stats_dict,
    to_json,
)
from repro.area.model import estimate_area
from repro.axi.traffic import write_spec
from repro.faults.campaign import run_campaign, run_injection
from repro.faults.types import InjectionStage
from repro.tmu.config import Variant, full_config


def test_area_report_roundtrips_through_json():
    report = estimate_area(Variant.TINY, 32, 32, sticky=True)
    payload = area_report_dict(report)
    parsed = json.loads(to_json(payload))
    assert parsed["variant"] == "tiny"
    assert parsed["outstanding"] == 32
    assert parsed["total_um2"] == report.total_um2
    assert sum(parsed["breakdown_um2"].values()) == report.total_um2


def test_perf_log_export_after_traffic():
    env = build_loop()
    env.manager.submit_all([write_spec(0, 0x100 * i, beats=4) for i in range(1, 6)])
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    payload = perf_log_dict(env.tmu.write_guard.perf, window_cycles=env.sim.cycle)
    parsed = json.loads(to_json(payload))
    assert parsed["completed"] == 5
    assert parsed["beats"] == 20
    assert parsed["latency"]["max"] >= parsed["latency"]["min"]
    assert sum(parsed["latency_histogram"].values()) == 5
    assert "WFIRST_WLAST" in parsed["phases"]
    assert parsed["throughput_beats_per_cycle"] > 0


def test_injection_result_export():
    result = run_injection(
        full_config(budgets=fast_budgets()), InjectionStage.WLAST_TO_BVALID, beats=4
    )
    parsed = json.loads(to_json(injection_result_dict(result)))
    assert parsed["detected"] is True
    assert parsed["recovered"] is True
    assert parsed["fault_phase"] == "WLAST_BVLD"
    assert parsed["stage"] == "wlast_bvalid_error"


def test_campaign_scheduler_stats_sum_over_runs():
    """The wake/leap aggregate equals the per-run sums, and is nonzero
    for a stall campaign (whose idle spans the kernel provably leaps)."""
    results = run_campaign(
        [full_config(budgets=fast_budgets())],
        (InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID),
        beats=4,
        seeds=(0, 1),
    )
    payload = campaign_dict(results)
    assert payload["scheduler"] == scheduler_stats_dict(results)
    assert payload["scheduler"]["leaps"] == sum(r.sim_leaps for r in results)
    assert payload["scheduler"]["cycles_leaped"] == sum(
        r.sim_cycles_leaped for r in results
    )
    assert payload["scheduler"]["leaps"] > 0
    assert payload["scheduler"]["cycles_leaped"] >= payload["scheduler"]["leaps"]
    # Per-result entries stay kernel-invariant: no leap fields in them.
    assert "sim_leaps" not in payload["results"][0]


def test_scheduler_stats_tolerate_foreign_results():
    class Legacy:  # a result predating the scheduler-stat fields
        pass

    assert scheduler_stats_dict([Legacy()]) == {"leaps": 0, "cycles_leaped": 0}


def test_export_list_of_results():
    results = [
        injection_result_dict(
            run_injection(
                full_config(budgets=fast_budgets()), stage, beats=4
            )
        )
        for stage in (InjectionStage.AW_READY_MISSING, InjectionStage.R_VALID_MISSING)
    ]
    parsed = json.loads(to_json(results))
    assert len(parsed) == 2
    assert {entry["stage"] for entry in parsed} == {
        "aw_stage_error", "r_stage_timeout",
    }


# ----------------------------------------------------------------------
# Streamed campaign writer: byte-identical to the in-memory exporter
# ----------------------------------------------------------------------
def _stream(results, spec=None):
    import io

    from repro.analysis.export import write_campaign_json

    buffer = io.StringIO()
    count = write_campaign_json(results, buffer, spec=spec)
    return buffer.getvalue(), count


def _ip_results():
    return run_campaign(
        [full_config(budgets=fast_budgets())],
        (InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID),
        beats=4,
        seeds=(0, 1),
    )


def test_streamed_campaign_json_matches_dict_export():
    results = _ip_results()
    text, count = _stream(results)
    assert text == to_json(campaign_dict(results))
    assert count == len(results)


def test_streamed_campaign_json_with_spec():
    from repro.orchestrate import CampaignSpec

    spec = CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        (InjectionStage.AW_READY_MISSING, InjectionStage.WLAST_TO_BVALID),
        beats=4,
        seeds=(0, 1),
    )
    results = _ip_results()
    text, _count = _stream(results, spec=spec)
    assert text == to_json(campaign_dict(results, spec=spec))


def test_streamed_campaign_json_system_results():
    from repro.soc.experiment import run_fig11

    series = run_fig11(beats=16)
    flat = series["full"] + series["tiny"]
    text, count = _stream(flat)
    assert text == to_json(campaign_dict(flat))
    assert count == len(flat)


def test_streamed_campaign_json_empty():
    text, count = _stream([])
    assert text == to_json(campaign_dict([]))
    assert count == 0


def test_streamed_campaign_json_accepts_iterator_factory():
    # A zero-arg callable returning fresh iterators: the two-pass writer
    # never needs the results materialized as a list.
    results = _ip_results()
    text, count = _stream(lambda: iter(results))
    assert text == to_json(campaign_dict(results))
    assert count == len(results)
