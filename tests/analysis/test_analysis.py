"""Tests for the analysis helpers (probes and report rendering)."""

import pytest

from repro.analysis.latency import IrqLatencyProbe, summarize_latencies
from repro.analysis.report import render_bar_chart, render_series, render_table
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.signal import Wire


class PulsingIrq(Component):
    def __init__(self, name, pulse_cycles):
        super().__init__(name)
        self.irq = Wire(f"{name}.irq", False)
        self.pulse_cycles = set(pulse_cycles)
        self._cycle = 0

    def wires(self):
        yield self.irq

    def drive(self):
        self.irq.value = self._cycle in self.pulse_cycles

    def update(self):
        self._cycle += 1


def test_irq_probe_records_rising_edges_only():
    sim = Simulator()
    src = sim.add(PulsingIrq("src", {3, 4, 5, 9}))
    probe = IrqLatencyProbe(src.irq)
    sim.add_probe(probe)
    sim.run(15)
    # Pulses at 3-5 are one assertion; 9 is a second.
    assert len(probe.assert_cycles) == 2
    assert probe.first_assertion == probe.assert_cycles[0]


def test_irq_probe_empty():
    probe = IrqLatencyProbe(Wire("w", False))
    assert probe.first_assertion is None


def test_summarize_latencies():
    summary = summarize_latencies([10, None, 30, 20])
    assert summary.count == 4
    assert summary.detected == 3
    assert summary.minimum == 10
    assert summary.maximum == 30
    assert summary.mean == 20
    assert summary.coverage == 0.75


def test_summarize_empty():
    summary = summarize_latencies([])
    assert summary.count == 0
    assert summary.coverage == 0.0
    assert summary.mean is None


def test_render_table_alignment_and_content():
    text = render_table(
        ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(set(len(line) for line in lines[2:])) <= 2  # aligned rows


def test_render_table_validates_row_width():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_render_series():
    text = render_series(
        "n", [1, 2], [("tc", [10.0, 20.0]), ("fc", [30.0, 40.0])]
    )
    assert "tc" in text and "fc" in text
    assert "10.0" in text and "40.0" in text


def test_render_bar_chart_scales_to_width():
    text = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10  # the max bar fills the width
    assert lines[0].count("#") == 5


def test_render_bar_chart_validates():
    with pytest.raises(ValueError):
        render_bar_chart(["a"], [1.0, 2.0])


def test_render_bar_chart_handles_zeros():
    text = render_bar_chart(["z"], [0.0])
    assert "0" in text
