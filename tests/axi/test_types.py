"""Unit tests for AXI4 types and burst arithmetic."""

import pytest

from repro.axi.types import (
    BOUNDARY_4K,
    MAX_BURST_LEN,
    BurstType,
    Resp,
    aligned,
    axlen_of,
    axsize_of,
    beats_of,
    burst_addresses,
    burst_bytes,
    bytes_per_beat,
    crosses_4k_boundary,
    is_legal_wrap_len,
    wrap_boundary,
)


def test_beats_axlen_roundtrip():
    for beats in (1, 2, 16, 256):
        assert beats_of(axlen_of(beats)) == beats


def test_beats_of_rejects_out_of_range():
    with pytest.raises(ValueError):
        beats_of(-1)
    with pytest.raises(ValueError):
        beats_of(MAX_BURST_LEN)


def test_axlen_of_rejects_out_of_range():
    with pytest.raises(ValueError):
        axlen_of(0)
    with pytest.raises(ValueError):
        axlen_of(MAX_BURST_LEN + 1)


def test_bytes_per_beat_powers_of_two():
    assert [bytes_per_beat(s) for s in range(8)] == [1, 2, 4, 8, 16, 32, 64, 128]


def test_axsize_roundtrip():
    for size in range(8):
        assert axsize_of(bytes_per_beat(size)) == size


def test_axsize_of_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        axsize_of(3)
    with pytest.raises(ValueError):
        axsize_of(0)


def test_burst_bytes():
    assert burst_bytes(axlen_of(4), 3) == 32


def test_4k_crossing_detection():
    # 8 beats x 8 bytes starting 32 bytes below the boundary: crosses.
    addr = BOUNDARY_4K - 32
    assert crosses_4k_boundary(addr, axlen_of(8), 3, BurstType.INCR)
    assert not crosses_4k_boundary(addr, axlen_of(4), 3, BurstType.INCR)
    # FIXED bursts never cross.
    assert not crosses_4k_boundary(addr, axlen_of(8), 3, BurstType.FIXED)


def test_wrap_boundary_aligns_to_burst_size():
    # 4 beats x 8 bytes = 32-byte window.
    assert wrap_boundary(0x48, axlen_of(4), 3) == 0x40


def test_legal_wrap_lengths():
    legal = [axlen_of(b) for b in (2, 4, 8, 16)]
    for axlen in legal:
        assert is_legal_wrap_len(axlen)
    assert not is_legal_wrap_len(axlen_of(3))
    assert not is_legal_wrap_len(axlen_of(32))


def test_aligned():
    assert aligned(0x40, 3)
    assert not aligned(0x41, 3)


def test_burst_addresses_incr():
    assert burst_addresses(0x100, axlen_of(4), 3, BurstType.INCR) == [
        0x100, 0x108, 0x110, 0x118,
    ]


def test_burst_addresses_fixed():
    assert burst_addresses(0x100, axlen_of(3), 3, BurstType.FIXED) == [0x100] * 3


def test_burst_addresses_wrap():
    # 4-beat x 8-byte WRAP starting mid-window wraps to the window base.
    addrs = burst_addresses(0x110, axlen_of(4), 3, BurstType.WRAP)
    assert addrs == [0x110, 0x118, 0x100, 0x108]


def test_resp_error_classification():
    assert Resp.SLVERR.is_error and Resp.DECERR.is_error
    assert not Resp.OKAY.is_error and not Resp.EXOKAY.is_error
