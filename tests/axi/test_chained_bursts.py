"""Burst chaining (paper §II-F): workloads and adaptive-budget behaviour."""

import pytest

from tests.conftest import build_loop, fast_budgets

from repro.axi.traffic import chained_bursts
from repro.axi.types import AxiDir, Resp
from repro.tmu.budget import FixedBudgetPolicy
from repro.tmu.config import TmuConfig, Variant


def test_chain_addresses_contiguous():
    specs = chained_bursts(0, 0x1000, [4, 8, 2])
    assert [spec.addr for spec in specs] == [0x1000, 0x1020, 0x1060]
    assert [spec.beats for spec in specs] == [4, 8, 2]
    assert all(spec.direction == AxiDir.WRITE for spec in specs)


def test_chain_validates_lengths():
    with pytest.raises(ValueError):
        chained_bursts(0, 0, [0])
    with pytest.raises(ValueError):
        chained_bursts(0, 0, [300])


def test_chained_bursts_no_false_timeouts_with_adaptive_budgets():
    """The §II-F scenario: chained bursts must not trip the monitor."""
    env = build_loop(TmuConfig(variant=Variant.TINY, budgets=fast_budgets()))
    env.manager.submit_all(chained_bursts(0, 0x1000, [16, 16, 16, 16]))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=10_000)
    assert env.tmu.faults_handled == 0
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)
    assert len(env.manager.completed) == 4


def test_chained_bursts_trip_fixed_budgets():
    """Without adaptation, the queued chain exceeds the fixed budget."""
    config = TmuConfig(
        variant=Variant.TINY,
        budgets=FixedBudgetPolicy(span_budget_cycles=24),
        max_txn_cycles=1024,
    )
    env = build_loop(config)
    env.manager.submit_all(chained_bursts(0, 0x1000, [16, 16, 16, 16]))
    env.sim.run_until(lambda s: env.manager.idle, timeout=10_000)
    assert env.tmu.faults_handled >= 1  # false positives, by construction


def test_chain_data_lands_contiguously_in_memory():
    env = build_loop()
    specs = chained_bursts(1, 0x2000, [2, 2])
    specs[0].data = [0x11, 0x22]
    specs[1].data = [0x33, 0x44]
    env.manager.submit_all(specs)
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    memory = env.subordinate.memory
    assert [memory.read_word(0x2000 + 8 * i, 8) for i in range(4)] == [
        0x11, 0x22, 0x33, 0x44,
    ]
