"""Unit tests for workload generation."""

import pytest

from repro.axi.traffic import (
    RandomTraffic,
    TransactionSpec,
    dma_stream,
    ethernet_frame_spec,
    read_spec,
    write_spec,
)
from repro.axi.types import AxiDir, crosses_4k_boundary


def test_write_spec_geometry():
    spec = write_spec(3, 0x100, beats=8, size=2)
    assert spec.direction == AxiDir.WRITE
    assert spec.beats == 8
    assert spec.len == 7
    assert spec.full_strb() == 0xF  # 4-byte beats


def test_read_spec_direction():
    assert read_spec(0, 0).direction == AxiDir.READ


def test_write_data_deterministic_and_sized():
    spec = write_spec(1, 0x200, beats=4)
    data1, data2 = spec.write_data(), spec.write_data()
    assert data1 == data2
    assert len(data1) == 4
    assert all(0 <= beat < (1 << 64) for beat in data1)


def test_explicit_data_length_checked():
    spec = TransactionSpec(AxiDir.WRITE, 0, 0, len=3, data=[1, 2])
    with pytest.raises(ValueError):
        spec.write_data()


def test_random_traffic_reproducible_by_seed():
    a = RandomTraffic(seed=42).take(20)
    b = RandomTraffic(seed=42).take(20)
    assert [(s.addr, s.txn_id, s.len) for s in a] == [
        (s.addr, s.txn_id, s.len) for s in b
    ]


def test_random_traffic_ids_from_configured_set():
    specs = RandomTraffic(ids=(5, 9), seed=0).take(50)
    assert {spec.txn_id for spec in specs} <= {5, 9}


def test_random_traffic_never_crosses_4k():
    for spec in RandomTraffic(max_beats=32, seed=7).take(200):
        assert not crosses_4k_boundary(spec.addr, spec.len, spec.size, spec.burst)


def test_random_traffic_requires_ids():
    with pytest.raises(ValueError):
        RandomTraffic(ids=())


def test_dma_stream_contiguous_frames():
    specs = dma_stream(2, 0x1000, frames=3, beats_per_frame=16)
    assert len(specs) == 3
    assert [spec.addr for spec in specs] == [0x1000, 0x1080, 0x1100]
    assert all(spec.beats == 16 for spec in specs)


def test_ethernet_frame_spec_matches_paper_workload():
    spec = ethernet_frame_spec()
    assert spec.beats == 250
    assert spec.size == 3  # 64-bit bus
    assert spec.direction == AxiDir.WRITE
