"""Narrow transfers: beats smaller than the 64-bit bus width."""

from types import SimpleNamespace

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.sim.kernel import Simulator


def loop():
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus)
    sim.add(manager)
    sim.add(subordinate)
    return SimpleNamespace(sim=sim, manager=manager, sub=subordinate)


def drain(env):
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)


def test_byte_transfers_size0():
    env = loop()
    env.manager.submit(
        write_spec(0, 0x100, beats=4, size=0, data=[0xA, 0xB, 0xC, 0xD])
    )
    drain(env)
    assert env.sub.memory.read(0x100, 4) == bytes([0xA, 0xB, 0xC, 0xD])


def test_halfword_transfers_size1():
    env = loop()
    env.manager.submit(
        write_spec(0, 0x200, beats=2, size=1, data=[0x1234, 0x5678])
    )
    drain(env)
    assert env.sub.memory.read_word(0x200, 2) == 0x1234
    assert env.sub.memory.read_word(0x202, 2) == 0x5678


def test_word_transfers_size2_roundtrip():
    env = loop()
    env.manager.submit(
        write_spec(0, 0x300, beats=4, size=2, data=[1, 2, 3, 4])
    )
    drain(env)
    env.manager.submit(read_spec(1, 0x300, beats=4, size=2))
    drain(env)
    assert env.manager.completed[-1].data == [1, 2, 3, 4]


def test_narrow_strobes_do_not_touch_neighbours():
    env = loop()
    env.sub.memory.write(0x400, b"\xff" * 16)
    env.manager.submit(write_spec(0, 0x404, beats=1, size=2, data=[0]))
    drain(env)
    # Only the 4 addressed bytes cleared; everything around stays 0xFF.
    assert env.sub.memory.read(0x400, 4) == b"\xff" * 4
    assert env.sub.memory.read(0x404, 4) == b"\x00" * 4
    assert env.sub.memory.read(0x408, 8) == b"\xff" * 8


def test_full_strb_width_matches_size():
    assert write_spec(0, 0, size=0).full_strb() == 0b1
    assert write_spec(0, 0, size=1).full_strb() == 0b11
    assert write_spec(0, 0, size=3).full_strb() == 0xFF


def test_narrow_traffic_through_tmu():
    from tests.conftest import build_loop

    env = build_loop()
    env.manager.submit(write_spec(0, 0x100, beats=8, size=0))
    env.manager.submit(read_spec(1, 0x100, beats=8, size=0))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.tmu.faults_handled == 0
    assert len(env.manager.completed) == 2
