"""Subordinate response reordering within a configurable window.

``reorder_depth=k`` lets the subordinate serve any matured response
among the first ``k`` outstanding per direction — interleaving R beats
across IDs and reordering B responses — while same-ID transactions
still complete in request order (the latitude AXI4 grants, and exactly
what the ``reorder_same_id`` fault breaks).
"""

from types import SimpleNamespace

from repro.axi import protocol as P
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.sim.kernel import Simulator


def direct_loop(strategy="dirty", with_checker=False, **sub_kwargs):
    sim = Simulator(strategy=strategy)
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **sub_kwargs)
    sim.add(manager)
    sim.add(subordinate)
    checker = None
    if with_checker:
        checker = P.ProtocolChecker("checker", bus)
        sim.add(checker)
    return SimpleNamespace(
        sim=sim, manager=manager, subordinate=subordinate, bus=bus,
        checker=checker,
    )


def r_id_sequence(env, timeout=5_000):
    sequence = []
    env.sim.add_probe(
        lambda sim: sequence.append(
            (env.bus.r.payload.value.id, env.bus.r.payload.value.last)
        )
        if env.bus.r.fired()
        else None
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=timeout)
    return sequence


def test_window_interleaves_reads_across_ids():
    env = direct_loop(reorder_depth=2)
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    sequence = r_id_sequence(env)
    ids = [txn_id for txn_id, _ in sequence]
    assert set(ids) == {0, 1}
    first_switch = next(i for i in range(1, len(ids)) if ids[i] != ids[i - 1])
    assert first_switch < 4  # switched mid-burst
    assert env.manager.surprises == []


def test_depth_one_preserves_strict_order():
    env = direct_loop(reorder_depth=1)
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    ids = [txn_id for txn_id, _ in r_id_sequence(env)]
    assert ids == [0, 0, 0, 0, 1, 1, 1, 1]


def test_same_id_reads_stay_in_order_inside_window():
    env = direct_loop(reorder_depth=4)
    env.manager.submit(read_spec(3, 0x100, beats=4))
    env.manager.submit(read_spec(3, 0x200, beats=4))
    sequence = r_id_sequence(env)
    lasts = [last for _, last in sequence]
    assert lasts[3] and lasts[7]
    assert not any(lasts[:3]) and not any(lasts[4:7])


def test_window_bounds_how_far_reordering_reaches():
    """A third read beyond a depth-2 window waits for a slot to open."""
    env = direct_loop(reorder_depth=2)
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    env.manager.submit(read_spec(2, 0x300, beats=4))
    sequence = r_id_sequence(env)
    first_last = next(i for i, (_, last) in enumerate(sequence) if last)
    early_ids = {txn_id for txn_id, _ in sequence[:first_last]}
    assert 2 not in early_ids  # outside the window until a burst retires
    assert {txn_id for txn_id, _ in sequence} == {0, 1, 2}


def test_reordered_reads_return_correct_data():
    env = direct_loop(reorder_depth=3)
    env.subordinate.memory.write(0x100, bytes(range(1, 33)))
    env.subordinate.memory.write(0x200, bytes(range(101, 133)))
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    by_id = {t.txn_id: t.data for t in env.manager.completed}
    assert by_id[0] == [
        int.from_bytes(bytes(range(1 + 8 * i, 9 + 8 * i)), "little")
        for i in range(4)
    ]
    assert by_id[1] == [
        int.from_bytes(bytes(range(101 + 8 * i, 109 + 8 * i)), "little")
        for i in range(4)
    ]


def test_write_responses_reorder_within_window():
    """B selection honours window, same-ID order, and the rr pointer."""
    env = direct_loop(reorder_depth=2)
    sub = env.subordinate
    sub._b_queue.extend([[0, 0], [1, 0], [2, 0]])
    sub._b_rr = 1
    assert sub._select_b_entry() == [1, 0]  # younger entry picked first
    sub._b_rr = 0
    assert sub._select_b_entry() == [0, 0]
    # Same-ID entries collapse to the oldest; the window skips to the
    # next distinct ID instead.
    sub._b_queue.clear()
    sub._b_queue.extend([[5, 0], [5, 0], [7, 0]])
    sub._b_rr = 1
    assert sub._select_b_entry() == [5, 0]
    assert sub._select_b_entry() is not sub._b_queue[1]
    # The reorder_same_id fault erases the constraint.
    sub.faults.reorder_same_id = True
    assert sub._select_b_entry() is sub._b_queue[1]


def test_reordered_writes_complete_and_land_in_memory():
    env = direct_loop(reorder_depth=3, b_latency=2, with_checker=True)
    for i in range(4):
        env.manager.submit(
            write_spec(i, 0x100 * (i + 1), beats=2, data=[i + 1, i + 10])
        )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert len(env.manager.completed) == 4
    for i in range(4):
        assert env.subordinate.memory.read_word(0x100 * (i + 1), 8) == i + 1
    assert env.checker.clean, env.checker.violations[:3]
    assert env.manager.surprises == []


def test_legal_reordering_is_protocol_clean():
    env = direct_loop(reorder_depth=3, r_gap=1, with_checker=True)
    for i in range(6):
        env.manager.submit(read_spec(i % 3, 0x100 * (i + 1), beats=3))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=10_000)
    assert env.checker.clean, env.checker.violations[:3]


def test_reorder_same_id_fault_is_detectable_on_the_wire():
    """Illegal same-ID interleaving leaves an RLAST fingerprint."""
    env = direct_loop(reorder_depth=2, with_checker=True)
    env.subordinate.faults.reorder_same_id = True
    env.manager.submit(read_spec(4, 0x100, beats=4))
    env.manager.submit(read_spec(4, 0x200, beats=3))
    env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.checker.count(P.ERRS_RLAST_POSITION) >= 1
    assert not env.checker.clean


def test_reorder_window_survives_verify_strategy():
    """Every wake path of the windowed subordinate holds up under the
    kernel's differential verify strategy, and the wire-level outcome is
    identical to the dirty scheduler's."""
    outcomes = {}
    for strategy in ("dirty", "verify"):
        env = direct_loop(
            strategy=strategy,
            reorder_depth=3,
            b_latency=4,
            r_latency=6,
            r_gap=1,
            ar_ready_delay=1,
        )
        env.subordinate.memory.write(0x300, bytes(range(64)))
        env.manager.submit(write_spec(0, 0x100, beats=2, data=[7, 8]))
        env.manager.submit(read_spec(1, 0x300, beats=4))
        env.manager.submit(read_spec(2, 0x300, beats=2))
        env.manager.submit(write_spec(1, 0x500, beats=1, data=[9]))
        assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
        outcomes[strategy] = (
            env.sim.cycle,
            [
                (t.txn_id, t.direction, tuple(t.data or ()))
                for t in env.manager.completed
            ],
        )
    assert outcomes["dirty"] == outcomes["verify"]
