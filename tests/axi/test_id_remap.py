"""Unit tests for the AXI ID remap table."""

import pytest

from repro.axi.id_remap import IdRemapTable


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        IdRemapTable(0)


def test_probe_proposes_lowest_free_slot():
    table = IdRemapTable(4)
    assert table.probe(100) == 0
    table.acquire(100)
    assert table.probe(200) == 1


def test_probe_is_pure():
    table = IdRemapTable(4)
    assert table.probe(7) == table.probe(7) == 0
    assert table.orig_of(0) is None  # probing commits nothing


def test_acquire_existing_mapping_reuses_slot():
    table = IdRemapTable(4)
    slot = table.acquire(55)
    assert table.acquire(55) == slot
    assert table.refs(slot) == 2


def test_release_recycles_at_zero_refs():
    table = IdRemapTable(2)
    slot = table.acquire(9)
    table.acquire(9)
    table.release(slot)
    assert table.orig_of(slot) == 9  # still one reference
    table.release(slot)
    assert table.orig_of(slot) is None
    assert table.probe(1234) == slot or table.probe(1234) == 0


def test_full_table_probe_returns_none():
    table = IdRemapTable(2)
    table.acquire(1)
    table.acquire(2)
    assert table.probe(3) is None
    # An already-mapped ID still resolves.
    assert table.probe(1) == 0


def test_acquire_on_full_table_raises():
    table = IdRemapTable(1)
    table.acquire(1)
    with pytest.raises(RuntimeError):
        table.acquire(2)


def test_release_unbound_slot_is_noop():
    table = IdRemapTable(2)
    table.release(0)
    assert table.refs(0) == 0


def test_release_out_of_range_raises():
    table = IdRemapTable(2)
    with pytest.raises(ValueError):
        table.release(5)


def test_clear_drops_all_mappings():
    table = IdRemapTable(4)
    for orig in (10, 20, 30):
        table.acquire(orig)
    table.clear()
    assert table.live_mappings == {}
    assert table.probe(99) == 0


def test_distinct_ids_get_distinct_slots():
    table = IdRemapTable(8)
    slots = [table.acquire(orig) for orig in range(0, 800, 100)]
    assert len(set(slots)) == len(slots)
