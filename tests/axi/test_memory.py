"""Unit tests for the sparse memory model."""

import pytest

from repro.axi.memory import SparseMemory


def test_unwritten_reads_return_fill():
    mem = SparseMemory(fill=0xAB)
    assert mem.read_byte(0x1234) == 0xAB
    assert mem.read(0, 4) == b"\xab\xab\xab\xab"
    assert mem.allocated_pages == 0  # reads allocate nothing


def test_fill_must_be_byte():
    with pytest.raises(ValueError):
        SparseMemory(fill=256)


def test_write_read_roundtrip():
    mem = SparseMemory()
    mem.write(0x100, b"hello")
    assert mem.read(0x100, 5) == b"hello"


def test_write_across_page_boundary():
    mem = SparseMemory(page_bits=4)  # 16-byte pages
    mem.write(14, b"abcd")
    assert mem.read(14, 4) == b"abcd"
    assert mem.allocated_pages == 2


def test_word_roundtrip_little_endian():
    mem = SparseMemory()
    mem.write_word(0x40, 0x1122334455667788, 8)
    assert mem.read_word(0x40, 8) == 0x1122334455667788
    assert mem.read_byte(0x40) == 0x88  # little-endian low byte first


def test_word_write_truncates_to_width():
    mem = SparseMemory()
    mem.write_word(0, 0x1FF, 1)
    assert mem.read_word(0, 1) == 0xFF


def test_masked_write_touches_enabled_lanes_only():
    mem = SparseMemory(fill=0)
    mem.write_word(0, 0xFFFFFFFFFFFFFFFF, 8)
    mem.write_masked(0, 0, strb=0x0F, width=8)
    assert mem.read_word(0, 8) == 0xFFFFFFFF00000000


def test_masked_write_single_lane():
    mem = SparseMemory(fill=0)
    mem.write_masked(0, 0xAABBCCDD, strb=0b0100, width=4)
    assert mem.read(0, 4) == bytes([0, 0, 0xBB, 0])


def test_pages_allocated_lazily_on_write():
    mem = SparseMemory(page_bits=12)
    mem.write_byte(0x0, 1)
    mem.write_byte(0x1000_0000, 2)
    assert mem.allocated_pages == 2
