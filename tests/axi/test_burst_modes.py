"""End-to-end tests for FIXED and WRAP burst modes."""

from types import SimpleNamespace

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.protocol import ProtocolChecker
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import TransactionSpec
from repro.axi.types import AxiDir, BurstType
from repro.sim.kernel import Simulator


def loop():
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus)
    checker = ProtocolChecker("checker", bus)
    for component in (manager, subordinate, checker):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, manager=manager, sub=subordinate, checker=checker
    )


def drain(env):
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)


def test_fixed_burst_writes_same_address():
    env = loop()
    env.manager.submit(
        TransactionSpec(
            AxiDir.WRITE, 0, 0x100, len=3, burst=BurstType.FIXED,
            data=[1, 2, 3, 4],
        )
    )
    drain(env)
    # FIXED: every beat lands on the same address; last write wins.
    assert env.sub.memory.read_word(0x100, 8) == 4
    assert env.sub.memory.read_word(0x108, 8) == 0
    assert env.checker.clean


def test_fixed_burst_read_replays_same_address():
    env = loop()
    env.sub.memory.write_word(0x200, 0xAA, 8)
    env.manager.submit(
        TransactionSpec(AxiDir.READ, 1, 0x200, len=2, burst=BurstType.FIXED)
    )
    drain(env)
    assert env.manager.completed[0].data == [0xAA, 0xAA, 0xAA]


def test_wrap_burst_wraps_within_window():
    env = loop()
    # 4-beat x 8-byte WRAP starting mid-window (0x110 in the 0x100-0x11F window).
    env.manager.submit(
        TransactionSpec(
            AxiDir.WRITE, 0, 0x110, len=3, burst=BurstType.WRAP,
            data=[0xD0, 0xD1, 0xD2, 0xD3],
        )
    )
    drain(env)
    assert env.sub.memory.read_word(0x110, 8) == 0xD0
    assert env.sub.memory.read_word(0x118, 8) == 0xD1
    assert env.sub.memory.read_word(0x100, 8) == 0xD2  # wrapped
    assert env.sub.memory.read_word(0x108, 8) == 0xD3
    assert env.checker.clean


def test_wrap_burst_read_roundtrip():
    env = loop()
    for i in range(4):
        env.sub.memory.write_word(0x300 + 8 * i, 0x50 + i, 8)
    env.manager.submit(
        TransactionSpec(AxiDir.READ, 2, 0x310, len=3, burst=BurstType.WRAP)
    )
    drain(env)
    assert env.manager.completed[0].data == [0x52, 0x53, 0x50, 0x51]


def test_wrap_bursts_through_tmu_no_false_positives():
    from tests.conftest import build_loop

    env = build_loop()
    env.manager.submit(
        TransactionSpec(
            AxiDir.WRITE, 0, 0x110, len=3, burst=BurstType.WRAP,
            data=[1, 2, 3, 4],
        )
    )
    env.manager.submit(
        TransactionSpec(AxiDir.READ, 1, 0x110, len=3, burst=BurstType.WRAP)
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.tmu.faults_handled == 0
    assert len(env.manager.completed) == 2
