"""Integration tests for the AXI crossbar."""

from types import SimpleNamespace

import pytest

from repro.axi.crossbar import AddressRange, Crossbar, extend_id, split_id
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.axi.types import Resp
from repro.sim.kernel import Simulator

SUB0 = AddressRange(0x0000_0000, 0x10000)
SUB1 = AddressRange(0x8000_0000, 0x10000)


def fabric(n_managers=2, sub_kwargs=None):
    sim = Simulator()
    mgr_buses = [AxiInterface(f"m{i}") for i in range(n_managers)]
    managers = [Manager(f"mgr{i}", bus) for i, bus in enumerate(mgr_buses)]
    sub_buses = [AxiInterface("s0"), AxiInterface("s1")]
    kwargs = sub_kwargs or {}
    subs = [
        Subordinate("sub0", sub_buses[0], **kwargs),
        Subordinate("sub1", sub_buses[1], **kwargs),
    ]
    xbar = Crossbar(
        "xbar", mgr_buses, [(sub_buses[0], SUB0), (sub_buses[1], SUB1)]
    )
    for component in (*managers, xbar, *subs):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, managers=managers, subs=subs, xbar=xbar, buses=mgr_buses
    )


def drain(env, timeout=20_000):
    done = env.sim.run_until(
        lambda s: all(m.idle for m in env.managers), timeout=timeout
    )
    assert done is not None, "fabric did not drain"


def test_id_extension_roundtrip():
    ext = extend_id(3, 0x1234)
    assert split_id(ext) == (3, 0x1234)


def test_id_extension_range_checked():
    with pytest.raises(ValueError):
        extend_id(0, 1 << 16)


def test_address_decode_routes_to_correct_subordinate():
    env = fabric()
    env.managers[0].submit(write_spec(0, 0x100, beats=1, data=[0xA]))
    env.managers[0].submit(write_spec(1, 0x8000_0100, beats=1, data=[0xB]))
    drain(env)
    assert env.subs[0].memory.read_word(0x100, 8) == 0xA
    assert env.subs[1].memory.read_word(0x8000_0100, 8) == 0xB


def test_responses_routed_back_with_original_ids():
    env = fabric()
    env.managers[0].submit(read_spec(7, 0x100))
    env.managers[1].submit(read_spec(7, 0x8000_0000))
    drain(env)
    for manager in env.managers:
        assert manager.surprises == []
        assert manager.completed[0].txn_id == 7


def test_contention_both_managers_same_subordinate():
    env = fabric(sub_kwargs={"b_latency": 2})
    env.managers[0].submit_all(
        [write_spec(0, 0x100 * i, beats=2) for i in range(1, 8)]
    )
    env.managers[1].submit_all(
        [write_spec(1, 0x100 * i + 0x80, beats=2) for i in range(1, 8)]
    )
    drain(env)
    assert len(env.managers[0].completed) == 7
    assert len(env.managers[1].completed) == 7
    assert all(m.surprises == [] for m in env.managers)


def test_write_bursts_not_interleaved_at_subordinate():
    env = fabric()
    env.managers[0].submit(write_spec(0, 0x0, beats=8, data=list(range(8))))
    env.managers[1].submit(
        write_spec(0, 0x100, beats=8, data=list(range(100, 108)))
    )
    drain(env)
    assert env.subs[0].memory.read_word(0x0, 8) == 0
    assert env.subs[0].memory.read_word(0x38, 8) == 7
    assert env.subs[0].memory.read_word(0x100, 8) == 100
    assert env.subs[0].memory.read_word(0x138, 8) == 107


def test_unmapped_write_gets_decerr():
    env = fabric()
    env.managers[0].submit(write_spec(0, 0x4000_0000, beats=2))
    drain(env)
    assert env.managers[0].completed[0].resp == Resp.DECERR
    assert env.xbar.decode_errors == 1


def test_unmapped_read_gets_decerr():
    env = fabric()
    env.managers[1].submit(read_spec(3, 0x4000_0000, beats=4))
    drain(env)
    txn = env.managers[1].completed[0]
    assert txn.resp == Resp.DECERR
    assert env.xbar.decode_errors == 1


def test_mapped_traffic_unaffected_by_decerr_neighbor():
    env = fabric()
    env.managers[0].submit(write_spec(0, 0x4000_0000, beats=2))  # unmapped
    env.managers[0].submit(write_spec(1, 0x100, beats=2, data=[5, 6]))
    drain(env)
    responses = {t.addr: t.resp for t in env.managers[0].completed}
    assert responses[0x4000_0000] == Resp.DECERR
    assert responses[0x100] == Resp.OKAY
    assert env.subs[0].memory.read_word(0x100, 8) == 5


def test_heavy_random_cross_traffic_drains():
    env = fabric(sub_kwargs={"b_latency": 2, "r_latency": 3})
    gen0 = RandomTraffic(ids=(0, 1), max_beats=8, addr_space=0x10000, seed=11)
    gen1 = RandomTraffic(ids=(0, 1), max_beats=8, addr_space=0x10000, seed=22)
    env.managers[0].submit_all(gen0.take(25))
    for spec in gen1.take(25):
        spec.addr += 0x8000_0000
        env.managers[1].submit(spec)
    drain(env, timeout=50_000)
    assert len(env.managers[0].completed) == 25
    assert len(env.managers[1].completed) == 25
    assert all(m.surprises == [] for m in env.managers)


def test_crossbar_requires_ports():
    with pytest.raises(ValueError):
        Crossbar("bad", [], [])
