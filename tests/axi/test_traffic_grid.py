"""Regression grid: RandomTraffic stays AXI-legal over (beats, size).

The generator used to draw burst lengths straight from ``max_beats`` and
then pick a page offset from ``0x1000 - span``; any configuration where
``beats * bytes_per_beat(size)`` could exceed 4 KiB made ``randrange``
blow up with a ValueError.  The fix clamps the drawn length to an
AXI-legal, 4 KiB-bounded burst — this grid pins that down over the full
(beats, size) parameter space.
"""

import pytest

from repro.axi.traffic import RandomTraffic
from repro.axi.types import (
    MAX_BURST_LEN,
    bytes_per_beat,
    crosses_4k_boundary,
)

SIZES = [0, 1, 2, 3]
MAX_BEATS = [1, 2, 8, 64, 256, 300, 513, 1024, 5000]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("max_beats", MAX_BEATS)
def test_grid_never_crashes_and_stays_legal(size, max_beats):
    traffic = RandomTraffic(
        max_beats=max_beats, size=size, seed=max_beats * 8 + size
    )
    width = bytes_per_beat(size)
    for spec in traffic.take(50):
        assert 1 <= spec.beats <= MAX_BURST_LEN
        assert spec.beats * width <= 0x1000
        assert spec.addr % width == 0
        assert not crosses_4k_boundary(
            spec.addr, spec.len, spec.size, spec.burst
        )


def test_oversized_draw_regression():
    """The exact shape that used to raise: 8-byte beats, >512-beat cap."""
    traffic = RandomTraffic(max_beats=1024, size=3, seed=0)
    specs = traffic.take(200)  # raised ValueError before the clamp
    assert max(spec.beats for spec in specs) <= 0x1000 // 8


def test_clamp_is_invisible_for_legal_parameters():
    """In-range configurations draw the identical pre-fix stream."""
    reference = RandomTraffic(max_beats=16, seed=42).take(30)
    again = RandomTraffic(max_beats=16, seed=42).take(30)
    assert [(s.addr, s.txn_id, s.len, s.size) for s in reference] == [
        (s.addr, s.txn_id, s.len, s.size) for s in again
    ]
    # No legal draw is ever clamped: 16 beats * 8 bytes is well under 4 KiB.
    assert max(s.beats for s in reference) <= 16


@pytest.mark.parametrize("size", SIZES)
def test_narrow_specs_carry_bus_geometry(size):
    spec = RandomTraffic(max_beats=4, size=size, seed=1).next_spec()
    assert spec.bus_bytes == 8
    assert spec.size == size
