"""Tests for the rule-based AXI4 protocol checker."""

from types import SimpleNamespace

from repro.axi import protocol as P
from repro.axi.channels import ArBeat, AwBeat, BBeat, RBeat, WBeat
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, write_spec
from repro.axi.types import BurstType, Resp
from repro.sim.kernel import Simulator


def checked_loop(**sub_kwargs):
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **sub_kwargs)
    checker = P.ProtocolChecker("checker", bus)
    for component in (manager, subordinate, checker):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, bus=bus, manager=manager, subordinate=subordinate, checker=checker
    )


class ScriptedChecker:
    """Drives a bare interface through the checker cycle by cycle."""

    def __init__(self):
        self.sim = Simulator()
        self.bus = AxiInterface("bus")
        self.checker = P.ProtocolChecker("checker", self.bus)
        self.sim.add(self.checker)

    def cycle(self, **signals):
        """Set channel signals, then step; e.g. aw_valid=True, aw_payload=...

        Channels not mentioned are idled, so each call describes the full
        interface state for that cycle.
        """
        explicit = {name.rsplit("_", 1)[0] for name in signals}
        for channel in ("aw", "w", "b", "ar", "r"):
            if channel not in explicit:
                ch = getattr(self.bus, channel)
                ch.valid.value = False
                ch.payload.value = None
                ch.ready.value = False
        for name, value in signals.items():
            channel, wire = name.rsplit("_", 1)
            setattr(getattr(getattr(self.bus, channel), wire), "value", value)
        self.sim.step()


def test_clean_on_legal_random_traffic():
    env = checked_loop(aw_ready_delay=1, b_latency=2, r_latency=2, r_gap=1)
    env.manager.submit_all(RandomTraffic(seed=5, max_beats=8).take(30))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=20_000)
    assert env.checker.clean, env.checker.violations[:3]


def test_awvalid_drop_flagged():
    s = ScriptedChecker()
    beat = AwBeat(id=0, addr=0x100)
    s.cycle(aw_valid=True, aw_payload=beat, aw_ready=False)
    s.cycle(aw_valid=False, aw_payload=None)
    assert s.checker.count(P.ERRM_AWVALID_STABLE) == 1


def test_aw_payload_change_while_stalled_flagged():
    s = ScriptedChecker()
    s.cycle(aw_valid=True, aw_payload=AwBeat(id=0, addr=0x100), aw_ready=False)
    s.cycle(aw_valid=True, aw_payload=AwBeat(id=0, addr=0x200), aw_ready=False)
    assert s.checker.count(P.ERRM_AW_PAYLOAD_STABLE) == 1


def test_handshake_completion_not_flagged():
    s = ScriptedChecker()
    beat = AwBeat(id=0, addr=0x100)
    s.cycle(aw_valid=True, aw_payload=beat, aw_ready=False)
    s.cycle(aw_valid=True, aw_payload=beat, aw_ready=True)
    s.cycle(aw_valid=False, aw_payload=None, aw_ready=False)
    assert s.checker.count(P.ERRM_AWVALID_STABLE) == 0


def test_wrap_alignment_and_length_rules():
    s = ScriptedChecker()
    bad = AwBeat(id=0, addr=0x104, len=2, size=3, burst=BurstType.WRAP)
    s.cycle(aw_valid=True, aw_payload=bad, aw_ready=True)
    assert s.checker.count(P.ERRM_AWLEN_WRAP) == 1  # 3 beats illegal
    assert s.checker.count(P.ERRM_AWADDR_ALIGNED_WRAP) == 1  # unaligned


def test_4k_boundary_rule_write_and_read():
    s = ScriptedChecker()
    aw = AwBeat(id=0, addr=0xFE0, len=7, size=3)  # crosses 0x1000
    s.cycle(aw_valid=True, aw_payload=aw, aw_ready=True)
    ar = ArBeat(id=0, addr=0xFE0, len=7, size=3)
    s.cycle(ar_valid=True, ar_payload=ar, ar_ready=True)
    assert s.checker.count(P.ERRM_AW_4K_BOUNDARY) == 1
    assert s.checker.count(P.ERRM_AR_4K_BOUNDARY) == 1


def test_w_without_outstanding_aw_flagged():
    s = ScriptedChecker()
    s.cycle(w_valid=True, w_payload=WBeat(data=0, strb=0xFF, last=True), w_ready=True)
    assert s.checker.count(P.ERRM_W_NO_OUTSTANDING) == 1


def test_early_wlast_flagged():
    s = ScriptedChecker()
    s.cycle(aw_valid=True, aw_payload=AwBeat(id=0, addr=0, len=3), aw_ready=True)
    s.cycle(
        aw_valid=False,
        aw_payload=None,
        w_valid=True,
        w_payload=WBeat(data=0, strb=0xFF, last=True),
        w_ready=True,
    )
    assert s.checker.count(P.ERRM_WLAST_POSITION) == 1


def test_b_before_wlast_flagged():
    s = ScriptedChecker()
    s.cycle(aw_valid=True, aw_payload=AwBeat(id=4, addr=0, len=3), aw_ready=True)
    s.cycle(
        aw_valid=False,
        aw_payload=None,
        b_valid=True,
        b_payload=BBeat(id=4),
        b_ready=True,
    )
    assert s.checker.count(P.ERRS_B_BEFORE_WLAST) == 1


def test_unrequested_b_flagged():
    s = ScriptedChecker()
    s.cycle(b_valid=True, b_payload=BBeat(id=9), b_ready=True)
    assert s.checker.count(P.ERRS_B_UNREQUESTED) == 1


def test_unrequested_r_flagged():
    s = ScriptedChecker()
    s.cycle(
        r_valid=True,
        r_payload=RBeat(id=2, data=0, resp=Resp.OKAY, last=True),
        r_ready=True,
    )
    assert s.checker.count(P.ERRS_R_UNREQUESTED) == 1


def test_rlast_early_flagged():
    s = ScriptedChecker()
    s.cycle(ar_valid=True, ar_payload=ArBeat(id=1, addr=0, len=3), ar_ready=True)
    s.cycle(
        ar_valid=False,
        ar_payload=None,
        r_valid=True,
        r_payload=RBeat(id=1, data=0, resp=Resp.OKAY, last=True),
        r_ready=True,
    )
    assert s.checker.count(P.ERRS_RLAST_POSITION) == 1


def test_rlast_missing_flagged():
    s = ScriptedChecker()
    s.cycle(ar_valid=True, ar_payload=ArBeat(id=1, addr=0, len=0), ar_ready=True)
    s.cycle(
        ar_valid=False,
        ar_payload=None,
        r_valid=True,
        r_payload=RBeat(id=1, data=0, resp=Resp.OKAY, last=False),
        r_ready=True,
    )
    assert s.checker.count(P.ERRS_RLAST_POSITION) == 1


def test_faulty_subordinate_dropping_rlast_detected_end_to_end():
    env = checked_loop()
    env.subordinate.faults.drop_r_last = True
    env.manager.submit_all([write_spec(0, 0x100)])
    from repro.axi.traffic import read_spec

    env.manager.submit(read_spec(0, 0x100, beats=2))
    env.sim.run(200)
    assert env.checker.count(P.ERRS_RLAST_POSITION) >= 1


def test_reset_clears_violations():
    s = ScriptedChecker()
    s.cycle(b_valid=True, b_payload=BBeat(id=9), b_ready=True)
    assert not s.checker.clean
    s.checker.reset()
    assert s.checker.clean


def test_rule_registry_contains_all_rules():
    assert len(P.RULES) >= 25
    assert all(rule.name in P.RULES for rule in P.RULES.values())
