"""Integration tests: manager ↔ subordinate directly (no TMU)."""

from types import SimpleNamespace

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.axi.types import AxiDir, Resp
from repro.sim.kernel import Simulator


def direct_loop(**sub_kwargs):
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **sub_kwargs)
    sim.add(manager)
    sim.add(subordinate)
    return SimpleNamespace(sim=sim, bus=bus, manager=manager, subordinate=subordinate)


def run_to_idle(env, timeout=5000):
    result = env.sim.run_until(lambda s: env.manager.idle, timeout=timeout)
    assert result is not None, "manager did not drain"
    return result


def test_single_write_completes_okay():
    env = direct_loop()
    env.manager.submit(write_spec(0, 0x100, beats=4))
    run_to_idle(env)
    assert len(env.manager.completed) == 1
    txn = env.manager.completed[0]
    assert txn.resp == Resp.OKAY
    assert txn.direction == AxiDir.WRITE
    assert txn.beats == 4


def test_write_data_lands_in_memory():
    env = direct_loop()
    spec = write_spec(0, 0x100, beats=2, data=[0xDEAD, 0xBEEF])
    env.manager.submit(spec)
    run_to_idle(env)
    assert env.subordinate.memory.read_word(0x100, 8) == 0xDEAD
    assert env.subordinate.memory.read_word(0x108, 8) == 0xBEEF


def test_read_returns_written_data():
    env = direct_loop()
    env.subordinate.memory.write_word(0x200, 0xCAFE, 8)
    env.manager.submit(read_spec(1, 0x200, beats=1))
    run_to_idle(env)
    txn = env.manager.completed[0]
    assert txn.data == [0xCAFE]


def test_write_then_read_roundtrip():
    env = direct_loop()
    env.manager.submit(write_spec(0, 0x300, beats=4, data=[1, 2, 3, 4]))
    run_to_idle(env)
    env.manager.submit(read_spec(0, 0x300, beats=4))
    run_to_idle(env)
    read_txn = [t for t in env.manager.completed if t.direction == AxiDir.READ][0]
    assert read_txn.data == [1, 2, 3, 4]


def test_phase_cycle_stamps_are_ordered():
    env = direct_loop(aw_ready_delay=2, w_ready_delay=1, b_latency=3)
    env.manager.submit(write_spec(0, 0x100, beats=4))
    run_to_idle(env)
    txn = env.manager.completed[0]
    assert txn.issue_cycle < txn.addr_cycle
    assert txn.addr_cycle < txn.first_data_cycle
    assert txn.first_data_cycle <= txn.last_data_cycle
    assert txn.last_data_cycle < txn.resp_cycle
    assert txn.latency == txn.resp_cycle - txn.addr_cycle


def test_subordinate_latency_knobs_extend_latency():
    fast = direct_loop()
    fast.manager.submit(write_spec(0, 0x100, beats=2))
    run_to_idle(fast)
    slow = direct_loop(aw_ready_delay=4, b_latency=10)
    slow.manager.submit(write_spec(0, 0x100, beats=2))
    run_to_idle(slow)
    assert slow.manager.completed[0].latency > fast.manager.completed[0].latency


def test_same_id_writes_complete_in_order():
    env = direct_loop()
    env.manager.submit(write_spec(2, 0x100, beats=1))
    env.manager.submit(write_spec(2, 0x200, beats=1))
    env.manager.submit(write_spec(2, 0x300, beats=1))
    run_to_idle(env)
    addrs = [t.addr for t in env.manager.completed]
    assert addrs == [0x100, 0x200, 0x300]


def test_mixed_random_traffic_drains_cleanly():
    env = direct_loop(aw_ready_delay=1, b_latency=2, r_latency=3, r_gap=1)
    env.manager.submit_all(RandomTraffic(seed=3, max_beats=8).take(40))
    run_to_idle(env, timeout=20_000)
    assert len(env.manager.completed) == 40
    assert env.manager.surprises == []
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)


def test_max_outstanding_cap_respected():
    env = direct_loop(b_latency=10)
    env.manager.max_outstanding = 2
    for i in range(6):
        env.manager.submit(write_spec(0, 0x100 * i, beats=1))
    peak = 0
    while not env.manager.idle:
        env.sim.step()
        peak = max(peak, env.manager.inflight)
        assert env.manager.inflight <= 2
        if env.sim.cycle > 5000:
            raise AssertionError("did not drain")
    assert peak == 2
    assert len(env.manager.completed) == 6


def test_w_gap_stretches_burst():
    dense = direct_loop()
    dense.manager.submit(write_spec(0, 0x100, beats=8))
    run_to_idle(dense)
    gappy = direct_loop()
    gappy.manager.submit(write_spec(0, 0x100, beats=8, w_gap=3))
    run_to_idle(gappy)
    dense_txn = dense.manager.completed[0]
    gappy_txn = gappy.manager.completed[0]
    dense_span = dense_txn.last_data_cycle - dense_txn.first_data_cycle
    gappy_span = gappy_txn.last_data_cycle - gappy_txn.first_data_cycle
    assert gappy_span >= dense_span + 7 * 3


def test_resp_ready_delay_defers_completion():
    quick = direct_loop()
    quick.manager.submit(write_spec(0, 0x100))
    run_to_idle(quick)
    slow = direct_loop()
    slow.manager.submit(write_spec(0, 0x100, resp_ready_delay=5))
    run_to_idle(slow)
    assert (
        slow.manager.completed[0].resp_cycle
        >= quick.manager.completed[0].resp_cycle + 5
    )


def test_error_resp_fault_reported_in_scoreboard():
    env = direct_loop()
    env.subordinate.faults.error_resp = True
    env.manager.submit(write_spec(0, 0x100))
    run_to_idle(env)
    assert env.manager.completed[0].resp == Resp.SLVERR
    assert env.manager.failures


def test_hw_reset_clears_subordinate_state_and_faults():
    env = direct_loop(b_latency=50)
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(20)
    env.subordinate.hw_reset.value = True
    env.sim.run(2)
    env.subordinate.hw_reset.value = False
    env.sim.run(1)
    assert env.subordinate.resets_taken == 1
    assert not env.subordinate.faults.any_active


def test_spurious_b_consumed_once():
    env = direct_loop()
    env.subordinate.faults.spurious_b = 5
    env.sim.run(10)
    assert env.subordinate.faults.spurious_b is None
    assert env.manager.surprises  # scoreboard saw an unexpected response
