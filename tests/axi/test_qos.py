"""Tests for QoS-aware crossbar arbitration."""

from types import SimpleNamespace

from repro.axi.crossbar import AddressRange, Crossbar
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import write_spec
from repro.sim.kernel import Simulator

WINDOW = AddressRange(0x0, 0x10000)


def fabric(qos_arbitration):
    sim = Simulator()
    mgr_buses = [AxiInterface(f"m{i}") for i in range(2)]
    managers = [Manager(f"mgr{i}", bus) for i, bus in enumerate(mgr_buses)]
    sub_bus = AxiInterface("s0")
    # A slow subordinate so requests pile up and arbitration matters.
    subordinate = Subordinate("sub", sub_bus, aw_ready_delay=2, b_latency=4)
    xbar = Crossbar(
        "xbar", mgr_buses, [(sub_bus, WINDOW)], qos_arbitration=qos_arbitration
    )
    for component in (*managers, xbar, subordinate):
        sim.add(component)
    return SimpleNamespace(sim=sim, managers=managers, sub=subordinate)


def completion_order(env, timeout=20_000):
    order = []
    seen = [0, 0]
    while not all(m.idle for m in env.managers):
        env.sim.step()
        for index, manager in enumerate(env.managers):
            while len(manager.completed) > seen[index]:
                order.append(index)
                seen[index] += 1
        if env.sim.cycle > timeout:
            raise AssertionError("fabric did not drain")
    return order


def submit_contending(env, qos0, qos1, count=6):
    for i in range(count):
        env.managers[0].submit(
            write_spec(0, 0x100 * (i + 1), beats=2, qos=qos0)
        )
        env.managers[1].submit(
            write_spec(0, 0x100 * (i + 1) + 0x80, beats=2, qos=qos1)
        )


def test_round_robin_interleaves_fairly():
    env = fabric(qos_arbitration=False)
    submit_contending(env, qos0=0, qos1=0)
    order = completion_order(env)
    # Fair arbitration: neither manager finishes all its work first.
    assert order[:6].count(0) >= 2 and order[:6].count(1) >= 2


def test_high_qos_manager_wins_contention():
    env = fabric(qos_arbitration=True)
    submit_contending(env, qos0=0, qos1=8)
    order = completion_order(env)
    # The QoS-8 manager's transactions complete strictly first.
    assert order[:6] == [1] * 6


def test_qos_ties_fall_back_to_round_robin():
    env = fabric(qos_arbitration=True)
    submit_contending(env, qos0=5, qos1=5)
    order = completion_order(env)
    assert order[:6].count(0) >= 2 and order[:6].count(1) >= 2


def test_qos_field_reaches_the_subordinate():
    env = fabric(qos_arbitration=True)
    env.managers[0].submit(write_spec(0, 0x100, qos=11))
    seen = []
    env.sim.add_probe(
        lambda sim: seen.append(env.sub.bus.aw.payload.value.qos)
        if env.sub.bus.aw.fired()
        else None
    )
    env.sim.run_until(lambda s: env.managers[0].idle, timeout=2_000)
    assert seen == [11]
