"""Memory-map modelling and traffic targeting over richer topologies."""

from types import SimpleNamespace

import pytest

from repro.axi.addrspace import AddressSpace, Region
from repro.axi.crossbar import AddressRange, Crossbar
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# Region / AddressSpace semantics
# ----------------------------------------------------------------------
def test_region_geometry_and_membership():
    region = Region("dram", 0x8000_0000, 0x1000_0000)
    assert region.end == 0x9000_0000
    assert region.contains(0x8000_0000)
    assert region.contains(0x8FFF_FFFF)
    assert not region.contains(0x9000_0000)
    assert region.to_range() == (0x8000_0000, 0x9000_0000)
    assert region.to_address_range() == AddressRange(0x8000_0000, 0x1000_0000)


def test_region_validation():
    with pytest.raises(ValueError):
        Region("empty", 0, 0)
    with pytest.raises(ValueError):
        Region("negative", -4, 0x1000)
    with pytest.raises(ValueError):
        Region("antiweight", 0, 0x1000, weight=-1)


def test_space_rejects_overlaps_and_duplicates():
    space = AddressSpace([Region("a", 0x0000, 0x2000)])
    with pytest.raises(ValueError):
        space.add(Region("b", 0x1000, 0x2000))  # overlaps a
    with pytest.raises(ValueError):
        space.add(Region("a", 0x8000, 0x1000))  # duplicate name
    space.add(Region("b", 0x2000, 0x1000))  # adjacency is fine
    assert len(space) == 2


def test_space_decode_and_routing():
    space = AddressSpace(
        [
            Region("rom", 0x0000, 0x1000, weight=0),
            Region("ram", 0x8000, 0x4000),
        ]
    )
    assert space.decode(0x0800) == "rom"
    assert space.decode(0x9000) == "ram"
    assert space.decode(0x5000) is None  # a DECERR hole
    assert space.region_for(0x5000) is None
    assert space.ranges() == [(0x0000, 0x1000), (0x8000, 0xC000)]
    assert space.route_table() == [
        AddressRange(0x0000, 0x1000),
        AddressRange(0x8000, 0x4000),
    ]
    assert [r.name for r in space.weighted_regions()] == ["ram"]
    assert space["rom"].weight == 0


# ----------------------------------------------------------------------
# Traffic targeting a memory map
# ----------------------------------------------------------------------
def test_random_traffic_targets_only_weighted_regions():
    space = AddressSpace(
        [
            Region("rom", 0x0000, 0x1000, weight=0),
            Region("ram0", 0x1_0000, 0x4000, weight=3),
            Region("ram1", 0x8_0000, 0x2000, weight=1),
        ]
    )
    specs = RandomTraffic(space=space, max_beats=8, seed=11).take(300)
    names = {space.decode(spec.addr) for spec in specs}
    assert names == {"ram0", "ram1"}
    for spec in specs:
        region = space.region_for(spec.addr)
        assert region is not None
        assert spec.addr + spec.beats * 8 <= region.end


def test_random_traffic_requires_weighted_target():
    space = AddressSpace([Region("rom", 0x0000, 0x1000, weight=0)])
    with pytest.raises(ValueError):
        RandomTraffic(space=space)


def test_random_traffic_rejects_unaligned_regions():
    space = AddressSpace([Region("odd", 0x100, 0x1000)])
    with pytest.raises(ValueError):
        RandomTraffic(space=space)


# ----------------------------------------------------------------------
# Multi-level crossbar topology driven from the map
# ----------------------------------------------------------------------
def two_level_fabric():
    """manager -> top xbar -> {sub0, leaf xbar -> {sub1, sub2}}."""
    space = AddressSpace(
        [
            Region("sub0", 0x0_0000, 0x4000),
            Region("sub1", 0x10_0000, 0x4000),
            Region("sub2", 0x10_4000, 0x4000),
        ]
    )
    sim = Simulator()
    mgr_bus = AxiInterface("mgr")
    manager = Manager("manager", mgr_bus)
    sub_buses = [AxiInterface(f"s{i}") for i in range(3)]
    subs = [
        Subordinate(f"sub{i}", bus, r_latency=i + 1, b_latency=i + 1)
        for i, bus in enumerate(sub_buses)
    ]
    leaf_in = AxiInterface("leaf_in")
    # The leaf window covers sub1 and sub2; the top level routes the
    # whole window at the leaf crossbar, which decodes the final hop.
    top = Crossbar(
        "top",
        [mgr_bus],
        [
            (sub_buses[0], space["sub0"].to_address_range()),
            (leaf_in, AddressRange(0x10_0000, 0x8000)),
        ],
    )
    leaf = Crossbar(
        "leaf",
        [leaf_in],
        [
            (sub_buses[1], space["sub1"].to_address_range()),
            (sub_buses[2], space["sub2"].to_address_range()),
        ],
    )
    for component in (manager, top, leaf, *subs):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, manager=manager, subs=subs, space=space
    )


def test_map_driven_traffic_through_two_crossbar_levels():
    fabric = two_level_fabric()
    specs = RandomTraffic(
        space=fabric.space, max_beats=4, max_issue_delay=2, seed=9
    ).take(24)
    fabric.manager.submit_all(specs)
    assert fabric.sim.run_until(
        lambda s: fabric.manager.idle, timeout=30_000
    )
    assert len(fabric.manager.completed) == len(specs)
    assert fabric.manager.surprises == []
    # Every level decoded: all three endpoints saw work.
    touched = [
        sub.writes_done + sub.reads_done > 0 for sub in fabric.subs
    ]
    assert all(touched), touched


def test_two_level_fabric_with_reordering_endpoints():
    fabric = two_level_fabric()
    for sub in fabric.subs:
        sub.reorder_depth = 2
    specs = RandomTraffic(space=fabric.space, max_beats=4, seed=5).take(16)
    fabric.manager.submit_all(specs)
    assert fabric.sim.run_until(
        lambda s: fabric.manager.idle, timeout=30_000
    )
    assert len(fabric.manager.completed) == len(specs)
    assert fabric.manager.surprises == []
