"""Tests for AXI4 read-data interleaving across IDs."""

from types import SimpleNamespace

from tests.conftest import build_loop, fast_budgets

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.sim.kernel import Simulator
from repro.tmu.config import TmuConfig


def direct_loop(**sub_kwargs):
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **sub_kwargs)
    sim.add(manager)
    sim.add(subordinate)
    return SimpleNamespace(sim=sim, manager=manager, subordinate=subordinate, bus=bus)


def test_interleaved_reads_complete_with_correct_data():
    env = direct_loop(interleave_reads=True)
    env.subordinate.memory.write(0x100, bytes(range(1, 65)))
    env.subordinate.memory.write(0x200, bytes(range(65, 129)))
    env.manager.submit(read_spec(0, 0x100, beats=8))
    env.manager.submit(read_spec(1, 0x200, beats=8))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    by_id = {t.txn_id: t.data for t in env.manager.completed}
    assert by_id[0] == [
        int.from_bytes(bytes(range(1 + 8 * i, 9 + 8 * i)), "little")
        for i in range(8)
    ]
    assert len(by_id[1]) == 8
    assert env.manager.surprises == []


def test_beats_actually_interleave_on_the_wire():
    env = direct_loop(interleave_reads=True)
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    sequence = []
    env.sim.add_probe(
        lambda sim: sequence.append(env.bus.r.payload.value.id)
        if env.bus.r.fired()
        else None
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    # Both IDs appear, and the stream switches ID before either finishes.
    assert set(sequence) == {0, 1}
    first_switch = next(
        i for i in range(1, len(sequence)) if sequence[i] != sequence[i - 1]
    )
    assert first_switch < 4


def test_same_id_reads_never_interleave():
    env = direct_loop(interleave_reads=True)
    env.manager.submit(read_spec(3, 0x100, beats=4))
    env.manager.submit(read_spec(3, 0x200, beats=4))
    sequence = []
    env.sim.add_probe(
        lambda sim: sequence.append(env.bus.r.payload.value.last)
        if env.bus.r.fired()
        else None
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    # First burst's 4 beats all precede the second's: last at positions 3, 7.
    assert sequence[3] and sequence[7]
    assert not any(sequence[:3]) and not any(sequence[4:7])


def test_tmu_handles_interleaved_reads_without_false_positives():
    env = build_loop(
        TmuConfig(budgets=fast_budgets()), interleave_reads=True, r_latency=1
    )
    for i in range(6):
        env.manager.submit(read_spec(i % 3, 0x100 * (i + 1), beats=4))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=10_000)
    assert env.tmu.faults_handled == 0
    assert env.tmu.read_guard.perf.completed == 6
    assert env.manager.surprises == []


def test_interleaving_off_preserves_strict_order():
    env = direct_loop(interleave_reads=False)
    env.manager.submit(read_spec(0, 0x100, beats=4))
    env.manager.submit(read_spec(1, 0x200, beats=4))
    sequence = []
    env.sim.add_probe(
        lambda sim: sequence.append(env.bus.r.payload.value.id)
        if env.bus.r.fired()
        else None
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert sequence == [0, 0, 0, 0, 1, 1, 1, 1]


def test_mixed_reads_and_writes_with_interleaving():
    env = direct_loop(interleave_reads=True, b_latency=2)
    env.manager.submit(write_spec(0, 0x300, beats=4, data=[9, 8, 7, 6]))
    env.manager.submit(read_spec(1, 0x300, beats=4))
    env.manager.submit(read_spec(2, 0x400, beats=4))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert len(env.manager.completed) == 3
