"""Unit tests for channel beat payloads."""

import dataclasses

import pytest

from repro.axi.channels import ArBeat, AwBeat, BBeat, RBeat, WBeat, remap_id
from repro.axi.types import BurstType, Resp


def test_aw_beat_derived_geometry():
    beat = AwBeat(id=3, addr=0x100, len=7, size=2)
    assert beat.beats == 8
    assert beat.bytes_per_beat == 4


def test_ar_beat_defaults():
    beat = ArBeat(id=0, addr=0x0)
    assert beat.beats == 1
    assert beat.burst == BurstType.INCR
    assert beat.size == 3


def test_beats_are_frozen():
    beat = AwBeat(id=0, addr=0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        beat.addr = 5


def test_beats_compare_by_value():
    a = WBeat(data=1, strb=0xFF, last=False)
    b = WBeat(data=1, strb=0xFF, last=False)
    assert a == b
    assert a != WBeat(data=2, strb=0xFF, last=False)


def test_remap_id_preserves_other_fields():
    beat = AwBeat(id=0xBEEF, addr=0x40, len=3, size=2, burst=BurstType.WRAP)
    remapped = remap_id(beat, 2)
    assert remapped.id == 2
    assert remapped.addr == beat.addr
    assert remapped.len == beat.len
    assert remapped.burst == beat.burst
    assert beat.id == 0xBEEF  # original untouched


def test_remap_id_works_for_all_id_carrying_beats():
    for beat in (
        AwBeat(id=1, addr=0),
        ArBeat(id=1, addr=0),
        BBeat(id=1),
        RBeat(id=1, data=0, resp=Resp.OKAY, last=True),
    ):
        assert remap_id(beat, 9).id == 9


def test_b_beat_default_okay():
    assert BBeat(id=0).resp == Resp.OKAY


def test_r_beat_fields():
    beat = RBeat(id=2, data=0x1234, resp=Resp.SLVERR, last=True)
    assert beat.resp.is_error
    assert beat.last
