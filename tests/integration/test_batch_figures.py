"""Byte-identity of campaign outputs under lockstep batch execution.

The acceptance bar for the batch executor: the Fig. 9 (IP-level) and
Fig. 11 (system-level) campaigns must serialize to byte-identical JSON
whether every lane is simulated scalar or packs of lanes are derived
from one leader run — across pack widths, with the leaping kernel
disabled, with lanes forcibly retired mid-pack, and with batching
disabled entirely by an undeclared component.

Unlike the kernel-mode differentials (``test_update_skip_figures``),
these comparisons keep the ``scheduler`` aggregate: a derived lane's
leap statistics are computed, not simulated, and must still equal the
scalar kernel's exactly.
"""

import pytest

from repro.analysis.export import campaign_dict, to_json
from repro.axi.manager import Manager
from repro.faults.types import InjectionStage
from repro.orchestrate import BatchExecutor, CampaignSpec, run_campaign_spec
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant

FIG9_STAGES = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.WLAST_TO_BVALID,
    InjectionStage.R_VALID_MISSING,
)

FIG11_STAGES = (
    InjectionStage.W_READY_MISSING,
    InjectionStage.B_READY_MISSING,
)

#: Spans both residue classes of prescale_step=2 plus the degenerate
#: seed-0/seed-1 lanes that can never carry batch evidence.
SEEDS = tuple(range(8))


def small_config(variant: Variant) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=2,
        budgets=budgets,
        max_txn_cycles=96,
    )


def fig9_spec(**harness_kwargs) -> CampaignSpec:
    return CampaignSpec.ip(
        [small_config(Variant.FULL), small_config(Variant.TINY)],
        FIG9_STAGES,
        beats=4,
        seeds=SEEDS,
        harness_kwargs=harness_kwargs or None,
    )


def fig11_spec(**harness_kwargs) -> CampaignSpec:
    return CampaignSpec.system(
        (Variant.FULL, Variant.TINY),
        FIG11_STAGES,
        beats=16,
        seeds=SEEDS,
        harness_kwargs=harness_kwargs or None,
    )


def full_json(spec: CampaignSpec, executor=None) -> str:
    """The complete campaign JSON — scheduler block included."""
    return to_json(campaign_dict(run_campaign_spec(spec, executor=executor)))


@pytest.fixture(scope="module")
def fig9_serial_json():
    return full_json(fig9_spec())


@pytest.fixture(scope="module")
def fig11_serial_json():
    return full_json(fig11_spec())


@pytest.mark.parametrize("lanes", [1, 8, 64])
def test_fig9_batch_byte_identical(lanes, fig9_serial_json):
    executor = BatchExecutor(lanes)
    assert full_json(fig9_spec(), executor) == fig9_serial_json
    if lanes == 1:
        # Width-1 packs are their own leaders: pure scalar degenerate.
        assert executor.stats.derived == 0
    else:
        assert executor.stats.derived > 0


@pytest.mark.parametrize("lanes", [1, 8, 64])
def test_fig11_batch_byte_identical(lanes, fig11_serial_json):
    executor = BatchExecutor(lanes)
    assert full_json(fig11_spec(), executor) == fig11_serial_json
    if lanes > 1:
        assert executor.stats.derived > 0


def test_fig9_batch_identical_without_time_leaping():
    # A non-leaping kernel steps every pre-onset cycle, so no leader can
    # produce inert-prefix evidence: the whole campaign must retire to
    # the scalar kernel — and still match it byte for byte.
    executor = BatchExecutor(8)
    assert full_json(
        fig9_spec(sim_time_leaping=False), executor
    ) == full_json(fig9_spec(sim_time_leaping=False))
    assert executor.stats.derived == 0
    assert executor.stats.retired > 0


def test_fig9_forced_mid_pack_retirement_byte_identical(fig9_serial_json):
    # Retire two interior lanes of every pack: the executor must splice
    # scalar reruns into the derived stream without disturbing either.
    executor = BatchExecutor(8, force_retire=lambda run: run.seed in (3, 5))
    assert full_json(fig9_spec(), executor) == fig9_serial_json
    assert executor.stats.derived > 0
    assert executor.stats.retired > 0


def test_fig11_forced_mid_pack_retirement_byte_identical(fig11_serial_json):
    executor = BatchExecutor(8, force_retire=lambda run: run.seed == 5)
    assert full_json(fig11_spec(), executor) == fig11_serial_json
    assert executor.stats.derived > 0


def test_undeclared_component_disables_batching(
    monkeypatch, fig9_serial_json
):
    # phase_period=None anywhere in the design means "unaudited": the
    # executor must not derive a single lane, and must still agree.
    monkeypatch.setattr(Manager, "phase_period", None)
    executor = BatchExecutor(8)
    assert full_json(fig9_spec(), executor) == fig9_serial_json
    assert executor.stats.derived == 0


def test_fig9_batch_verify_accepts_clean_campaign(fig9_serial_json):
    # strategy="verify" on the batch path: every derived lane replays on
    # the scalar verify kernel; a clean campaign must sail through.
    executor = BatchExecutor(8, verify=True)
    assert full_json(fig9_spec(), executor) == fig9_serial_json
    assert executor.stats.derived > 0
