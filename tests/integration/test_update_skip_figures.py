"""Byte-identity of campaign outputs across kernel scheduling modes.

The acceptance bar for the quiescence-aware update phase: the Fig. 9
(IP-level) and Fig. 11 (system-level) campaigns must serialize to
byte-identical JSON whether they run on the default dirty/quiescent
kernel or on the exhaustive reference sweep — every detection cycle,
latency, recovery flag and log count equal, not merely statistically
close.
"""

from repro.analysis.export import campaign_dict, to_json
from repro.faults.campaign import run_campaign
from repro.faults.types import InjectionStage
from repro.orchestrate import CampaignSpec, run_campaign_spec
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant

FIG9_STAGES = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.WLAST_TO_BVALID,
    InjectionStage.R_VALID_MISSING,
)

FIG11_STAGES = (
    InjectionStage.W_READY_MISSING,
    InjectionStage.B_READY_MISSING,
)


def small_config(variant: Variant) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=2,
        budgets=budgets,
        max_txn_cycles=96,
    )


def _measured_json(results) -> str:
    """Campaign JSON minus the scheduler block.

    The ``scheduler`` aggregate counts leaps, which *legitimately*
    differ across kernels (that is its whole point); everything the
    campaign measured must still match byte for byte.
    """
    payload = campaign_dict(results)
    del payload["scheduler"]
    return to_json(payload)


def fig9_json(sim_strategy: str, time_leaping: bool = True) -> str:
    results = run_campaign(
        [small_config(Variant.FULL), small_config(Variant.TINY)],
        FIG9_STAGES,
        beats=4,
        seeds=(0, 3),
        harness_kwargs={
            "sim_strategy": sim_strategy,
            "sim_time_leaping": time_leaping,
        },
    )
    return _measured_json(results)


def fig11_json(sim_strategy: str, time_leaping: bool = True) -> str:
    spec = CampaignSpec.system(
        (Variant.FULL, Variant.TINY),
        FIG11_STAGES,
        beats=16,
        harness_kwargs={
            "sim_strategy": sim_strategy,
            "sim_time_leaping": time_leaping,
        },
    )
    return _measured_json(run_campaign_spec(spec))


def test_fig9_campaign_identical_with_update_skipping():
    assert fig9_json("dirty") == fig9_json("exhaustive")


def test_fig9_campaign_verify_strategy_clean():
    # verify covers both phases: settle divergence AND quiescence
    # under-declaration raise SchedulerDivergenceError mid-campaign.
    assert fig9_json("verify") == fig9_json("dirty")


def test_fig9_campaign_identical_with_time_leaping():
    assert fig9_json("dirty", time_leaping=True) == fig9_json(
        "dirty", time_leaping=False
    )


def test_fig11_campaign_identical_with_update_skipping():
    assert fig11_json("dirty") == fig11_json("exhaustive")


def test_fig11_campaign_verify_strategy_clean():
    assert fig11_json("verify") == fig11_json("dirty")


def test_fig11_campaign_identical_with_time_leaping():
    assert fig11_json("dirty", time_leaping=True) == fig11_json(
        "dirty", time_leaping=False
    )
