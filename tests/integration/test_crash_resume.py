"""Crash/resume integration: kill the coordinator, resume from the cache.

The distributed executor's crash-safety story is the cache directory:
completed shards land there atomically as they stream in, so a
SIGKILLed coordinator — the worst case, nothing gets to clean up — can
be resumed by any later campaign pointed at the same directory, and the
final campaign JSON must be byte-identical to an uninterrupted serial
run.  (The worker-kill half of the story lives in
``tests/orchestrate/test_distributed.py``.)

The scenario is gated, not timed: a protocol-level worker executes
exactly three shards, then signals and sits on its fourth lease, so the
coordinator is provably mid-campaign — some shards cached, some not —
when the SIGKILL lands.
"""

import multiprocessing
import os
import signal
import time

import pytest

from tests.conftest import fast_budgets

from repro.analysis.export import campaign_dict, to_json
from repro.faults.types import InjectionStage
from repro.orchestrate import (
    CampaignSpec,
    DistributedExecutor,
    SerialExecutor,
    plan_shards,
    run_campaign_spec,
)
from repro.orchestrate.executor import execute_shard
from repro.orchestrate.remote import (
    expect,
    hello_message,
    recv_frame,
    result_message,
    send_frame,
)
from repro.tmu.config import full_config, tiny_config

#: Shards the gated worker completes before it freezes on its next lease.
SHARDS_BEFORE_FREEZE = 3


def crash_spec() -> CampaignSpec:
    return CampaignSpec.ip(
        [full_config(budgets=fast_budgets()), tiny_config(budgets=fast_budgets())],
        (
            InjectionStage.AW_READY_MISSING,
            InjectionStage.WLAST_TO_BVALID,
            InjectionStage.R_VALID_MISSING,
        ),
        beats=4,
        seeds=(0, 1),
    )


def _coordinator_victim(cache_dir: str, port_file: str) -> None:
    """Child-process coordinator: bind, announce the port, serve shards."""
    executor = DistributedExecutor(port=0, lease_timeout=600, result_timeout=120)
    _host, port = executor.bind()
    tmp = port_file + ".tmp"
    with open(tmp, "w") as stream:
        stream.write(str(port))
    os.replace(tmp, port_file)  # atomic: the parent never reads half a port
    run_campaign_spec(crash_spec(), cache_dir=cache_dir, executor=executor)


def _gated_worker(port: int, frozen) -> None:
    """Execute SHARDS_BEFORE_FREEZE shards for real, then hold a lease."""
    import socket as socket_module

    sock = socket_module.create_connection(("127.0.0.1", port))
    from repro.orchestrate.serialize import shard_from_dict

    try:
        send_frame(sock, hello_message("gated"))
        expect(recv_frame(sock), "welcome")
        executed = 0
        while True:
            message = recv_frame(sock)
            if message is None or message["type"] == "done":
                break
            shard = shard_from_dict(message["shard"])
            if executed >= SHARDS_BEFORE_FREEZE:
                frozen.set()
                time.sleep(600)  # hold the lease until SIGKILLed
            index, results = execute_shard(shard)
            send_frame(sock, result_message(index, shard.run_ids, results))
            executed += 1
    finally:
        sock.close()


def _wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(message)
        time.sleep(0.05)


def test_sigkilled_coordinator_resumes_byte_identical(tmp_path):
    spec = crash_spec()
    shards = plan_shards(spec.runs())
    assert len(shards) > SHARDS_BEFORE_FREEZE + 1
    serial_json = to_json(campaign_dict(run_campaign_spec(spec), spec=spec))

    cache_dir = tmp_path / "cache"
    port_file = str(tmp_path / "port")
    context = multiprocessing.get_context("fork")
    frozen = context.Event()

    victim = context.Process(
        target=_coordinator_victim, args=(str(cache_dir), port_file), daemon=True
    )
    victim.start()
    _wait_for(
        lambda: os.path.exists(port_file), 30, "coordinator never announced a port"
    )
    with open(port_file) as stream:
        port = int(stream.read())

    worker = context.Process(target=_gated_worker, args=(port, frozen), daemon=True)
    worker.start()
    assert frozen.wait(timeout=60), "worker never reached its freeze point"

    # The coordinator must have cached exactly the completed shards
    # before we murder it mid-campaign.
    namespace = cache_dir / spec.spec_hash()
    _wait_for(
        lambda: len(list(namespace.glob("shard-*.json"))) >= SHARDS_BEFORE_FREEZE,
        30,
        "completed shards never reached the cache",
    )
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    assert victim.exitcode == -signal.SIGKILL
    os.kill(worker.pid, signal.SIGKILL)
    worker.join(timeout=10)

    cached_before_resume = len(list(namespace.glob("shard-*.json")))
    assert SHARDS_BEFORE_FREEZE <= cached_before_resume < len(shards)

    # Resume: same spec, same cache directory, plain serial executor.
    executed = []
    original = execute_shard

    class Counting(SerialExecutor):
        def map(self, pending):
            for shard in pending:
                executed.append(shard.index)
                yield original(shard)

    resumed = run_campaign_spec(spec, cache_dir=cache_dir, executor=Counting())
    assert to_json(campaign_dict(resumed, spec=spec)) == serial_json
    assert len(executed) == len(shards) - cached_before_resume

    # And a corrupted survivor is a miss, not a crash: trash one cached
    # shard, resume again, and the output must still be byte-identical.
    survivor = sorted(namespace.glob("shard-*.json"))[0]
    survivor.write_text('{"format": 2, "results": [{"truncated')
    re_resumed = run_campaign_spec(spec, cache_dir=cache_dir)
    assert to_json(campaign_dict(re_resumed, spec=spec)) == serial_json
