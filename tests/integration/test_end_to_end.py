"""End-to-end integration scenarios across the whole stack."""

from tests.conftest import build_loop, fast_budgets

from repro.axi.traffic import RandomTraffic, dma_stream, read_spec, write_spec
from repro.axi.types import AxiDir, Resp
from repro.tmu.config import TmuConfig, Variant, tiny_config
from repro.tmu.phases import WritePhase


def drain(env, timeout=30_000):
    done = env.sim.run_until(lambda s: env.manager.idle, timeout=timeout)
    assert done is not None
    return done


def test_dma_style_long_bursts_through_tmu():
    env = build_loop()
    env.manager.submit_all(dma_stream(0, 0x1000, frames=4, beats_per_frame=64))
    drain(env)
    assert len(env.manager.completed) == 4
    assert env.tmu.faults_handled == 0
    # Long bursts covered by adaptive budget: 4 + 4*64 cycles >> actual.
    assert env.tmu.write_guard.perf.beats_transferred == 256


def test_phase_latency_log_identifies_bottleneck():
    """§II-H: the Fc log pinpoints where time is spent."""
    env = build_loop(b_latency=9)
    env.manager.submit_all([write_spec(0, 0x100 * i, beats=2) for i in range(1, 6)])
    drain(env)
    summary = env.tmu.write_guard.perf.phase_summary()
    b_wait = summary[WritePhase.B_WAIT.label]
    assert b_wait.count == 5
    assert b_wait.mean >= 8  # the injected bottleneck dominates
    assert b_wait.mean > summary[WritePhase.AW_HANDSHAKE.label].mean


def test_mixed_read_write_interleaving_both_guards():
    env = build_loop(b_latency=2, r_latency=2)
    specs = []
    for i in range(10):
        specs.append(write_spec(i % 3, 0x100 + 0x40 * i, beats=3))
        specs.append(read_spec(i % 3, 0x100 + 0x40 * i, beats=3))
    env.manager.submit_all(specs)
    drain(env)
    assert env.tmu.write_guard.perf.completed == 10
    assert env.tmu.read_guard.perf.completed == 10


def test_write_read_consistency_through_tmu():
    env = build_loop()
    payload = [0x1111, 0x2222, 0x3333, 0x4444]
    env.manager.submit(write_spec(0, 0x800, beats=4, data=payload))
    drain(env)
    env.manager.submit(read_spec(1, 0x800, beats=4))
    drain(env)
    read_txn = [t for t in env.manager.completed if t.direction == AxiDir.READ][0]
    assert read_txn.data == payload


def test_fault_storm_sequential_recovery():
    """Three faults in a row: each detected, each recovered, no leakage."""
    env = build_loop(config=tiny_config(budgets=fast_budgets()))
    fault_cycle_kinds = ["mute_b", "deaf_aw", "mute_r"]
    for kind in fault_cycle_kinds:
        setattr(env.subordinate.faults, kind, True)
        spec = (
            read_spec(0, 0x100, beats=2)
            if kind == "mute_r"
            else write_spec(0, 0x100, beats=2)
        )
        env.manager.submit(spec)
        assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=3_000)
        drain(env)
        env.tmu.clear_irq()
        assert env.sim.run_until(
            lambda s: env.tmu.state.value == "monitor", timeout=3_000
        )
    assert env.tmu.faults_handled == 3
    assert env.subordinate.resets_taken == 3
    # System is healthy afterwards.
    env.manager.submit(write_spec(0, 0x900))
    drain(env)
    assert env.manager.completed[-1].resp == Resp.OKAY


def test_heavy_multi_id_traffic_with_capacity_pressure():
    config = TmuConfig(
        variant=Variant.FULL, max_uniq_ids=2, txn_per_id=2, budgets=fast_budgets()
    )
    env = build_loop(config, b_latency=3, r_latency=3)
    env.manager.submit_all(
        RandomTraffic(ids=(10, 20, 30), max_beats=4, seed=77).take(30)
    )
    drain(env, timeout=60_000)
    assert len(env.manager.completed) == 30
    assert env.tmu.faults_handled == 0
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)


def test_guard_error_log_survives_for_diagnosis():
    env = build_loop()
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(5, 0x100, beats=2))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=3_000)
    events = env.tmu.write_guard.log.peek_all()
    assert any(e.kind.value == "timeout" for e in events)
    assert any(e.orig_id == 5 for e in events if e.orig_id is not None)
