"""Telemetry is observation, never perturbation.

The acceptance bar for the instrumentation layer: the Fig. 9 and
Fig. 11 campaign JSON must be byte-identical whether a kernel tracer
rides in the harness or a metrics registry tallies the orchestration —
including the ``scheduler`` block, because tracing must not change
which cycles step, leap, or skip.
"""

import pytest

from repro.analysis.export import campaign_dict, to_json
from repro.faults.campaign import run_campaign
from repro.orchestrate import run_campaign_spec
from repro.orchestrate.serialize import SpecSerializationError
from repro.orchestrate.spec import CampaignSpec
from repro.telemetry import KernelTracer, MetricsRegistry, Tracer
from repro.tmu.config import Variant

from tests.integration.test_update_skip_figures import (
    FIG9_STAGES,
    FIG11_STAGES,
    small_config,
)


def fig9_full_json(harness_kwargs=None):
    results = run_campaign(
        [small_config(Variant.FULL), small_config(Variant.TINY)],
        FIG9_STAGES,
        beats=4,
        seeds=(0, 3),
        harness_kwargs=harness_kwargs,
    )
    return to_json(campaign_dict(results))


def fig11_full_json(harness_kwargs=None, metrics=None):
    spec = CampaignSpec.system(
        (Variant.FULL, Variant.TINY),
        FIG11_STAGES,
        beats=16,
        harness_kwargs=harness_kwargs,
    )
    return to_json(campaign_dict(run_campaign_spec(spec, metrics=metrics)))


def test_fig9_identical_with_kernel_tracer():
    baseline = fig9_full_json()
    assert fig9_full_json({"sim_tracer": Tracer()}) == baseline
    assert fig9_full_json({"sim_tracer": KernelTracer()}) == baseline


def test_spec_campaigns_reject_live_tracers():
    # A spec must stay JSON-serializable (it names cache shards and
    # crosses the wire to workers), so a live tracer cannot ride in
    # one — tracing spec-driven campaigns goes through the serial
    # run_campaign fallback instead, as `repro inject --trace` does.
    with pytest.raises(SpecSerializationError):
        fig11_full_json({"sim_tracer": KernelTracer()})


def test_fig11_identical_with_metrics_registry():
    baseline = fig11_full_json()
    metrics = MetricsRegistry()
    assert fig11_full_json(metrics=metrics) == baseline
    # …and the registry actually recorded the campaign it watched.
    tallies = metrics.to_dict()["counters"]
    assert tallies["campaign.runs"] == tallies["campaign.runs_executed"]
    assert tallies["campaign.runs"] > 0


def test_tracer_saw_the_campaign_it_rode():
    tracer = KernelTracer()
    fig9_full_json({"sim_tracer": tracer})
    assert tracer.steps > 0
    assert tracer.leaps > 0  # stall scenarios fast-forward
    assert tracer.counters()  # per-component tallies accumulated
