"""Tests for the GF12-calibrated area model (paper §III-A2 anchors)."""

import pytest

from repro.area import gf12
from repro.area.model import (
    detection_latency_bound,
    estimate_area,
    prescaler_saving,
    tmu_area,
)
from repro.tmu.config import TmuConfig, Variant


def area(variant, n, step=1, sticky=False):
    return estimate_area(variant, n, step, sticky=sticky).total_um2


def test_paper_anchor_tiny_16_32():
    assert area(Variant.TINY, 16) == pytest.approx(1330.0)
    assert area(Variant.TINY, 32) == pytest.approx(2616.0)


def test_paper_anchor_full_16_32():
    assert area(Variant.FULL, 16) == pytest.approx(3452.0)
    assert area(Variant.FULL, 32) == pytest.approx(6787.0)


def test_tc_is_about_38_percent_of_fc():
    """§III-A2: 'On average, Tc requires about 38% of Fc's area.'"""
    ratios = [area(Variant.TINY, n) / area(Variant.FULL, n) for n in (16, 32, 64, 128)]
    mean = sum(ratios) / len(ratios)
    assert 0.35 < mean < 0.42


def test_area_linear_in_outstanding():
    a16, a32, a64 = (area(Variant.TINY, n) for n in (16, 32, 64))
    assert (a64 - a32) == pytest.approx(2 * (a32 - a16), rel=1e-6)


def test_fig7_configuration_ordering():
    """Fig. 7: Fc > Fc+Pre > Tc > Tc+Pre for all capacities >= 2."""
    for n in (2, 4, 8, 16, 32, 64, 128):
        fc = area(Variant.FULL, n)
        fc_pre = area(Variant.FULL, n, 32, sticky=True)
        tc = area(Variant.TINY, n)
        tc_pre = area(Variant.TINY, n, 32, sticky=True)
        assert fc > fc_pre > tc > tc_pre, f"ordering broken at n={n}"


def test_prescaled_never_larger():
    """Fig. 7: 'Tc+Pre consistently consumes the least area.'"""
    for variant in (Variant.TINY, Variant.FULL):
        for n in (1, 2, 4, 8, 16, 32, 64, 128):
            assert area(variant, n, 32, sticky=True) <= area(variant, n)


def test_prescaler_savings_in_paper_band_at_anchor_capacities():
    # Quoted bands: 18-39% (Tc), 19-32% (Fc); our structural model lands
    # inside slightly tighter bands at the published 16-32 capacities.
    for n in (16, 32):
        assert 0.18 <= prescaler_saving(Variant.TINY, n) <= 0.39
        assert 0.19 <= prescaler_saving(Variant.FULL, n) <= 0.32


def test_area_monotone_decreasing_in_prescale_step():
    steps = (1, 2, 4, 8, 16, 32, 64, 128)
    for variant in (Variant.TINY, Variant.FULL):
        areas = [area(variant, 128, step, sticky=True) for step in steps[1:]]
        assert areas == sorted(areas, reverse=True)
        assert area(variant, 128) > areas[0]


def test_sticky_bit_costs_area():
    with_sticky = area(Variant.TINY, 32, 32, sticky=True)
    without = area(Variant.TINY, 32, 32, sticky=False)
    assert with_sticky == pytest.approx(without + 32 * gf12.STICKY_BIT_UM2)


def test_sticky_free_without_prescaler():
    assert area(Variant.TINY, 32, 1, sticky=True) == area(
        Variant.TINY, 32, 1, sticky=False
    )


def test_breakdown_sums_to_total():
    report = estimate_area(Variant.FULL, 32, 32, sticky=True)
    breakdown = report.breakdown()
    parts = sum(v for k, v in breakdown.items() if k != "total")
    assert parts == pytest.approx(breakdown["total"])


def test_tmu_area_uses_config():
    config = TmuConfig(
        variant=Variant.TINY, max_uniq_ids=4, txn_per_id=8, prescale_step=32
    )
    report = tmu_area(config)
    assert report.outstanding == 32
    assert report.prescale_step == 32
    assert report.total_um2 == pytest.approx(
        area(Variant.TINY, 32, 32, sticky=True)
    )


def test_counter_bits_shrink_with_step():
    widths = [gf12.counter_bits(256, step) for step in (1, 32, 256)]
    assert widths[0] > widths[1] > 0
    assert widths[2] == 1


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        estimate_area(Variant.TINY, 0)
    with pytest.raises(ValueError):
        gf12.counter_bits(0, 1)


def test_detection_latency_bound_shape():
    bounds = [detection_latency_bound(256, step) for step in (1, 4, 32, 128)]
    assert bounds[0] == 256
    assert all(b >= 256 for b in bounds)
    assert bounds[-1] >= bounds[1]
