"""Root logger setup: idempotence, JSON lines, worker attribution."""

import io
import json
import logging

import pytest

from repro.telemetry import setup_logging, worker_log_prefix
from repro.telemetry import logs as logs_module
from repro.telemetry.logs import ROOT_LOGGER


@pytest.fixture(autouse=True)
def reset_repro_logger():
    """Leave the 'repro' logger exactly as we found it."""
    logger = logging.getLogger(ROOT_LOGGER)
    saved = (
        list(logger.handlers), list(logger.filters),
        logger.level, logger.propagate, logs_module._worker_id,
    )
    yield
    logger.handlers, logger.filters = list(saved[0]), list(saved[1])
    logger.setLevel(saved[2])
    logger.propagate = saved[3]
    logs_module._worker_id = saved[4]


def test_setup_is_idempotent():
    stream = io.StringIO()
    setup_logging("info", stream=stream)
    logger = setup_logging("info", stream=stream)
    assert len(logger.handlers) == 1
    assert logger.propagate is False


def test_level_filters_records():
    stream = io.StringIO()
    setup_logging("warning", stream=stream)
    logger = logging.getLogger(f"{ROOT_LOGGER}.orchestrate.cache")
    logger.info("invisible")
    logger.warning("visible")
    text = stream.getvalue()
    assert "invisible" not in text and "visible" in text


def test_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        setup_logging("loud")


def test_json_lines_are_parseable():
    stream = io.StringIO()
    setup_logging("info", json_lines=True, stream=stream)
    logging.getLogger(f"{ROOT_LOGGER}.test").info("shard %d done", 3)
    record = json.loads(stream.getvalue().strip())
    assert record["message"] == "shard 3 done"
    assert record["level"] == "INFO"
    assert record["logger"] == f"{ROOT_LOGGER}.test"


def test_worker_prefix_in_text_and_json():
    stream = io.StringIO()
    setup_logging("info", stream=stream, worker_id="host-1234-0")
    logging.getLogger(f"{ROOT_LOGGER}.worker").info("pulling")
    assert stream.getvalue().startswith("[host-1234-0] ")

    stream = io.StringIO()
    setup_logging("info", json_lines=True, stream=stream)
    worker_log_prefix("host-1234-1")
    logging.getLogger(f"{ROOT_LOGGER}.worker").info("pulling")
    assert json.loads(stream.getvalue().strip())["worker"] == "host-1234-1"


def test_worker_prefix_replaces_previous_tag():
    stream = io.StringIO()
    logger = setup_logging("info", stream=stream)
    worker_log_prefix("a")
    worker_log_prefix("b")
    (handler,) = logger.handlers
    tags = [f for f in handler.filters if type(f).__name__ == "_WorkerTag"]
    assert len(tags) == 1 and tags[0].worker_id == "b"


def test_setup_after_worker_prefix_keeps_the_tag():
    # worker_loop tags first; a later setup_logging (new handler) must
    # not silently drop the attribution.
    worker_log_prefix("host-7")
    stream = io.StringIO()
    setup_logging("info", stream=stream)
    logging.getLogger(f"{ROOT_LOGGER}.worker").info("pulling")
    assert stream.getvalue().startswith("[host-7] ")
