"""MetricsRegistry semantics: instruments, merge, and the JSON artifact."""

import threading

import pytest

from repro.telemetry import MetricsRegistry, read_telemetry, write_telemetry
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BOUNDS,
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    Histogram,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert registry.counter("hits").value == 5  # same instrument by name
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("workers")
    gauge.set(3)
    gauge.add(-1)
    assert gauge.value == 2


def test_histogram_buckets_cover_everything():
    histogram = Histogram(threading.Lock(), bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 10.0, 99.0):
        histogram.observe(value)
    # bisect_left: a value equal to a bound lands in that bound's bucket.
    assert histogram.counts == [2, 2, 1]
    assert histogram.count == 5
    assert histogram.mean == pytest.approx(115.5 / 5)
    assert histogram.nonzero() == [
        ("0-1.0", 2), ("1.0-10.0", 2), ("10.0-inf", 1)
    ]


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=())
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=(1.0, 1.0))


def test_registry_rejects_histogram_bounds_mismatch():
    registry = MetricsRegistry()
    registry.histogram("latency", bounds=(1.0, 2.0))
    with pytest.raises(ValueError, match="already exists"):
        registry.histogram("latency", bounds=(1.0, 3.0))


def test_merge_adds_counters_and_buckets_gauges_last_win():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.counter("runs").inc(3)
    right.counter("runs").inc(4)
    right.counter("only_right").inc()
    left.gauge("depth").set(10)
    right.gauge("depth").set(2)
    left.histogram("s").observe(0.002)
    right.histogram("s").observe(0.002)
    right.histogram("s").observe(500.0)

    merged = left.merge(right)
    assert merged is left
    assert left.counter("runs").value == 7
    assert left.counter("only_right").value == 1
    assert left.gauge("depth").value == 2  # last writer wins
    histogram = left.histogram("s")
    assert histogram.count == 3
    assert histogram.counts[-1] == 1  # the overflow observation survived


def test_merge_rejects_mismatched_histogram_bounds():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.histogram("s", bounds=(1.0,)).observe(0.5)
    right.histogram("s", bounds=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        left.merge(right)


def test_to_dict_from_dict_round_trip():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.gauge("b").set(1.5)
    registry.histogram("c").observe(0.3)
    registry.histogram("c").observe(90.0)
    snapshot = registry.to_dict()
    assert MetricsRegistry.from_dict(snapshot).to_dict() == snapshot
    # Default bounds serialize with their overflow bucket intact.
    assert len(snapshot["histograms"]["c"]["counts"]) == (
        len(DEFAULT_SECONDS_BOUNDS) + 1
    )


def test_telemetry_file_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("campaign.runs").inc(7)
    registry.histogram("campaign.shard_seconds").observe(0.02)
    path = tmp_path / "telemetry.json"
    write_telemetry(registry, path)
    assert read_telemetry(path) == registry.to_dict()


def test_telemetry_reader_rejects_foreign_files(tmp_path):
    path = tmp_path / "telemetry.json"
    path.write_text('{"something": "else"}')
    with pytest.raises(ValueError, match=TELEMETRY_FORMAT):
        read_telemetry(path)
    path.write_text(
        '{"format": "%s", "version": %d, "metrics": {}}'
        % (TELEMETRY_FORMAT, TELEMETRY_VERSION + 1)
    )
    with pytest.raises(ValueError, match="version"):
        read_telemetry(path)


def test_thread_safety_under_concurrent_increments():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.counter("n").inc()
            registry.histogram("h").observe(0.01)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("n").value == 4000
    assert registry.histogram("h").count == 4000
