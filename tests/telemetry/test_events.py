"""EventLog: bounded ring semantics and snapshot isolation."""

import threading

from repro.telemetry import EventLog


def test_append_and_snapshot_oldest_first():
    log = EventLog()
    log.append("lease_claimed", shard=0, worker="a")
    log.append("lease_expired", shard=0, worker="a")
    events = log.snapshot()
    assert [e["event"] for e in events] == ["lease_claimed", "lease_expired"]
    assert events[0]["shard"] == 0 and events[0]["worker"] == "a"
    assert events[0]["t"] <= events[1]["t"]


def test_bounded_window_keeps_newest_but_counts_all():
    log = EventLog(maxlen=3)
    for i in range(10):
        log.append("tick", n=i)
    assert len(log) == 3
    assert log.total == 10
    assert [e["n"] for e in log.snapshot()] == [7, 8, 9]


def test_snapshot_is_a_copy():
    log = EventLog()
    log.append("tick", n=0)
    snapshot = log.snapshot()
    snapshot[0]["n"] = 99
    snapshot.append({"event": "bogus"})
    fresh = log.snapshot()
    assert len(fresh) == 1
    assert fresh[0]["n"] == 0


def test_concurrent_appends_never_lose_count():
    log = EventLog(maxlen=50)

    def hammer():
        for i in range(500):
            log.append("tick", n=i)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert log.total == 2000
    assert len(log) == 50
