"""Chrome trace-event (Perfetto) export schema validation.

The exported timeline must be loadable by Perfetto / chrome://tracing:
valid JSON, every event phase-typed, spans non-negative and
non-overlapping per track, and every referenced track named by a
metadata event.  The acceptance scenario is the paper's mute-B stall
under a watchdog-class budget: the 60k-cycle fast-forward must render
as ONE leap span covering the jumped region — not sixty thousand
per-cycle entries.
"""

import json

import pytest

from repro.faults.campaign import run_injection
from repro.faults.types import InjectionStage
from repro.telemetry import KernelTracer, write_chrome_trace
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant

#: Watchdog-class budget: the whole wlast->bvalid stall is one idle span.
STALL_BUDGET = 60_000


def stall_config() -> TmuConfig:
    # Every phase at the watchdog budget: the mute-B stall sits in the
    # b_wait phase, so that is the counter whose expiry ends the leap.
    budget = STALL_BUDGET
    phases = PhaseBudgets(
        aw_handshake=budget, w_entry=budget, w_first_hs=budget,
        w_data_base=budget, b_wait=budget, b_handshake=budget,
        ar_handshake=budget, r_entry=budget, r_first_hs=budget,
        r_data_base=budget,
    )
    return TmuConfig(
        variant=Variant.FULL,
        max_uniq_ids=4,
        txn_per_id=4,
        budgets=AdaptiveBudgetPolicy(
            phases, SpanBudgets(base=2 * budget, per_beat=1)
        ),
        max_txn_cycles=4 * STALL_BUDGET,
    )


@pytest.fixture(scope="module")
def stall_trace(tmp_path_factory):
    """Trace of the mute-B stall scenario, parsed back from disk."""
    tracer = KernelTracer()
    result = run_injection(
        stall_config(),
        InjectionStage.WLAST_TO_BVALID,
        beats=4,
        detect_timeout=2 * STALL_BUDGET,
        harness_kwargs={"sim_tracer": tracer},
    )
    assert result.detected, "stall scenario must still detect"
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    write_chrome_trace(tracer, path)
    with open(path) as stream:
        return json.load(stream)


def test_trace_envelope(stall_trace):
    assert set(stall_trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    other = stall_trace["otherData"]
    assert other["steps"] > 0
    assert other["dropped_events"] == 0


def test_every_event_is_phase_typed(stall_trace):
    for event in stall_trace["traceEvents"]:
        assert event["ph"] in ("X", "i", "M"), event
        assert "name" in event and "pid" in event and "tid" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        elif event["ph"] == "i":
            assert event["s"] == "t" and event["ts"] >= 0
        else:
            assert event["name"] == "thread_name"


def test_every_track_is_named(stall_trace):
    named = {
        e["tid"]
        for e in stall_trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    referenced = {e["tid"] for e in stall_trace["traceEvents"]}
    assert referenced <= named


def test_spans_nest_monotonically_per_track(stall_trace):
    """On each track, spans sorted by start never overlap: a component's
    drive/update slots within a cycle (and across cycles) are disjoint,
    and kernel leap spans cover disjoint jumped regions."""
    by_tid = {}
    for event in stall_trace["traceEvents"]:
        if event["ph"] == "X":
            by_tid.setdefault(event["tid"], []).append(event)
    assert by_tid, "trace carries no spans at all"
    for tid, spans in by_tid.items():
        spans.sort(key=lambda e: e["ts"])
        for before, after in zip(spans, spans[1:]):
            assert before["ts"] + before["dur"] <= after["ts"] + 1e-9, (
                tid,
                before,
                after,
            )


def test_stall_renders_as_one_leap_span(stall_trace):
    leaps = [
        e
        for e in stall_trace["traceEvents"]
        if e["ph"] == "X" and e["name"] == "leap"
    ]
    big = [e for e in leaps if e["args"]["cycles"] >= 0.9 * STALL_BUDGET]
    assert len(big) == 1, f"expected the stall as one span, got {len(big)}"
    span = big[0]
    # The span covers exactly the jumped region in simulated time.
    assert span["dur"] == span["args"]["cycles"]
    assert span["args"]["to_cycle"] - span["args"]["from_cycle"] == span["args"]["cycles"]
    assert stall_trace["otherData"]["cycles_leaped"] >= 0.9 * STALL_BUDGET


def test_wake_instants_mark_the_detection(stall_trace):
    instants = [
        e for e in stall_trace["traceEvents"] if e["ph"] == "i"
    ]
    assert instants, "the armed counter's expiry wake must be recorded"


def test_counter_only_tracer_records_no_events():
    tracer = KernelTracer(events=False)
    run_injection(
        stall_config(),
        InjectionStage.WLAST_TO_BVALID,
        beats=4,
        detect_timeout=2 * STALL_BUDGET,
        harness_kwargs={"sim_tracer": tracer},
    )
    trace = tracer.chrome_trace()
    # Only the kernel track metadata: no spans, but counters are full.
    assert all(e["ph"] == "M" for e in trace["traceEvents"])
    assert tracer.counters()


def test_max_events_bound_drops_instead_of_growing():
    tracer = KernelTracer(max_events=5)
    run_injection(
        stall_config(),
        InjectionStage.WLAST_TO_BVALID,
        beats=4,
        detect_timeout=2 * STALL_BUDGET,
        harness_kwargs={"sim_tracer": tracer},
    )
    trace = tracer.chrome_trace()
    assert len([e for e in trace["traceEvents"] if e["ph"] != "M"]) <= 5
    assert trace["otherData"]["dropped_events"] > 0
