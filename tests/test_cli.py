"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_area_command(capsys):
    assert main(["area", "--variant", "tiny", "--outstanding", "32"]) == 0
    out = capsys.readouterr().out
    assert "2616.0" in out  # paper anchor for Tc @ 32
    assert "tiny TMU, 32 outstanding" in out


def test_area_with_prescaler(capsys):
    assert main(["area", "--variant", "full", "--outstanding", "16", "--step", "32"]) == 0
    out = capsys.readouterr().out
    assert "prescaler" in out
    assert "sticky" in out


def test_inject_command_success(capsys):
    code = main(["inject", "--variant", "full", "--stage", "aw_stage_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVLD_AWRDY" in out
    assert "True" in out


def test_inject_tiny_variant(capsys):
    code = main(["inject", "--variant", "tiny", "--stage", "wlast_bvalid_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVALID_BRESP" in out


def test_inject_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        main(["inject", "--stage", "nonsense"])


def test_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        main(["area", "--variant", "medium"])


def test_fig7_command(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "Tc+Pre" in out and "Fc+Pre" in out
    assert "1330.0" in out and "6787.0" in out


def test_fig8_command(capsys):
    assert main(["fig8", "--variant", "tiny", "--budget", "64"]) == 0
    out = capsys.readouterr().out
    assert "worst_detect_latency" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "This work: Full-Counter" in out
    assert "Xilinx AXI Timeout" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
