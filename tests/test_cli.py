"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_area_command(capsys):
    assert main(["area", "--variant", "tiny", "--outstanding", "32"]) == 0
    out = capsys.readouterr().out
    assert "2616.0" in out  # paper anchor for Tc @ 32
    assert "tiny TMU, 32 outstanding" in out


def test_area_with_prescaler(capsys):
    assert main(["area", "--variant", "full", "--outstanding", "16", "--step", "32"]) == 0
    out = capsys.readouterr().out
    assert "prescaler" in out
    assert "sticky" in out


def test_inject_command_success(capsys):
    code = main(["inject", "--variant", "full", "--stage", "aw_stage_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVLD_AWRDY" in out
    assert "True" in out


def test_inject_tiny_variant(capsys):
    code = main(["inject", "--variant", "tiny", "--stage", "wlast_bvalid_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVALID_BRESP" in out


def test_inject_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        main(["inject", "--stage", "nonsense"])


def test_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        main(["area", "--variant", "medium"])


def test_fig7_command(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "Tc+Pre" in out and "Fc+Pre" in out
    assert "1330.0" in out and "6787.0" in out


def test_fig8_command(capsys):
    assert main(["fig8", "--variant", "tiny", "--budget", "64"]) == 0
    out = capsys.readouterr().out
    assert "worst_detect_latency" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "This work: Full-Counter" in out
    assert "Xilinx AXI Timeout" in out


def test_inject_multi_stage_sweep(capsys):
    code = main(
        ["inject", "--variant", "full",
         "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
         "--workers", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 injections on full" in out
    assert "aw_stage_error" in out and "wlast_bvalid_error" in out


def test_campaign_command_sharded(capsys, tmp_path):
    args = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
        "--beats", "4", "--workers", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / "campaign.json"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "2 runs | 2 detected | 2 recovered" in out
    assert "ip-000000-full-aw_stage_error-s0" in out
    assert (tmp_path / "campaign.json").exists()
    # Second invocation is served from the cache, byte-identically.
    assert main(args[:-2]) == 0
    assert "2 runs | 2 detected | 2 recovered" in capsys.readouterr().out


def test_campaign_system_kind(capsys):
    code = main(
        ["campaign", "--kind", "system", "--variant", "full",
         "--stage", "aw_stage_error", "--beats", "16"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "system-000000-full-aw_stage_error-s0" in out


def test_fig11_workers_flag_matches_serial(capsys):
    assert main(["fig11"]) == 0
    serial = capsys.readouterr().out
    assert main(["fig11", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_campaign_distributed_matches_serial(capsys, tmp_path):
    base = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
        "--beats", "4",
    ]
    dist_json = str(tmp_path / "dist.json")
    serial_json = str(tmp_path / "serial.json")
    assert main(base + ["--distributed", "--local-workers", "2",
                        "--json", dist_json]) == 0
    dist_out = capsys.readouterr().out
    assert main(base + ["--json", serial_json]) == 0
    serial_out = capsys.readouterr().out
    assert dist_out.replace(dist_json, "") == serial_out.replace(serial_json, "")
    with open(dist_json) as left, open(serial_json) as right:
        assert left.read() == right.read()


def test_campaign_resume_flags(capsys, tmp_path):
    base = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--beats", "4",
    ]
    cache = ["--cache-dir", str(tmp_path / "cache")]
    # --resume without a cache directory is an error…
    assert main(base + ["--resume"]) == 2
    # …as is resuming a campaign that never ran.
    assert main(base + cache + ["--resume"]) == 2
    assert "nothing to resume" in capsys.readouterr().err
    # After a run, --resume succeeds and reports the cached shards.
    assert main(base + cache) == 0
    capsys.readouterr()
    assert main(base + cache + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert "resuming campaign" in captured.err
    assert "1 shard(s) cached" in captured.err


def test_worker_requires_hostport():
    with pytest.raises(SystemExit):
        main(["worker", "--connect", "not-an-address"])


def test_worker_against_live_coordinator(tmp_path):
    import threading

    from repro.orchestrate import CampaignSpec, DistributedExecutor, run_campaign_spec
    from repro.faults.types import InjectionStage
    from repro.tmu.config import full_config

    from tests.conftest import fast_budgets

    spec = CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING],
        beats=4,
    )
    executor = DistributedExecutor(result_timeout=120)
    host, port = executor.bind()
    outcome = {}

    def serve():
        outcome["results"] = run_campaign_spec(spec, executor=executor)

    coordinator = threading.Thread(target=serve)
    coordinator.start()
    assert main(["worker", "--connect", f"{host}:{port}"]) == 0
    coordinator.join(timeout=60)
    assert outcome["results"] == run_campaign_spec(spec)


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
