"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_area_command(capsys):
    assert main(["area", "--variant", "tiny", "--outstanding", "32"]) == 0
    out = capsys.readouterr().out
    assert "2616.0" in out  # paper anchor for Tc @ 32
    assert "tiny TMU, 32 outstanding" in out


def test_area_with_prescaler(capsys):
    assert main(["area", "--variant", "full", "--outstanding", "16", "--step", "32"]) == 0
    out = capsys.readouterr().out
    assert "prescaler" in out
    assert "sticky" in out


def test_inject_command_success(capsys):
    code = main(["inject", "--variant", "full", "--stage", "aw_stage_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVLD_AWRDY" in out
    assert "True" in out


def test_inject_tiny_variant(capsys):
    code = main(["inject", "--variant", "tiny", "--stage", "wlast_bvalid_error"])
    assert code == 0
    out = capsys.readouterr().out
    assert "AWVALID_BRESP" in out


def test_inject_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        main(["inject", "--stage", "nonsense"])


def test_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        main(["area", "--variant", "medium"])


def test_fig7_command(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "Tc+Pre" in out and "Fc+Pre" in out
    assert "1330.0" in out and "6787.0" in out


def test_fig8_command(capsys):
    assert main(["fig8", "--variant", "tiny", "--budget", "64"]) == 0
    out = capsys.readouterr().out
    assert "worst_detect_latency" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "This work: Full-Counter" in out
    assert "Xilinx AXI Timeout" in out


def test_inject_multi_stage_sweep(capsys):
    code = main(
        ["inject", "--variant", "full",
         "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
         "--workers", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 injections on full" in out
    assert "aw_stage_error" in out and "wlast_bvalid_error" in out


def test_campaign_command_sharded(capsys, tmp_path):
    args = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
        "--beats", "4", "--workers", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / "campaign.json"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "2 runs | 2 detected | 2 recovered" in out
    assert "ip-000000-full-aw_stage_error-s0" in out
    assert (tmp_path / "campaign.json").exists()
    # Second invocation is served from the cache, byte-identically.
    assert main(args[:-2]) == 0
    assert "2 runs | 2 detected | 2 recovered" in capsys.readouterr().out


def test_campaign_system_kind(capsys):
    code = main(
        ["campaign", "--kind", "system", "--variant", "full",
         "--stage", "aw_stage_error", "--beats", "16"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "system-000000-full-aw_stage_error-s0" in out


def test_fig11_workers_flag_matches_serial(capsys):
    assert main(["fig11"]) == 0
    serial = capsys.readouterr().out
    assert main(["fig11", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_campaign_distributed_matches_serial(capsys, tmp_path):
    base = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
        "--beats", "4",
    ]
    dist_json = str(tmp_path / "dist.json")
    serial_json = str(tmp_path / "serial.json")
    assert main(base + ["--distributed", "--local-workers", "2",
                        "--json", dist_json]) == 0
    dist_out = capsys.readouterr().out
    assert main(base + ["--json", serial_json]) == 0
    serial_out = capsys.readouterr().out
    assert dist_out.replace(dist_json, "") == serial_out.replace(serial_json, "")
    with open(dist_json) as left, open(serial_json) as right:
        assert left.read() == right.read()


def test_campaign_resume_flags(capsys, tmp_path):
    base = [
        "campaign", "--kind", "ip", "--variant", "full",
        "--stage", "aw_stage_error", "--beats", "4",
    ]
    cache = ["--cache-dir", str(tmp_path / "cache")]
    # --resume without a cache directory is an error…
    assert main(base + ["--resume"]) == 2
    # …as is resuming a campaign that never ran.
    assert main(base + cache + ["--resume"]) == 2
    assert "nothing to resume" in capsys.readouterr().err
    # After a run, --resume succeeds and reports the cached shards.
    assert main(base + cache) == 0
    capsys.readouterr()
    assert main(base + cache + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert "resuming campaign" in captured.err
    assert "1 shard(s) cached" in captured.err


def test_worker_requires_hostport():
    with pytest.raises(SystemExit):
        main(["worker", "--connect", "not-an-address"])


def test_worker_against_live_coordinator(tmp_path):
    import threading

    from repro.orchestrate import CampaignSpec, DistributedExecutor, run_campaign_spec
    from repro.faults.types import InjectionStage
    from repro.tmu.config import full_config

    from tests.conftest import fast_budgets

    spec = CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING],
        beats=4,
    )
    executor = DistributedExecutor(result_timeout=120)
    host, port = executor.bind()
    outcome = {}

    def serve():
        outcome["results"] = run_campaign_spec(spec, executor=executor)

    coordinator = threading.Thread(target=serve)
    coordinator.start()
    assert main(["worker", "--connect", f"{host}:{port}"]) == 0
    coordinator.join(timeout=60)
    assert outcome["results"] == run_campaign_spec(spec)


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# Telemetry surfaces: --trace, --telemetry, report, status, --log-level
# ----------------------------------------------------------------------
def test_inject_trace_writes_perfetto_json(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    code = main(["inject", "--stage", "wlast_bvalid_error",
                 "--trace", str(trace)])
    assert code == 0
    assert f"wrote {trace}" in capsys.readouterr().err
    data = json.loads(trace.read_text())
    assert {"traceEvents", "displayTimeUnit", "otherData"} <= set(data)
    names = {e["name"] for e in data["traceEvents"]}
    assert "leap" in names  # the stall fast-forward is on the timeline


def test_inject_trace_does_not_change_results(capsys, tmp_path):
    assert main(["inject", "--stage", "wlast_bvalid_error"]) == 0
    untraced = capsys.readouterr().out
    trace = tmp_path / "trace.json"
    assert main(["inject", "--stage", "wlast_bvalid_error",
                 "--trace", str(trace)]) == 0
    assert capsys.readouterr().out == untraced


def test_campaign_telemetry_and_report(tmp_path, capsys):
    telemetry = tmp_path / "telemetry.json"
    assert main(["campaign", "--kind", "ip", "--variant", "full",
                 "--stage", "aw_stage_error", "--beats", "4",
                 "--telemetry", str(telemetry)]) == 0
    capsys.readouterr()
    assert telemetry.exists()
    assert main(["report", "--telemetry", str(telemetry)]) == 0
    out = capsys.readouterr().out
    assert "campaign.runs" in out
    assert "campaign.shard_seconds" in out
    assert "counters" in out and "histograms" in out


def test_campaign_telemetry_does_not_change_export(tmp_path, capsys):
    base = ["campaign", "--kind", "ip", "--variant", "full",
            "--stage", "aw_stage_error", "--beats", "4"]
    plain = tmp_path / "plain.json"
    tele = tmp_path / "tele.json"
    assert main(base + ["--json", str(plain)]) == 0
    assert main(base + ["--json", str(tele),
                        "--telemetry", str(tmp_path / "t.json")]) == 0
    assert plain.read_text() == tele.read_text()


def test_report_rejects_non_telemetry_file(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"not": "telemetry"}')
    assert main(["report", "--telemetry", str(bogus)]) == 2
    assert "error:" in capsys.readouterr().err


def test_status_requires_hostport():
    with pytest.raises(SystemExit):
        main(["status", "--connect", "nonsense"])


def test_status_against_dead_coordinator(capsys):
    assert main(["status", "--connect", "127.0.0.1:1", "--timeout", "1"]) == 1
    assert "status error" in capsys.readouterr().err


def test_status_against_live_coordinator(capsys):
    import json
    import threading
    import time

    from repro.orchestrate import CampaignSpec, DistributedExecutor, run_campaign_spec
    from repro.faults.types import InjectionStage
    from repro.tmu.config import full_config

    from tests.conftest import fast_budgets

    spec = CampaignSpec.ip(
        [full_config(budgets=fast_budgets())],
        [InjectionStage.AW_READY_MISSING],
        beats=4,
        seeds=(0, 1, 2, 3),
    )
    executor = DistributedExecutor(local_workers=1, result_timeout=120)
    host, port = executor.bind()
    outcome = {}

    def serve():
        outcome["results"] = run_campaign_spec(spec, executor=executor)

    coordinator = threading.Thread(target=serve)
    coordinator.start()
    # Poll until the one-shot status connection lands mid-campaign.
    code = 1
    deadline = time.monotonic() + 30
    while code != 0 and time.monotonic() < deadline:
        code = main(["status", "--connect", f"{host}:{port}"])
        if code != 0:
            time.sleep(0.05)
    coordinator.join(timeout=60)
    assert code == 0
    captured = capsys.readouterr().out
    assert f"coordinator {host}:{port}" in captured
    assert "campaign:" in captured
    assert outcome["results"] == run_campaign_spec(spec)

    # And the machine-readable form round-trips through json.
    executor2 = DistributedExecutor(local_workers=1, result_timeout=120)
    host2, port2 = executor2.bind()

    def serve2():
        run_campaign_spec(spec, executor=executor2)

    coordinator2 = threading.Thread(target=serve2)
    coordinator2.start()
    code = 1
    deadline = time.monotonic() + 30
    while code != 0 and time.monotonic() < deadline:
        capsys.readouterr()
        code = main(["status", "--connect", f"{host2}:{port2}", "--json"])
        if code != 0:
            time.sleep(0.05)
    coordinator2.join(timeout=60)
    assert code == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert "connected_workers" in snapshot and "events" in snapshot


def test_log_level_flag_configures_repro_logger(capsys):
    import logging

    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    try:
        assert main(["--log-level", "debug", "area", "--variant", "tiny"]) == 0
        assert logger.level == logging.DEBUG
        assert len(logger.handlers) == 1
        assert logger.propagate is False
    finally:
        logger.handlers = saved[0]
        logger.setLevel(saved[1])
        logger.propagate = saved[2]


def test_log_json_flag_emits_json_lines(capsys):
    import json
    import logging

    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    try:
        assert main(["--log-level", "info", "--log-json",
                     "area", "--variant", "tiny"]) == 0
        logging.getLogger("repro.test").info("hello")
        line = capsys.readouterr().err.strip().splitlines()[-1]
        assert json.loads(line)["message"] == "hello"
    finally:
        logger.handlers = saved[0]
        logger.setLevel(saved[1])
        logger.propagate = saved[2]


# ----------------------------------------------------------------------
# Result store: --store, repro store stats / migrate
# ----------------------------------------------------------------------
CAMPAIGN_BASE = [
    "campaign", "--kind", "ip", "--variant", "full",
    "--stage", "aw_stage_error", "--stage", "wlast_bvalid_error",
    "--beats", "4",
]


def test_campaign_store_superset_reuses(capsys, tmp_path):
    import json

    store = str(tmp_path / "store")
    telemetry = str(tmp_path / "telemetry.json")
    assert main(CAMPAIGN_BASE + ["--seeds", "1", "--store", store]) == 0
    capsys.readouterr()
    assert main(CAMPAIGN_BASE + ["--seeds", "2", "--store", store,
                                 "--telemetry", telemetry]) == 0
    capsys.readouterr()
    with open(telemetry) as stream:
        counters = json.load(stream)["metrics"]["counters"]
    # One extra seed per stage: 2 frontier runs, 2 reused.
    assert counters["store.frontier_runs"] == 2
    assert counters["campaign.runs_executed"] == 2
    assert counters["store.reused_runs"] == 2


def test_campaign_store_json_matches_storeless(capsys, tmp_path):
    with_store = str(tmp_path / "with_store.json")
    without = str(tmp_path / "without.json")
    assert main(CAMPAIGN_BASE + ["--store", str(tmp_path / "store"),
                                 "--json", with_store]) == 0
    assert main(CAMPAIGN_BASE + ["--json", without]) == 0
    capsys.readouterr()
    with open(with_store) as left, open(without) as right:
        assert left.read() == right.read()


def test_store_stats_command(capsys, tmp_path):
    import json

    store = str(tmp_path / "store")
    cache = str(tmp_path / "cache")
    assert main(CAMPAIGN_BASE + ["--store", store, "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["store", "stats", store]) == 0
    out = capsys.readouterr().out
    assert "warm_rows" in out and "2" in out
    assert main(["store", "stats", store, "--cold", cache, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["warm_rows"] == 2
    assert stats["cold_indexed_runs"] == 2


def test_store_migrate_command(capsys, tmp_path):
    store = str(tmp_path / "store")
    cache = str(tmp_path / "cache")
    assert main(CAMPAIGN_BASE + ["--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["store", "migrate", cache, "--store", store]) == 0
    assert "2 imported, 0 already present" in capsys.readouterr().out
    # Idempotent.
    assert main(["store", "migrate", cache, "--store", store]) == 0
    assert "0 imported, 2 already present" in capsys.readouterr().out
    # Migrated rows satisfy a campaign without simulating: the run table
    # must render from store hits alone.
    assert main(CAMPAIGN_BASE + ["--store", store,
                                 "--telemetry", str(tmp_path / "t.json")]) == 0
    import json

    with open(tmp_path / "t.json") as stream:
        counters = json.load(stream)["metrics"]["counters"]
    assert counters["store.frontier_runs"] == 0
    assert counters["store.reused_runs"] == 2


def test_store_migrate_missing_cache_errors(capsys, tmp_path):
    code = main(["store", "migrate", str(tmp_path / "nope"),
                 "--store", str(tmp_path / "store")])
    assert code == 2
    assert "no such cache directory" in capsys.readouterr().err
