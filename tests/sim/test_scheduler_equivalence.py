"""Differential tests: dirty-set scheduler ≡ exhaustive sweep.

Every scenario here is built twice — once per settle strategy — stepped
in lockstep, and compared wire-for-wire on every cycle plus on final
architectural state.  Any under-declared sensitivity (a missing
``inputs()`` wire or ``schedule_drive()`` call) shows up as a trace
divergence.

The ``verify`` strategy variants re-run the same scenarios with the
kernel's built-in cross-check, which raises
:class:`~repro.sim.kernel.SchedulerDivergenceError` the moment the
dirty scheduler leaves a wire short of its fixed point.
"""

import pytest

from repro.axi.crossbar import AddressRange, Crossbar
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.faults.campaign import IpHarness
from repro.faults.injector import FaultInjector
from repro.sim import Simulator
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant


def fast_tmu_config(variant=Variant.FULL) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=2,
        budgets=budgets,
        max_txn_cycles=96,
    )


# ----------------------------------------------------------------------
# Scenario builders: (sim, event schedule) per strategy
# ----------------------------------------------------------------------
def build_crossbar_scenario(strategy):
    """2×2 crossbar, mixed read/write traffic, one unmapped (DECERR) txn."""
    sim = Simulator(strategy=strategy)
    managers = [AxiInterface(f"m{i}") for i in range(2)]
    subs = [AxiInterface(f"s{i}") for i in range(2)]
    mgr_components = [Manager(f"mgr{i}", bus) for i, bus in enumerate(managers)]
    sub_components = [
        Subordinate(f"sub0", subs[0], b_latency=2, r_latency=3),
        Subordinate(f"sub1", subs[1], b_latency=1, r_latency=1, ar_ready_delay=1),
    ]
    xbar = Crossbar(
        "xbar",
        managers,
        [
            (subs[0], AddressRange(0x0000, 0x4000)),
            (subs[1], AddressRange(0x4000, 0x4000)),
        ],
    )
    for component in (*mgr_components, xbar, *sub_components):
        sim.add(component)

    traffic = RandomTraffic(ids=(0, 1), max_beats=4, addr_space=0x8000, seed=7)
    for spec in traffic.take(6):
        mgr_components[0].submit(spec)
    for spec in traffic.take(6):
        mgr_components[1].submit(spec)

    def events(cycle):
        if cycle == 40:  # unmapped address -> DECERR path
            mgr_components[0].submit(write_spec(2, 0xF000, beats=2))
            mgr_components[1].submit(read_spec(3, 0xF800))

    state = lambda: (  # noqa: E731 - compact scenario closure
        [len(m.completed) for m in mgr_components],
        [m.failures and m.failures[-1].resp for m in mgr_components],
        [s.writes_done for s in sub_components],
        [s.reads_done for s in sub_components],
        xbar.decode_errors,
    )
    return sim, events, state


def build_tmu_fault_scenario(strategy):
    """IP harness: healthy burst, then a subordinate stall, detect, recover."""
    harness = IpHarness(fast_tmu_config(), sim_strategy=strategy)
    manager, subordinate, tmu = harness.manager, harness.subordinate, harness.tmu
    manager.submit(write_spec(0, 0x100, beats=4))
    manager.submit(read_spec(1, 0x200, beats=4))

    def events(cycle):
        if cycle == 30:
            subordinate.faults.mute_b = True
            manager.submit(write_spec(0, 0x300, beats=6))
        if cycle == 160:
            manager.faults.clear()
            tmu.clear_irq()

    state = lambda: (  # noqa: E731
        len(manager.completed),
        [txn.resp for txn in manager.completed],
        tmu.state.value,
        tmu.faults_handled,
        subordinate.resets_taken,
    )
    return harness.sim, events, state


def build_injector_scenario(strategy):
    """Manager ↔ fault injector ↔ subordinate with mid-run forcing."""
    sim = Simulator(strategy=strategy)
    upstream = AxiInterface("up")
    downstream = AxiInterface("down")
    manager = Manager("mgr", upstream)
    injector = FaultInjector("inj", upstream, downstream)
    subordinate = Subordinate("sub", downstream, b_latency=2)
    for component in (manager, injector, subordinate):
        sim.add(component)
    manager.submit(write_spec(0, 0x40, beats=4))
    manager.submit(write_spec(1, 0x80, beats=4))

    def events(cycle):
        if cycle == 8:
            injector.force("w", ready=False)  # stall write data
        if cycle == 24:
            injector.release("w")

    state = lambda: (  # noqa: E731
        len(manager.completed),
        subordinate.writes_done,
        injector.forced_cycles,
    )
    return sim, events, state


def build_tmu_burst_scenario(strategy):
    """Long W burst through the TMU's per-channel children + enable flip.

    Exercises exactly the paths the per-channel split changed: a
    64-beat W stream (only the W child should re-run per beat), a
    concurrent read, and a software disable/enable round-trip through
    the register file mid-traffic (all five channels must re-drive as
    raw passthrough and back).
    """
    from repro.tmu.registers import REG_CTRL, TmuRegisters

    harness = IpHarness(fast_tmu_config(), sim_strategy=strategy)
    manager, tmu = harness.manager, harness.tmu
    regs = TmuRegisters(tmu)
    manager.submit(write_spec(0, 0x100, beats=64))
    manager.submit(read_spec(1, 0x400, beats=8))

    def events(cycle):
        if cycle == 100:
            regs.write(REG_CTRL, 0)  # disable: pure-wire passthrough
            manager.submit(write_spec(2, 0x800, beats=4))
        if cycle == 130:
            regs.write(REG_CTRL, 1)  # re-enable monitoring
            manager.submit(write_spec(3, 0xC00, beats=4))

    state = lambda: (  # noqa: E731 - compact scenario closure
        len(manager.completed),
        [txn.resp for txn in manager.completed],
        tmu.state.value,
        tmu.write_guard.perf.completed,
        tmu.read_guard.perf.completed,
    )
    return harness.sim, events, state


def build_polling_subordinate_scenario(strategy):
    """Subordinate's polling paths: every wait/latency counter engaged.

    ROADMAP "Demand-driven coverage" remainder: the subordinate's
    ``_aw_wait``/``_ar_wait``/``w_ready_delay``/``b_latency``/
    ``r_latency``/``r_gap`` countdowns all gate drive() through
    threshold comparisons — this scenario keeps each of them ticking
    (with interleaved reads on top) and proves the declared
    sensitivities against the exhaustive reference.
    """
    sim = Simulator(strategy=strategy)
    bus = AxiInterface("bus")
    manager = Manager("mgr", bus)
    subordinate = Subordinate(
        "sub",
        bus,
        aw_ready_delay=3,
        w_ready_delay=2,
        b_latency=4,
        ar_ready_delay=2,
        r_latency=5,
        r_gap=2,
        interleave_reads=True,
    )
    sim.add(manager)
    sim.add(subordinate)
    manager.submit(write_spec(0, 0x100, beats=3))
    manager.submit(read_spec(1, 0x200, beats=4))
    manager.submit(read_spec(2, 0x300, beats=2))

    def events(cycle):
        if cycle == 40:
            spec = read_spec(3, 0x400, beats=3)
            spec.resp_ready_delay = 6  # manager-side polling too
            manager.submit(spec)

    state = lambda: (  # noqa: E731
        len(manager.completed),
        subordinate.writes_done,
        subordinate.reads_done,
    )
    return sim, events, state


def build_ethernet_dma_scenario(strategy):
    """EthernetMac + DmaEngine (the other two ROADMAP remainders).

    A descriptor-driven DMA streams a frame into the MAC (TX-drain
    bookkeeping active every cycle), a mid-run ``DriveSensitiveState``
    flip mutes the B channel, and a hardware reset repairs it.
    """
    from repro.sim.signal import Wire
    from repro.soc.dma import DmaDescriptor, DmaEngine
    from repro.soc.ethernet import EthernetMac

    sim = Simulator(strategy=strategy)
    bus = AxiInterface("bus")
    dma = DmaEngine("dma", bus)
    mac = EthernetMac("mac", bus, line_rate_beats_per_cycle=0.25)
    sim.add(dma)
    sim.add(mac)
    dma.enqueue_descriptor(DmaDescriptor(dst=0x0, length_bytes=32 * 8))

    def events(cycle):
        if cycle == 20:
            mac.faults.mute_b = True
        if cycle == 60:
            mac.hw_reset.value = True  # reset repairs the fault block
        if cycle == 66:
            mac.hw_reset.value = False
        if cycle == 80:
            dma.enqueue_descriptor(DmaDescriptor(dst=0x400, length_bytes=8 * 8))

    state = lambda: (  # noqa: E731
        dma.descriptors_done,
        len(dma.completed),
        mac.frames_sent,
        mac.beats_received,
        mac.resets_taken,
        round(mac.tx_beats_buffered, 6),
    )
    return sim, events, state


def build_cheshire_scenario(strategy):
    """Fig. 11 system configuration: Ethernet frame, mid-run fault flip.

    The full Cheshire SoC (managers, crossbar, TMU, MAC, reset unit,
    PLIC, recovery CPU) runs the paper's Ethernet workload; a
    ``DriveSensitiveState`` fault flip mid-transfer mutes the B channel,
    the TMU detects and recovers, and the run ends with the SoC idle —
    long quiescent stretches bracket the burst, so the update-phase
    live set is exercised through sleep, wake and recovery.
    """
    from repro.soc.cheshire import CheshireSoC, system_tmu_config
    from repro.tmu.config import Variant

    soc = CheshireSoC(
        system_tmu_config(Variant.FULL, frame_beats=16),
        sim_strategy=strategy,
    )

    def events(cycle):
        if cycle == 30:
            soc.send_ethernet_frame(beats=16)
        if cycle == 45:
            soc.ethernet.faults.mute_b = True  # DriveSensitiveState flip
        if cycle == 260:
            soc.submit_background_traffic(2)  # wake from deep quiescence

    state = lambda: (  # noqa: E731 - compact scenario closure
        [len(m.completed) for m in soc.managers],
        soc.tmu.state.value,
        soc.tmu.faults_handled,
        soc.ethernet.resets_taken,
        len(soc.cpu.recoveries),
        soc.plic.irq_counts,
    )
    return soc.sim, events, state


SCENARIOS = {
    "crossbar": build_crossbar_scenario,
    "tmu_fault": build_tmu_fault_scenario,
    "tmu_burst": build_tmu_burst_scenario,
    "injector": build_injector_scenario,
    "polling_subordinate": build_polling_subordinate_scenario,
    "ethernet_dma": build_ethernet_dma_scenario,
    "cheshire": build_cheshire_scenario,
}
CYCLES = {
    "crossbar": 160,
    "tmu_fault": 260,
    "tmu_burst": 180,
    "injector": 80,
    "polling_subordinate": 120,
    "ethernet_dma": 140,
    "cheshire": 340,
}


def trace(sim):
    return {wire.name: wire.value for wire in sim.wires}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_dirty_and_exhaustive_traces_identical(name):
    build = SCENARIOS[name]
    dirty_sim, dirty_events, dirty_state = build("dirty")
    exact_sim, exact_events, exact_state = build("exhaustive")
    for cycle in range(CYCLES[name]):
        dirty_events(cycle)
        exact_events(cycle)
        dirty_sim.step()
        exact_sim.step()
        assert trace(dirty_sim) == trace(exact_sim), f"cycle {cycle}"
    assert dirty_state() == exact_state()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_verify_strategy_confirms_fixed_point(name):
    sim, events, _state = SCENARIOS[name]("verify")
    for cycle in range(CYCLES[name]):
        events(cycle)
        sim.step()  # SchedulerDivergenceError on any under-evaluation


def test_memory_poke_during_stalled_read_reschedules_subordinate():
    """External memory writes must re-drive the R datapath.

    A read burst is in flight with its R beat stalled (the manager's
    resp_ready_delay holds r.ready low — no wire changes, nothing else
    reschedules the subordinate).  A testbench store to the burst's
    address must reach the eventually-fired beat, exactly as it does
    under the exhaustive sweep.
    """

    def build(strategy):
        sim = Simulator(strategy=strategy)
        bus = AxiInterface("bus")
        manager = Manager("mgr", bus)
        subordinate = Subordinate("sub", bus, r_latency=1)
        sim.add(manager)
        sim.add(subordinate)
        spec = read_spec(0, 0x40)
        spec.resp_ready_delay = 12  # stall the R handshake
        manager.submit(spec)
        return sim, manager, subordinate

    results = {}
    for strategy in ("dirty", "exhaustive"):
        sim, manager, subordinate = build(strategy)
        poked = False
        for _ in range(40):
            sim.step()
            # Poke once the R beat is up but stalled by the manager.
            if not poked and subordinate.bus.r.valid.value:
                subordinate.memory.write_word(0x40, 0xBEEF, 8)
                poked = True
        assert poked and len(manager.completed) == 1, strategy
        results[strategy] = manager.completed[0].data
    assert results["dirty"] == results["exhaustive"]
    assert results["dirty"] == [0xBEEF]


def test_verify_strategy_catches_missing_sensitivity():
    """A deliberately broken component must trip the verify cross-check."""
    from repro.sim import Component, SchedulerDivergenceError, Wire

    class Broken(Component):
        demand_driven = True  # lies: never calls schedule_drive()

        def __init__(self):
            super().__init__("broken")
            self.out = Wire("broken.out", 0, width=32)
            self.count = 0

        def wires(self):
            yield self.out

        def inputs(self):
            return ()

        def drive(self):
            self.out.value = self.count

        def update(self):
            self.count += 1  # drive-visible state change, never reported

    sim = Simulator(strategy="verify")
    sim.add(Broken())
    with pytest.raises(SchedulerDivergenceError):
        sim.run(3)
