"""Differential tests: dirty-set scheduler ≡ exhaustive sweep.

Every scenario here is built twice — once per settle strategy — stepped
in lockstep, and compared wire-for-wire on every cycle plus on final
architectural state.  Any under-declared sensitivity (a missing
``inputs()`` wire or ``schedule_drive()`` call) shows up as a trace
divergence.

The ``verify`` strategy variants re-run the same scenarios with the
kernel's built-in cross-check, which raises
:class:`~repro.sim.kernel.SchedulerDivergenceError` the moment the
dirty scheduler leaves a wire short of its fixed point.
"""

import pytest

from repro.axi.crossbar import AddressRange, Crossbar
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.faults.campaign import IpHarness
from repro.faults.injector import FaultInjector
from repro.sim import Simulator
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant


def fast_tmu_config(variant=Variant.FULL) -> TmuConfig:
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
    )
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=2,
        budgets=budgets,
        max_txn_cycles=96,
    )


# ----------------------------------------------------------------------
# Scenario builders: (sim, event schedule) per strategy
# ----------------------------------------------------------------------
def build_crossbar_scenario(strategy):
    """2×2 crossbar, mixed read/write traffic, one unmapped (DECERR) txn."""
    sim = Simulator(strategy=strategy)
    managers = [AxiInterface(f"m{i}") for i in range(2)]
    subs = [AxiInterface(f"s{i}") for i in range(2)]
    mgr_components = [Manager(f"mgr{i}", bus) for i, bus in enumerate(managers)]
    sub_components = [
        Subordinate(f"sub0", subs[0], b_latency=2, r_latency=3),
        Subordinate(f"sub1", subs[1], b_latency=1, r_latency=1, ar_ready_delay=1),
    ]
    xbar = Crossbar(
        "xbar",
        managers,
        [
            (subs[0], AddressRange(0x0000, 0x4000)),
            (subs[1], AddressRange(0x4000, 0x4000)),
        ],
    )
    for component in (*mgr_components, xbar, *sub_components):
        sim.add(component)

    traffic = RandomTraffic(ids=(0, 1), max_beats=4, addr_space=0x8000, seed=7)
    for spec in traffic.take(6):
        mgr_components[0].submit(spec)
    for spec in traffic.take(6):
        mgr_components[1].submit(spec)

    def events(cycle):
        if cycle == 40:  # unmapped address -> DECERR path
            mgr_components[0].submit(write_spec(2, 0xF000, beats=2))
            mgr_components[1].submit(read_spec(3, 0xF800))

    state = lambda: (  # noqa: E731 - compact scenario closure
        [len(m.completed) for m in mgr_components],
        [m.failures and m.failures[-1].resp for m in mgr_components],
        [s.writes_done for s in sub_components],
        [s.reads_done for s in sub_components],
        xbar.decode_errors,
    )
    return sim, events, state


def build_tmu_fault_scenario(strategy):
    """IP harness: healthy burst, then a subordinate stall, detect, recover."""
    harness = IpHarness(fast_tmu_config(), sim_strategy=strategy)
    manager, subordinate, tmu = harness.manager, harness.subordinate, harness.tmu
    manager.submit(write_spec(0, 0x100, beats=4))
    manager.submit(read_spec(1, 0x200, beats=4))

    def events(cycle):
        if cycle == 30:
            subordinate.faults.mute_b = True
            manager.submit(write_spec(0, 0x300, beats=6))
        if cycle == 160:
            manager.faults.clear()
            tmu.clear_irq()

    state = lambda: (  # noqa: E731
        len(manager.completed),
        [txn.resp for txn in manager.completed],
        tmu.state.value,
        tmu.faults_handled,
        subordinate.resets_taken,
    )
    return harness.sim, events, state


def build_injector_scenario(strategy):
    """Manager ↔ fault injector ↔ subordinate with mid-run forcing."""
    sim = Simulator(strategy=strategy)
    upstream = AxiInterface("up")
    downstream = AxiInterface("down")
    manager = Manager("mgr", upstream)
    injector = FaultInjector("inj", upstream, downstream)
    subordinate = Subordinate("sub", downstream, b_latency=2)
    for component in (manager, injector, subordinate):
        sim.add(component)
    manager.submit(write_spec(0, 0x40, beats=4))
    manager.submit(write_spec(1, 0x80, beats=4))

    def events(cycle):
        if cycle == 8:
            injector.force("w", ready=False)  # stall write data
        if cycle == 24:
            injector.release("w")

    state = lambda: (  # noqa: E731
        len(manager.completed),
        subordinate.writes_done,
        injector.forced_cycles,
    )
    return sim, events, state


def build_tmu_burst_scenario(strategy):
    """Long W burst through the TMU's per-channel children + enable flip.

    Exercises exactly the paths the per-channel split changed: a
    64-beat W stream (only the W child should re-run per beat), a
    concurrent read, and a software disable/enable round-trip through
    the register file mid-traffic (all five channels must re-drive as
    raw passthrough and back).
    """
    from repro.tmu.registers import REG_CTRL, TmuRegisters

    harness = IpHarness(fast_tmu_config(), sim_strategy=strategy)
    manager, tmu = harness.manager, harness.tmu
    regs = TmuRegisters(tmu)
    manager.submit(write_spec(0, 0x100, beats=64))
    manager.submit(read_spec(1, 0x400, beats=8))

    def events(cycle):
        if cycle == 100:
            regs.write(REG_CTRL, 0)  # disable: pure-wire passthrough
            manager.submit(write_spec(2, 0x800, beats=4))
        if cycle == 130:
            regs.write(REG_CTRL, 1)  # re-enable monitoring
            manager.submit(write_spec(3, 0xC00, beats=4))

    state = lambda: (  # noqa: E731 - compact scenario closure
        len(manager.completed),
        [txn.resp for txn in manager.completed],
        tmu.state.value,
        tmu.write_guard.perf.completed,
        tmu.read_guard.perf.completed,
    )
    return harness.sim, events, state


SCENARIOS = {
    "crossbar": build_crossbar_scenario,
    "tmu_fault": build_tmu_fault_scenario,
    "tmu_burst": build_tmu_burst_scenario,
    "injector": build_injector_scenario,
}
CYCLES = {"crossbar": 160, "tmu_fault": 260, "tmu_burst": 180, "injector": 80}


def trace(sim):
    return {wire.name: wire.value for wire in sim.wires}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_dirty_and_exhaustive_traces_identical(name):
    build = SCENARIOS[name]
    dirty_sim, dirty_events, dirty_state = build("dirty")
    exact_sim, exact_events, exact_state = build("exhaustive")
    for cycle in range(CYCLES[name]):
        dirty_events(cycle)
        exact_events(cycle)
        dirty_sim.step()
        exact_sim.step()
        assert trace(dirty_sim) == trace(exact_sim), f"cycle {cycle}"
    assert dirty_state() == exact_state()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_verify_strategy_confirms_fixed_point(name):
    sim, events, _state = SCENARIOS[name]("verify")
    for cycle in range(CYCLES[name]):
        events(cycle)
        sim.step()  # SchedulerDivergenceError on any under-evaluation


def test_memory_poke_during_stalled_read_reschedules_subordinate():
    """External memory writes must re-drive the R datapath.

    A read burst is in flight with its R beat stalled (the manager's
    resp_ready_delay holds r.ready low — no wire changes, nothing else
    reschedules the subordinate).  A testbench store to the burst's
    address must reach the eventually-fired beat, exactly as it does
    under the exhaustive sweep.
    """

    def build(strategy):
        sim = Simulator(strategy=strategy)
        bus = AxiInterface("bus")
        manager = Manager("mgr", bus)
        subordinate = Subordinate("sub", bus, r_latency=1)
        sim.add(manager)
        sim.add(subordinate)
        spec = read_spec(0, 0x40)
        spec.resp_ready_delay = 12  # stall the R handshake
        manager.submit(spec)
        return sim, manager, subordinate

    results = {}
    for strategy in ("dirty", "exhaustive"):
        sim, manager, subordinate = build(strategy)
        poked = False
        for _ in range(40):
            sim.step()
            # Poke once the R beat is up but stalled by the manager.
            if not poked and subordinate.bus.r.valid.value:
                subordinate.memory.write_word(0x40, 0xBEEF, 8)
                poked = True
        assert poked and len(manager.completed) == 1, strategy
        results[strategy] = manager.completed[0].data
    assert results["dirty"] == results["exhaustive"]
    assert results["dirty"] == [0xBEEF]


def test_verify_strategy_catches_missing_sensitivity():
    """A deliberately broken component must trip the verify cross-check."""
    from repro.sim import Component, SchedulerDivergenceError, Wire

    class Broken(Component):
        demand_driven = True  # lies: never calls schedule_drive()

        def __init__(self):
            super().__init__("broken")
            self.out = Wire("broken.out", 0, width=32)
            self.count = 0

        def wires(self):
            yield self.out

        def inputs(self):
            return ()

        def drive(self):
            self.out.value = self.count

        def update(self):
            self.count += 1  # drive-visible state change, never reported

    sim = Simulator(strategy="verify")
    sim.add(Broken())
    with pytest.raises(SchedulerDivergenceError):
        sim.run(3)
