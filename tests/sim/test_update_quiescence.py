"""Kernel-level tests for the update-quiescence contract.

The sequential phase's live updater set mirrors the settle phase's
dirty-set worklist: a ``demand_update`` component leaves the set when
its ``quiescent()`` predicate holds and re-arms on a declared
``update_inputs()`` wire change or an explicit ``schedule_update()``.
These tests pin the kernel semantics with purpose-built components;
the system-level equivalence lives in ``test_scheduler_equivalence.py``.
"""

import pytest

from repro.sim import Component, SchedulerDivergenceError, Simulator, Wire


class Counter(Component):
    """Counts down from `load` once armed; quiescent at zero."""

    demand_update = True

    def __init__(self, name, load=3):
        super().__init__(name)
        self.load = load
        self.remaining = 0
        self.updates_run = 0
        self.expiries = 0

    def arm(self):
        self.remaining = self.load
        self.schedule_update()

    def update_inputs(self):
        return ()

    def quiescent(self):
        return self.remaining == 0

    def snapshot_state(self):
        return (self.remaining, self.expiries)

    def update(self):
        self.updates_run += 1
        if self.remaining > 0:
            self.remaining -= 1
            if self.remaining == 0:
                self.expiries += 1


class Follower(Component):
    """Latches a wire's settled value at each clock edge while awake."""

    demand_update = True

    def __init__(self, name, wire):
        super().__init__(name)
        self.wire = wire
        self.seen = []
        self.updates_run = 0

    def wires(self):
        yield self.wire

    def update_inputs(self):
        return (self.wire,)

    def quiescent(self):
        return not self.wire._value

    def snapshot_state(self):
        return (tuple(self.seen),)

    def update(self):
        self.updates_run += 1
        if self.wire._value:
            self.seen.append((self._sim.cycle, self.wire._value))


class Glitcher(Component):
    """Drives its wire from registered state (settles in one round)."""

    def __init__(self, name, wire, schedule):
        super().__init__(name)
        self.wire = wire
        self.schedule = dict(schedule)  # cycle -> value
        self._cycle = 0

    def wires(self):
        yield self.wire

    def drive(self):
        self.wire.value = self.schedule.get(self._cycle, False)

    def update(self):
        self._cycle += 1


def test_quiescent_component_leaves_live_set_and_rearms():
    sim = Simulator()
    counter = sim.add(Counter("c", load=2))
    assert counter in sim._update_pending  # seeded awake at registration
    sim.run(3)
    assert counter not in sim._update_pending
    baseline = counter.updates_run
    sim.run(10)
    assert counter.updates_run == baseline  # fully asleep: zero update work
    counter.arm()
    sim.run(3)
    assert counter.expiries == 1
    assert counter.updates_run == baseline + 2  # load cycles, then asleep


def test_wire_change_rearms_update():
    sim = Simulator()
    wire = Wire("pulse", False)
    sim.add(Glitcher("src", wire, {5: True, 6: True}))
    follower = sim.add(Follower("dst", wire))
    sim.run(12)
    # Awake exactly while the wire was high (cycle counter reads taken
    # during the update phase, before the cycle increments).
    assert [cycle for cycle, _ in follower.seen] == [5, 6]
    assert follower.updates_run < 12


def test_woken_component_observes_settled_wires():
    """Regression: a woken update must see the same settled values a
    static (always-on) updater would."""

    def run(update_skipping):
        sim = Simulator(update_skipping=update_skipping)
        wire = Wire("pulse", False)
        sim.add(Glitcher("src", wire, {3: "payload-a", 7: "payload-b"}))
        follower = sim.add(Follower("dst", wire))
        sim.run(12)
        return follower.seen

    assert run(True) == run(False)


def test_update_skipping_flag_disables_live_set():
    sim = Simulator(update_skipping=False)
    counter = sim.add(Counter("c"))
    assert counter not in sim._update_pending
    assert sim._static_updaters == [counter]
    sim.run(5)
    assert counter.updates_run == 5  # every cycle, pre-quiescence behaviour


def test_exhaustive_strategy_never_skips():
    sim = Simulator(strategy="exhaustive")
    counter = sim.add(Counter("c"))
    sim.run(5)
    assert counter.updates_run == 5


def test_schedule_update_is_noop_until_registered():
    counter = Counter("c")
    counter.schedule_update()  # must not raise
    counter.wake_update()


def test_reset_reseeds_live_updaters():
    sim = Simulator()
    counter = sim.add(Counter("c"))
    sim.run(2)
    assert counter not in sim._update_pending
    sim.reset()
    assert counter in sim._update_pending


class LateWaker(Component):
    """Wakes a target component from inside its own update()."""

    demand_update = True

    def __init__(self, name, target, at_cycle):
        super().__init__(name)
        self.target = target
        self.at_cycle = at_cycle
        self._cycle = 0

    def update_inputs(self):
        return ()

    def quiescent(self):
        return self._cycle > self.at_cycle

    def snapshot_state(self):
        return ()

    def update(self):
        self._cycle += 1
        if self._cycle == self.at_cycle:
            self.target.schedule_update()


def test_midphase_wake_runs_later_ordered_component_same_cycle():
    """A wake from an earlier-ordered update reaches a later-ordered
    component in the same cycle — exactly what the static list did."""
    sim = Simulator()
    counter = Counter("late")
    sim.add(LateWaker("waker", counter, at_cycle=4))
    sim.add(counter)  # registered after: higher _order than the waker
    sim.run(3)  # counter runs once (seeded), then sleeps
    runs_asleep = counter.updates_run
    sim.run(1)  # cycle 4: waker fires mid-phase, counter's turn not passed
    assert counter.updates_run == runs_asleep + 1


def test_midphase_wake_defers_earlier_ordered_component():
    """A wake aimed at an earlier-ordered (already passed) component is
    deferred to the next cycle — its skipped slot was a no-op."""
    sim = Simulator()
    counter = sim.add(Counter("early"))
    sim.add(LateWaker("waker", counter, at_cycle=4))
    sim.run(3)  # counter asleep by now
    runs = counter.updates_run
    sim.run(1)  # cycle 4: waker (later order) wakes the sleeping counter
    assert counter.updates_run == runs  # not run this cycle...
    sim.run(1)
    assert counter.updates_run == runs + 1  # ...but on the next


class StaticWaker(Component):
    """Non-opt-in (static) updater that wakes a target mid-phase."""

    def __init__(self, name, target, at_cycle):
        super().__init__(name)
        self.target = target
        self.at_cycle = at_cycle
        self._cycle = 0

    def update(self):
        self._cycle += 1
        if self._cycle == self.at_cycle:
            self.target.schedule_update()


def test_static_updater_wake_reaches_later_component_same_cycle():
    """Regression: the statics-only fast path (live set empty) must
    still deliver a mid-phase wake to a later-registered component in
    the same cycle, like the static reference order would."""
    sim = Simulator()
    counter = Counter("late")
    sim.add(StaticWaker("waker", counter, at_cycle=4))
    sim.add(counter)  # higher _order than the static waker
    sim.run(3)  # counter ran once (seeded) and slept; live set is empty
    assert not sim._update_pending
    runs_asleep = counter.updates_run
    sim.run(1)  # cycle 4: the static updater fires the wake mid-phase
    assert counter.updates_run == runs_asleep + 1


class BrokenQuiescence(Component):
    """Claims quiescence while its counter is still armed."""

    demand_update = True

    def __init__(self):
        super().__init__("broken")
        self.count = 0

    def update_inputs(self):
        return ()

    def quiescent(self):
        return True  # lies: update() still mutates state

    def snapshot_state(self):
        return (self.count,)

    def update(self):
        self.count += 1


def test_verify_catches_underdeclared_quiescence():
    sim = Simulator(strategy="verify")
    sim.add(BrokenQuiescence())
    with pytest.raises(SchedulerDivergenceError, match="update-quiescence"):
        sim.run(3)


class SneakyScheduler(Component):
    """Quiescent by state, but its replayed update schedules work."""

    demand_driven = True
    demand_update = True

    def __init__(self):
        super().__init__("sneaky")
        self.out = Wire("sneaky.out", 0, width=32)

    def wires(self):
        yield self.out

    def inputs(self):
        return ()

    def update_inputs(self):
        return ()

    def quiescent(self):
        return True  # lies: update() re-arms itself every cycle

    def snapshot_state(self):
        return ()

    def drive(self):
        self.out.value = 0

    def update(self):
        self.schedule_update()


def test_verify_catches_quiescent_component_scheduling_work():
    sim = Simulator(strategy="verify")
    sim.add(SneakyScheduler())
    with pytest.raises(SchedulerDivergenceError, match="scheduled new work"):
        sim.run(3)


def test_verify_replays_are_clean_for_honest_components():
    sim = Simulator(strategy="verify")
    counter = sim.add(Counter("c", load=2))
    counter.arm()
    sim.run(10)  # counts down, quiesces; replays must stay silent
    assert counter.expiries == 1


def test_verify_with_update_skipping_disabled_runs_statically():
    """Regression: strategy="verify" + update_skipping=False registers
    demand_update components as statics — the verify phase must run
    them unconditionally, not replay them under the no-op contract."""
    sim = Simulator(strategy="verify", update_skipping=False)
    counter = sim.add(Counter("c", load=2))
    counter.arm()
    sim.run(10)  # would raise SchedulerDivergenceError before the fix
    assert counter.expiries == 1
    assert counter.updates_run == 10


def test_plic_rejects_late_source_connection():
    """Regression: a source connected after sim.add() would never wake
    the quiescent PLIC — the kernel plumbing is captured at
    registration — so the late connect must fail fast."""
    from repro.soc.plic import Plic

    sim = Simulator()
    plic = Plic("plic")
    plic.connect(Wire("early.irq", False), "early")  # fine: before add
    sim.add(plic)
    with pytest.raises(RuntimeError, match="before\\s+sim.add"):
        plic.connect(Wire("late.irq", False), "late")
