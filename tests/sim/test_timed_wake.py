"""Kernel-level tests for the timed-wake heap and clock fast-forward.

The wake heap is the third arm of the scheduling contract (after the
settle worklist and the live updater set): a quiescent component with a
pure countdown declares its next interesting cycle with ``wake_at`` and
the kernel guarantees its update runs in the step starting there.  When
*only* timed wakes remain, ``run``/``run_until`` leap the clock instead
of ticking.  These tests pin the heap semantics (cancel, re-arm,
wake-in-the-past), the leap legality rules (bounded by the run target,
pinned by probes and static work), and the verify strategy's ability to
catch an under-declared wake.
"""

import pytest

from repro.sim import Component, SchedulerDivergenceError, Simulator, Wire


class Alarm(Component):
    """Sleeps with a timed wake; counts how often its update really ran."""

    demand_update = True

    def __init__(self, name, deadline=None):
        super().__init__(name)
        self.deadline = deadline  # stamp at which the alarm fires
        self.fired_at = []
        self.updates_run = 0
        self._stamp = 0

    def update_inputs(self):
        return ()

    def quiescent(self):
        return True  # always sleeps; relies purely on wake_at

    def snapshot_state(self):
        return (self.deadline, tuple(self.fired_at))

    def update(self):
        self.updates_run += 1
        now = self._sim.cycle + 1
        self._stamp = now
        if self.deadline is None:
            return
        if now >= self.deadline:
            self.fired_at.append(now)
            self.deadline = None
        else:
            # Wake for the step whose update is stamped `deadline`.
            self.wake_at(self._sim.cycle + (self.deadline - now))


class ForgetfulAlarm(Alarm):
    """Declares quiescence but never arms its wake — a contract bug."""

    def update(self):
        self.updates_run += 1
        now = self._sim.cycle + 1
        if self.deadline is not None and now >= self.deadline:
            self.fired_at.append(now)
            self.deadline = None
        # no wake_at: under-declared countdown


def test_wake_at_runs_update_in_the_declared_step():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=10))
    sim.run(20)
    assert alarm.fired_at == [10]
    # Seed update (stamp 1), then exactly the expiry update (stamp 10).
    assert alarm.updates_run == 2


def test_leap_jumps_idle_span_in_one_hop():
    sim = Simulator()
    sim.add(Alarm("a", deadline=1000))
    sim.run(2000)
    assert sim.cycle == 2000
    assert sim.leaps >= 2  # to the wake, and to the run target
    assert sim.cycles_leaped >= 1990


def test_leap_bounded_by_run_target():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=1000))
    sim.run(500)
    assert sim.cycle == 500  # never beyond the target
    assert alarm.fired_at == []
    sim.run(500)
    assert alarm.fired_at == [1000]


def test_leap_bounded_by_run_until_timeout():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=700))
    hit = sim.run_until(lambda s: bool(alarm.fired_at), timeout=300)
    assert hit is None
    assert sim.cycle == 300
    hit = sim.run_until(lambda s: bool(alarm.fired_at), timeout=1_000)
    assert hit == 700
    assert alarm.fired_at == [700]


def test_rearm_with_earlier_deadline_wins():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=500))
    sim.run(5)  # seed update armed the 500 wake; alarm now asleep
    alarm.deadline = 100
    alarm.wake_at(99)  # software re-arm: earlier deadline supersedes
    sim.run(495)
    assert alarm.fired_at == [100]
    # The stale 500 entry must not produce a second firing.
    assert sim.cycle == 500


def test_rearm_with_later_deadline_survives_spurious_pop():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=100))
    sim.run(5)
    alarm.deadline = 400  # pushed out (a "kick")
    alarm.wake_at(399)
    sim.run(495)
    # The superseded 100-cycle entry is discarded without waking; only
    # the 400 deadline fires.
    assert alarm.fired_at == [400]


def test_cancel_wake_sleeps_forever():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=50))
    sim.run(5)
    alarm.deadline = None
    alarm.cancel_wake()
    sim.run(200)
    assert alarm.fired_at == []
    assert alarm.updates_run == 1  # only the registration seed ran


def test_wake_in_the_past_raises():
    sim = Simulator()
    alarm = sim.add(Alarm("a"))
    sim.run(10)
    with pytest.raises(ValueError, match="wake-in-the-past"):
        alarm.wake_at(3)


def test_wake_at_current_cycle_degenerates_to_schedule_update():
    sim = Simulator()
    alarm = sim.add(Alarm("a"))
    sim.run(10)
    before = alarm.updates_run
    alarm.wake_at(sim.cycle)
    sim.run(1)
    assert alarm.updates_run == before + 1


def test_plain_probe_pins_the_clock():
    sim = Simulator()
    sim.add(Alarm("a", deadline=100))
    seen = []
    sim.add_probe(lambda s: seen.append(s.cycle))
    sim.run(200)
    assert sim.leaps == 0
    assert seen == list(range(1, 201))  # every cycle observed


def test_leap_aware_probe_allows_leaps_and_sees_jumps():
    sim = Simulator()
    sim.add(Alarm("a", deadline=100))

    class LeapProbe:
        leap_aware = True

        def __init__(self):
            self.samples = []
            self.jumps = []

        def __call__(self, s):
            self.samples.append(s.cycle)

        def on_leap(self, s, start, end):
            self.jumps.append((start, end))

    probe = LeapProbe()
    sim.add_probe(probe)
    sim.run(200)
    assert sim.leaps >= 1
    assert probe.jumps  # leap notifications delivered
    assert len(probe.samples) < 200  # skipped cycles were not sampled
    # Jumps plus samples tile the whole span exactly once.
    covered = sum(end - start for start, end in probe.jumps)
    assert covered + len(probe.samples) == 200


def test_static_updater_pins_the_clock():
    class Static(Component):
        def __init__(self, name):
            super().__init__(name)
            self.ticks = 0

        def update(self):
            self.ticks += 1

    sim = Simulator()
    sim.add(Alarm("a", deadline=100))
    static = sim.add(Static("s"))
    sim.run(200)
    assert sim.leaps == 0
    assert static.ticks == 200


def test_time_leaping_flag_disables_fast_forward():
    sim = Simulator(time_leaping=False)
    alarm = sim.add(Alarm("a", deadline=100))
    sim.run(200)
    assert sim.leaps == 0
    assert alarm.fired_at == [100]  # wakes still honoured, just stepped


def test_identical_firing_with_and_without_leaping():
    def run(flag):
        sim = Simulator(time_leaping=flag)
        alarm = sim.add(Alarm("a", deadline=77))
        sim.run(300)
        return alarm.fired_at, alarm.updates_run, sim.cycle

    assert run(True) == run(False)


def test_verify_catches_underdeclared_wake():
    sim = Simulator(strategy="verify")
    sim.add(ForgetfulAlarm("a", deadline=10))
    with pytest.raises(SchedulerDivergenceError):
        sim.run(20)


def test_verify_accepts_correctly_declared_wake():
    sim = Simulator(strategy="verify")
    alarm = sim.add(Alarm("a", deadline=10))
    sim.run(20)
    assert alarm.fired_at == [10]
    assert sim.leaps == 0  # verify replays spans cycle by cycle


def test_reset_clears_armed_wakes():
    sim = Simulator()
    alarm = sim.add(Alarm("a", deadline=10))
    sim.run(3)
    sim.reset()
    alarm.deadline = None
    sim.run(50)
    # The pre-reset wake at 10 must not fire after the rewind.
    assert alarm.fired_at == []


def test_side_effecting_condition_blocks_the_leap():
    """Work scheduled *by* a run_until condition must be stepped.

    The leap-eligibility check runs again after the condition: a
    callback that arms a component (fault injection, schedule_update)
    has created real work for the very next step, and leaping over it
    would diverge from the time_leaping=False kernel.
    """

    class Armable(Component):
        demand_update = True

        def __init__(self, name):
            super().__init__(name)
            self.remaining = 0
            self.updates_run = 0
            self.expiries = 0

        def update_inputs(self):
            return ()

        def quiescent(self):
            return self.remaining == 0

        def update(self):
            self.updates_run += 1
            if self.remaining > 0:
                self.remaining -= 1
                if self.remaining == 0:
                    self.expiries += 1

    def run(flag):
        sim = Simulator(time_leaping=flag)
        component = sim.add(Armable("c"))
        calls = []

        def cond(s):
            # The second evaluation is the first one made while the
            # simulator is fully idle — under leaping that is exactly
            # the pre-jump consultation.  Arming there must block the
            # jump, not be skipped over by it.
            calls.append(s.cycle)
            if len(calls) == 2:
                component.remaining = 3
                component.schedule_update()
            return False

        sim.run_until(cond, timeout=50)
        return component.expiries, component.updates_run

    assert run(True) == run(False)
    assert run(True)[0] == 1  # the armed countdown really ran


def test_wires_frozen_across_leap():
    class Holder(Component):
        demand_driven = True
        demand_update = True

        def __init__(self, name):
            super().__init__(name)
            self.out = Wire(f"{name}.out", False)
            self._level = True

        def wires(self):
            yield self.out

        def inputs(self):
            return ()

        def update_inputs(self):
            return ()

        def quiescent(self):
            return True

        def drive(self):
            self.out.value = self._level

    sim = Simulator()
    holder = sim.add(Holder("h"))
    sim.add(Alarm("a", deadline=500))
    sim.run(1)
    assert holder.out.value is True
    sim.run(999)
    assert sim.leaps >= 1
    assert holder.out.value is True  # held level survives the jump
