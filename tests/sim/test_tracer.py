"""Tracer hook ordering contract on the simulation kernel.

The kernel promises its tracer a strict per-cycle protocol:

* ``step_begin`` opens every *stepped* cycle and ``step_end`` closes it
  (leaped cycles never step, so they never fire the pair);
* ``wake_fired`` lands between a cycle's ``step_begin`` and its settle
  phase — timed wakes are honored before any drive runs;
* ``leap`` fires outside any step_begin/step_end bracket;
* the per-component ``drive_executed``/``update_executed`` hooks fire
  only for a ``trace_components`` tracer — a cycle-tier tracer's inner
  loops run exactly as if untraced.

These tests pin that contract with recording tracers, plus the
KernelTracer counter semantics (skips = quiescent demand updaters,
wakes, per-component drive/update tallies) and the ``Simulator.stats()``
promotion of tracer counters.
"""

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.signal import Wire
from repro.telemetry import KernelTracer, Tracer


class RecordingTracer(Tracer):
    """Cycle-tier tracer that journals every hook invocation in order."""

    def __init__(self):
        self.calls = []

    def step_begin(self, sim):
        self.calls.append(("step_begin", sim.cycle))

    def step_end(self, sim):
        self.calls.append(("step_end", sim.cycle))

    def wake_fired(self, component, cycle):
        self.calls.append(("wake_fired", component.name, cycle))

    def leap(self, sim, start, dest):
        self.calls.append(("leap", start, dest))

    def drive_executed(self, component, elapsed_ns):
        self.calls.append(("drive", component.name))

    def update_executed(self, component, elapsed_ns):
        self.calls.append(("update", component.name))


class RecordingComponentTracer(RecordingTracer):
    trace_components = True


class Ticker(Component):
    """Static updater: drives its count, updates every cycle."""

    def __init__(self, name):
        super().__init__(name)
        self.out = Wire(f"{name}.out", 0, width=32)
        self.count = 0

    def wires(self):
        yield self.out

    def drive(self):
        self.out.value = self.count

    def update(self):
        self.count += 1
        self.schedule_drive()


class Sleeper(Component):
    """Demand updater that sleeps on a timed wake, then goes quiescent."""

    demand_update = True

    def __init__(self, name, wake_cycle):
        super().__init__(name)
        self.wake_cycle = wake_cycle
        self.fired = False

    def update(self):
        sim = self._sim
        if self.fired:
            return
        if sim.cycle == 0:
            self.wake_at(self.wake_cycle)
        elif sim.cycle >= self.wake_cycle:
            self.fired = True

    def quiescent(self):
        # Quiescent while asleep (the timed wake re-arms it) and forever
        # once fired.
        return self.fired or self._sim.cycle > 0


def test_step_begin_and_end_bracket_every_stepped_cycle():
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)
    sim.add(Ticker("t"))
    sim.run(3)
    kinds = [call[0] for call in tracer.calls]
    assert kinds == ["step_begin", "step_end"] * 3
    # step_begin sees the pre-step cycle, step_end the advanced one.
    assert [call[1] for call in tracer.calls] == [0, 1, 1, 2, 2, 3]


def test_cycle_tier_tracer_never_receives_component_hooks():
    tracer = RecordingTracer()
    assert tracer.trace_components is False
    sim = Simulator(tracer=tracer)
    sim.add(Ticker("t"))
    sim.run(4)
    kinds = {call[0] for call in tracer.calls}
    assert "drive" not in kinds and "update" not in kinds


def test_component_tier_tracer_sees_drives_and_updates():
    tracer = RecordingComponentTracer()
    sim = Simulator(tracer=tracer)
    sim.add(Ticker("t"))
    sim.run(2)
    kinds = [call[0] for call in tracer.calls]
    assert "drive" in kinds and "update" in kinds
    # Per-cycle ordering: begin, settle drives, phase updates, end.
    first_cycle = kinds[: kinds.index("step_end") + 1]
    assert first_cycle[0] == "step_begin"
    assert first_cycle.index("drive") < first_cycle.index("update")


def test_wake_fires_inside_its_cycles_bracket_before_any_drive():
    tracer = RecordingComponentTracer()
    sim = Simulator(tracer=tracer, time_leaping=False)
    sim.add(Sleeper("s", wake_cycle=4))
    sim.run(6)
    wake = next(c for c in tracer.calls if c[0] == "wake_fired")
    assert wake == ("wake_fired", "s", 4)
    index = tracer.calls.index(wake)
    # The enclosing bracket is cycle 4's, and no drive/update precedes
    # the wake within it.
    opened = [c for c in tracer.calls[:index] if c[0] == "step_begin"][-1]
    assert opened == ("step_begin", 4)
    bracket = tracer.calls[tracer.calls.index(opened) + 1 : index]
    assert all(c[0] not in ("drive", "update") for c in bracket)


def test_leap_fires_outside_step_brackets():
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)
    sim.add(Sleeper("s", wake_cycle=50))
    sim.run(60)
    kinds = [call[0] for call in tracer.calls]
    assert "leap" in kinds
    # Every step_begin is matched by the next call being... stronger:
    # scan for balanced brackets with leap only at depth zero.
    depth = 0
    for call in tracer.calls:
        if call[0] == "step_begin":
            assert depth == 0
            depth = 1
        elif call[0] == "step_end":
            assert depth == 1
            depth = 0
        elif call[0] == "leap":
            assert depth == 0, "leap fired inside a step bracket"
    leap = next(c for c in tracer.calls if c[0] == "leap")
    assert leap[1] < leap[2] <= 50
    assert sim.leaps >= 1


def test_kernel_tracer_counts_skips_for_quiescent_updaters():
    tracer = KernelTracer(events=False)
    sim = Simulator(tracer=tracer, time_leaping=False)
    sim.add(Ticker("ticker"))
    sim.add(Sleeper("sleeper", wake_cycle=5))
    sim.run(8)
    counters = tracer.counters()
    # The static ticker updates every cycle and never skips.
    assert counters["ticker"]["updates"] == 8
    assert counters["ticker"]["skips"] == 0
    # The sleeper ran on cycle 0, woke at 5, ran once more, and was
    # skipped every other stepped cycle.
    sleeper = counters["sleeper"]
    assert sleeper["wakes"] == 1
    assert sleeper["updates"] >= 2
    assert sleeper["skips"] == 8 - sleeper["updates"]


def test_stats_promotes_tracer_counters():
    tracer = KernelTracer(events=False)
    sim = Simulator(tracer=tracer)
    sim.add(Ticker("t"))
    sim.run(3)
    stats = sim.stats()
    assert set(Simulator.STAT_KEYS) <= set(stats)
    assert stats["components"]["t"]["updates"] == 3


def test_stats_without_tracer_has_no_component_block():
    sim = Simulator()
    sim.add(Ticker("t"))
    sim.run(3)
    stats = sim.stats()
    assert set(stats) == set(Simulator.STAT_KEYS)


def test_traced_run_matches_untraced_run():
    def final_count(tracer):
        sim = Simulator(tracer=tracer)
        ticker = sim.add(Ticker("t"))
        sim.add(Sleeper("s", wake_cycle=9))
        sim.run(20)
        return ticker.count, sim.cycle, sim.leaps

    untraced = final_count(None)
    assert final_count(Tracer()) == untraced
    assert final_count(KernelTracer()) == untraced
