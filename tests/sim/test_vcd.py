"""Unit tests for the VCD waveform writer."""

import io

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.signal import Wire
from repro.sim.vcd import VcdWriter, _identifier


class Toggler(Component):
    def __init__(self, name):
        super().__init__(name)
        self.bit = Wire(f"{name}.bit", False)
        self.count = Wire(f"{name}.count", 0, width=8)
        self._state = 0

    def wires(self):
        yield self.bit
        yield self.count

    def drive(self):
        self.bit.value = bool(self._state % 2)
        self.count.value = self._state

    def update(self):
        self._state += 1


def test_identifier_unique_and_compact():
    idents = {_identifier(i) for i in range(500)}
    assert len(idents) == 500
    assert _identifier(0) == "!"


def test_header_declares_all_wires():
    stream = io.StringIO()
    wires = [Wire("a", False), Wire("b", 0, width=16)]
    VcdWriter(stream, wires, module="dut")
    text = stream.getvalue()
    assert "$timescale 1ns $end" in text
    assert "$scope module dut $end" in text
    assert "$var wire 1" in text
    assert "$enddefinitions $end" in text


def test_sampling_emits_changes_only():
    sim = Simulator()
    toggler = sim.add(Toggler("t"))
    stream = io.StringIO()
    writer = VcdWriter(stream, list(toggler.wires()))
    sim.add_probe(writer.sample)
    sim.run(4)
    writer.close()
    body = stream.getvalue().split("$enddefinitions $end\n", 1)[1]
    # The bit toggles every cycle, so every cycle stamp must appear.
    for stamp in ("#1", "#2", "#3", "#4"):
        assert stamp in body


def test_unchanged_wires_not_re_emitted():
    stream = io.StringIO()
    constant = Wire("const", True)
    writer = VcdWriter(stream, [constant])
    sim = Simulator()
    sim.add_probe(writer.sample)
    sim.run(3)
    body = stream.getvalue().split("$enddefinitions $end\n", 1)[1]
    # First sample emits the value; later samples see no change.
    assert body.count("1!") == 1


def test_change_list_output_identical_to_full_scan():
    """The kernel-fed change-list path must emit byte-identical VCD.

    Same scenario built twice — one writer on the changed-wire set
    (the default), one forced to re-scan every wire per cycle — over a
    TMU harness with real traffic and a mid-run fault, so wires change
    in settle, in update, and from between-cycle pokes.
    """
    from repro.axi.traffic import write_spec
    from repro.faults.campaign import IpHarness
    from tests.conftest import fast_budgets
    from repro.tmu.config import TmuConfig

    outputs = {}
    for use_change_list in (True, False):
        harness = IpHarness(TmuConfig(budgets=fast_budgets()))
        harness.manager.submit(write_spec(0, 0x100, beats=8))
        stream = io.StringIO()
        writer = VcdWriter(
            stream,
            list(harness.host.wires()) + [harness.tmu.irq],
            use_change_list=use_change_list,
        )
        harness.sim.add_probe(writer.sample)
        for cycle in range(120):
            if cycle == 30:
                harness.subordinate.faults.mute_b = True  # between-cycle poke
            harness.step()
        writer.close()
        outputs[use_change_list] = stream.getvalue()
    assert outputs[True] == outputs[False]


def test_change_list_tracks_unregistered_wires():
    """Wires the probed simulator does not own fall back to full scans."""
    sim = Simulator()
    toggler = sim.add(Toggler("t"))
    foreign = Wire("foreign", 0, width=8)  # never registered with sim
    stream = io.StringIO()
    writer = VcdWriter(stream, [toggler.bit, foreign])
    sim.add_probe(writer.sample)
    sim.run(2)
    foreign.value = 5  # between cycles, invisible to the kernel
    sim.run(2)
    body = stream.getvalue().split("$enddefinitions $end\n", 1)[1]
    assert "b101 " in body  # the poke still reached the dump


def test_payload_wires_dump_presence_bit():
    stream = io.StringIO()
    payload = Wire("payload", None, width=64)
    writer = VcdWriter(stream, [payload])
    sim = Simulator()
    sim.add_probe(writer.sample)
    sim.step()
    payload.value = object()
    sim.step()
    body = stream.getvalue().split("$enddefinitions $end\n", 1)[1]
    assert "0!" in body and "1!" in body
