"""Unit tests for the two-phase simulation kernel."""

import pytest

from repro.sim.component import Component
from repro.sim.kernel import SettleError, Simulator
from repro.sim.signal import Channel, Wire


class Counter(Component):
    """Registered counter driving a wire with its value."""

    def __init__(self, name):
        super().__init__(name)
        self.out = Wire(f"{name}.out", 0, width=32)
        self.value = 0

    def wires(self):
        yield self.out

    def drive(self):
        self.out.value = self.value

    def update(self):
        self.value += 1

    def reset(self):
        self.value = 0


class Follower(Component):
    """Combinationally mirrors another wire (tests settle ordering)."""

    def __init__(self, name, source):
        super().__init__(name)
        self.source = source
        self.out = Wire(f"{name}.out", 0, width=32)

    def wires(self):
        yield self.out

    def drive(self):
        self.out.value = self.source.value


class Oscillator(Component):
    """Pathological combinational loop: inverts its own output."""

    def __init__(self, name):
        super().__init__(name)
        self.out = Wire(f"{name}.out", False)

    def wires(self):
        yield self.out

    def drive(self):
        self.out.value = not self.out.value


def test_step_advances_cycle():
    sim = Simulator()
    sim.step()
    sim.step()
    assert sim.cycle == 2


def test_update_runs_once_per_cycle():
    sim = Simulator()
    counter = sim.add(Counter("c"))
    sim.run(5)
    assert counter.value == 5


def test_combinational_chain_settles_regardless_of_add_order():
    # Follower registered BEFORE its source: needs a second settle sweep.
    sim = Simulator()
    counter = Counter("c")
    follower = Follower("f", counter.out)
    sim.add(follower)
    sim.add(counter)
    sim.step()
    assert follower.out.value == counter.out.value == 0
    sim.step()
    assert follower.out.value == 1


def test_deep_combinational_chain_settles():
    sim = Simulator()
    counter = Counter("c")
    chain = [counter]
    previous = counter.out
    followers = []
    for i in range(10):
        follower = Follower(f"f{i}", previous)
        followers.append(follower)
        previous = follower.out
    # Register in worst-case (reverse) order.
    for component in reversed(followers):
        sim.add(component)
    sim.add(counter)
    sim.run(3)
    assert followers[-1].out.value == counter.out.value


def test_combinational_loop_raises_settle_error():
    sim = Simulator(max_settle_iterations=8)
    sim.add(Oscillator("osc"))
    with pytest.raises(SettleError):
        sim.step()


def test_reset_restores_wires_and_components():
    sim = Simulator()
    counter = sim.add(Counter("c"))
    sim.run(3)
    sim.reset()
    assert sim.cycle == 0
    assert counter.value == 0
    assert counter.out.value == 0


def test_run_until_returns_cycle_condition_first_held():
    sim = Simulator()
    counter = sim.add(Counter("c"))
    result = sim.run_until(lambda s: counter.value >= 4, timeout=100)
    assert result == 4
    assert sim.cycle == 4


def test_run_until_times_out_returns_none():
    sim = Simulator()
    sim.add(Counter("c"))
    assert sim.run_until(lambda s: False, timeout=10) is None


def test_probe_called_after_each_cycle():
    sim = Simulator()
    sim.add(Counter("c"))
    seen = []
    sim.add_probe(lambda s: seen.append(s.cycle))
    sim.run(4)
    assert seen == [1, 2, 3, 4]


def test_channel_fired_requires_both_valid_and_ready():
    channel = Channel("ch")
    assert not channel.fired()
    channel.valid.value = True
    assert not channel.fired()
    channel.ready.value = True
    assert channel.fired()
    assert channel.beat() is None  # payload never driven
    channel.payload.value = "beat"
    assert channel.beat() == "beat"


def test_channel_idle_clears_valid_and_payload():
    channel = Channel("ch")
    channel.drive("payload")
    assert channel.valid.value and channel.payload.value == "payload"
    channel.idle()
    assert not channel.valid.value
    assert channel.payload.value is None


def test_wire_reset_restores_init():
    wire = Wire("w", init=7, width=8)
    wire.value = 99
    wire.reset()
    assert wire.value == 7


def test_settle_succeeds_when_depth_equals_iteration_budget():
    # The worklist draining exactly on the last allowed round is a
    # settled cycle, not a combinational loop.
    sim = Simulator(max_settle_iterations=1)
    counter = sim.add(Counter("c"))
    sim.run(3)
    assert counter.out.value == 2


def test_wire_adoption_by_new_simulator_drops_stale_readers():
    # A wire re-registered with a second simulator must not schedule —
    # let alone execute — components of the abandoned simulator.
    class SharedFollower(Follower):
        def wires(self):
            yield self.source
            yield self.out

    shared = Wire("shared", 0, width=32)
    sim_a = Simulator()
    follower_a = sim_a.add(SharedFollower("fa", shared))
    sim_a.step()  # traces follower_a as a reader of `shared`

    sim_b = Simulator()
    follower_b = sim_b.add(SharedFollower("fb", shared))
    shared.value = 42  # poke between cycles; sim_b owns the wire now
    sim_b.step()
    assert follower_b.out.value == 42
    assert follower_a.out.value == 0  # dead sim's component never ran
