"""Contracts of the lockstep-batch kernel primitives.

Unit-level coverage of :mod:`repro.sim.batch` (the period algebra, the
congruence classes, the stamp shifting, the :class:`LeapTrace`
evidence) and of the batch executor's verify mode — the extension of
``strategy="verify"`` to the derived-lane path, which must raise
:class:`SchedulerDivergenceError` naming the offending lane when a
derivation is wrong.
"""

import dataclasses

import pytest

from repro.faults.types import InjectionStage
from repro.orchestrate import BatchExecutor, CampaignSpec, run_campaign_spec
from repro.sim import SchedulerDivergenceError
from repro.sim.batch import (
    LeapTrace,
    lane_classes,
    lockstep_period,
    shift_cycles,
)
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant


class _Stub:
    def __init__(self, phase_period):
        self.phase_period = phase_period


# ----------------------------------------------------------------------
# lockstep_period
# ----------------------------------------------------------------------
def test_lockstep_period_is_lcm():
    assert lockstep_period([_Stub(1), _Stub(4), _Stub(6)]) == 12


def test_lockstep_period_of_reactive_components_is_one():
    assert lockstep_period([_Stub(1), _Stub(1)]) == 1


def test_lockstep_period_empty_design_is_one():
    assert lockstep_period([]) == 1


def test_lockstep_period_undeclared_component_poisons():
    assert lockstep_period([_Stub(1), _Stub(None), _Stub(4)]) is None


def test_lockstep_period_rejects_non_positive():
    with pytest.raises(ValueError):
        lockstep_period([_Stub(0)])


def test_harness_periods_reflect_prescaler():
    # The IP harness's only absolute-time-periodic component is the
    # TMU prescaler, so the pack period equals its step.
    from repro.faults.campaign import IpHarness

    config = TmuConfig(variant=Variant.FULL, prescale_step=3)
    assert lockstep_period(IpHarness(config).sim.components) == 3


# ----------------------------------------------------------------------
# lane_classes
# ----------------------------------------------------------------------
def test_lane_classes_partitions_by_residue():
    assert lane_classes(range(8), 2) == {0: [0, 2, 4, 6], 1: [1, 3, 5, 7]}


def test_lane_classes_period_one_is_one_pack():
    assert lane_classes([5, 1, 3], 1) == {0: [1, 3, 5]}


def test_lane_classes_orders_each_class_ascending():
    classes = lane_classes([9, 2, 7, 0, 4, 11], 2)
    assert classes == {0: [0, 2, 4], 1: [7, 9, 11]}


def test_lane_classes_rejects_non_positive_period():
    with pytest.raises(ValueError):
        lane_classes([0, 1], 0)


# ----------------------------------------------------------------------
# shift_cycles
# ----------------------------------------------------------------------
def test_shift_cycles_translates_and_preserves_holes():
    assert shift_cycles((3, None, 10), 5) == [8, None, 15]


def test_shift_cycles_long_vector_path():
    assert shift_cycles(tuple(range(6)), 7) == [7, 8, 9, 10, 11, 12]


# ----------------------------------------------------------------------
# LeapTrace evidence
# ----------------------------------------------------------------------
class _FakeSim:
    def __init__(self, cycle):
        self.cycle = cycle


def _trace_with(onset, stepped, leaps=()):
    trace = LeapTrace(onset=onset)
    for cycle in stepped:
        # Probes observe cycle - 1 (they run after the counter bumps).
        trace(_FakeSim(cycle + 1))
    for start, stop in leaps:
        trace.on_leap(None, start, stop)
    return trace


def test_leap_trace_contiguous_prefix_is_inert():
    trace = _trace_with(onset=10, stepped=[0, 1, 2], leaps=[(3, 10)])
    assert trace.transient_cycles == 3
    assert trace.inert_before(10)
    assert trace.leaps == 1 and trace.cycles_leaped == 7


def test_leap_trace_mid_gap_wake_is_not_inert():
    # A stepped cycle after the transient (a wake fired inside the gap)
    # breaks contiguity: the pre-onset world is not provably identical.
    trace = _trace_with(onset=10, stepped=[0, 1, 7])
    assert not trace.inert_before(10)


def test_leap_trace_transient_reaching_onset_is_not_inert():
    # k == onset means there was no leaped gap at all — no evidence.
    trace = _trace_with(onset=3, stepped=[0, 1, 2])
    assert not trace.inert_before(3)


def test_leap_trace_recheck_with_earlier_onset():
    trace = _trace_with(onset=10, stepped=[0, 1, 2])
    assert trace.inert_before(4)
    assert not trace.inert_before(3)


def test_leap_trace_ignores_post_onset_steps():
    trace = LeapTrace(onset=2)
    for cycle in (0, 5, 6, 7):
        trace(_FakeSim(cycle + 1))
    assert trace.stepped == [0]
    assert trace.inert_before(2)


def test_leap_trace_rejects_negative_onset():
    with pytest.raises(ValueError):
        LeapTrace(onset=-1)


# ----------------------------------------------------------------------
# Result derivation (shifted)
# ----------------------------------------------------------------------
def _one_result(seed):
    from repro.faults.campaign import run_injection

    return run_injection(
        _config(), InjectionStage.AW_READY_MISSING, beats=4, issue_delay=seed
    )


def _config():
    return TmuConfig(
        variant=Variant.FULL,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=2,
        budgets=AdaptiveBudgetPolicy(
            PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
        ),
        max_txn_cycles=96,
    )


def test_shifted_matches_scalar_rerun_exactly():
    # Seeds 3 and 7: the leader's pre-onset gap contains a real leap,
    # which is exactly the evidence regime (`inert_before`) the batch
    # executor derives under — there the leap statistics shift exactly.
    leader, follower = _one_result(3), _one_result(7)
    derived = leader.shifted(4)
    assert dataclasses.asdict(derived) == dataclasses.asdict(follower)


def test_shifted_moves_stamps_and_leap_cycles_only():
    result = _one_result(2)
    derived = result.shifted(10)
    assert derived.detect_cycle == result.detect_cycle + 10
    assert derived.inject_cycle == result.inject_cycle + 10
    assert derived.sim_cycles_leaped == result.sim_cycles_leaped + 10
    assert derived.sim_leaps == result.sim_leaps
    assert derived.recovered == result.recovered
    assert derived.stage == result.stage


# ----------------------------------------------------------------------
# Batch verify mode
# ----------------------------------------------------------------------
def _ip_spec():
    return CampaignSpec.ip(
        [_config()],
        [InjectionStage.AW_READY_MISSING],
        beats=4,
        seeds=tuple(range(8)),
    )


def test_batch_verify_catches_corrupted_derivation():
    # Plant a wrong derivation through the test seam: the verify replay
    # must catch it and name the offending lane.
    def corrupt(run, derived):
        return dataclasses.replace(derived, detect_cycle=derived.detect_cycle + 1)

    executor = BatchExecutor(8, verify=True, derive_hook=corrupt)
    with pytest.raises(SchedulerDivergenceError) as excinfo:
        run_campaign_spec(_ip_spec(), executor=executor)
    message = str(excinfo.value)
    assert "lane" in message and "seed" in message


def test_batch_verify_names_the_divergent_lane():
    # Corrupt exactly one lane; the error must carry that lane's seed.
    def corrupt(run, derived):
        if run.seed == 6:
            return dataclasses.replace(derived, recovered=not derived.recovered)
        return derived

    executor = BatchExecutor(8, verify=True, derive_hook=corrupt)
    with pytest.raises(SchedulerDivergenceError) as excinfo:
        run_campaign_spec(_ip_spec(), executor=executor)
    assert "seed 6" in str(excinfo.value)


def test_batch_verify_passes_honest_derivations():
    executor = BatchExecutor(8, verify=True)
    batch = run_campaign_spec(_ip_spec(), executor=executor)
    serial = run_campaign_spec(_ip_spec())
    assert executor.stats.derived > 0
    assert [dataclasses.asdict(r) for r in batch] == [
        dataclasses.asdict(r) for r in serial
    ]
