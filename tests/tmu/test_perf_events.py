"""Unit tests for performance logging and the error log."""

from repro.axi.types import AxiDir
from repro.tmu.events import ErrorLog, FaultEvent, FaultKind
from repro.tmu.perf import LatencyStat, PerfLog
from repro.tmu.phases import ReadPhase, WritePhase


def test_latency_stat_streaming():
    stat = LatencyStat()
    for value in (5, 3, 9):
        stat.record(value)
    assert stat.count == 3
    assert stat.minimum == 3
    assert stat.maximum == 9
    assert stat.mean == (5 + 3 + 9) / 3


def test_latency_stat_empty_mean_zero():
    assert LatencyStat().mean == 0.0


def test_latency_stat_merge():
    a, b = LatencyStat(), LatencyStat()
    a.record(1)
    b.record(10)
    a.merge(b)
    assert a.count == 2
    assert a.minimum == 1 and a.maximum == 10


def test_perf_log_records_completion_and_phases():
    log = PerfLog(AxiDir.WRITE)
    log.record_completion(
        orig_id=1,
        addr=0x100,
        beats=8,
        start_cycle=10,
        end_cycle=30,
        phase_latencies={WritePhase.W_DATA: 8, WritePhase.B_WAIT: 4},
    )
    assert log.completed == 1
    assert log.beats_transferred == 8
    assert log.txn_latency.maximum == 20
    assert log.phase_stats[WritePhase.W_DATA].mean == 8
    summary = log.phase_summary()
    assert summary["WFIRST_WLAST"].count == 1
    assert summary["AWVLD_AWRDY"].count == 0


def test_perf_log_read_direction_uses_read_phases():
    log = PerfLog(AxiDir.READ)
    assert set(log.phase_stats) == set(ReadPhase)


def test_perf_log_history_bounded():
    log = PerfLog(AxiDir.WRITE, history_depth=3)
    for i in range(10):
        log.record_completion(0, 0, 1, i, i + 1)
    assert len(log.history) == 3
    assert log.history[-1].start_cycle == 9


def test_perf_log_throughput():
    log = PerfLog(AxiDir.WRITE)
    log.record_completion(0, 0, 100, 0, 10)
    assert log.throughput(200) == 0.5


def test_error_log_fifo_and_overflow():
    log = ErrorLog(depth=2)
    events = [
        FaultEvent(FaultKind.TIMEOUT, AxiDir.WRITE, None, detect_cycle=i)
        for i in range(4)
    ]
    for event in events:
        log.push(event)
    assert len(log) == 2
    assert log.dropped == 2
    assert log.pop() is events[0]
    assert log.pop() is events[1]
    assert log.pop() is None


def test_error_log_clear():
    log = ErrorLog()
    log.push(FaultEvent(FaultKind.TIMEOUT, AxiDir.READ, None, detect_cycle=1))
    log.clear()
    assert len(log) == 0 and log.dropped == 0


def test_fault_event_phase_label():
    event = FaultEvent(
        FaultKind.TIMEOUT, AxiDir.WRITE, WritePhase.B_WAIT, detect_cycle=5
    )
    assert event.phase_label == "WLAST_BVLD"
    bare = FaultEvent(FaultKind.TIMEOUT, AxiDir.WRITE, None, detect_cycle=5)
    assert bare.phase_label == "-"


def test_fault_event_str_mentions_kind_and_cycle():
    event = FaultEvent(
        FaultKind.ID_MISMATCH,
        AxiDir.READ,
        ReadPhase.R_DATA,
        detect_cycle=77,
        txn_id=3,
    )
    text = str(event)
    assert "77" in text and "id_mismatch" in text and "RVLD_RLAST" in text
