"""Tests for the TMU top level: passthrough, remap, stall, sever, resume."""

from tests.conftest import build_loop, fast_budgets

from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.axi.types import Resp
from repro.tmu.config import TmuConfig, Variant, full_config, tiny_config
from repro.tmu.unit import TmuState


def drain(env, timeout=10_000):
    done = env.sim.run_until(lambda s: env.manager.idle, timeout=timeout)
    assert done is not None, "manager did not drain"
    return done


def test_transparent_passthrough_zero_added_latency():
    """§II-B: transactions traverse without added latency."""
    with_tmu = build_loop()
    with_tmu.manager.submit(write_spec(0, 0x100, beats=4))
    cycles_with = drain(with_tmu)

    from repro.axi.interface import AxiInterface
    from repro.axi.manager import Manager
    from repro.axi.subordinate import Subordinate
    from repro.sim.kernel import Simulator

    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    sim.add(manager)
    sim.add(Subordinate("subordinate", bus))
    manager.submit(write_spec(0, 0x100, beats=4))
    cycles_without = sim.run_until(lambda s: manager.idle, timeout=10_000)
    assert cycles_with == cycles_without


def test_ids_remapped_downstream_restored_upstream():
    env = build_loop()
    env.manager.submit(write_spec(0xBEEF, 0x100, beats=1))
    seen_downstream = []
    env.sim.add_probe(
        lambda sim: seen_downstream.append(env.device.aw.payload.value)
        if env.device.aw.fired()
        else None
    )
    drain(env)
    assert env.manager.completed[0].txn_id == 0xBEEF
    assert env.manager.surprises == []
    assert seen_downstream[0].id < env.config.max_uniq_ids


def test_many_sparse_ids_share_compact_space():
    env = build_loop()
    # 8 distinct wide IDs through a 4-slot remapper, sequentially.
    for i in range(8):
        env.manager.submit(write_spec(1000 + 37 * i, 0x100 + 0x40 * i))
    drain(env)
    assert len(env.manager.completed) == 8
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)


def test_capacity_stall_preserves_transactions():
    """Saturating the OTT stalls new requests; nothing is lost (§II-D)."""
    config = TmuConfig(max_uniq_ids=2, txn_per_id=1, budgets=fast_budgets())
    env = build_loop(config, b_latency=8)
    for i in range(6):
        env.manager.submit(write_spec(i % 2, 0x100 * (i + 1)))
    drain(env, timeout=20_000)
    assert len(env.manager.completed) == 6
    assert env.tmu.faults_handled == 0
    assert all(t.resp == Resp.OKAY for t in env.manager.completed)


def test_outstanding_never_exceeds_capacity():
    config = TmuConfig(max_uniq_ids=2, txn_per_id=2, budgets=fast_budgets())
    env = build_loop(config, b_latency=6)
    for i in range(10):
        env.manager.submit(write_spec(i % 2, 0x80 * (i + 1)))
    peak = 0
    while not env.manager.idle:
        env.sim.step()
        peak = max(peak, env.tmu.write_guard.ott.occupancy)
        assert env.tmu.write_guard.ott.occupancy <= config.max_outstanding
        if env.sim.cycle > 20_000:
            raise AssertionError("stalled")
    assert peak == config.max_outstanding


def test_disabled_tmu_is_pure_wire():
    config = TmuConfig(enabled=False, budgets=fast_budgets())
    env = build_loop(config)
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(500)
    assert env.tmu.faults_handled == 0
    assert not env.tmu.irq.value
    assert not env.manager.idle  # the hang propagates: nobody intervenes


def test_fault_severs_and_aborts_with_slverr():
    env = build_loop(b_latency=2)
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100, beats=2))
    env.manager.submit(write_spec(1, 0x200, beats=2))
    detect = env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    assert detect is not None
    drain(env)
    assert {t.resp for t in env.manager.completed} == {Resp.SLVERR}
    assert len(env.manager.completed) == 2


def test_requests_during_recovery_get_slverr():
    env = build_loop()
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    # Submit while the TMU is recovering (reset unit handshake ongoing).
    env.manager.submit(read_spec(1, 0x200, beats=2))
    env.manager.submit(write_spec(2, 0x300))
    drain(env)
    assert len(env.manager.completed) == 3
    assert all(t.resp == Resp.SLVERR for t in env.manager.completed[:1])


def test_reset_handshake_and_resume():
    env = build_loop()
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    resumed = env.sim.run_until(
        lambda s: env.tmu.state == TmuState.MONITOR, timeout=2_000
    )
    assert resumed is not None
    assert env.subordinate.resets_taken == 1
    assert env.reset_unit.resets_issued == 1
    env.sim.step()  # let the deasserted request propagate to the wire
    assert not env.tmu.reset_req.value
    # The reset repaired the fault: normal service resumes.
    env.tmu.clear_irq()
    env.manager.submit(write_spec(0, 0x500))
    drain(env)
    assert env.manager.completed[-1].resp == Resp.OKAY
    assert env.tmu.faults_handled == 1


def test_irq_latched_until_software_clears():
    env = build_loop()
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    env.sim.run_until(lambda s: env.tmu.state == TmuState.MONITOR, timeout=2_000)
    env.sim.run(50)
    assert env.tmu.irq.value  # still pending
    env.tmu.clear_irq()
    env.sim.run(2)
    assert not env.tmu.irq.value


def test_unrequested_response_sunk_not_forwarded():
    env = build_loop(config=full_config(budgets=fast_budgets()))
    env.subordinate.faults.spurious_r = 2
    env.sim.run(30)
    # The manager never saw the stray beat; the Fc TMU tripped on it.
    assert env.manager.surprises == []
    assert env.tmu.faults_handled == 1


def test_tiny_variant_sinks_spurious_response_without_trip():
    env = build_loop(config=tiny_config(budgets=fast_budgets()))
    env.subordinate.faults.spurious_b = 3
    env.manager.submit(write_spec(0, 0x100))
    drain(env)
    assert env.manager.surprises == []
    assert env.tmu.faults_handled == 0  # lenient: filtered, logged, no reset
    assert len(env.tmu.write_guard.log) >= 1
    assert env.manager.completed[0].resp == Resp.OKAY


def test_mid_burst_abort_drains_w_channel():
    """Manager mid-W-burst at fault time must not wedge after recovery."""
    env = build_loop(config=tiny_config(budgets=fast_budgets()))
    env.subordinate.faults.deaf_w = True
    env.manager.submit(write_spec(0, 0x100, beats=8))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    drain(env)
    env.tmu.clear_irq()
    env.manager.submit(write_spec(0, 0x200, beats=4))
    drain(env)
    assert env.manager.completed[-1].resp == Resp.OKAY


def test_back_to_back_faults_two_recoveries():
    env = build_loop()
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    drain(env)
    env.tmu.clear_irq()
    env.sim.run_until(lambda s: env.tmu.state == TmuState.MONITOR, timeout=2_000)
    env.subordinate.faults.mute_r = True
    env.manager.submit(read_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    drain(env)
    assert env.tmu.faults_handled == 2
    assert env.subordinate.resets_taken == 2


def test_random_traffic_through_tmu_is_transparent():
    env = build_loop(b_latency=2, r_latency=2)
    env.manager.submit_all(RandomTraffic(seed=9, max_beats=8).take(40))
    drain(env, timeout=30_000)
    assert len(env.manager.completed) == 40
    assert env.tmu.faults_handled == 0
    assert env.tmu.write_guard.perf.completed + env.tmu.read_guard.perf.completed == 40


def test_perf_log_matches_scoreboard():
    env = build_loop()
    env.manager.submit_all([write_spec(0, 0x100, beats=4), read_spec(1, 0x100, beats=4)])
    drain(env)
    assert env.tmu.write_guard.perf.completed == 1
    assert env.tmu.read_guard.perf.completed == 1
    wg_latency = env.tmu.write_guard.perf.txn_latency.maximum
    sb_latency = env.manager.completed[-1].latency
    assert abs(wg_latency - sb_latency) <= 2  # observation conventions differ ≤2 cycles
