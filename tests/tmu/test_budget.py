"""Unit tests for adaptive time budgeting."""

from repro.tmu.budget import (
    AdaptiveBudgetPolicy,
    FixedBudgetPolicy,
    PhaseBudgets,
    SpanBudgets,
)
from repro.tmu.phases import ReadPhase, WritePhase


def test_data_budget_scales_with_burst_length():
    policy = AdaptiveBudgetPolicy()
    short = policy.write_phase_budget(WritePhase.W_DATA, beats=1)
    long = policy.write_phase_budget(WritePhase.W_DATA, beats=256)
    assert long > short
    assert long - short == policy.phases.w_data_per_beat * 255


def test_read_data_budget_scales_with_burst_length():
    policy = AdaptiveBudgetPolicy()
    assert policy.read_phase_budget(ReadPhase.R_DATA, 64) > policy.read_phase_budget(
        ReadPhase.R_DATA, 1
    )


def test_handshake_budgets_independent_of_burst_length():
    policy = AdaptiveBudgetPolicy()
    for phase in (WritePhase.AW_HANDSHAKE, WritePhase.W_FIRST_HS, WritePhase.B_HANDSHAKE):
        assert policy.write_phase_budget(phase, 1) == policy.write_phase_budget(
            phase, 256
        )


def test_queue_factor_adds_waiting_time():
    policy = AdaptiveBudgetPolicy(PhaseBudgets(queue_factor=5))
    base = policy.write_phase_budget(WritePhase.W_ENTRY, 4, queued_ahead=0)
    queued = policy.write_phase_budget(WritePhase.W_ENTRY, 4, queued_ahead=3)
    assert queued == base + 15
    # Only waiting phases get the bonus.
    assert policy.write_phase_budget(
        WritePhase.W_DATA, 4, queued_ahead=3
    ) == policy.write_phase_budget(WritePhase.W_DATA, 4, queued_ahead=0)


def test_span_budget_scales_with_beats_and_queue():
    policy = AdaptiveBudgetPolicy(span=SpanBudgets(base=64, per_beat=2, queue_factor=4))
    assert policy.span_budget(10) == 84
    assert policy.span_budget(10, queued_ahead=2) == 92


def test_span_budget_covers_paper_system_setting():
    # The paper's 320-cycle Tc budget for a 250-beat transaction.
    policy = AdaptiveBudgetPolicy(span=SpanBudgets(base=70, per_beat=1))
    assert policy.span_budget(250) == 320


def test_max_budget_dominates_all_phases():
    policy = AdaptiveBudgetPolicy(
        PhaseBudgets(queue_factor=2), SpanBudgets(base=64, per_beat=2)
    )
    ceiling = policy.max_budget(max_beats=256, max_outstanding=32)
    for phase in WritePhase:
        assert policy.write_phase_budget(phase, 256, 32) <= ceiling
    for phase in ReadPhase:
        assert policy.read_phase_budget(phase, 256, 32) <= ceiling
    assert policy.span_budget(256, 32) <= ceiling


def test_fixed_policy_ignores_geometry():
    policy = FixedBudgetPolicy(phase_budget=50, span_budget_cycles=99)
    for phase in WritePhase:
        assert policy.write_phase_budget(phase, 256, 32) == 50
    for phase in ReadPhase:
        assert policy.read_phase_budget(phase, 1) == 50
    assert policy.span_budget(1) == policy.span_budget(256) == 99
    assert policy.max_budget(256, 32) == 99


def test_adaptive_avoids_false_timeout_where_fixed_fails():
    """The ablation premise: a 256-beat burst needs > fixed budget cycles."""
    adaptive = AdaptiveBudgetPolicy()
    fixed = FixedBudgetPolicy(phase_budget=64)
    burst_duration = 256  # one beat per cycle, best case
    assert adaptive.write_phase_budget(WritePhase.W_DATA, 256) >= burst_duration
    assert fixed.write_phase_budget(WritePhase.W_DATA, 256) < burst_duration
