"""Tests for the latency histogram (Kyung-PMU-style distributions)."""

import pytest

from tests.conftest import build_loop

from repro.axi.traffic import write_spec
from repro.tmu.perf import LatencyHistogram


def test_bucket_boundaries_power_of_two():
    hist = LatencyHistogram(buckets=6)
    assert hist.bucket_bounds(0) == (0, 0)
    assert hist.bucket_bounds(1) == (1, 1)
    assert hist.bucket_bounds(2) == (2, 3)
    assert hist.bucket_bounds(3) == (4, 7)
    assert hist.bucket_bounds(5) == (16, None)  # overflow bucket


def test_record_lands_in_correct_bucket():
    hist = LatencyHistogram(buckets=6)
    for value, bucket in ((0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)):
        before = hist.counts[bucket]
        hist.record(value)
        assert hist.counts[bucket] == before + 1


def test_overflow_bucket_catches_huge_values():
    hist = LatencyHistogram(buckets=4)
    hist.record(10_000)
    assert hist.counts[3] == 1


def test_total_and_nonzero():
    hist = LatencyHistogram()
    for value in (1, 1, 5, 9):
        hist.record(value)
    assert hist.total == 4
    populated = hist.nonzero()
    assert sum(count for _, count in populated) == 4


def test_percentile_monotone():
    hist = LatencyHistogram()
    for value in range(1, 101):
        hist.record(value)
    p50 = hist.percentile(0.5)
    p99 = hist.percentile(0.99)
    assert p50 <= p99
    assert p99 >= 64  # values up to 100 land in the 64-127 bucket


def test_percentile_validation():
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.percentile(0.0)
    with pytest.raises(ValueError):
        hist.percentile(1.5)
    assert hist.percentile(0.5) == 0  # empty histogram


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram().record(-1)


def test_perf_log_populates_histogram_end_to_end():
    env = build_loop(b_latency=4)
    env.manager.submit_all([write_spec(0, 0x100 * i, beats=2) for i in range(1, 9)])
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    hist = env.tmu.write_guard.perf.latency_histogram
    assert hist.total == 8
    # Queued responses spread latencies, but within a narrow band.
    assert 1 <= len(hist.nonzero()) <= 4
    assert hist.percentile(1.0) >= hist.percentile(0.5)
