"""Tests for the software-visible register file."""

import pytest

from tests.conftest import build_loop

from repro.axi.traffic import read_spec, write_spec
from repro.tmu import registers as R
from repro.tmu.registers import TmuRegisters


def make_env():
    env = build_loop()
    env.regs = TmuRegisters(env.tmu)
    return env


def test_ctrl_enable_roundtrip():
    env = make_env()
    assert env.regs.read(R.REG_CTRL) == 1
    env.regs.write(R.REG_CTRL, 0)
    assert env.tmu.config.enabled is False
    env.regs.write(R.REG_CTRL, 1)
    assert env.tmu.config.enabled is True


def test_status_reflects_irq_and_fault_state():
    env = make_env()
    assert env.regs.read(R.REG_STATUS) == 0
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    status = env.regs.read(R.REG_STATUS)
    assert status & 1  # irq pending
    assert status & 2  # fault handling active


def test_irq_clear_write_one_to_clear():
    env = make_env()
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    env.regs.write(R.REG_IRQ_CLEAR, 0)  # writing 0 is a no-op
    assert env.tmu.irq_pending
    env.regs.write(R.REG_IRQ_CLEAR, 1)
    assert not env.tmu.irq_pending


def test_fault_kind_and_id_registers():
    env = make_env()
    assert env.regs.read(R.REG_FAULT_KIND) == 0
    env.subordinate.faults.mute_b = True
    env.manager.submit(write_spec(7, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    assert env.regs.read(R.REG_FAULT_KIND) != 0
    assert env.regs.read(R.REG_FAULT_ID) == 7


def test_budget_registers_read_write():
    env = make_env()
    base = env.regs.read(R.REG_SPAN_BASE)
    env.regs.write(R.REG_SPAN_BASE, base + 100)
    assert env.tmu.config.budgets.span.base == base + 100
    env.regs.write(R.REG_SPAN_PER_BEAT, 9)
    assert env.regs.read(R.REG_SPAN_PER_BEAT) == 9


def test_completion_and_latency_counters():
    env = make_env()
    env.manager.submit_all(
        [write_spec(0, 0x100, beats=4), read_spec(1, 0x100, beats=4)]
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.regs.read(R.REG_WR_COMPLETED) == 1
    assert env.regs.read(R.REG_RD_COMPLETED) == 1
    assert env.regs.read(R.REG_WR_LAT_MAX) > 0
    assert env.regs.read(R.REG_RD_LAT_MAX) > 0


def test_errlog_count_and_pop():
    env = make_env()
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    count = env.regs.read(R.REG_ERRLOG_COUNT)
    assert count >= 1
    kind_code = env.regs.read(R.REG_ERRLOG_POP)
    assert kind_code != 0
    assert env.regs.read(R.REG_ERRLOG_COUNT) == count - 1


def test_fault_count_register():
    env = make_env()
    env.subordinate.faults.deaf_aw = True
    env.manager.submit(write_spec(0, 0x100))
    assert env.sim.run_until(lambda s: env.tmu.irq.value, timeout=2_000)
    assert env.regs.read(R.REG_FAULT_COUNT) == 1


def test_occupancy_register_packs_both_guards():
    env = make_env(); env.subordinate.b_latency = 20
    env.manager.submit(write_spec(0, 0x100))
    env.sim.run(6)
    occ = env.regs.read(R.REG_OCCUPANCY)
    assert (occ >> 8) == 1  # one outstanding write
    assert (occ & 0xFF) == 0


def test_phase_mean_registers():
    env = make_env()
    env.manager.submit_all(
        [write_spec(0, 0x100, beats=4), read_spec(1, 0x100, beats=4)]
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    # WFIRST_WLAST is write phase index 3; a 4-beat burst takes >= 3 cycles.
    assert env.regs.read(R.REG_WR_PHASE_MEAN + 3 * 4) >= 3
    # RVLD_RLAST is read phase index 3.
    assert env.regs.read(R.REG_RD_PHASE_MEAN + 3 * 4) >= 3
    # Handshake phases are fast.
    assert env.regs.read(R.REG_WR_PHASE_MEAN) <= 2


def test_p99_latency_registers():
    env = make_env()
    env.manager.submit_all([write_spec(0, 0x80 * i, beats=2) for i in range(1, 9)])
    env.manager.submit(read_spec(1, 0x100, beats=2))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    p99_w = env.regs.read(R.REG_WR_LAT_P99)
    assert p99_w >= env.tmu.write_guard.perf.txn_latency.minimum
    assert env.regs.read(R.REG_RD_LAT_P99) > 0


def test_unmapped_register_raises():
    env = make_env()
    with pytest.raises(KeyError):
        env.regs.read(0xFFC)
    with pytest.raises(KeyError):
        env.regs.write(R.REG_STATUS, 1)  # read-only


def test_dump_contains_all_named_registers():
    env = make_env()
    dump = env.regs.dump()
    assert "CTRL" in dump and "STATUS" in dump and "FAULT_COUNT" in dump
    assert len(dump) >= 14
