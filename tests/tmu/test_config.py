"""Unit tests for TMU configuration."""

import pytest

from repro.tmu.budget import AdaptiveBudgetPolicy
from repro.tmu.config import TmuConfig, Variant, full_config, tiny_config


def test_max_outstanding_is_product():
    config = TmuConfig(max_uniq_ids=4, txn_per_id=8)
    assert config.max_outstanding == 32


def test_defaults_are_full_counter():
    config = TmuConfig()
    assert config.variant == Variant.FULL
    assert config.protocol_check_immediate is True


def test_tiny_defaults_lenient_protocol_checks():
    config = tiny_config()
    assert config.variant == Variant.TINY
    assert config.protocol_check_immediate is False


def test_explicit_protocol_check_override_respected():
    config = tiny_config(protocol_check_immediate=True)
    assert config.protocol_check_immediate is True
    config = full_config(protocol_check_immediate=False)
    assert config.protocol_check_immediate is False


def test_budget_policy_defaulted():
    assert isinstance(TmuConfig().budgets, AdaptiveBudgetPolicy)


def test_has_prescaler():
    assert not TmuConfig(prescale_step=1).has_prescaler
    assert TmuConfig(prescale_step=32).has_prescaler


def test_validation():
    with pytest.raises(ValueError):
        TmuConfig(max_uniq_ids=0)
    with pytest.raises(ValueError):
        TmuConfig(txn_per_id=0)
    with pytest.raises(ValueError):
        TmuConfig(prescale_step=0)


def test_factory_kwargs_passthrough():
    config = full_config(max_uniq_ids=8, txn_per_id=2, prescale_step=16)
    assert config.max_uniq_ids == 8
    assert config.max_outstanding == 16
    assert config.prescale_step == 16
