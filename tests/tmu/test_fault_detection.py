"""Detection matrix: every Fig. 9 fault class, both variants (IP level)."""

import pytest

from tests.conftest import fast_budgets

from repro.faults.campaign import run_injection
from repro.faults.types import InjectionStage
from repro.tmu.config import Variant, full_config, tiny_config
from repro.tmu.phases import TxnSpan

ALL_STAGES = list(InjectionStage)


def config_for(variant):
    if variant == Variant.FULL:
        return full_config(budgets=fast_budgets())
    return tiny_config(budgets=fast_budgets())


@pytest.mark.parametrize("stage", ALL_STAGES, ids=[s.value for s in ALL_STAGES])
@pytest.mark.parametrize("variant", [Variant.FULL, Variant.TINY], ids=["fc", "tc"])
def test_every_stage_detected_and_recovered(variant, stage):
    result = run_injection(config_for(variant), stage, beats=8)
    assert result.detected, f"{variant} missed {stage}"
    assert result.recovered, f"{variant} did not recover from {stage}"
    assert result.resets_taken == 1


@pytest.mark.parametrize("stage", ALL_STAGES, ids=[s.value for s in ALL_STAGES])
def test_full_counter_attributes_correct_phase(stage):
    result = run_injection(config_for(Variant.FULL), stage, beats=8)
    assert result.fault_phase == stage.expected_fc_phase.label


@pytest.mark.parametrize("stage", ALL_STAGES, ids=[s.value for s in ALL_STAGES])
def test_tiny_counter_reports_span_phase(stage):
    result = run_injection(config_for(Variant.TINY), stage, beats=8)
    expected = TxnSpan.WRITE if stage.direction.value == "write" else TxnSpan.READ
    assert result.fault_phase == expected.label
    assert result.fault_kind == "timeout"


@pytest.mark.parametrize("stage", ALL_STAGES, ids=[s.value for s in ALL_STAGES])
def test_full_counter_never_slower_than_tiny(stage):
    fc = run_injection(config_for(Variant.FULL), stage, beats=8)
    tc = run_injection(config_for(Variant.TINY), stage, beats=8)
    assert fc.latency_from_start <= tc.latency_from_start


def test_tiny_counter_detects_at_span_budget():
    budgets = fast_budgets()
    result = run_injection(config_for(Variant.TINY), InjectionStage.AW_READY_MISSING, beats=8)
    expected = budgets.span_budget(8)  # 60 + 2*8 = 76
    assert result.latency_from_start == pytest.approx(expected, abs=2)


def test_full_counter_early_fault_detected_early():
    result = run_injection(
        config_for(Variant.FULL), InjectionStage.AW_READY_MISSING, beats=8
    )
    assert result.latency_from_injection == fast_budgets().phases.aw_handshake


def test_protocol_violation_immediate_in_full_counter():
    result = run_injection(
        config_for(Variant.FULL), InjectionStage.B_ID_MISMATCH, beats=4
    )
    assert result.fault_kind == "unrequested_response"
    assert result.latency_from_injection <= 2


def test_detection_latency_scales_with_burst_for_tiny():
    short = run_injection(config_for(Variant.TINY), InjectionStage.WLAST_TO_BVALID, beats=2)
    long = run_injection(config_for(Variant.TINY), InjectionStage.WLAST_TO_BVALID, beats=16)
    assert long.latency_from_start > short.latency_from_start
