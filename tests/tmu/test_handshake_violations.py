"""Handshake-stability violations injected at the signal level.

AXI4 requires ``valid`` to remain asserted until ``ready``.  These tests
force mid-handshake drops with the :class:`FaultInjector` placed between
the manager and the TMU, and verify the guards' Handshake Check flags
them (immediately for Fc; logged for Tc).
"""

from types import SimpleNamespace

from tests.conftest import fast_budgets

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import read_spec, write_spec
from repro.faults.injector import FaultInjector
from repro.sim.kernel import Simulator
from repro.tmu.config import full_config, tiny_config
from repro.tmu.events import FaultKind
from repro.tmu.unit import TransactionMonitoringUnit


def injected_tmu_loop(config, **sub_kwargs):
    """manager -> injector -> TMU -> subordinate."""
    sim = Simulator()
    mgr_bus = AxiInterface("mgr")
    host = AxiInterface("host")
    device = AxiInterface("device")
    manager = Manager("manager", mgr_bus)
    injector = FaultInjector("injector", mgr_bus, host)
    tmu = TransactionMonitoringUnit(
        "tmu", host, device, config, standalone_ack_after=4
    )
    subordinate = Subordinate("subordinate", device, **sub_kwargs)
    for component in (manager, injector, tmu, subordinate):
        sim.add(component)
    return SimpleNamespace(
        sim=sim,
        manager=manager,
        injector=injector,
        tmu=tmu,
        subordinate=subordinate,
        host=host,
    )


def force_aw_drop(env):
    """Stall AW, then force aw_valid low mid-handshake."""
    env.subordinate.aw_ready_delay = 10  # guarantee a stall window
    env.manager.submit(write_spec(0, 0x100, beats=2))
    env.sim.run_until(
        lambda s: env.host.aw.valid.value and not env.host.aw.ready.value,
        timeout=100,
    )
    env.sim.run(2)
    env.injector.force("aw", valid=False)
    env.sim.run(2)


def test_aw_valid_drop_flagged_by_write_guard():
    env = injected_tmu_loop(full_config(budgets=fast_budgets()))
    force_aw_drop(env)
    kinds = [e.kind for e in env.tmu.write_guard.log.peek_all()]
    assert FaultKind.HANDSHAKE_VIOLATION in kinds


def test_aw_valid_drop_trips_full_counter():
    env = injected_tmu_loop(full_config(budgets=fast_budgets()))
    force_aw_drop(env)
    assert env.tmu.faults_handled == 1
    assert env.tmu.last_fault.kind == FaultKind.HANDSHAKE_VIOLATION


def test_aw_valid_drop_logged_not_tripped_for_tiny():
    env = injected_tmu_loop(tiny_config(budgets=fast_budgets()))
    force_aw_drop(env)
    kinds = [e.kind for e in env.tmu.write_guard.log.peek_all()]
    assert FaultKind.HANDSHAKE_VIOLATION in kinds
    assert env.tmu.faults_handled == 0  # lenient: logged, no immediate trip
    # Once the force is lifted the manager (which held valid all along)
    # completes normally — the violation left a log entry but cost nothing.
    env.injector.release()
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    assert env.manager.completed[0].resp.name == "OKAY"


def test_ar_valid_drop_flagged_by_read_guard():
    env = injected_tmu_loop(full_config(budgets=fast_budgets()))
    env.subordinate.ar_ready_delay = 10
    env.manager.submit(read_spec(0, 0x100, beats=2))
    env.sim.run_until(
        lambda s: env.host.ar.valid.value and not env.host.ar.ready.value,
        timeout=100,
    )
    env.sim.run(2)
    env.injector.force("ar", valid=False)
    env.sim.run(2)
    kinds = [e.kind for e in env.tmu.read_guard.log.peek_all()]
    assert FaultKind.HANDSHAKE_VIOLATION in kinds
    assert env.tmu.faults_handled == 1


def test_w_valid_drop_mid_burst_flagged():
    env = injected_tmu_loop(full_config(budgets=fast_budgets()), w_ready_delay=6)
    env.manager.submit(write_spec(0, 0x100, beats=4))
    env.sim.run_until(
        lambda s: env.host.w.valid.value and not env.host.w.ready.value,
        timeout=200,
    )
    env.sim.run(2)
    env.injector.force("w", valid=False)
    env.sim.run(2)
    events = env.tmu.write_guard.log.peek_all()
    assert any(
        e.kind == FaultKind.HANDSHAKE_VIOLATION and "w_valid" in e.detail
        for e in events
    )


def test_no_violation_on_clean_stalls():
    """A long stall with valid held steady is NOT a handshake violation."""
    env = injected_tmu_loop(
        full_config(budgets=fast_budgets()), aw_ready_delay=5
    )
    env.manager.submit(write_spec(0, 0x100, beats=2))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=2_000)
    kinds = [e.kind for e in env.tmu.write_guard.log.peek_all()]
    assert FaultKind.HANDSHAKE_VIOLATION not in kinds
    assert env.tmu.faults_handled == 0
