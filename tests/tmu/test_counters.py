"""Unit tests for prescaled timeout counters and the sticky bit."""

import pytest

from repro.tmu.counters import Prescaler, PrescaledCounter, counter_width, units_for


def test_units_rounding_up():
    assert units_for(256, 1) == 256
    assert units_for(256, 32) == 8
    assert units_for(255, 32) == 8
    assert units_for(257, 32) == 9
    assert units_for(1, 128) == 1


def test_units_validates_inputs():
    with pytest.raises(ValueError):
        units_for(0, 1)
    with pytest.raises(ValueError):
        units_for(10, 0)


def test_counter_width_shrinks_with_step():
    widths = [counter_width(256, step) for step in (1, 2, 8, 32, 128, 256)]
    assert widths == sorted(widths, reverse=True)
    assert counter_width(256, 256) == 1


def test_prescaler_edge_every_step_cycles():
    prescaler = Prescaler(4)
    edges = [prescaler.advance() for _ in range(12)]
    assert edges == [False, False, False, True] * 3


def test_prescaler_step_one_always_edges():
    prescaler = Prescaler(1)
    assert all(prescaler.advance() for _ in range(5))


def test_prescaler_phase_offset():
    prescaler = Prescaler(4, phase=3)
    assert prescaler.advance() is True


def test_prescaler_validates():
    with pytest.raises(ValueError):
        Prescaler(0)
    with pytest.raises(ValueError):
        Prescaler(4, phase=4)


def run_to_expiry(counter, prescaler, enabled_fn=lambda cycle: True, limit=10_000):
    for cycle in range(limit):
        if counter.tick(enabled_fn(cycle), prescaler.advance()):
            return cycle + 1
    raise AssertionError("counter never expired")


def test_expiry_at_budget_without_prescaler():
    counter = PrescaledCounter(10, step=1)
    prescaler = Prescaler(1)
    assert run_to_expiry(counter, prescaler) == 10


def test_expiry_bounded_with_prescaler():
    budget, step = 100, 8
    counter = PrescaledCounter(budget, step=step)
    prescaler = Prescaler(step)
    latency = run_to_expiry(counter, prescaler)
    assert budget <= latency <= units_for(budget, step) * step + step


def test_disabled_counter_never_expires():
    counter = PrescaledCounter(4, step=1)
    prescaler = Prescaler(1)
    for _ in range(100):
        assert not counter.tick(False, prescaler.advance())


def test_sticky_bit_registers_pulses_between_edges():
    # Enable pulses strictly between edges: only sticky counters see them.
    step = 4
    sticky = PrescaledCounter(4 * step, step=step, sticky=True)
    plain = PrescaledCounter(4 * step, step=step, sticky=False)
    prescaler_a, prescaler_b = Prescaler(step), Prescaler(step)
    for cycle in range(64):
        enabled = cycle % step == 1  # never coincides with the edge (phase 3)
        sticky.tick(enabled, prescaler_a.advance())
        plain.tick(enabled, prescaler_b.advance())
    assert sticky.count > 0
    assert plain.count == 0


def test_rearm_restarts_with_new_budget():
    counter = PrescaledCounter(4, step=1)
    prescaler = Prescaler(1)
    run_to_expiry(counter, prescaler)
    counter.rearm(2)
    assert not counter.expired
    assert run_to_expiry(counter, prescaler) == 2


def test_elapsed_estimate_in_cycles():
    # Conservative counting: the first edge only arms the counter, so
    # after 24 cycles at step 8 two complete intervals have been counted.
    counter = PrescaledCounter(64, step=8)
    prescaler = Prescaler(8)
    for _ in range(24):
        counter.tick(True, prescaler.advance())
    assert counter.elapsed_estimate == 16


def test_count_saturates_at_units():
    counter = PrescaledCounter(4, step=1)
    prescaler = Prescaler(1)
    for _ in range(100):
        counter.tick(True, prescaler.advance())
    assert counter.count == counter.units


def test_width_matches_module_function():
    counter = PrescaledCounter(256, step=32)
    assert counter.width == counter_width(256, 32)
