"""End-to-end tests of prescaled TMU configurations (Tc+Pre / Fc+Pre).

The paper's "+Pre" configurations must keep full detection capability —
"moderate prescaler steps reduce these figures by 18-39% ... with no
loss of functionality" — at the cost of bounded extra detection latency.
"""

import pytest

from tests.conftest import build_loop, fast_budgets

from repro.area.model import detection_latency_bound
from repro.axi.traffic import RandomTraffic, read_spec, write_spec
from repro.faults.campaign import run_injection
from repro.faults.types import InjectionStage
from repro.tmu.config import TmuConfig, Variant, full_config, tiny_config

STEP = 8


def prescaled(variant):
    ctor = full_config if variant == Variant.FULL else tiny_config
    return ctor(budgets=fast_budgets(), prescale_step=STEP, sticky=True)


@pytest.mark.parametrize("variant", [Variant.FULL, Variant.TINY], ids=["fc", "tc"])
def test_prescaled_tmu_transparent_on_clean_traffic(variant):
    env = build_loop(prescaled(variant), b_latency=2, r_latency=2)
    env.manager.submit_all(RandomTraffic(seed=4, max_beats=6).take(25))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=20_000)
    assert env.tmu.faults_handled == 0
    assert len(env.manager.completed) == 25


@pytest.mark.parametrize("variant", [Variant.FULL, Variant.TINY], ids=["fc", "tc"])
@pytest.mark.parametrize(
    "stage",
    [
        InjectionStage.AW_READY_MISSING,
        InjectionStage.WLAST_TO_BVALID,
        InjectionStage.R_VALID_MISSING,
    ],
    ids=lambda s: s.value,
)
def test_prescaled_tmu_detects_all_faults(variant, stage):
    """No loss of functionality: every fault class still detected."""
    result = run_injection(prescaled(variant), stage, beats=8)
    assert result.detected
    assert result.recovered


def test_prescaled_detection_latency_bounded():
    """Extra latency from prescaling stays within the analytic bound."""
    budgets = fast_budgets()
    plain = run_injection(
        tiny_config(budgets=budgets), InjectionStage.AW_READY_MISSING, beats=8
    )
    pre = run_injection(
        tiny_config(budgets=budgets, prescale_step=STEP, sticky=True),
        InjectionStage.AW_READY_MISSING,
        beats=8,
    )
    budget = budgets.span_budget(8)
    assert plain.latency_from_start == pytest.approx(budget, abs=2)
    assert pre.latency_from_start >= plain.latency_from_start
    assert pre.latency_from_start <= detection_latency_bound(budget, STEP) + 2


def test_prescaled_never_false_early():
    """A prescaled counter must not flag before the budget truly elapsed.

    Run a transaction whose legitimate duration sits just below the
    budget: the prescaled TMU must not produce a false positive.
    """
    budgets = fast_budgets()
    span = budgets.span_budget(4)  # 68 cycles for 4 beats
    config = TmuConfig(
        variant=Variant.TINY, budgets=budgets, prescale_step=16, sticky=True
    )
    env = build_loop(config, b_latency=span - 20)  # long but legal
    env.manager.submit(write_spec(0, 0x100, beats=4))
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=5_000)
    assert env.tmu.faults_handled == 0
    assert env.manager.completed[0].resp.name == "OKAY"


def test_prescaled_counters_fire_after_budget():
    config = tiny_config(budgets=fast_budgets(), prescale_step=16, sticky=True)
    env = build_loop(config)
    env.subordinate.faults.mute_r = True
    env.manager.submit(read_spec(0, 0x100, beats=4))
    detect = env.sim.run_until(lambda s: env.tmu.irq.value, timeout=5_000)
    assert detect is not None
    budget = fast_budgets().span_budget(4)
    assert detect >= budget  # conservative: never early
