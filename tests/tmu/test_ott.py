"""Unit tests for the Outstanding Transaction Table (HT/LD/EI)."""

import pytest

from repro.axi.types import AxiDir
from repro.tmu.ott import OttFullError, OutstandingTransactionTable


def make(max_ids=4, per_id=4):
    return OutstandingTransactionTable(max_ids, per_id)


def enq(table, tid, cycle=0, **kwargs):
    defaults = dict(
        orig_id=tid + 100, direction=AxiDir.WRITE, addr=0x100, beats=4
    )
    defaults.update(kwargs)
    return table.enqueue(tid, cycle=cycle, **defaults)


def test_dimensions_validated():
    with pytest.raises(ValueError):
        OutstandingTransactionTable(0, 4)
    with pytest.raises(ValueError):
        OutstandingTransactionTable(4, 0)


def test_capacity_is_product():
    table = make(4, 8)
    assert table.capacity == 32


def test_enqueue_links_per_id_fifo():
    table = make()
    first = enq(table, 1, addr=0xA)
    second = enq(table, 1, addr=0xB)
    assert table.head_of(1) is first
    assert first.next == second.index


def test_head_of_unknown_tid_is_none():
    table = make()
    assert table.head_of(2) is None
    assert table.head_of(99) is None


def test_dequeue_preserves_fifo_order():
    table = make()
    entries = [enq(table, 0, addr=addr) for addr in (1, 2, 3)]
    dequeued = [table.dequeue_head(0).index for _ in range(3)]
    assert dequeued == [entry.index for entry in entries]


def test_dequeue_empty_raises():
    table = make()
    with pytest.raises(KeyError):
        table.dequeue_head(0)


def test_per_id_limit_enforced():
    table = make(4, 2)
    enq(table, 0)
    enq(table, 0)
    assert not table.can_enqueue(0)
    assert table.can_enqueue(1)
    with pytest.raises(OttFullError):
        enq(table, 0)


def test_total_capacity_enforced():
    table = make(2, 2)
    for tid in (0, 0, 1, 1):
        enq(table, tid)
    assert table.full
    assert not table.can_enqueue(0)


def test_out_of_range_tid_rejected():
    table = make(2, 2)
    assert not table.can_enqueue(2)
    assert not table.can_enqueue(-1)


def test_free_list_recycled():
    table = make(2, 2)
    for _ in range(10):
        enq(table, 0)
        enq(table, 1)
        table.dequeue_head(0)
        table.dequeue_head(1)
    assert table.occupancy == 0


def test_ei_front_follows_acceptance_order_across_ids():
    table = make()
    first = enq(table, 0)
    second = enq(table, 1)
    assert table.ei_front() is first
    table.ei_advance()
    assert table.ei_front() is second


def test_ei_skips_dequeued_entries():
    table = make()
    enq(table, 0)
    second = enq(table, 1)
    # Complete the first entirely (dequeue also removes it from EI).
    table.dequeue_head(0)
    assert table.ei_front() is second


def test_ei_position_counts_queue_ahead():
    table = make()
    first = enq(table, 0)
    second = enq(table, 1)
    third = enq(table, 2)
    assert table.ei_position(first.index) == 0
    assert table.ei_position(second.index) == 1
    assert table.ei_position(third.index) == 2
    assert table.ei_position(999) is None


def test_interleaved_ids_keep_independent_fifos():
    table = make()
    a1 = enq(table, 0, addr=0xA1)
    b1 = enq(table, 1, addr=0xB1)
    a2 = enq(table, 0, addr=0xA2)
    assert table.dequeue_head(0).index == a1.index
    assert table.head_of(0).index == a2.index
    assert table.head_of(1).index == b1.index


def test_id_count_tracks_occupancy_per_id():
    table = make()
    enq(table, 3)
    enq(table, 3)
    assert table.id_count(3) == 2
    table.dequeue_head(3)
    assert table.id_count(3) == 1


def test_clear_releases_everything():
    table = make(2, 2)
    for tid in (0, 1):
        enq(table, tid)
    table.clear()
    assert table.occupancy == 0
    assert table.ei_front() is None
    assert table.head_of(0) is None
    assert table.can_enqueue(0)


def test_live_entries_iterates_used_only():
    table = make()
    enq(table, 0)
    enq(table, 1)
    table.dequeue_head(0)
    live = list(table.live_entries())
    assert len(live) == 1
    assert live[0].tid == 1


def test_entry_fields_initialized_on_enqueue():
    table = make()
    entry = enq(table, 2, cycle=42, beats=8)
    assert entry.used
    assert entry.enqueue_cycle == 42
    assert entry.phase_start_cycle == 42
    assert entry.beats == 8
    assert entry.beats_seen == 0
    assert not entry.w_done
    assert not entry.timeout
    assert entry.phase_latencies == {}
