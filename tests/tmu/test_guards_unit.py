"""Unit-level guard tests: scripted channel sequences, no manager/subordinate.

Drives the Write/Read Guard FSMs directly through
:class:`~repro.sim.signal.Channel` objects to pin down state-machine
corners that closed-loop tests reach only probabilistically.
"""

from tests.conftest import fast_budgets

from repro.axi.channels import ArBeat, AwBeat, BBeat, RBeat, WBeat
from repro.sim.signal import Channel
from repro.tmu.config import full_config, tiny_config
from repro.tmu.events import FaultKind
from repro.tmu.phases import ReadPhase, TxnSpan, WritePhase
from repro.tmu.read_guard import ReadGuard
from repro.tmu.write_guard import WriteGuard
from repro.axi.types import Resp


class WriteRig:
    def __init__(self, config=None):
        self.guard = WriteGuard(config or full_config(budgets=fast_budgets()))
        self.aw = Channel("aw")
        self.w = Channel("w")
        self.b = Channel("b")
        self.cycle = 0
        self.events = []

    def step(self, aw=None, w=None, b=None, aw_ready=True, w_ready=True, b_ready=True):
        """One observed cycle; channel args are payloads (None = idle)."""
        for channel, beat, ready in (
            (self.aw, aw, aw_ready),
            (self.w, w, w_ready),
            (self.b, b, b_ready),
        ):
            channel.valid.value = beat is not None
            channel.payload.value = beat
            channel.ready.value = ready
        self.cycle += 1
        out = self.guard.observe(self.aw, self.w, self.b, cycle=self.cycle)
        self.events.extend(out)
        return out

    def kinds(self):
        return [event.kind for event in self.events]


class ReadRig:
    def __init__(self, config=None):
        self.guard = ReadGuard(config or full_config(budgets=fast_budgets()))
        self.ar = Channel("ar")
        self.r = Channel("r")
        self.cycle = 0
        self.events = []

    def step(self, ar=None, r=None, ar_ready=True, r_ready=True):
        for channel, beat, ready in ((self.ar, ar, ar_ready), (self.r, r, r_ready)):
            channel.valid.value = beat is not None
            channel.payload.value = beat
            channel.ready.value = ready
        self.cycle += 1
        out = self.guard.observe(self.ar, self.r, cycle=self.cycle)
        self.events.extend(out)
        return out

    def kinds(self):
        return [event.kind for event in self.events]


def w_beat(last=False):
    return WBeat(data=0, strb=0xFF, last=last)


def test_full_write_lifecycle_clean():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=1, addr=0x100, len=1))
    rig.step(w=w_beat())
    rig.step(w=w_beat(last=True))
    rig.step(b=BBeat(id=1))
    assert rig.events == []
    assert rig.guard.perf.completed == 1
    assert rig.guard.ott.occupancy == 0
    latencies = rig.guard.perf.history[0].phase_latencies
    assert set(latencies) == set(WritePhase)


def test_write_early_wlast_flags_wrong_last():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=0, addr=0, len=3))  # expects 4 beats
    rig.step(w=w_beat(last=True))             # last after 1
    assert FaultKind.WRONG_LAST in rig.kinds()


def test_write_missing_wlast_flags_on_final_beat():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=0, addr=0, len=1))  # 2 beats
    rig.step(w=w_beat())
    events = rig.step(w=w_beat(last=False))   # 2nd beat without last
    assert any(e.kind == FaultKind.WRONG_LAST for e in events)


def test_b_before_wlast_flagged_as_id_mismatch_class():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=2, addr=0, len=3))
    rig.step(b=BBeat(id=2))  # response while data still owed
    assert FaultKind.ID_MISMATCH in rig.kinds()


def test_unrequested_b_flagged_once_per_assertion():
    rig = WriteRig()
    rig.step(b=BBeat(id=5), b_ready=False)
    rig.step(b=BBeat(id=5), b_ready=False)  # still the same assertion
    assert rig.kinds().count(FaultKind.UNREQUESTED_RESPONSE) == 1


def test_error_response_logged_on_completion():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=1, addr=0, len=0))
    rig.step(w=w_beat(last=True))
    rig.step(b=BBeat(id=1, resp=Resp.SLVERR))
    assert FaultKind.ERROR_RESPONSE in rig.kinds()
    assert rig.guard.perf.completed == 1  # still completes (logged, not lost)


def test_error_response_does_not_trip_by_default():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=1, addr=0, len=0))
    rig.step(w=w_beat(last=True))
    events = rig.step(b=BBeat(id=1, resp=Resp.SLVERR))
    error_events = [e for e in events if e.kind == FaultKind.ERROR_RESPONSE]
    assert error_events and not rig.guard.should_trip(error_events[0])


def test_same_id_b_responses_complete_in_fifo_order():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=1, addr=0xA, len=0))
    rig.step(aw=AwBeat(id=1, addr=0xB, len=0), w=w_beat(last=True))
    rig.step(w=w_beat(last=True))
    rig.step(b=BBeat(id=1))
    rig.step(b=BBeat(id=1))
    assert rig.guard.perf.completed == 2
    assert [r.addr for r in rig.guard.perf.history] == [0xA, 0xB]


def test_aw_timeout_attributed_to_front_phase():
    rig = WriteRig()
    beat = AwBeat(id=0, addr=0, len=0)
    tripped = None
    for _ in range(50):
        events = rig.step(aw=beat, aw_ready=False)
        if events:
            tripped = events[0]
            break
    assert tripped is not None
    assert tripped.kind == FaultKind.TIMEOUT
    assert tripped.phase == WritePhase.AW_HANDSHAKE


def test_tiny_single_counter_spans_whole_transaction():
    rig = WriteRig(tiny_config(budgets=fast_budgets()))
    rig.step(aw=AwBeat(id=0, addr=0, len=0))
    # Wait in the response phase until the span budget (60 + 2) expires.
    tripped = None
    for _ in range(100):
        events = rig.step(w=w_beat(last=True) if rig.cycle == 2 else None)
        if events:
            tripped = events[0]
            break
    assert tripped is not None
    assert tripped.phase == TxnSpan.WRITE
    # Span budget counts from aw_valid: 60 base + 2*1 beat = 62.
    assert abs(tripped.detect_cycle - 62) <= 2


def test_full_read_lifecycle_clean():
    rig = ReadRig()
    rig.step(ar=ArBeat(id=2, addr=0x40, len=1))
    rig.step(r=RBeat(id=2, data=1, resp=Resp.OKAY, last=False))
    rig.step(r=RBeat(id=2, data=2, resp=Resp.OKAY, last=True))
    assert rig.events == []
    assert rig.guard.perf.completed == 1
    latencies = rig.guard.perf.history[0].phase_latencies
    assert set(latencies) == set(ReadPhase)


def test_read_interleaved_ids_tracked_independently():
    rig = ReadRig()
    rig.step(ar=ArBeat(id=0, addr=0, len=1))
    rig.step(ar=ArBeat(id=1, addr=0x100, len=1))
    rig.step(r=RBeat(id=0, data=0, resp=Resp.OKAY, last=False))
    rig.step(r=RBeat(id=1, data=0, resp=Resp.OKAY, last=False))
    rig.step(r=RBeat(id=1, data=0, resp=Resp.OKAY, last=True))
    rig.step(r=RBeat(id=0, data=0, resp=Resp.OKAY, last=True))
    assert rig.events == []
    assert rig.guard.perf.completed == 2


def test_read_unrequested_id_flagged():
    rig = ReadRig()
    rig.step(ar=ArBeat(id=0, addr=0, len=0))
    rig.step(r=RBeat(id=3, data=0, resp=Resp.OKAY, last=True))
    assert FaultKind.UNREQUESTED_RESPONSE in rig.kinds()


def test_read_extra_beats_flag_wrong_last():
    rig = ReadRig()
    rig.step(ar=ArBeat(id=0, addr=0, len=0))  # expects exactly 1 beat
    rig.step(r=RBeat(id=0, data=0, resp=Resp.OKAY, last=False))
    assert FaultKind.WRONG_LAST in rig.kinds()


def test_read_error_response_logged_once_per_txn():
    rig = ReadRig()
    rig.step(ar=ArBeat(id=0, addr=0, len=3))
    for i in range(4):
        rig.step(r=RBeat(id=0, data=0, resp=Resp.SLVERR, last=i == 3))
    assert rig.kinds().count(FaultKind.ERROR_RESPONSE) == 1
    assert rig.guard.perf.completed == 1


def test_guard_clear_releases_everything_mid_flight():
    rig = WriteRig()
    rig.step(aw=AwBeat(id=1, addr=0, len=3))
    rig.step(w=w_beat())
    assert rig.guard.ott.occupancy == 1
    rig.guard.clear()
    assert rig.guard.ott.occupancy == 0
    assert rig.guard.outstanding_orig_ids() == []
    # After clear, new transactions track cleanly.
    rig.step(aw=AwBeat(id=1, addr=0x50, len=0))
    rig.step(w=w_beat(last=True))
    rig.step(b=BBeat(id=1))
    assert rig.guard.perf.completed == 1
