"""Property tests over whole-system behaviour.

Randomized legal workloads through the TMU must (a) complete exactly,
(b) raise no faults, (c) keep the protocol checker silent, and (d) leave
the TMU's performance log consistent with the manager's scoreboard.
Randomized *fault* scenarios must always be detected and recovered.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import fast_budgets

from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.protocol import ProtocolChecker
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import RandomTraffic
from repro.faults.campaign import run_injection
from repro.faults.types import InjectionStage
from repro.sim.kernel import Simulator
from repro.soc.reset_unit import ResetUnit
from repro.tmu.config import TmuConfig, Variant
from repro.tmu.unit import TransactionMonitoringUnit


def checked_tmu_loop(variant, seed, txns, sub_latency):
    config = TmuConfig(variant=variant, budgets=fast_budgets())
    sim = Simulator()
    host, device = AxiInterface("host"), AxiInterface("device")
    manager = Manager("manager", host)
    tmu = TransactionMonitoringUnit("tmu", host, device, config)
    subordinate = Subordinate(
        "subordinate",
        device,
        aw_ready_delay=sub_latency % 3,
        b_latency=1 + sub_latency % 4,
        r_latency=1 + sub_latency % 4,
    )
    checker = ProtocolChecker("checker", host)
    reset_unit = ResetUnit("reset_unit", tmu.reset_req, tmu.reset_ack, subordinate)
    for component in (manager, tmu, subordinate, checker, reset_unit):
        sim.add(component)
    manager.submit_all(
        RandomTraffic(ids=(0, 1, 2), max_beats=6, seed=seed).take(txns)
    )
    return SimpleNamespace(
        sim=sim, manager=manager, tmu=tmu, checker=checker
    )


@given(
    variant=st.sampled_from([Variant.FULL, Variant.TINY]),
    seed=st.integers(0, 1_000_000),
    txns=st.integers(1, 20),
    sub_latency=st.integers(0, 11),
)
@settings(max_examples=25, deadline=None)
def test_legal_traffic_fault_free_and_accounted(variant, seed, txns, sub_latency):
    env = checked_tmu_loop(variant, seed, txns, sub_latency)
    done = env.sim.run_until(lambda s: env.manager.idle, timeout=30_000)
    assert done is not None
    assert len(env.manager.completed) == txns
    assert env.tmu.faults_handled == 0
    assert env.manager.surprises == []
    assert env.checker.clean, env.checker.violations[:3]
    completed = (
        env.tmu.write_guard.perf.completed + env.tmu.read_guard.perf.completed
    )
    assert completed == txns


@given(
    variant=st.sampled_from([Variant.FULL, Variant.TINY]),
    stage=st.sampled_from(list(InjectionStage)),
    beats=st.integers(1, 12),
)
@settings(max_examples=25, deadline=None)
def test_any_fault_any_geometry_detected_and_recovered(variant, stage, beats):
    config = TmuConfig(variant=variant, budgets=fast_budgets())
    result = run_injection(config, stage, beats=beats)
    assert result.detected
    assert result.recovered
    assert result.resets_taken == 1
