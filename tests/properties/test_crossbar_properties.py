"""Property-based tests for the crossbar: conservation and integrity.

For arbitrary legal workloads split across two managers and two
subordinates: every submitted transaction completes exactly once, with
OKAY for mapped addresses and DECERR for unmapped ones, and write data
lands at the right subordinate.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi.crossbar import AddressRange, Crossbar
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import TransactionSpec
from repro.axi.types import AxiDir, Resp
from repro.sim.kernel import Simulator

SUB0 = AddressRange(0x0000_0000, 0x1000)
SUB1 = AddressRange(0x8000_0000, 0x1000)
REGIONS = [SUB0.base, SUB1.base, 0x4000_0000]  # third region is unmapped


@st.composite
def workload(draw):
    specs = []
    count = draw(st.integers(1, 12))
    for _ in range(count):
        region = draw(st.sampled_from(REGIONS))
        beats = draw(st.integers(1, 4))
        offset = draw(st.integers(0, 15)) * 64
        direction = draw(st.sampled_from([AxiDir.WRITE, AxiDir.READ]))
        txn_id = draw(st.integers(0, 2))
        specs.append(
            TransactionSpec(direction, txn_id, region + offset, len=beats - 1)
        )
    return specs


def build_fabric():
    sim = Simulator()
    mgr_buses = [AxiInterface(f"m{i}") for i in range(2)]
    managers = [Manager(f"mgr{i}", bus) for i, bus in enumerate(mgr_buses)]
    sub_buses = [AxiInterface("s0"), AxiInterface("s1")]
    subs = [
        Subordinate("sub0", sub_buses[0], b_latency=1),
        Subordinate("sub1", sub_buses[1], b_latency=2),
    ]
    xbar = Crossbar("xbar", mgr_buses, [(sub_buses[0], SUB0), (sub_buses[1], SUB1)])
    for component in (*managers, xbar, *subs):
        sim.add(component)
    return SimpleNamespace(sim=sim, managers=managers, subs=subs)


@given(workload(), workload())
@settings(max_examples=20, deadline=None)
def test_every_transaction_completes_exactly_once(load0, load1):
    env = build_fabric()
    env.managers[0].submit_all(load0)
    env.managers[1].submit_all(load1)
    done = env.sim.run_until(
        lambda s: all(m.idle for m in env.managers), timeout=50_000
    )
    assert done is not None
    assert len(env.managers[0].completed) == len(load0)
    assert len(env.managers[1].completed) == len(load1)
    assert all(m.surprises == [] for m in env.managers)


@given(workload())
@settings(max_examples=20, deadline=None)
def test_response_codes_match_address_map(load):
    env = build_fabric()
    env.managers[0].submit_all(load)
    assert env.sim.run_until(lambda s: env.managers[0].idle, timeout=50_000)
    for txn in env.managers[0].completed:
        mapped = SUB0.contains(txn.addr) or SUB1.contains(txn.addr)
        expected = Resp.OKAY if mapped else Resp.DECERR
        assert txn.resp == expected, f"{txn.addr:#x} -> {txn.resp}"
