"""Property-based tests for the Outstanding Transaction Table.

Invariants (paper §II-C/D): per-ID FIFO ordering, EI acceptance-order
consistency, free-list conservation, and capacity limits — under
arbitrary interleavings of enqueues and completions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi.types import AxiDir
from repro.tmu.ott import OutstandingTransactionTable

MAX_IDS = 4
PER_ID = 4

# An operation stream: (op, tid) where op 0 = enqueue, 1 = dequeue.
operations = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, MAX_IDS - 1)), max_size=200
)


def replay(ops):
    """Apply an operation stream, tracking a reference model."""
    table = OutstandingTransactionTable(MAX_IDS, PER_ID)
    reference = {tid: [] for tid in range(MAX_IDS)}
    serial = 0
    for op, tid in ops:
        if op == 0 and table.can_enqueue(tid):
            entry = table.enqueue(
                tid, orig_id=serial, direction=AxiDir.WRITE, addr=serial,
                beats=1, cycle=serial,
            )
            reference[tid].append(entry.orig_id)
            serial += 1
        elif op == 1 and reference[tid]:
            entry = table.dequeue_head(tid)
            expected = reference[tid].pop(0)
            assert entry.orig_id == expected, "FIFO order violated"
    return table, reference


@given(operations)
@settings(max_examples=60, deadline=None)
def test_fifo_order_per_id(ops):
    replay(ops)  # order asserted inside


@given(operations)
@settings(max_examples=60, deadline=None)
def test_occupancy_matches_reference(ops):
    table, reference = replay(ops)
    assert table.occupancy == sum(len(v) for v in reference.values())
    for tid in range(MAX_IDS):
        assert table.id_count(tid) == len(reference[tid])


@given(operations)
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(ops):
    table, reference = replay(ops)
    assert table.occupancy <= table.capacity
    for tid in range(MAX_IDS):
        assert table.id_count(tid) <= PER_ID


@given(operations)
@settings(max_examples=60, deadline=None)
def test_free_list_conservation(ops):
    """used entries + free entries == capacity, always."""
    table, _ = replay(ops)
    live = sum(1 for _ in table.live_entries())
    assert live == table.occupancy
    assert live + len(table._free) == table.capacity


@given(operations)
@settings(max_examples=60, deadline=None)
def test_ei_front_is_oldest_live_entry(ops):
    table, reference = replay(ops)
    front = table.ei_front()
    if front is None:
        assert table.occupancy == 0
    else:
        oldest = min(
            (entry.enqueue_cycle for entry in table.live_entries()),
        )
        assert front.enqueue_cycle == oldest


@given(operations)
@settings(max_examples=40, deadline=None)
def test_clear_always_restores_full_capacity(ops):
    table, _ = replay(ops)
    table.clear()
    assert table.occupancy == 0
    for tid in range(MAX_IDS):
        assert table.can_enqueue(tid)
