"""Property-based tests for the ID remap table (paper §II-A).

Invariants: injectivity over live IDs (two live original IDs never share
a slot), reverse-mapping consistency, and reference-count conservation
under arbitrary acquire/release interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi.id_remap import IdRemapTable

CAPACITY = 4

# Operation stream over a small original-ID universe.
operations = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 9)), max_size=200
)


def replay(ops):
    table = IdRemapTable(CAPACITY)
    live = {}  # orig -> refcount
    for op, orig in ops:
        if op == 0:
            if table.probe(orig) is not None:
                table.acquire(orig)
                live[orig] = live.get(orig, 0) + 1
        else:
            if orig in live:
                slot = table.probe(orig)
                table.release(slot)
                live[orig] -= 1
                if live[orig] == 0:
                    del live[orig]
    return table, live


@given(operations)
@settings(max_examples=80, deadline=None)
def test_injectivity_over_live_ids(ops):
    table, live = replay(ops)
    slots = [table.probe(orig) for orig in live]
    assert len(set(slots)) == len(slots)


@given(operations)
@settings(max_examples=80, deadline=None)
def test_reverse_mapping_consistent(ops):
    table, live = replay(ops)
    for orig in live:
        slot = table.probe(orig)
        assert table.orig_of(slot) == orig


@given(operations)
@settings(max_examples=80, deadline=None)
def test_live_count_never_exceeds_capacity(ops):
    table, live = replay(ops)
    assert len(live) <= CAPACITY
    assert len(table.live_mappings) == len(live)


@given(operations)
@settings(max_examples=80, deadline=None)
def test_refcounts_match_reference(ops):
    table, live = replay(ops)
    for orig, refs in live.items():
        assert table.refs(table.probe(orig)) == refs


@given(operations)
@settings(max_examples=50, deadline=None)
def test_full_drain_frees_every_slot(ops):
    table, live = replay(ops)
    for orig, refs in list(live.items()):
        slot = table.probe(orig)
        for _ in range(refs):
            table.release(slot)
    assert table.live_mappings == {}
    for slot in range(CAPACITY):
        assert table.refs(slot) == 0
