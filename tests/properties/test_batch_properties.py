"""Property-based equivalence of lockstep batch execution.

Three randomized laws behind the batch executor:

* a batched campaign equals its scalar rerun for arbitrary small
  configs, seed sets and pack widths;
* forcibly retiring an arbitrary subset of lanes mid-pack never changes
  a single result;
* the guard's vectorized counter catch-up equals a tick-by-tick replay
  of the same span for arbitrary counter populations.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.types import InjectionStage
from repro.orchestrate import BatchExecutor, CampaignSpec, run_campaign_spec
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant
from repro.tmu.counters import (
    Prescaler,
    PrescaledCounter,
    catch_up_array,
    edges_to_expiry_array,
)

STAGES = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.WLAST_TO_BVALID,
)


def _config(variant: Variant, prescale_step: int) -> TmuConfig:
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=prescale_step,
        budgets=AdaptiveBudgetPolicy(
            PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
        ),
        max_txn_cycles=96,
    )


def _spec(variant, prescale_step, seeds):
    return CampaignSpec.ip(
        [_config(variant, prescale_step)],
        STAGES,
        beats=4,
        seeds=tuple(seeds),
    )


def _dicts(results):
    return [dataclasses.asdict(result) for result in results]


campaign_axes = dict(
    variant=st.sampled_from([Variant.FULL, Variant.TINY]),
    prescale_step=st.sampled_from([1, 2, 3, 4]),
    seeds=st.sets(st.integers(0, 16), min_size=2, max_size=6),
    lanes=st.sampled_from([2, 4, 8, 64]),
)


@given(**campaign_axes)
@settings(max_examples=10, deadline=None)
def test_batched_campaign_equals_scalar(variant, prescale_step, seeds, lanes):
    executor = BatchExecutor(lanes)
    batch = run_campaign_spec(_spec(variant, prescale_step, seeds), executor=executor)
    serial = run_campaign_spec(_spec(variant, prescale_step, seeds))
    assert _dicts(batch) == _dicts(serial)


@given(
    retire=st.sets(st.integers(0, 16), min_size=1, max_size=5),
    seeds=st.sets(st.integers(0, 16), min_size=3, max_size=6),
    prescale_step=st.sampled_from([1, 2]),
)
@settings(max_examples=10, deadline=None)
def test_random_lane_retirement_preserves_results(retire, seeds, prescale_step):
    executor = BatchExecutor(8, force_retire=lambda run: run.seed in retire)
    batch = run_campaign_spec(
        _spec(Variant.FULL, prescale_step, seeds), executor=executor
    )
    serial = run_campaign_spec(_spec(Variant.FULL, prescale_step, seeds))
    assert _dicts(batch) == _dicts(serial)


# ----------------------------------------------------------------------
# Vectorized counter catch-up ≡ tick-by-tick replay
# ----------------------------------------------------------------------
counter_specs = st.lists(
    st.tuples(st.integers(1, 200), st.booleans()),  # (budget, sticky)
    min_size=1,
    max_size=12,
)


@given(
    step=st.sampled_from([1, 2, 3, 4, 8, 16]),
    phase=st.integers(0, 15),
    specs=counter_specs,
    warm=st.integers(0, 40),
    span=st.integers(1, 400),
)
@settings(max_examples=120, deadline=None)
def test_catch_up_array_equals_tick_replay(step, phase, specs, warm, span):
    phase %= step

    def population():
        prescaler = Prescaler(step, phase=phase)
        counters = [
            PrescaledCounter(budget, step=step, sticky=sticky)
            for budget, sticky in specs
        ]
        for _ in range(warm):
            edge = prescaler.advance()
            for counter in counters:
                counter.tick(True, edge)
        return prescaler, counters

    pre_a, counters_a = population()
    pre_b, counters_b = population()

    # Clamp the span below the earliest expiry — catch_up's (and the
    # timed wake's) precondition that no counter fires inside it.
    min_edges = min(edges_to_expiry_array(counters_a))
    if min_edges == 0:
        return  # a counter already expired during warm-up
    cycles = min(span, pre_a.cycles_to_edge(min_edges) - 1)
    if cycles <= 0:
        return

    # Path A: the guard's O(#counters) vectorized fast-forward.
    edges = pre_a.edges_in(cycles)
    end_on_edge = edges > 0 and (pre_a.phase + cycles) % step == 0
    pre_a.skip(cycles)
    catch_up_array(counters_a, edges, end_on_edge)

    # Path B: the exhaustive cycle-by-cycle reference.
    for _ in range(cycles):
        edge = pre_b.advance()
        for counter in counters_b:
            counter.tick(True, edge)

    assert pre_a.phase == pre_b.phase
    for a, b in zip(counters_a, counters_b):
        assert (a.count, a._armed, a._accum) == (b.count, b._armed, b._accum)
        assert a.expired == b.expired


@given(
    step=st.sampled_from([1, 2, 4, 8]),
    specs=counter_specs,
    warm=st.integers(0, 60),
)
@settings(max_examples=100, deadline=None)
def test_edges_to_expiry_array_matches_scalar(step, specs, warm):
    prescaler = Prescaler(step)
    counters = [
        PrescaledCounter(budget, step=step, sticky=sticky)
        for budget, sticky in specs
    ]
    for _ in range(warm):
        edge = prescaler.advance()
        for counter in counters:
            counter.tick(True, edge)
    assert edges_to_expiry_array(counters) == [
        counter.edges_to_expiry() for counter in counters
    ]
