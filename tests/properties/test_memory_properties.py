"""Property-based tests for the sparse memory model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi.memory import SparseMemory

addresses = st.integers(0, 1 << 20)
payloads = st.binary(min_size=1, max_size=64)


@given(addresses, payloads)
@settings(max_examples=100, deadline=None)
def test_read_after_write(addr, data):
    mem = SparseMemory()
    mem.write(addr, data)
    assert mem.read(addr, len(data)) == data


@given(addresses, payloads, payloads)
@settings(max_examples=100, deadline=None)
def test_last_write_wins(addr, first, second):
    mem = SparseMemory()
    mem.write(addr, first)
    mem.write(addr, second)
    assert mem.read(addr, len(second)) == second


@given(
    st.lists(st.tuples(addresses, payloads), min_size=1, max_size=20)
)
@settings(max_examples=60, deadline=None)
def test_matches_dict_reference_model(writes):
    mem = SparseMemory()
    reference = {}
    for addr, data in writes:
        mem.write(addr, data)
        for i, byte in enumerate(data):
            reference[addr + i] = byte
    for addr, byte in reference.items():
        assert mem.read_byte(addr) == byte


@given(addresses, st.integers(0, (1 << 64) - 1), st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_masked_write_equivalent_to_byte_writes(addr, value, strb):
    masked = SparseMemory()
    bytewise = SparseMemory()
    masked.write_masked(addr, value, strb, 8)
    data = value.to_bytes(8, "little")
    for lane in range(8):
        if strb & (1 << lane):
            bytewise.write_byte(addr + lane, data[lane])
    assert masked.read(addr, 8) == bytewise.read(addr, 8)


@given(addresses, st.integers(0, (1 << 64) - 1))
@settings(max_examples=100, deadline=None)
def test_word_roundtrip(addr, value):
    mem = SparseMemory()
    mem.write_word(addr, value, 8)
    assert mem.read_word(addr, 8) == value


@given(addresses)
@settings(max_examples=50, deadline=None)
def test_disjoint_writes_do_not_interfere(addr):
    mem = SparseMemory()
    mem.write(addr, b"\x11\x22")
    mem.write(addr + 2, b"\x33\x44")
    assert mem.read(addr, 4) == b"\x11\x22\x33\x44"
