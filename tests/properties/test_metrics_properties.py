"""Hypothesis properties for the metrics registry merge.

Shards execute in many places (worker processes, remote machines,
batch packs), each tallying into its own registry; the coordinator
folds them together.  The merge contract that makes that distribution
invisible: **splitting a stream of observations across registries and
merging equals observing the whole stream in one registry** — for
counters and histograms exactly, and for gauges under last-write-wins
(the merge order is the observation order).

Merge must also be associative-by-fold: folding shard registries one
at a time equals folding them in one pass, which is how the engine
actually accumulates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import MetricsRegistry

BOUNDS = (0.01, 0.1, 1.0, 10.0)

# One observation: (kind, metric name, value).
observations = st.one_of(
    st.tuples(
        st.just("counter"),
        st.sampled_from(("runs", "hits", "misses")),
        st.integers(0, 100),
    ),
    st.tuples(
        st.just("gauge"),
        st.sampled_from(("workers", "depth")),
        st.floats(-1e6, 1e6, allow_nan=False),
    ),
    st.tuples(
        st.just("histogram"),
        st.sampled_from(("shard_s", "beat_s")),
        # Integral values sum exactly in floating point, so the split
        # and whole streams accumulate identical histogram sums no
        # matter the association order.
        st.integers(0, 10_000).map(float),
    ),
)


def observe(registry, stream):
    for kind, name, value in stream:
        if kind == "counter":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(value)
        else:
            registry.histogram(name, bounds=BOUNDS).observe(value)


@given(
    stream=st.lists(observations, max_size=60),
    cuts=st.lists(st.integers(0, 60), max_size=4),
)
@settings(max_examples=100)
def test_split_then_merge_equals_observe_in_one(stream, cuts):
    whole = MetricsRegistry()
    observe(whole, stream)

    # Split the stream at the (sorted, clamped) cut points.
    points = sorted({min(cut, len(stream)) for cut in cuts})
    pieces, start = [], 0
    for point in points + [len(stream)]:
        pieces.append(stream[start:point])
        start = point

    merged = MetricsRegistry()
    for piece in pieces:
        shard = MetricsRegistry()
        observe(shard, piece)
        merged.merge(shard)
    assert merged.to_dict() == whole.to_dict()


@given(stream=st.lists(observations, max_size=40), halves=st.integers(0, 40))
@settings(max_examples=60)
def test_fold_is_single_pass_equivalent(stream, halves):
    cut = min(halves, len(stream))
    left, right = MetricsRegistry(), MetricsRegistry()
    observe(left, stream[:cut])
    observe(right, stream[cut:])

    one_pass = MetricsRegistry()
    observe(one_pass, stream)
    assert left.merge(right).to_dict() == one_pass.to_dict()


@given(stream=st.lists(observations, max_size=40))
@settings(max_examples=60)
def test_round_trip_through_dict_preserves_merge_inputs(stream):
    """from_dict(to_dict(r)) merges identically to r itself — what the
    cached-shard path relies on when telemetry is rebuilt from JSON."""
    registry = MetricsRegistry()
    observe(registry, stream)
    revived = MetricsRegistry.from_dict(registry.to_dict())

    base_a = MetricsRegistry()
    base_b = MetricsRegistry()
    assert (
        base_a.merge(registry).to_dict() == base_b.merge(revived).to_dict()
    )
