"""Property-based tests for prescaled counters (paper §II-G).

The central guarantee: with the sticky bit, prescaling bounds the extra
detection latency by one prescaler period, and never loses a sustained
stall.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmu.counters import Prescaler, PrescaledCounter, counter_width, units_for

budgets = st.integers(1, 512)
steps = st.sampled_from([1, 2, 3, 4, 8, 16, 32, 64, 128])
phases = st.integers(0, 127)


@given(budgets, steps, phases)
@settings(max_examples=150, deadline=None)
def test_sustained_stall_always_detected_within_bound(budget, step, phase):
    """Detection latency ∈ [budget - step, units*step + step) for any
    prescaler phase alignment."""
    prescaler = Prescaler(step, phase=phase % step)
    counter = PrescaledCounter(budget, step=step)
    limit = units_for(budget, step) * step + step
    for cycle in range(limit + 1):
        if counter.tick(True, prescaler.advance()):
            latency = cycle + 1
            assert latency <= limit
            assert latency >= min(budget, units_for(budget, step) * step) - step
            return
    raise AssertionError("sustained stall never detected")


@given(budgets, steps)
@settings(max_examples=100, deadline=None)
def test_no_prescaler_is_exact(budget, step):
    prescaler = Prescaler(1)
    counter = PrescaledCounter(budget, step=1)
    for cycle in range(budget + 1):
        if counter.tick(True, prescaler.advance()):
            assert cycle + 1 == budget
            return
    raise AssertionError("never expired")


@given(budgets, steps, st.lists(st.booleans(), min_size=1, max_size=400))
@settings(max_examples=100, deadline=None)
def test_sticky_counter_dominates_plain_counter(budget, step, enables):
    """For identical enable traces, the sticky counter's count is always
    >= the plain counter's: the sticky bit can only catch MORE events."""
    prescaler_a, prescaler_b = Prescaler(step), Prescaler(step)
    sticky = PrescaledCounter(budget, step=step, sticky=True)
    plain = PrescaledCounter(budget, step=step, sticky=False)
    for enabled in enables:
        sticky.tick(enabled, prescaler_a.advance())
        plain.tick(enabled, prescaler_b.advance())
        assert sticky.count >= plain.count


@given(budgets, steps, st.lists(st.booleans(), min_size=1, max_size=400))
@settings(max_examples=100, deadline=None)
def test_counter_never_overcounts_enabled_cycles(budget, step, enables):
    """count * step never exceeds (enabled cycles) + step slack."""
    prescaler = Prescaler(step)
    counter = PrescaledCounter(budget, step=step, sticky=False)
    enabled_cycles = 0
    for enabled in enables:
        counter.tick(enabled, prescaler.advance())
        enabled_cycles += int(enabled)
        assert counter.count <= enabled_cycles


@given(budgets, steps)
@settings(max_examples=150, deadline=None)
def test_width_sufficient_for_units(budget, step):
    width = counter_width(budget, step)
    assert (1 << width) >= units_for(budget, step)
    # And never absurdly wide: one extra bit at most.
    assert (1 << (width - 1)) <= max(1, units_for(budget, step))


@given(budgets, st.integers(1, 32))
@settings(max_examples=100, deadline=None)
def test_units_cover_budget(budget, step):
    assert units_for(budget, step) * step >= budget
    assert (units_for(budget, step) - 1) * step < budget
