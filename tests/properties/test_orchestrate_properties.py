"""Hypothesis properties for the orchestration contract.

The distributed executor's safety argument leans on three invariants,
so they get property coverage rather than examples:

* shard planning is a **disjoint, complete partition** of the canonical
  run list, with stable run IDs — what makes at-least-once execution
  and cache-first dispatch safe;
* the **spec hash** is invariant to dict key order (two machines
  building "the same" campaign agree on the cache namespace) and
  sensitive to every parameter (no stale aliasing);
* **aggregation is index-ordered** no matter what order shard results
  arrive in — what makes worker count, scheduling jitter and lease
  reassignment invisible in the output.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestrate import CampaignSpec, plan_shards, run_campaign_spec

STAGE_POOL = (
    "aw_stage_error",
    "w_stage_timeout",
    "wlast_bvalid_error",
    "b_handshake_ready_missing",
    "r_stage_timeout",
)

config_extras = st.dictionaries(
    st.sampled_from(("prescale_step", "max_uniq_ids", "budget", "sticky")),
    st.integers(0, 64),
    max_size=3,
)


@st.composite
def specs(draw):
    """Small synthetic campaign specs spanning both kinds and all axes."""
    n_configs = draw(st.integers(1, 3))
    configs = [
        {"variant": draw(st.sampled_from(("full", "tiny"))), "n": i,
         **draw(config_extras)}
        for i in range(n_configs)
    ]
    stages = list(
        draw(
            st.lists(
                st.sampled_from(STAGE_POOL), min_size=1, max_size=4, unique=True
            )
        )
    )
    return CampaignSpec(
        kind=draw(st.sampled_from(("ip", "system"))),
        configs=configs,
        stages=stages,
        beats=draw(st.integers(1, 250)),
        seeds=list(draw(st.lists(st.integers(0, 7), min_size=1, max_size=4,
                                 unique=True))),
        background=draw(st.integers(0, 3)),
        detect_timeout=draw(st.integers(1, 50_000)),
        recovery_timeout=draw(st.integers(1, 10_000)),
        harness_kwargs=draw(
            st.dictionaries(
                st.sampled_from(("sim_strategy", "sim_time_leaping", "x")),
                st.sampled_from(("dirty", "verify", True, False, 3)),
                max_size=2,
            )
        ),
    )


# ----------------------------------------------------------------------
# Shard planning: disjoint, complete, stable
# ----------------------------------------------------------------------
@given(specs(), st.integers(1, 9))
@settings(max_examples=60, deadline=None)
def test_shard_plan_is_disjoint_complete_partition(spec, shard_size):
    runs = spec.runs()
    shards = plan_shards(runs, shard_size=shard_size)
    # Complete and in canonical order once flattened…
    flattened = [run for shard in shards for run in shard.runs]
    assert flattened == runs
    # …disjoint (every run exactly once, by identity-bearing index)…
    indexes = [run.index for run in flattened]
    assert indexes == list(range(len(runs)))
    # …with a consistent self-describing plan.
    assert [shard.index for shard in shards] == list(range(len(shards)))
    assert all(shard.count == len(shards) for shard in shards)
    assert all(len(shard.runs) <= shard_size for shard in shards)


@given(specs())
@settings(max_examples=60, deadline=None)
def test_run_ids_stable_and_unique(spec):
    ids_a = [run.run_id for run in spec.runs()]
    ids_b = [run.run_id for run in spec.runs()]
    assert ids_a == ids_b
    assert len(set(ids_a)) == len(ids_a)


# ----------------------------------------------------------------------
# Spec hash: key-order invariant, parameter sensitive
# ----------------------------------------------------------------------
@given(specs())
@settings(max_examples=60, deadline=None)
def test_spec_hash_invariant_to_dict_key_order(spec):
    def reordered(mapping):
        return dict(reversed(list(mapping.items())))

    permuted = CampaignSpec(
        kind=spec.kind,
        configs=[reordered(config) for config in spec.configs],
        stages=list(spec.stages),
        beats=spec.beats,
        seeds=list(spec.seeds),
        background=spec.background,
        detect_timeout=spec.detect_timeout,
        recovery_timeout=spec.recovery_timeout,
        harness_kwargs=reordered(spec.harness_kwargs),
    )
    assert permuted.spec_hash() == spec.spec_hash()
    assert permuted.canonical_dict() == spec.canonical_dict()


MUTATIONS = {
    "kind": lambda d: d.update(kind="system" if d["kind"] == "ip" else "ip"),
    "configs": lambda d: d["configs"].append({"variant": "full", "mut": 1}),
    "config_value": lambda d: d["configs"][0].update(variant="mutated"),
    "stages": lambda d: d["stages"].append("mutated_stage"),
    "stage_order": lambda d: d["stages"].reverse(),
    "beats": lambda d: d.update(beats=d["beats"] + 1),
    "seeds": lambda d: d["seeds"].append(max(d["seeds"]) + 1),
    "background": lambda d: d.update(background=d["background"] + 1),
    "detect_timeout": lambda d: d.update(detect_timeout=d["detect_timeout"] + 1),
    "recovery_timeout": lambda d: d.update(
        recovery_timeout=d["recovery_timeout"] + 1
    ),
    "harness_kwargs": lambda d: d["harness_kwargs"].update(mutated=True),
}


@given(specs(), st.sampled_from(sorted(MUTATIONS)))
@settings(max_examples=80, deadline=None)
def test_spec_hash_sensitive_to_every_parameter(spec, field):
    mutated = spec.canonical_dict()
    MUTATIONS[field](mutated)
    if field == "stage_order" and len(mutated["stages"]) < 2:
        mutated["stages"].append("mutated_stage")  # order needs two entries
    remade = CampaignSpec(**mutated)
    assert remade.spec_hash() != spec.spec_hash()


# ----------------------------------------------------------------------
# Aggregation: arrival order is invisible
# ----------------------------------------------------------------------
@given(specs(), st.integers(1, 5), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_aggregation_is_index_ordered_for_any_arrival_order(
    spec, shard_size, rng
):
    runs = spec.runs()
    shards = plan_shards(runs, shard_size=shard_size)

    class Scrambled:
        """Completes shards in a hypothesis-chosen order, results tagged."""

        def map(self, pending):
            order = list(pending)
            rng.shuffle(order)
            for shard in order:
                yield shard.index, [f"result-{run.index}" for run in shard.runs]

    ordered = run_campaign_spec(spec, executor=Scrambled())
    assert ordered == [f"result-{index}" for index in range(len(runs))]
