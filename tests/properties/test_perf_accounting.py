"""Property: the Fc per-phase latency log accounts for whole transactions.

For any completed transaction under random legal traffic, the recorded
phase latencies must tile the transaction: non-negative, and their sum
within a small constant of the end-to-end latency (phases are measured
back-to-back at handshake boundaries, so at most ±1 cycle of skew per
phase boundary).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import build_loop, fast_budgets

from repro.axi.traffic import RandomTraffic
from repro.axi.types import AxiDir
from repro.tmu.config import TmuConfig
from repro.tmu.phases import ReadPhase, WritePhase


@given(
    seed=st.integers(0, 100_000),
    txns=st.integers(1, 12),
    b_latency=st.integers(1, 6),
    r_latency=st.integers(1, 6),
)
@settings(max_examples=20, deadline=None)
def test_phase_latencies_tile_transactions(seed, txns, b_latency, r_latency):
    env = build_loop(
        TmuConfig(budgets=fast_budgets()),
        b_latency=b_latency,
        r_latency=r_latency,
    )
    env.manager.submit_all(
        RandomTraffic(ids=(0, 1), max_beats=6, seed=seed).take(txns)
    )
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=30_000)
    assert env.tmu.faults_handled == 0

    for guard, phases in (
        (env.tmu.write_guard, WritePhase),
        (env.tmu.read_guard, ReadPhase),
    ):
        for record in guard.perf.history:
            assert set(record.phase_latencies) == set(phases)
            assert all(v >= 0 for v in record.phase_latencies.values())
            # The address-handshake phase ends where the record's clock
            # starts, so it is excluded from the tiling sum.
            first = phases(0)
            body = sum(
                v for k, v in record.phase_latencies.items() if k != first
            )
            slack = len(phases)  # ±1 cycle per boundary
            assert abs(body - record.latency) <= slack, (
                record.phase_latencies,
                record.latency,
            )


@given(seed=st.integers(0, 100_000))
@settings(max_examples=10, deadline=None)
def test_beats_accounted_exactly(seed):
    env = build_loop(TmuConfig(budgets=fast_budgets()))
    specs = RandomTraffic(ids=(0, 1, 2), max_beats=8, seed=seed).take(10)
    env.manager.submit_all(specs)
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=30_000)
    expected_w = sum(s.beats for s in specs if s.direction == AxiDir.WRITE)
    expected_r = sum(s.beats for s in specs if s.direction == AxiDir.READ)
    assert env.tmu.write_guard.perf.beats_transferred == expected_w
    assert env.tmu.read_guard.perf.beats_transferred == expected_r
