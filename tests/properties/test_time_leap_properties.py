"""Property-based equivalence of the time-leaping kernel.

Two pillars:

* the guard-level expiry prediction and O(1) catch-up must agree with
  tick-by-tick prescaled counting for any budget/step/phase alignment —
  this is what makes a leaped stall detect at the exact same cycle;
* a randomized IP-level fault campaign must produce identical results
  (detection cycle, fault classification, recovery) with time leaping
  on, off, and under ``strategy="verify"``.
"""

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.faults.campaign import run_injection
from repro.faults.types import InjectionStage
from repro.tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from repro.tmu.config import TmuConfig, Variant
from repro.tmu.counters import Prescaler, PrescaledCounter

budgets = st.integers(1, 300)
steps = st.sampled_from([1, 2, 3, 4, 8, 16])
phases = st.integers(0, 15)
spans = st.integers(0, 400)


@given(budgets, steps, phases, st.booleans())
@settings(max_examples=150, deadline=None)
def test_edges_to_expiry_matches_tick_by_tick(budget, step, phase, sticky):
    """The closed-form expiry cycle equals the per-cycle simulation."""
    prescaler = Prescaler(step, phase=phase % step)
    counter = PrescaledCounter(budget, step=step, sticky=sticky)
    predicted = prescaler.cycles_to_edge(counter.edges_to_expiry())
    for cycle in range(1, predicted + 1):
        expired = counter.tick(True, prescaler.advance())
        if cycle < predicted:
            assert not expired, f"expired early at {cycle} < {predicted}"
        else:
            assert expired, f"not expired at predicted cycle {predicted}"


@given(budgets, steps, phases, spans, st.booleans())
@settings(max_examples=150, deadline=None)
def test_catch_up_matches_tick_by_tick(budget, step, phase, span, sticky):
    """catch_up(edges) over a frozen span == `span` enabled ticks."""
    ticked_p = Prescaler(step, phase=phase % step)
    ticked_c = PrescaledCounter(budget, step=step, sticky=sticky)
    jumped_p = Prescaler(step, phase=phase % step)
    jumped_c = PrescaledCounter(budget, step=step, sticky=sticky)
    # Bound the span so no expiry falls inside it (the caller's — the
    # TMU's — precondition, guaranteed by its timed wake); the guard
    # never calls catch_up for an empty span.
    limit = jumped_p.cycles_to_edge(jumped_c.edges_to_expiry()) - 1
    span = min(span, max(0, limit))
    assume(span >= 1)
    for _ in range(span):
        ticked_c.tick(True, ticked_p.advance())
    edges = jumped_p.edges_in(span)
    end_on_edge = edges > 0 and (jumped_p.phase + span) % step == 0
    jumped_p.skip(span)
    jumped_c.catch_up(edges, end_on_edge)
    assert jumped_p.phase == ticked_p._phase
    assert jumped_c.count == ticked_c.count
    assert jumped_c._armed == ticked_c._armed
    assert jumped_c._accum == ticked_c._accum


# Stall-producing stages cover the countdown paths; handshake faults
# cover the event-driven ones.
stages = st.sampled_from(
    [
        InjectionStage.AW_READY_MISSING,
        InjectionStage.W_VALID_MISSING,
        InjectionStage.W_READY_MISSING,
        InjectionStage.WLAST_TO_BVALID,
        InjectionStage.B_READY_MISSING,
        InjectionStage.R_VALID_MISSING,
    ]
)


def _config(variant, prescale_step):
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=4,
        prescale_step=prescale_step,
        budgets=AdaptiveBudgetPolicy(
            PhaseBudgets(aw_handshake=24), SpanBudgets(base=48, per_beat=1)
        ),
        max_txn_cycles=96,
    )


@given(
    stages,
    st.sampled_from([Variant.FULL, Variant.TINY]),
    st.sampled_from([1, 2, 4]),
    st.integers(0, 5),
    st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_random_injection_identical_across_leap_modes(
    stage, variant, prescale_step, seed, beats
):
    """One random Fig. 9-style injection: leap on == leap off == verify."""
    config = _config(variant, prescale_step)

    def run(**harness_kwargs):
        result = run_injection(
            config,
            stage,
            beats=beats,
            detect_timeout=3_000,
            recovery_timeout=1_500,
            harness_kwargs=harness_kwargs or None,
            issue_delay=seed,
        )
        payload = dataclasses.asdict(result)
        # Scheduler diagnostics, not measurements: leap counts differ
        # across kernels by construction.
        del payload["sim_leaps"], payload["sim_cycles_leaped"]
        return payload

    leap = run()
    assert leap == run(sim_time_leaping=False)
    assert leap == run(sim_strategy="verify")
    assert leap == run(sim_strategy="exhaustive")
