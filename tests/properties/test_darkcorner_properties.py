"""Property battery for the AXI dark corners (paper §III traffic realism).

Two halves:

* **Zero false positives** — arbitrary *legal* workloads mixing narrow
  beats, deep outstanding queues, and window-reordered/interleaved
  responses stream through the :class:`ProtocolChecker` without a
  single violation, including with the interleaving-depth bound armed.
* **Targeted injections** — each new rule (``ERRM_AXSIZE_RANGE``,
  narrow-lane ``ERRM_WSTRB_RANGE``, ``ERRS_R_INTERLEAVE_DEPTH``,
  ``ERRS_R_IN_ORDER``) demonstrably fires on the traffic shape it
  exists to catch.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import protocol as P
from repro.axi.channels import ArBeat, AwBeat, RBeat, WBeat
from repro.axi.interface import AxiInterface
from repro.axi.manager import Manager
from repro.axi.subordinate import Subordinate
from repro.axi.traffic import TransactionSpec
from repro.axi.types import AxiDir, Resp, bytes_per_beat
from repro.sim.kernel import Simulator


@st.composite
def dark_corner_workload(draw):
    """Legal narrow/outstanding/reordered traffic plus endpoint knobs."""
    specs = []
    for _ in range(draw(st.integers(2, 10))):
        size = draw(st.integers(0, 3))
        width = bytes_per_beat(size)
        beats = draw(st.integers(1, 6))
        page = draw(st.integers(0, 7)) * 0x1000
        offset = draw(st.integers(0, (0x1000 - beats * width) // width))
        specs.append(
            TransactionSpec(
                draw(st.sampled_from([AxiDir.WRITE, AxiDir.READ])),
                draw(st.integers(0, 3)),
                page + offset * width,
                len=beats - 1,
                size=size,
                issue_delay=draw(st.integers(0, 2)),
                w_gap=draw(st.integers(0, 2)),
            )
        )
    knobs = {
        "reorder_depth": draw(st.sampled_from([0, 2, 4])),
        "interleave_reads": draw(st.booleans()),
        "b_latency": draw(st.integers(1, 3)),
        "r_latency": draw(st.integers(1, 3)),
        "r_gap": draw(st.integers(0, 1)),
    }
    return specs, knobs


def checked_loop(max_r_interleave=None, **sub_kwargs):
    sim = Simulator()
    bus = AxiInterface("bus")
    manager = Manager("manager", bus)
    subordinate = Subordinate("subordinate", bus, **sub_kwargs)
    checker = P.ProtocolChecker(
        "checker", bus, max_r_interleave=max_r_interleave
    )
    for component in (manager, subordinate, checker):
        sim.add(component)
    return SimpleNamespace(
        sim=sim, manager=manager, subordinate=subordinate, checker=checker
    )


@given(dark_corner_workload())
@settings(max_examples=30, deadline=None)
def test_legal_dark_corner_traffic_never_false_positives(load):
    specs, knobs = load
    env = checked_loop(**knobs)
    env.manager.submit_all(specs)
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=30_000)
    assert env.checker.clean, env.checker.violations[:3]
    assert env.manager.surprises == []


@given(dark_corner_workload())
@settings(max_examples=15, deadline=None)
def test_interleave_depth_bound_admits_legal_interleaving(load):
    """With the bound set to the ID count, legal traffic stays clean —
    a window can never interleave more streams than there are IDs."""
    specs, knobs = load
    env = checked_loop(max_r_interleave=4, **knobs)
    env.manager.submit_all(specs)
    assert env.sim.run_until(lambda s: env.manager.idle, timeout=30_000)
    assert env.checker.clean, env.checker.violations[:3]


# ----------------------------------------------------------------------
# Targeted rule-fire injections (scripted, one rule each)
# ----------------------------------------------------------------------
def bare_checker(max_r_interleave=None):
    return P.ProtocolChecker(
        "checker", AxiInterface("bus"), max_r_interleave=max_r_interleave
    )


def test_axsize_beyond_bus_width_fires():
    checker = bare_checker()
    checker._on_aw(AwBeat(id=0, addr=0x100, len=0, size=4))  # 16B on an 8B bus
    assert checker.count(P.ERRM_AXSIZE_RANGE) == 1
    checker._on_ar(ArBeat(id=0, addr=0x100, len=0, size=5))
    assert checker.count(P.ERRM_AXSIZE_RANGE) == 2
    # Full-width is the boundary, not a violation.
    checker._on_aw(AwBeat(id=1, addr=0x100, len=0, size=3))
    assert checker.count(P.ERRM_AXSIZE_RANGE) == 2


def test_narrow_wstrb_outside_lane_mask_fires():
    checker = bare_checker()
    # 4-byte beats at 0x104: data travels on byte lanes 4..7.
    checker._on_aw(AwBeat(id=0, addr=0x104, len=1, size=2))
    checker._on_w(WBeat(data=0, strb=0x0F, last=False))  # wrong lanes
    assert checker.count(P.ERRM_WSTRB_RANGE) == 1
    checker._on_w(WBeat(data=0, strb=0xF0, last=True))  # 0x108 -> lane 0? no:
    # second beat of the INCR burst sits at 0x108, lanes 0..3 — 0xF0 is
    # again the wrong half of the bus.
    assert checker.count(P.ERRM_WSTRB_RANGE) == 2


def test_narrow_wstrb_on_correct_lanes_is_clean():
    checker = bare_checker()
    checker._on_aw(AwBeat(id=0, addr=0x104, len=1, size=2))
    checker._on_w(WBeat(data=0, strb=0xF0, last=False))  # 0x104 -> lanes 4..7
    checker._on_w(WBeat(data=0, strb=0x0F, last=True))   # 0x108 -> lanes 0..3
    # Sparse strobes inside the lane window are legal too.
    checker._on_aw(AwBeat(id=1, addr=0x200, len=0, size=3))
    checker._on_w(WBeat(data=0, strb=0x81, last=True))
    assert checker.clean, checker.violations


def test_r_interleave_depth_violation_fires():
    checker = bare_checker(max_r_interleave=1)
    checker._on_ar(ArBeat(id=0, addr=0x100, len=1))
    checker._on_ar(ArBeat(id=1, addr=0x200, len=1))
    checker._on_r(RBeat(id=0, data=0, resp=Resp.OKAY, last=False))
    # id 1 starts while id 0 is mid-burst: two interleaved streams > 1.
    checker._on_r(RBeat(id=1, data=0, resp=Resp.OKAY, last=False))
    assert checker.count(P.ERRS_R_INTERLEAVE_DEPTH) == 1
    # Finishing the streams adds nothing.
    checker._on_r(RBeat(id=0, data=0, resp=Resp.OKAY, last=True))
    checker._on_r(RBeat(id=1, data=0, resp=Resp.OKAY, last=True))
    assert checker.count(P.ERRS_R_INTERLEAVE_DEPTH) == 1


def test_r_interleave_depth_disabled_by_default():
    checker = bare_checker()
    checker._on_ar(ArBeat(id=0, addr=0x100, len=1))
    checker._on_ar(ArBeat(id=1, addr=0x200, len=1))
    checker._on_r(RBeat(id=0, data=0, resp=Resp.OKAY, last=False))
    checker._on_r(RBeat(id=1, data=0, resp=Resp.OKAY, last=False))
    checker._on_r(RBeat(id=0, data=0, resp=Resp.OKAY, last=True))
    checker._on_r(RBeat(id=1, data=0, resp=Resp.OKAY, last=True))
    assert checker.clean


def test_same_id_reorder_signature_fires():
    """A subordinate serving the younger same-ID burst first: its rlast
    lands where the younger burst's length says, while the head still
    expects more beats — the full-reorder fingerprint."""
    checker = bare_checker()
    checker._on_ar(ArBeat(id=2, addr=0x100, len=3))  # 4 beats, requested first
    checker._on_ar(ArBeat(id=2, addr=0x200, len=1))  # 2 beats, served first
    checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=False))
    checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=True))
    assert checker.count(P.ERRS_R_IN_ORDER) == 1
    assert checker.count(P.ERRS_RLAST_POSITION) == 1


def test_in_order_same_id_bursts_are_clean():
    checker = bare_checker()
    checker._on_ar(ArBeat(id=2, addr=0x100, len=3))
    checker._on_ar(ArBeat(id=2, addr=0x200, len=1))
    for _ in range(3):
        checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=False))
    checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=True))
    checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=False))
    checker._on_r(RBeat(id=2, data=0, resp=Resp.OKAY, last=True))
    assert checker.clean, checker.violations
