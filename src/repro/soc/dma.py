"""iDMA-like block-transfer engine (paper Fig. 10 lists an iDMA manager).

A thin specialization of the traffic :class:`~repro.axi.manager.Manager`
that exposes a descriptor-style API: software enqueues transfers
(source/destination/length) and the engine splits them into AXI bursts
respecting the 256-beat AXI4 limit and 4 KiB boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..axi.interface import AxiInterface
from ..axi.manager import Manager
from ..axi.traffic import TransactionSpec
from ..axi.types import MAX_BURST_LEN, AxiDir, bytes_per_beat


@dataclasses.dataclass(frozen=True)
class DmaDescriptor:
    """One software-visible DMA job."""

    dst: int
    length_bytes: int
    direction: AxiDir = AxiDir.WRITE
    beat_size: int = 3  # AxSIZE: 8-byte beats on Cheshire's 64-bit bus
    txn_id: int = 0


class DmaEngine(Manager):
    """Descriptor-driven AXI manager producing long back-to-back bursts."""

    def __init__(self, name: str, bus: AxiInterface, **kwargs) -> None:
        super().__init__(name, bus, **kwargs)
        self.descriptors_done = 0
        self._descriptor_txns: List[int] = []

    def enqueue_descriptor(self, descriptor: DmaDescriptor) -> int:
        """Split *descriptor* into AXI bursts and queue them; returns burst count."""
        width = bytes_per_beat(descriptor.beat_size)
        if descriptor.length_bytes <= 0 or descriptor.length_bytes % width:
            raise ValueError(
                f"DMA length must be a positive multiple of {width} bytes"
            )
        total_beats = descriptor.length_bytes // width
        addr = descriptor.dst
        bursts = 0
        while total_beats > 0:
            beats = min(total_beats, MAX_BURST_LEN)
            # Do not cross a 4 KiB boundary within one burst.
            room = (0x1000 - (addr & 0xFFF)) // width
            beats = min(beats, max(1, room))
            self.submit(
                TransactionSpec(
                    descriptor.direction,
                    descriptor.txn_id,
                    addr,
                    len=beats - 1,
                    size=descriptor.beat_size,
                )
            )
            addr += beats * width
            total_beats -= beats
            bursts += 1
        self._descriptor_txns.append(bursts)
        return bursts

    def update(self) -> None:
        before = len(self.completed)
        super().update()
        finished = len(self.completed) - before
        while finished > 0 and self._descriptor_txns:
            if self._descriptor_txns[0] <= finished:
                finished -= self._descriptor_txns.pop(0)
                self.descriptors_done += 1
            else:
                self._descriptor_txns[0] -= finished
                finished = 0

    def snapshot_state(self):
        return (
            super().snapshot_state(),
            self.descriptors_done,
            tuple(self._descriptor_txns),
        )
