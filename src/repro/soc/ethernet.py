"""RGMII-Ethernet-like AXI subordinate (paper §III-B).

The system-level experiment monitors "an RGMII Ethernet peripheral"
whose AXI window receives frame data for transmission.  This model is a
memory-mapped MAC: writes land in a TX buffer and are drained to the
(virtual) line at a configurable rate; reads return RX/status data.
What matters for the TMU is the AXI-side timing — handshake delays,
a frame-sized transfer of hundreds of beats, and fault hooks — all of
which the base :class:`~repro.axi.subordinate.Subordinate` provides.
"""

from __future__ import annotations

from typing import Optional

from ..axi.interface import AxiInterface
from ..axi.memory import SparseMemory
from ..axi.subordinate import Subordinate


class EthernetMac(Subordinate):
    """Ethernet MAC endpoint with TX-drain bookkeeping.

    Parameters
    ----------
    line_rate_beats_per_cycle:
        How many buffered TX beats the (virtual) RGMII line drains per
        clock cycle; only statistics depend on it.
    """

    # AXI window layout (offsets into the peripheral's range).
    TX_BUFFER_OFFSET = 0x0000
    TX_BUFFER_SIZE = 0x4000
    RX_BUFFER_OFFSET = 0x4000
    STATUS_OFFSET = 0x8000

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        memory: Optional[SparseMemory] = None,
        line_rate_beats_per_cycle: float = 0.25,
        **kwargs,
    ) -> None:
        kwargs.setdefault("b_latency", 2)
        kwargs.setdefault("r_latency", 2)
        kwargs.setdefault("max_outstanding", 8)
        super().__init__(name, bus, memory, **kwargs)
        self.line_rate = line_rate_beats_per_cycle
        self.frames_sent = 0
        self.beats_received = 0
        # The TX drain is a pure function of the clock between beat
        # arrivals, so it is accounted lazily against a stamp instead
        # of ticking every cycle — a draining (but AXI-idle) MAC is
        # update-quiescent and its idle span can be leaped.
        self._tx_buffered = 0.0
        self._tx_stamp = 0

    # ------------------------------------------------------------------
    # Lazy line-drain accounting
    # ------------------------------------------------------------------
    def _sync_tx(self, stamp: int) -> None:
        """Apply the per-cycle drain for every update stamped <= *stamp*.

        Idempotent reconstruction from the clock: ``k`` skipped cycles
        drain ``k * line_rate`` (clamped at zero), exactly what ``k``
        per-cycle subtractions of an always-on update would have done.
        """
        elapsed = stamp - self._tx_stamp
        if elapsed > 0 and self._tx_buffered > 0:
            self._tx_buffered = max(
                0.0, self._tx_buffered - self.line_rate * elapsed
            )
        if elapsed > 0:
            self._tx_stamp = stamp

    @property
    def tx_beats_buffered(self) -> float:
        """TX beats awaiting the line, including any quiescent tail."""
        if self._sim is not None:
            self._sync_tx(self._sim.cycle)
        return self._tx_buffered

    def _on_w_fired(self, beat) -> None:
        super()._on_w_fired(beat)
        self.beats_received += 1
        self._tx_buffered += 1
        if beat.last:
            self.frames_sent += 1

    def update(self) -> None:
        now = self._sim.cycle + 1 if self._sim is not None else self._tx_stamp + 1
        self._sync_tx(now - 1)  # catch up any slept span first
        super().update()
        if self._tx_buffered > 0:
            self._tx_buffered = max(0.0, self._tx_buffered - self.line_rate)
        self._tx_stamp = now

    # quiescent() is inherited unchanged: the TX drain no longer needs
    # the update phase, so only the AXI-side conditions matter.

    def snapshot_state(self):
        # _tx_buffered/_tx_stamp are clock-derived (lazily resynced)
        # and excluded; the beat arrivals that feed them are covered by
        # beats_received and the base subordinate snapshot.
        return (
            super().snapshot_state(),
            self.frames_sent,
            self.beats_received,
        )

    def _take_reset(self) -> None:
        super()._take_reset()
        self._tx_buffered = 0.0
        if self._sim is not None:
            self._tx_stamp = self._sim.cycle + 1

    def reset(self) -> None:
        super().reset()
        self.frames_sent = 0
        self.beats_received = 0
        self._tx_buffered = 0.0
        self._tx_stamp = 0
