"""RGMII-Ethernet-like AXI subordinate (paper §III-B).

The system-level experiment monitors "an RGMII Ethernet peripheral"
whose AXI window receives frame data for transmission.  This model is a
memory-mapped MAC: writes land in a TX buffer and are drained to the
(virtual) line at a configurable rate; reads return RX/status data.
What matters for the TMU is the AXI-side timing — handshake delays,
a frame-sized transfer of hundreds of beats, and fault hooks — all of
which the base :class:`~repro.axi.subordinate.Subordinate` provides.
"""

from __future__ import annotations

from typing import Optional

from ..axi.interface import AxiInterface
from ..axi.memory import SparseMemory
from ..axi.subordinate import Subordinate


class EthernetMac(Subordinate):
    """Ethernet MAC endpoint with TX-drain bookkeeping.

    Parameters
    ----------
    line_rate_beats_per_cycle:
        How many buffered TX beats the (virtual) RGMII line drains per
        clock cycle; only statistics depend on it.
    """

    # AXI window layout (offsets into the peripheral's range).
    TX_BUFFER_OFFSET = 0x0000
    TX_BUFFER_SIZE = 0x4000
    RX_BUFFER_OFFSET = 0x4000
    STATUS_OFFSET = 0x8000

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        memory: Optional[SparseMemory] = None,
        line_rate_beats_per_cycle: float = 0.25,
        **kwargs,
    ) -> None:
        kwargs.setdefault("b_latency", 2)
        kwargs.setdefault("r_latency", 2)
        kwargs.setdefault("max_outstanding", 8)
        super().__init__(name, bus, memory, **kwargs)
        self.line_rate = line_rate_beats_per_cycle
        self.tx_beats_buffered = 0.0
        self.frames_sent = 0
        self.beats_received = 0

    def _on_w_fired(self, beat) -> None:
        super()._on_w_fired(beat)
        self.beats_received += 1
        self.tx_beats_buffered += 1
        if beat.last:
            self.frames_sent += 1

    def update(self) -> None:
        super().update()
        if self.tx_beats_buffered > 0:
            self.tx_beats_buffered = max(
                0.0, self.tx_beats_buffered - self.line_rate
            )

    def quiescent(self):
        # A buffered TX frame keeps draining to the line every cycle.
        return self.tx_beats_buffered == 0 and super().quiescent()

    def snapshot_state(self):
        return (
            super().snapshot_state(),
            self.tx_beats_buffered,
            self.frames_sent,
            self.beats_received,
        )

    def _take_reset(self) -> None:
        super()._take_reset()
        self.tx_beats_buffered = 0.0

    def reset(self) -> None:
        super().reset()
        self.frames_sent = 0
        self.beats_received = 0
