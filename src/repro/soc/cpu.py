"""Recovery-software model: the hart servicing TMU interrupts.

The paper's flow (§II-B): on a TMU interrupt "the processor runs
software-based recovery routines".  This component models that handler:
it claims the interrupt from the PLIC after a configurable ISR entry
latency, reads the TMU's fault registers the way a driver would, clears
the interrupt, and logs the episode.

Register access runs either directly against the register file or — when
a :class:`~repro.soc.regbus.RegBusMaster` is supplied — through the
Regbus, taking one bus round-trip per access exactly like Cheshire's
configuration path (Fig. 10's "Regbus Demux").
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from ..sim.component import Component
from ..tmu.registers import REG_FAULT_KIND, REG_IRQ_CLEAR, REG_STATUS, TmuRegisters


@dataclasses.dataclass(frozen=True)
class RecoveryRecord:
    """One serviced TMU interrupt."""

    claim_cycle: int
    source: str
    fault_kind_code: int
    status: int


class _IsrState(enum.Enum):
    IDLE = "idle"
    ENTRY = "entry"
    READ_STATUS = "read_status"
    READ_KIND = "read_kind"
    CLEAR = "clear"


class RecoveryCpu(Component):
    """Polls the PLIC and services TMU interrupts via the register file.

    Update-quiescent while idle with nothing pending: the hart sleeps
    (WFI-style) until an interrupt source wire rises.  Because a PLIC
    claim can race registration order, quiescence additionally requires
    every source wire low — a level interrupt therefore always wakes the
    hart on the cycle the PLIC latches it, whichever of the two updates
    runs first.
    """

    demand_update = True
    #: ISR latency counts down from the interrupt edge — reactive.
    phase_period = 1

    def __init__(
        self,
        name: str,
        plic,
        tmu_regs,
        isr_latency: int = 5,
        regbus=None,
        regbus_bases: Optional[dict] = None,
    ) -> None:
        super().__init__(name)
        self.plic = plic
        # One register file per interrupt source; a bare TmuRegisters is
        # shorthand for a single source named "tmu".
        if isinstance(tmu_regs, TmuRegisters):
            tmu_regs = {"tmu": tmu_regs}
        self.tmu_regs = tmu_regs
        self.isr_latency = isr_latency
        self.regbus = regbus
        self.regbus_bases = regbus_bases if regbus_bases is not None else {"tmu": 0}
        self.recoveries: List[RecoveryRecord] = []
        self._cycle = 0
        self._servicing: Optional[int] = None
        self._countdown = 0
        self._state = _IsrState.IDLE
        self._status = 0
        self._kind = 0
        self._awaiting_bus = False

    # ------------------------------------------------------------------
    # Register access, direct or through the Regbus
    # ------------------------------------------------------------------
    def _source_name(self) -> str:
        return self.plic.source_name(self._servicing)

    def _current_regs(self) -> TmuRegisters:
        return self.tmu_regs[self._source_name()]

    def _bus_read(self, offset: int, store: str) -> None:
        self._awaiting_bus = True

        def done(response):
            setattr(self, store, response.rdata)
            self._awaiting_bus = False
            # The hart sleeps while a bus access is in flight; the
            # completion (delivered from the Regbus master's update)
            # resumes the ISR on the next edge, as always-on did.
            self.schedule_update()

        base = self.regbus_bases[self._source_name()]
        self.regbus.read(base + offset, done)

    def _bus_write(self, offset: int, value: int) -> None:
        self._awaiting_bus = True

        def done(_response):
            self._awaiting_bus = False
            self.schedule_update()

        base = self.regbus_bases[self._source_name()]
        self.regbus.write(base + offset, value, done)

    # ------------------------------------------------------------------
    def update_inputs(self):
        return self.plic.sources

    def quiescent(self):
        # WFI-style idle sleep, plus two new sleeps the ISR allows: the
        # entry-latency stall (a pure countdown — timed wake at its
        # zero crossing) and a bus access in flight (the completion
        # callback re-arms us).
        if self._state is _IsrState.ENTRY and self._countdown > 0:
            if self._sim is not None:
                self.wake_at(self._sim.cycle + self._countdown)
            return True
        if self._awaiting_bus:
            return True
        return (
            self._state is _IsrState.IDLE
            and not self.plic.any_pending
            and not any(wire._value for wire in self.plic._sources)
        )

    def snapshot_state(self):
        # _countdown is clock-derived under the timed-wake contract
        # (elapsed-ticked, replayed exactly); the ISR transitions it
        # produces are what verify must observe.
        return (
            self._state,
            self._servicing,
            self._status,
            self._kind,
            self._awaiting_bus,
            len(self.recoveries),
        )

    def update(self) -> None:
        # claim_cycle stamps come from the global clock so quiescent
        # spans cannot skew them; standalone use falls back to counting.
        sim = self._sim
        now = sim.cycle + 1 if sim is not None else self._cycle + 1
        elapsed = now - self._cycle
        self._cycle = now
        if self._state == _IsrState.IDLE:
            source = self.plic.claim()
            if source is not None:
                self._servicing = source
                self._countdown = self.isr_latency
                self._state = _IsrState.ENTRY
            return
        if self._state == _IsrState.ENTRY:
            if self._countdown > 0:
                self._countdown -= min(self._countdown, elapsed)
                return
            if self.regbus is None:
                # Direct access: the whole handler body in one cycle.
                regs = self._current_regs()
                self._status = regs.read(REG_STATUS)
                self._kind = regs.read(REG_FAULT_KIND)
                regs.write(REG_IRQ_CLEAR, 1)
                self._finish()
                return
            self._bus_read(REG_STATUS, "_status")
            self._state = _IsrState.READ_STATUS
            return
        if self._awaiting_bus:
            return
        if self._state == _IsrState.READ_STATUS:
            self._bus_read(REG_FAULT_KIND, "_kind")
            self._state = _IsrState.READ_KIND
        elif self._state == _IsrState.READ_KIND:
            self._bus_write(REG_IRQ_CLEAR, 1)
            self._state = _IsrState.CLEAR
        elif self._state == _IsrState.CLEAR:
            self._finish()

    def _finish(self) -> None:
        self.recoveries.append(
            RecoveryRecord(
                claim_cycle=self._cycle,
                source=self.plic.source_name(self._servicing),
                fault_kind_code=self._kind,
                status=self._status,
            )
        )
        self.plic.complete(self._servicing)
        self._servicing = None
        self._state = _IsrState.IDLE

    def reset(self) -> None:
        self.recoveries.clear()
        self._cycle = 0
        self._servicing = None
        self._countdown = 0
        self._state = _IsrState.IDLE
        self._status = 0
        self._kind = 0
        self._awaiting_bus = False
        self.cancel_wake()
        self.schedule_update()
