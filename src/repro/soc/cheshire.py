"""Cheshire-like SoC assembly (paper Fig. 10).

The paper integrates the TMU into Cheshire — a Linux-capable RISC-V
CVA6 host platform — between the AXI4 crossbar and an RGMII Ethernet
peripheral.  This model assembles the same topology:

* three manager ports: two CVA6-like traffic generators and an iDMA
  engine;
* an AXI4 crossbar with address-decoded subordinate ports: last-level
  cache / DRAM, boot ROM, and the Ethernet MAC — the latter reached
  *through* the TMU;
* the external reset unit wired TMU → Ethernet;
* a PLIC collecting the TMU interrupt and a recovery-software CPU model
  servicing it.

The paper's system experiment — a 250-beat write on a 64-bit bus with
faults injected at every phase — runs on this assembly
(:meth:`CheshireSoC.send_ethernet_frame` + the fault hooks on
``ethernet.faults`` / ``dma.faults``).
"""

from __future__ import annotations

from typing import List, Optional

from ..axi.crossbar import AddressRange, Crossbar
from ..axi.interface import AxiInterface
from ..axi.manager import Manager
from ..axi.memory import SparseMemory
from ..axi.subordinate import Subordinate
from ..axi.traffic import RandomTraffic, read_spec
from ..axi.types import AxiDir, bytes_per_beat
from ..sim.kernel import Simulator
from ..tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from ..tmu.config import TmuConfig, Variant
from ..tmu.registers import TmuRegisters
from ..tmu.unit import TransactionMonitoringUnit
from .cpu import RecoveryCpu
from .dma import DmaDescriptor, DmaEngine
from .ethernet import EthernetMac
from .plic import Plic
from .regbus import RegBusDemux, RegBusMaster, RegBusPort, TmuRegbusAdapter
from .reset_unit import ResetUnit

# Cheshire-flavoured address map.
BOOTROM_BASE = 0x0200_0000
BOOTROM_SIZE = 0x0001_0000
ETHERNET_BASE = 0x3000_0000
ETHERNET_SIZE = 0x0001_0000
DRAM_BASE = 0x8000_0000
DRAM_SIZE = 0x1000_0000

#: The paper's system-level Tiny-Counter budget: 320 cycles for the
#: whole 250-beat transaction (§III-B).
SYSTEM_TC_BUDGET = 320

#: The paper's per-phase Full-Counter budgets for the same experiment
#: ("10 cycles for AW, 250 for W, etc." — Fig. 11 series).
SYSTEM_FC_BUDGETS = {
    "aw_handshake": 10,
    "w_entry": 20,
    "w_first_hs": 10,
    "w_data": 250,
    "b_wait": 10,
    "b_handshake": 20,
}


def system_budget_policy(frame_beats: int = 250) -> AdaptiveBudgetPolicy:
    """Budget policy reproducing the paper's system-level settings."""
    phases = PhaseBudgets(
        aw_handshake=SYSTEM_FC_BUDGETS["aw_handshake"],
        w_entry=SYSTEM_FC_BUDGETS["w_entry"],
        w_first_hs=SYSTEM_FC_BUDGETS["w_first_hs"],
        w_data_base=SYSTEM_FC_BUDGETS["w_data"] - frame_beats,
        w_data_per_beat=1,
        b_wait=SYSTEM_FC_BUDGETS["b_wait"],
        b_handshake=SYSTEM_FC_BUDGETS["b_handshake"],
        ar_handshake=SYSTEM_FC_BUDGETS["aw_handshake"],
        r_entry=SYSTEM_FC_BUDGETS["w_entry"],
        r_first_hs=SYSTEM_FC_BUDGETS["w_first_hs"],
        r_data_base=SYSTEM_FC_BUDGETS["w_data"] - frame_beats,
        r_data_per_beat=1,
    )
    span = SpanBudgets(base=SYSTEM_TC_BUDGET - frame_beats, per_beat=1)
    return AdaptiveBudgetPolicy(phases, span)


def system_tmu_config(
    variant: Variant = Variant.FULL, frame_beats: int = 250
) -> TmuConfig:
    """TMU configuration used in the system-level evaluation."""
    return TmuConfig(
        variant=variant,
        max_uniq_ids=4,
        txn_per_id=8,
        budgets=system_budget_policy(frame_beats),
        max_txn_cycles=512,
    )


class CheshireSoC:
    """The full system-level test bench of Fig. 10."""

    def __init__(
        self,
        tmu_config: Optional[TmuConfig] = None,
        reset_duration: int = 8,
        isr_latency: int = 5,
        seed: int = 0,
        use_regbus: bool = False,
        monitor_dram: bool = False,
        dram_tmu_config: Optional[TmuConfig] = None,
        sim_strategy: str = "dirty",
        sim_update_skipping: bool = True,
        sim_time_leaping: bool = True,
        sim_tracer=None,
        reorder_depth: int = 0,
    ) -> None:
        self.sim = Simulator(
            strategy=sim_strategy,
            update_skipping=sim_update_skipping,
            time_leaping=sim_time_leaping,
            tracer=sim_tracer,
        )
        config = tmu_config if tmu_config is not None else system_tmu_config()

        # Manager ports.
        self.cva6_buses = [AxiInterface(f"cva6_{i}") for i in range(2)]
        self.dma_bus = AxiInterface("idma")
        self.cva6 = [
            Manager(f"cva6_{i}", bus) for i, bus in enumerate(self.cva6_buses)
        ]
        self.dma = DmaEngine("idma", self.dma_bus)

        # Subordinate ports.
        self.dram_bus = AxiInterface("dram")
        self.bootrom_bus = AxiInterface("bootrom")
        self.eth_host_bus = AxiInterface("eth_host")   # crossbar side
        self.eth_dev_bus = AxiInterface("eth_dev")     # MAC side

        # Optional second monitor on the DRAM port — the paper's
        # mixed-criticality deployment (§IV): a Tiny-Counter suffices for
        # a high-capacity but non-critical endpoint.
        self.dram_tmu: Optional[TransactionMonitoringUnit] = None
        self.dram_reset_unit: Optional[ResetUnit] = None
        if monitor_dram:
            dram_dev_bus = AxiInterface("dram_dev")
            dram_cfg = (
                dram_tmu_config
                if dram_tmu_config is not None
                else system_tmu_config(Variant.TINY)
            )
            self.dram = Subordinate(
                "dram", dram_dev_bus, SparseMemory(), b_latency=4, r_latency=6,
                reorder_depth=reorder_depth,
            )
            self.dram_tmu = TransactionMonitoringUnit(
                "dram_tmu", self.dram_bus, dram_dev_bus, dram_cfg
            )
        else:
            self.dram = Subordinate(
                "dram", self.dram_bus, SparseMemory(), b_latency=4, r_latency=6,
                reorder_depth=reorder_depth,
            )
        self.bootrom = Subordinate(
            "bootrom", self.bootrom_bus, SparseMemory(), r_latency=2
        )
        self.ethernet = EthernetMac(
            "ethernet", self.eth_dev_bus, reorder_depth=reorder_depth
        )

        self.tmu = TransactionMonitoringUnit(
            "tmu", self.eth_host_bus, self.eth_dev_bus, config
        )
        self.tmu_regs = TmuRegisters(self.tmu)

        self.xbar = Crossbar(
            "xbar",
            [*self.cva6_buses, self.dma_bus],
            [
                (self.dram_bus, AddressRange(DRAM_BASE, DRAM_SIZE)),
                (self.bootrom_bus, AddressRange(BOOTROM_BASE, BOOTROM_SIZE)),
                (self.eth_host_bus, AddressRange(ETHERNET_BASE, ETHERNET_SIZE)),
            ],
        )

        self.reset_unit = ResetUnit(
            "reset_unit",
            self.tmu.reset_req,
            self.tmu.reset_ack,
            self.ethernet,
            reset_duration=reset_duration,
        )
        self.plic = Plic("plic")
        self.plic.connect(self.tmu.irq, "tmu")
        if self.dram_tmu is not None:
            self.dram_reset_unit = ResetUnit(
                "dram_reset_unit",
                self.dram_tmu.reset_req,
                self.dram_tmu.reset_ack,
                self.dram,
                reset_duration=reset_duration,
            )
            self.plic.connect(self.dram_tmu.irq, "dram_tmu")

        # Configuration path: direct register access by default, or the
        # Regbus demux of Fig. 10 when use_regbus is set.
        reg_map = {"tmu": self.tmu_regs}
        regbus_bases = {"tmu": 0x000}
        if self.dram_tmu is not None:
            reg_map["dram_tmu"] = TmuRegisters(self.dram_tmu)
            regbus_bases["dram_tmu"] = 0x100
        self.regbus_master: Optional[RegBusMaster] = None
        self.regbus_demux: Optional[RegBusDemux] = None
        if use_regbus:
            port = RegBusPort("regbus")
            self.regbus_master = RegBusMaster("regbus_master", port)
            targets = [
                (regbus_bases[name], 0x100, TmuRegbusAdapter(regs))
                for name, regs in reg_map.items()
            ]
            self.regbus_demux = RegBusDemux("regbus_demux", port, targets)
        self.cpu = RecoveryCpu(
            "cpu",
            self.plic,
            reg_map,
            isr_latency,
            regbus=self.regbus_master,
            regbus_bases=regbus_bases,
        )

        for component in (
            *self.cva6,
            self.dma,
            self.xbar,
            self.tmu,
            self.dram,
            self.bootrom,
            self.ethernet,
            self.reset_unit,
            self.plic,
            *((self.dram_tmu, self.dram_reset_unit) if monitor_dram else ()),
            *((self.regbus_master, self.regbus_demux) if use_regbus else ()),
            self.cpu,
        ):
            self.sim.add(component)

        self._traffic = RandomTraffic(
            ids=(0, 1), max_beats=8, addr_space=DRAM_SIZE, seed=seed
        )

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def send_ethernet_frame(
        self, beats: int = 250, txn_id: int = 0, size: int = 3
    ) -> None:
        """Queue the paper's 250-beat, 64-bit-bus Ethernet transfer.

        *size* narrows the DMA beats (AxSIZE < 3): same beat count, less
        data per beat — the frame still spans *beats* handshakes, so the
        TMU-observed transaction shape is preserved while the W channel
        exercises narrow byte lanes.
        """
        self.dma.enqueue_descriptor(
            DmaDescriptor(
                dst=ETHERNET_BASE + EthernetMac.TX_BUFFER_OFFSET,
                length_bytes=beats * bytes_per_beat(size),
                direction=AxiDir.WRITE,
                beat_size=size,
                txn_id=txn_id,
            )
        )

    def submit_background_traffic(self, count: int, manager: int = 0) -> None:
        """CVA6 cores exercising DRAM concurrently with Ethernet traffic."""
        for spec in self._traffic.take(count):
            spec.addr += DRAM_BASE
            self.cva6[manager].submit(spec)

    def submit_outstanding_reads(
        self,
        count: int,
        beats: int = 8,
        size: int = 3,
        manager: int = 1,
    ) -> None:
        """Stack *count* deterministic DRAM reads on one CVA6 core.

        Unlike :meth:`submit_background_traffic` (seeded random), these
        are fixed-shape reads at disjoint pages — the system campaign's
        ``outstanding`` axis, deepening the in-flight window behind the
        crossbar without perturbing the random traffic stream.
        """
        stride = 0x1000 * ((beats * bytes_per_beat(size) + 0xFFF) // 0x1000)
        for i in range(count):
            self.cva6[manager].submit(
                read_spec(
                    i % 2,
                    DRAM_BASE + 0x10_0000 + i * stride,
                    beats=beats,
                    size=size,
                )
            )

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    @property
    def managers(self) -> List[Manager]:
        return [*self.cva6, self.dma]

    @property
    def all_idle(self) -> bool:
        return all(manager.idle for manager in self.managers)

    def run(self, cycles: int) -> None:
        self.sim.run(cycles)

    def run_until_idle(self, timeout: int = 50_000) -> Optional[int]:
        return self.sim.run_until(lambda _sim: self.all_idle, timeout=timeout)
