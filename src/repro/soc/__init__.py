"""System-level substrate: the Cheshire-like SoC of the paper's Fig. 10."""

from .cheshire import (
    BOOTROM_BASE,
    DRAM_BASE,
    ETHERNET_BASE,
    SYSTEM_FC_BUDGETS,
    SYSTEM_TC_BUDGET,
    CheshireSoC,
    system_budget_policy,
    system_tmu_config,
)
from .cpu import RecoveryCpu, RecoveryRecord
from .dma import DmaDescriptor, DmaEngine
from .ethernet import EthernetMac
from .plic import Plic
from .reset_unit import ResetUnit

__all__ = [
    "BOOTROM_BASE",
    "CheshireSoC",
    "DRAM_BASE",
    "DmaDescriptor",
    "DmaEngine",
    "ETHERNET_BASE",
    "EthernetMac",
    "Plic",
    "RecoveryCpu",
    "RecoveryRecord",
    "ResetUnit",
    "SYSTEM_FC_BUDGETS",
    "SYSTEM_TC_BUDGET",
    "system_budget_policy",
    "system_tmu_config",
]

from .experiment import (  # noqa: E402 - appended exports
    FIG11_LABELS,
    FIG11_STAGES,
    SystemInjectionResult,
    run_fig11,
    run_system_injection,
)
from .regbus import (  # noqa: E402
    RegBusDemux,
    RegBusMaster,
    RegBusPort,
    RegRequest,
    RegResponse,
    TmuRegbusAdapter,
)

__all__ += [
    "FIG11_LABELS",
    "FIG11_STAGES",
    "RegBusDemux",
    "RegBusMaster",
    "RegBusPort",
    "RegRequest",
    "RegResponse",
    "SystemInjectionResult",
    "TmuRegbusAdapter",
    "run_fig11",
    "run_system_injection",
]
