"""External hardware reset unit (paper §II-B, ref. [6]).

On a TMU ``reset_req`` the unit holds the monitored subordinate in reset
for a configurable number of cycles, then acknowledges back to the TMU.
The handshake is four-phase: req↑ → (reset pulse) → ack↑ → req↓ → ack↓.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..axi.subordinate import Subordinate
from ..sim.component import Component
from ..sim.signal import Wire


class _ResetState(enum.Enum):
    IDLE = "idle"
    RESETTING = "resetting"
    ACK = "ack"


class ResetUnit(Component):
    """Drives a subordinate's hardware reset on TMU request.

    Parameters
    ----------
    req:
        The TMU's ``reset_req`` output wire.
    ack:
        The TMU's ``reset_ack`` input wire (this unit drives it).
    subordinate:
        The device whose ``hw_reset`` line this unit controls; may be
        ``None`` for IP-level setups where only the handshake matters.
    reset_duration:
        Cycles the reset line is held asserted.
    """

    demand_driven = True
    demand_update = True

    def __init__(
        self,
        name: str,
        req: Wire,
        ack: Wire,
        subordinate: Optional[Subordinate] = None,
        reset_duration: int = 4,
    ) -> None:
        super().__init__(name)
        if reset_duration <= 0:
            raise ValueError("reset_duration must be positive")
        self.req = req
        self.ack = ack
        self.subordinate = subordinate
        self.reset_duration = reset_duration
        self._state = _ResetState.IDLE
        self._countdown = 0
        self.resets_issued = 0
        self.reset_log: List[int] = []
        self._cycle = 0

    def wires(self):
        yield self.req
        yield self.ack
        if self.subordinate is not None:
            yield self.subordinate.hw_reset

    def inputs(self):
        # drive() is a pure function of the handshake FSM state; req is
        # only sampled in update(), which the req wire re-arms.
        return ()

    def update_inputs(self):
        return (self.req,)

    def quiescent(self):
        # Idle with no request pending: the FSM cannot move until req
        # rises.  RESETTING counts down and ACK watches for req falling,
        # so both stay awake.
        return self._state is _ResetState.IDLE and not self.req._value

    def snapshot_state(self):
        # _cycle (reset_log timestamps) is clock-derived and excluded.
        return (
            self._state,
            self._countdown,
            self.resets_issued,
            len(self.reset_log),
        )

    def outputs(self):
        if self.subordinate is not None:
            yield self.subordinate.hw_reset
        yield self.ack

    def drive(self) -> None:
        in_reset = self._state == _ResetState.RESETTING
        if self.subordinate is not None:
            self.subordinate.hw_reset.value = in_reset
        self.ack.value = self._state == _ResetState.ACK

    def update(self) -> None:
        sim = self._sim
        self._cycle = sim.cycle + 1 if sim is not None else self._cycle + 1
        if self._state == _ResetState.IDLE:
            if self.req.value:
                self._state = _ResetState.RESETTING
                self._countdown = self.reset_duration
                self.resets_issued += 1
                self.reset_log.append(self._cycle)
                self.schedule_drive()
        elif self._state == _ResetState.RESETTING:
            self._countdown -= 1
            if self._countdown <= 0:
                self._state = _ResetState.ACK
                self.schedule_drive()
        elif self._state == _ResetState.ACK:
            if not self.req.value:
                self._state = _ResetState.IDLE
                self.schedule_drive()

    def reset(self) -> None:
        self._state = _ResetState.IDLE
        self._countdown = 0
        self.resets_issued = 0
        self.reset_log.clear()
        self._cycle = 0
        self.schedule_drive()
        self.schedule_update()
