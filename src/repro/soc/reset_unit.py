"""External hardware reset unit (paper §II-B, ref. [6]).

On a TMU ``reset_req`` the unit holds the monitored subordinate in reset
for a configurable number of cycles, then acknowledges back to the TMU.
The handshake is four-phase: req↑ → (reset pulse) → ack↑ → req↓ → ack↓.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..axi.subordinate import Subordinate
from ..sim.component import Component
from ..sim.signal import Wire


class _ResetState(enum.Enum):
    IDLE = "idle"
    RESETTING = "resetting"
    ACK = "ack"


class ResetUnit(Component):
    """Drives a subordinate's hardware reset on TMU request.

    Parameters
    ----------
    req:
        The TMU's ``reset_req`` output wire.
    ack:
        The TMU's ``reset_ack`` input wire (this unit drives it).
    subordinate:
        The device whose ``hw_reset`` line this unit controls; may be
        ``None`` for IP-level setups where only the handshake matters.
    reset_duration:
        Cycles the reset line is held asserted.
    """

    demand_driven = True
    demand_update = True
    #: The reset pulse counts down from the request edge — reactive.
    phase_period = 1

    def __init__(
        self,
        name: str,
        req: Wire,
        ack: Wire,
        subordinate: Optional[Subordinate] = None,
        reset_duration: int = 4,
    ) -> None:
        super().__init__(name)
        if reset_duration <= 0:
            raise ValueError("reset_duration must be positive")
        self.req = req
        self.ack = ack
        self.subordinate = subordinate
        self.reset_duration = reset_duration
        self._state = _ResetState.IDLE
        self._countdown = 0
        self.resets_issued = 0
        self.reset_log: List[int] = []
        self._cycle = 0

    def wires(self):
        yield self.req
        yield self.ack
        if self.subordinate is not None:
            yield self.subordinate.hw_reset

    def inputs(self):
        # drive() is a pure function of the handshake FSM state; req is
        # only sampled in update(), which the req wire re-arms.
        return ()

    def update_inputs(self):
        return (self.req,)

    def quiescent(self):
        # IDLE sleeps until req rises and ACK until it falls (both
        # watched); RESETTING is a pure delay line — sleep under a
        # timed wake at the cycle the countdown reaches zero (the
        # update that flips the FSM to ACK and raises the ack wire
        # next settle).
        if self._state is _ResetState.IDLE:
            return not self.req._value
        if self._state is _ResetState.ACK:
            return self.req._value
        if self._countdown > 0 and self._sim is not None:
            self.wake_at(self._sim.cycle + self._countdown)
        return True

    def snapshot_state(self):
        # _cycle (reset_log timestamps) and the elapsed-ticked delay
        # line are clock-derived and excluded; the FSM transitions the
        # countdown produces are what verify must observe.
        return (
            self._state,
            self.resets_issued,
            len(self.reset_log),
        )

    def outputs(self):
        if self.subordinate is not None:
            yield self.subordinate.hw_reset
        yield self.ack

    def drive(self) -> None:
        in_reset = self._state == _ResetState.RESETTING
        if self.subordinate is not None:
            self.subordinate.hw_reset.value = in_reset
        self.ack.value = self._state == _ResetState.ACK

    def update(self) -> None:
        sim = self._sim
        now = sim.cycle + 1 if sim is not None else self._cycle + 1
        elapsed = now - self._cycle
        self._cycle = now
        if self._state == _ResetState.IDLE:
            if self.req.value:
                self._state = _ResetState.RESETTING
                self._countdown = self.reset_duration
                self.resets_issued += 1
                self.reset_log.append(self._cycle)
                self.schedule_drive()
        elif self._state == _ResetState.RESETTING:
            # Pure delay line: a slept span's ticks land here at once
            # (the timed wake guarantees elapsed never overshoots the
            # zero crossing by more than the current cycle).
            self._countdown -= min(self._countdown, elapsed)
            if self._countdown <= 0:
                self._state = _ResetState.ACK
                self.schedule_drive()
        elif self._state == _ResetState.ACK:
            if not self.req.value:
                self._state = _ResetState.IDLE
                self.schedule_drive()

    def reset(self) -> None:
        self._state = _ResetState.IDLE
        self._countdown = 0
        self.resets_issued = 0
        self.reset_log.clear()
        self._cycle = 0
        self.cancel_wake()
        self.schedule_drive()
        self.schedule_update()
