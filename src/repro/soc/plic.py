"""PLIC-like platform interrupt collector (paper Fig. 10).

Latches level interrupts from source wires (the TMU's ``irq`` among
them) into pending bits that a hart claims and completes — the shape of
the RISC-V PLIC claim/complete flow, reduced to what the recovery
software model needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.component import Component
from ..sim.signal import Wire


class Plic(Component):
    """Level-sensitive interrupt collector with claim/complete."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._sources: List[Wire] = []
        self._names: List[str] = []
        self._pending: List[bool] = []
        self._claimed: List[bool] = []
        self.irq_counts: Dict[str, int] = {}

    def connect(self, source: Wire, name: str) -> int:
        """Register an interrupt source; returns its source ID."""
        self._sources.append(source)
        self._names.append(name)
        self._pending.append(False)
        self._claimed.append(False)
        self.irq_counts[name] = 0
        return len(self._sources) - 1

    def wires(self):
        yield from self._sources

    def update(self) -> None:
        for i, source in enumerate(self._sources):
            if source.value and not self._pending[i] and not self._claimed[i]:
                self._pending[i] = True
                self.irq_counts[self._names[i]] += 1

    # ------------------------------------------------------------------
    # Hart-facing API
    # ------------------------------------------------------------------
    def claim(self) -> Optional[int]:
        """Claim the highest-priority (lowest-ID) pending interrupt."""
        for i, pending in enumerate(self._pending):
            if pending:
                self._pending[i] = False
                self._claimed[i] = True
                return i
        return None

    def complete(self, source_id: int) -> None:
        """Signal end of handling; the source may re-raise afterwards."""
        if not 0 <= source_id < len(self._claimed):
            raise ValueError(f"unknown interrupt source {source_id}")
        self._claimed[source_id] = False

    def source_name(self, source_id: int) -> str:
        return self._names[source_id]

    @property
    def any_pending(self) -> bool:
        return any(self._pending)

    def reset(self) -> None:
        self._pending = [False] * len(self._sources)
        self._claimed = [False] * len(self._sources)
        for name in self.irq_counts:
            self.irq_counts[name] = 0
