"""PLIC-like platform interrupt collector (paper Fig. 10).

Latches level interrupts from source wires (the TMU's ``irq`` among
them) into pending bits that a hart claims and completes — the shape of
the RISC-V PLIC claim/complete flow, reduced to what the recovery
software model needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.component import Component
from ..sim.signal import Wire


class Plic(Component):
    """Level-sensitive interrupt collector with claim/complete.

    Update-quiescent: latching happens only while some source is high
    and neither pending nor claimed, so an idle (or fully serviced)
    interrupt fabric costs the update phase nothing.  Sources must be
    connected *before* the PLIC is registered with a simulator — the
    wake list is declared at registration time.
    """

    demand_update = True
    #: Latches levels and claims — no autonomous clocked behaviour.
    phase_period = 1

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._sources: List[Wire] = []
        self._names: List[str] = []
        self._pending: List[bool] = []
        self._claimed: List[bool] = []
        self.irq_counts: Dict[str, int] = {}

    def connect(self, source: Wire, name: str) -> int:
        """Register an interrupt source; returns its source ID."""
        if self._sim is not None:
            # The wake list (update_inputs) was captured when the PLIC —
            # and any hart polling it — registered with the simulator; a
            # late source would never wake the quiescent PLIC and its
            # interrupts would be silently dropped.  Fail fast instead.
            raise RuntimeError(
                f"{self.name}: connect() after simulator registration would "
                "miss the update-wake plumbing; connect every source before "
                "sim.add()"
            )
        self._sources.append(source)
        self._names.append(name)
        self._pending.append(False)
        self._claimed.append(False)
        self.irq_counts[name] = 0
        self.schedule_update()
        return len(self._sources) - 1

    @property
    def sources(self) -> List[Wire]:
        """The connected interrupt source wires, in source-ID order."""
        return list(self._sources)

    def wires(self):
        yield from self._sources

    def update_inputs(self):
        return self._sources

    def quiescent(self):
        # No latch can fire: every high source is already pending or
        # claimed.  complete() re-arms (the level may re-latch).
        return not any(
            source._value and not pending and not claimed
            for source, pending, claimed in zip(
                self._sources, self._pending, self._claimed
            )
        )

    def snapshot_state(self):
        return (
            tuple(self._pending),
            tuple(self._claimed),
            tuple(sorted(self.irq_counts.items())),
        )

    def update(self) -> None:
        for i, source in enumerate(self._sources):
            if source.value and not self._pending[i] and not self._claimed[i]:
                self._pending[i] = True
                self.irq_counts[self._names[i]] += 1

    # ------------------------------------------------------------------
    # Hart-facing API
    # ------------------------------------------------------------------
    def claim(self) -> Optional[int]:
        """Claim the highest-priority (lowest-ID) pending interrupt."""
        for i, pending in enumerate(self._pending):
            if pending:
                self._pending[i] = False
                self._claimed[i] = True
                return i
        return None

    def complete(self, source_id: int) -> None:
        """Signal end of handling; the source may re-raise afterwards."""
        if not 0 <= source_id < len(self._claimed):
            raise ValueError(f"unknown interrupt source {source_id}")
        self._claimed[source_id] = False
        # A still-high level source re-latches on the next update.
        self.schedule_update()

    def source_name(self, source_id: int) -> str:
        return self._names[source_id]

    @property
    def any_pending(self) -> bool:
        return any(self._pending)

    def reset(self) -> None:
        self._pending = [False] * len(self._sources)
        self._claimed = [False] * len(self._sources)
        for name in self.irq_counts:
            self.irq_counts[name] = 0
        self.schedule_update()
