"""System-level fault-injection experiment (paper §III-B, Fig. 11).

Runs the paper's Ethernet scenario on the Cheshire model: a 250-beat
write on a 64-bit bus, with a fault injected at the beginning, middle or
end of the transaction.  The Tiny-Counter uses a single 320-cycle budget
for the whole transaction; the Full-Counter uses the per-phase budgets
(10 for AW, 250 for W, etc.), so it detects early faults near-immediately
while Tc always reports at the end of the full budget.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..faults.types import InjectionStage
from ..tmu.config import Variant
from .cheshire import CheshireSoC, system_tmu_config

#: The six write-direction stages of Fig. 11, in the figure's order.
FIG11_STAGES = (
    InjectionStage.AW_READY_MISSING,    # AWVLD_AWRDY
    InjectionStage.W_VALID_MISSING,     # AWRDY_WVLD
    InjectionStage.W_READY_MISSING,     # WVLD_WRDY (WFIRST)
    InjectionStage.DATA_TRANSFER_STALL, # WFIRST_WLAST
    InjectionStage.WLAST_TO_BVALID,     # WLAST_BVLD
    InjectionStage.B_READY_MISSING,     # BVLD_BRDY
)

#: Fig. 11 x-axis labels for the six stages.
FIG11_LABELS = (
    "AWVLD_AWRDY",
    "AWRDY_WVLD",
    "WVLD_WRDY(WFIRST)",
    "WFIRST_WLAST",
    "WLAST_BVLD",
    "BVLD_BRDY",
)


@dataclasses.dataclass
class SystemInjectionResult:
    """Outcome of one system-level injection."""

    stage: InjectionStage
    variant: str
    txn_start_cycle: Optional[int]
    inject_cycle: Optional[int]
    w_first_cycle: Optional[int]
    detect_cycle: Optional[int]
    fault_phase: Optional[str]
    fault_kind: Optional[str]
    ethernet_resets: int
    cpu_recoveries: int
    recovered: bool
    #: Kernel fast-forward diagnostics (``compare=False``: equality —
    #: and the leap-on ≡ leap-off differentials built on it — stays
    #: about measurements, not about how the kernel scheduled them).
    sim_leaps: int = dataclasses.field(default=0, compare=False)
    sim_cycles_leaped: int = dataclasses.field(default=0, compare=False)

    def shifted(self, delta: int) -> "SystemInjectionResult":
        """This result translated *delta* cycles later in time.

        Used by the lockstep batch executor to derive a follower
        lane's result from its pack leader's: measured cycle stamps
        move rigidly with ``start_delay``, counts and flags are
        shift-invariant, and the leader's single pre-onset leap grows
        by *delta*.
        """
        from ..sim.batch import shift_cycles

        txn_start, inject, w_first, detect = shift_cycles(
            (
                self.txn_start_cycle,
                self.inject_cycle,
                self.w_first_cycle,
                self.detect_cycle,
            ),
            delta,
        )
        return dataclasses.replace(
            self,
            txn_start_cycle=txn_start,
            inject_cycle=inject,
            w_first_cycle=w_first,
            detect_cycle=detect,
            sim_cycles_leaped=self.sim_cycles_leaped + delta,
        )

    @property
    def detected(self) -> bool:
        return self.detect_cycle is not None

    @property
    def latency_from_injection(self) -> Optional[int]:
        if self.detect_cycle is None or self.inject_cycle is None:
            return None
        return self.detect_cycle - self.inject_cycle

    @property
    def latency_from_start(self) -> Optional[int]:
        if self.detect_cycle is None or self.txn_start_cycle is None:
            return None
        return self.detect_cycle - self.txn_start_cycle

    @property
    def fig11_latency(self) -> Optional[int]:
        """Latency in Fig. 11's convention.

        The figure quotes the Full-Counter bar for the ``WFIRST_WLAST``
        stage as the full W-phase budget (250), i.e. measured from the
        phase start (the first W beat) rather than from the mid-burst
        injection point; all other stages coincide with
        ``latency_from_injection``.
        """
        if self.detect_cycle is None:
            return None
        if (
            self.stage == InjectionStage.DATA_TRANSFER_STALL
            and self.w_first_cycle is not None
        ):
            return self.detect_cycle - self.w_first_cycle
        return self.latency_from_injection


def run_system_injection(
    variant: Variant,
    stage: InjectionStage,
    beats: int = 250,
    background: int = 0,
    detect_timeout: int = 20_000,
    recovery_timeout: int = 5_000,
    start_delay: int = 0,
    sim_strategy: str = "dirty",
    sim_update_skipping: bool = True,
    sim_time_leaping: bool = True,
    sim_tracer=None,
    trace=None,
    size: int = 3,
    outstanding: int = 1,
    reorder_depth: int = 0,
) -> SystemInjectionResult:
    """One Fig. 11 data point: inject *stage* during the Ethernet frame.

    *start_delay* idles the SoC for that many cycles before the frame is
    queued — campaign seeds map here, shifting the transaction (and the
    injection) relative to the TMU's prescaler phase.  *sim_strategy*
    selects the kernel (``dirty``/``exhaustive``/``verify``),
    *sim_update_skipping* the quiescence ablation and *sim_time_leaping*
    the clock-fast-forward ablation, so differential tests and
    benchmarks can replay the identical campaign on the reference
    kernels.

    The dark-corner axes: *size* narrows the frame's beats (AxSIZE < 3
    on the 64-bit bus), *outstanding* stacks that many extra
    deterministic DRAM reads behind the crossbar, and *reorder_depth*
    lets the DRAM and Ethernet subordinates complete responses out of
    request order within that window.  All default to the legacy Fig. 11
    shape.

    The detection and recovery loops run through ``run_until`` with a
    stateful watcher: its bookkeeping only moves on handshake fires and
    wire levels, which are frozen across any span the kernel leaps, so
    the campaign output is byte-identical with leaping on or off.
    """
    # Imported here: repro.faults.campaign builds IP harnesses with the
    # reset unit from this package, so a module-level import would cycle.
    from ..faults.campaign import apply_stage_fault

    soc = CheshireSoC(
        system_tmu_config(variant, frame_beats=beats),
        sim_strategy=sim_strategy,
        sim_update_skipping=sim_update_skipping,
        sim_time_leaping=sim_time_leaping,
        sim_tracer=sim_tracer,
        reorder_depth=reorder_depth,
    )
    if trace is not None:
        # Batch pack leaders register a LeapTrace here, before the
        # start-delay idle span runs, to collect inert-prefix evidence.
        soc.sim.add_probe(trace)
    if start_delay:
        soc.sim.run(start_delay)
    soc.send_ethernet_frame(beats, size=size)
    if background:
        soc.submit_background_traffic(background)
    if outstanding > 1:
        soc.submit_outstanding_reads(outstanding - 1)

    deferred_threshold = None
    if stage == InjectionStage.DATA_TRANSFER_STALL:
        deferred_threshold = beats // 2
    elif stage == InjectionStage.R_MID_BURST_STALL:
        deferred_threshold = beats // 2
    else:
        apply_stage_fault(
            soc.ethernet.faults,
            soc.dma.faults,
            soc.tmu.config.max_uniq_ids + 1,
            stage,
        )

    txn_start: Optional[int] = None
    inject_cycle: Optional[int] = None
    w_first_cycle: Optional[int] = None
    w_beats = 0
    wlast_seen = False
    observed_cycle = -1

    def detect_tick(_sim) -> bool:
        # May be consulted more than once per cycle (once pre-leap);
        # the cycle guard keeps the fired-beat counting idempotent.
        nonlocal txn_start, inject_cycle, w_first_cycle
        nonlocal w_beats, wlast_seen, observed_cycle, deferred_threshold
        if soc.sim.cycle != observed_cycle:
            observed_cycle = soc.sim.cycle
            dev = soc.eth_dev_bus
            if txn_start is None and soc.eth_host_bus.aw.valid.value:
                txn_start = soc.sim.cycle
            if dev.w.fired():
                if w_first_cycle is None:
                    w_first_cycle = soc.sim.cycle
                w_beats += 1
                beat = dev.w.payload.value
                if beat is not None and beat.last:
                    wlast_seen = True
            if (
                deferred_threshold is not None
                and inject_cycle is None
                and w_beats >= deferred_threshold
            ):
                apply_stage_fault(
                    soc.ethernet.faults,
                    soc.dma.faults,
                    soc.tmu.config.max_uniq_ids + 1,
                    stage,
                )
                inject_cycle = soc.sim.cycle
                deferred_threshold = None
            if inject_cycle is None and _manifested(soc, stage, wlast_seen):
                inject_cycle = soc.sim.cycle
        return bool(soc.tmu.irq.value)

    detect_cycle = soc.sim.run_until(detect_tick, timeout=detect_timeout)

    fault = soc.tmu.last_fault
    recovered = False
    if detect_cycle is not None:
        soc.dma.faults.clear()  # software recovery clears the manager fault
        recovered = (
            soc.sim.run_until(
                lambda _sim: (
                    soc.all_idle
                    and soc.tmu.state.value == "monitor"
                    and not soc.tmu.irq.value
                    and bool(soc.cpu.recoveries)
                ),
                timeout=recovery_timeout,
            )
            is not None
        )

    return SystemInjectionResult(
        stage=stage,
        variant=variant.value,
        txn_start_cycle=txn_start,
        inject_cycle=inject_cycle,
        w_first_cycle=w_first_cycle,
        detect_cycle=detect_cycle,
        fault_phase=fault.phase_label if fault else None,
        fault_kind=fault.kind.value if fault else None,
        ethernet_resets=soc.ethernet.resets_taken,
        cpu_recoveries=len(soc.cpu.recoveries),
        recovered=recovered,
        **{
            f"sim_{key}": value
            for key, value in soc.sim.stats().items()
            if key in type(soc.sim).STAT_KEYS
        },
    )


def _manifested(soc: CheshireSoC, stage: InjectionStage, wlast_seen: bool) -> bool:
    dev = soc.eth_dev_bus
    if stage == InjectionStage.AW_READY_MISSING:
        return bool(dev.aw.valid.value)
    if stage == InjectionStage.W_VALID_MISSING:
        return bool(dev.aw.fired()) or bool(soc.tmu.write_guard.ott.occupancy)
    if stage == InjectionStage.W_READY_MISSING:
        return bool(dev.w.valid.value)
    if stage == InjectionStage.WLAST_TO_BVALID:
        return wlast_seen
    if stage in (InjectionStage.B_ID_MISMATCH, InjectionStage.B_READY_MISSING):
        return bool(dev.b.valid.value)
    if stage == InjectionStage.AR_READY_MISSING:
        return bool(dev.ar.valid.value)
    if stage == InjectionStage.R_VALID_MISSING:
        return bool(dev.ar.fired()) or bool(soc.tmu.read_guard.ott.occupancy)
    if stage in (
        InjectionStage.R_ID_MISMATCH,
        InjectionStage.R_LAST_DROPPED,
        InjectionStage.R_READY_MISSING,
    ):
        return bool(dev.r.valid.value)
    return False


def run_fig11(
    beats: int = 250,
    background: int = 0,
    workers: Optional[int] = None,
    shard_size: int = 1,
    cache_dir=None,
    progress=None,
    executor=None,
    seeds=(0,),
    batch_lanes: Optional[int] = None,
    batch_verify: bool = False,
    metrics=None,
    store=None,
    size: int = 3,
    outstanding: int = 1,
    reorder_depth: int = 0,
) -> Dict[str, List[SystemInjectionResult]]:
    """All Fig. 11 series: both variants across the six write stages.

    The sweep runs through the orchestration engine
    (:mod:`repro.orchestrate`): *workers* > 1 shards the runs across a
    process pool (each worker builds its own :class:`CheshireSoC`; an
    explicit *executor* — e.g. a
    :class:`~repro.orchestrate.distributed.DistributedExecutor` serving
    remote workers — overrides the choice), *batch_lanes* routes the
    sweep through the lockstep batch executor
    (:class:`~repro.orchestrate.batch.BatchExecutor`; *batch_verify*
    replays every derived lane on the scalar verify kernel), *cache_dir*
    lets
    re-runs skip completed shards, *store* (a
    :class:`~repro.orchestrate.store.ResultStore` or a path) adds
    run-granular reuse — a wider seed sweep simulates only the frontier
    — and the aggregated series are identical to the serial ones
    whatever the executor.

    *seeds* sweeps each (variant, stage) point over start-delay phase
    offsets; each variant's series is stage-major, then seed (length
    ``len(FIG11_STAGES) * len(seeds)``).
    """
    from ..orchestrate import CampaignSpec, run_campaign_spec

    variants = (Variant.FULL, Variant.TINY)
    spec = CampaignSpec.system(
        variants,
        FIG11_STAGES,
        beats=beats,
        seeds=seeds,
        background=background,
        size=size,
        outstanding=outstanding,
        reorder_depth=reorder_depth,
    )
    flat = run_campaign_spec(
        spec,
        workers=workers,
        shard_size=shard_size,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        batch_lanes=batch_lanes,
        batch_verify=batch_verify,
        metrics=metrics,
        store=store,
    )
    stride = len(FIG11_STAGES) * len(spec.seeds)
    return {
        variant.value: flat[i * stride : (i + 1) * stride]
        for i, variant in enumerate(variants)
    }
