"""Register bus: the lightweight configuration interconnect of Fig. 10.

Cheshire exposes peripheral configuration registers through a *Regbus*
demultiplexer.  This module models that path so recovery software can
reach the TMU's register file the way a real driver would — through an
addressed bus transaction with a ready/error handshake — instead of
calling Python methods directly.

The bus is deliberately simple (single outstanding request, combinational
grant, registered response) which matches the real Regbus protocol's
spirit: low-cost, low-throughput configuration access.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..sim.component import Component
from ..sim.signal import Wire
from ..tmu.registers import TmuRegisters


@dataclasses.dataclass(frozen=True)
class RegRequest:
    """One register-bus request."""

    addr: int
    write: bool = False
    wdata: int = 0


@dataclasses.dataclass(frozen=True)
class RegResponse:
    """One register-bus response."""

    rdata: int = 0
    error: bool = False


class RegBusPort:
    """Wire bundle for one register-bus link."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.req_valid = Wire(f"{name}.req_valid", False)
        self.req = Wire(f"{name}.req", None, width=64)
        self.rsp_valid = Wire(f"{name}.rsp_valid", False)
        self.rsp = Wire(f"{name}.rsp", None, width=64)

    def wires(self):
        yield self.req_valid
        yield self.req
        yield self.rsp_valid
        yield self.rsp


class RegBusTarget:
    """Interface every register-bus endpoint implements."""

    def reg_read(self, offset: int) -> int:
        raise NotImplementedError

    def reg_write(self, offset: int, value: int) -> None:
        raise NotImplementedError


class TmuRegbusAdapter(RegBusTarget):
    """Exposes a :class:`TmuRegisters` file as a register-bus target."""

    def __init__(self, registers: TmuRegisters) -> None:
        self.registers = registers

    def reg_read(self, offset: int) -> int:
        return self.registers.read(offset)

    def reg_write(self, offset: int, value: int) -> None:
        self.registers.write(offset, value)


class RegBusDemux(Component):
    """Address-decoded register-bus demultiplexer (one cycle per access).

    Unmapped addresses or endpoint exceptions return an error response,
    mirroring the real Regbus's error signal.
    """

    demand_driven = True
    demand_update = True
    phase_period = 1

    def __init__(
        self,
        name: str,
        port: RegBusPort,
        targets: List[Tuple[int, int, RegBusTarget]],
    ) -> None:
        super().__init__(name)
        self.port = port
        self.targets = list(targets)  # (base, size, target)
        self._pending: Optional[RegResponse] = None
        self.accesses = 0
        self.errors = 0

    def wires(self):
        yield from self.port.wires()

    def inputs(self):
        # drive() publishes the registered response; the request wires
        # are sampled in update() only.
        return ()

    def outputs(self):
        return (self.port.rsp_valid, self.port.rsp)

    def update_inputs(self):
        return (self.port.req_valid, self.port.req)

    def quiescent(self):
        return self._pending is None and not self.port.req_valid._value

    def snapshot_state(self):
        return (self._pending, self.accesses, self.errors)

    def _decode(self, addr: int) -> Optional[Tuple[int, RegBusTarget]]:
        for base, size, target in self.targets:
            if base <= addr < base + size:
                return addr - base, target
        return None

    def drive(self) -> None:
        if self._pending is not None:
            self.port.rsp_valid.value = True
            self.port.rsp.value = self._pending
        else:
            self.port.rsp_valid.value = False
            self.port.rsp.value = None

    def update(self) -> None:
        # Response consumed (single-outstanding: requester must sample it).
        if self._pending is not None:
            self._pending = None
            self.schedule_drive()
            return
        if not self.port.req_valid.value:
            return
        request: RegRequest = self.port.req.value
        if request is None:
            return
        self.accesses += 1
        decoded = self._decode(request.addr)
        if decoded is None:
            self.errors += 1
            self._pending = RegResponse(error=True)
            self.schedule_drive()
            return
        offset, target = decoded
        try:
            if request.write:
                target.reg_write(offset, request.wdata)
                self._pending = RegResponse()
            else:
                self._pending = RegResponse(rdata=target.reg_read(offset))
        except KeyError:
            self.errors += 1
            self._pending = RegResponse(error=True)
        self.schedule_drive()

    def reset(self) -> None:
        self._pending = None
        self.accesses = 0
        self.errors = 0
        self.schedule_drive()
        self.schedule_update()


class RegBusMaster(Component):
    """Blocking register-bus requester with a scripted access queue.

    Software models push (request, callback) pairs; the master issues
    them one at a time and invokes the callback with the response.
    """

    demand_driven = True
    demand_update = True
    phase_period = 1

    def __init__(self, name: str, port: RegBusPort) -> None:
        super().__init__(name)
        self.port = port
        self._queue: List[Tuple[RegRequest, Optional[callable]]] = []
        self._inflight: Optional[Tuple[RegRequest, Optional[callable]]] = None
        self.responses: List[RegResponse] = []

    def wires(self):
        yield from self.port.wires()

    def inputs(self):
        return (self.port.rsp_valid,)

    def outputs(self):
        return (self.port.req_valid, self.port.req)

    def update_inputs(self):
        return (self.port.rsp_valid, self.port.rsp)

    def quiescent(self):
        return self._inflight is None and not self._queue

    def snapshot_state(self):
        return (len(self._queue), self._inflight is None, len(self.responses))

    def submit(self, request: RegRequest, callback=None) -> None:
        self._queue.append((request, callback))
        self.schedule_update()

    def read(self, addr: int, callback=None) -> None:
        self.submit(RegRequest(addr=addr, write=False), callback)

    def write(self, addr: int, value: int, callback=None) -> None:
        self.submit(RegRequest(addr=addr, write=True, wdata=value), callback)

    @property
    def idle(self) -> bool:
        return self._inflight is None and not self._queue

    def drive(self) -> None:
        # drive() must be idempotent: issue selection happens in update().
        if self._inflight is not None and not self.port.rsp_valid.value:
            self.port.req_valid.value = True
            self.port.req.value = self._inflight[0]
        else:
            self.port.req_valid.value = False
            self.port.req.value = None

    def update(self) -> None:
        changed = False
        if self._inflight is not None and self.port.rsp_valid.value:
            response: RegResponse = self.port.rsp.value
            self.responses.append(response)
            callback = self._inflight[1]
            self._inflight = None
            changed = True
            if callback is not None:
                callback(response)
        if self._inflight is None and self._queue:
            self._inflight = self._queue.pop(0)
            changed = True
        if changed:
            self.schedule_drive()

    def reset(self) -> None:
        self._queue.clear()
        self._inflight = None
        self.responses.clear()
        self.schedule_drive()
        self.schedule_update()
