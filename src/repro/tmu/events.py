"""Fault and error event records produced by the TMU.

Every detected anomaly becomes a :class:`FaultEvent` appended to the
guard's error log (the paper's "detailed error logs for performance and
bottleneck analysis").  Events carry enough context — direction, phase,
transaction metadata, detection cycle — for the benches to compute
detection latencies exactly as Figs. 9 and 11 report them.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Union

from ..axi.types import AxiDir
from .phases import ReadPhase, TxnSpan, WritePhase

PhaseLike = Union[WritePhase, ReadPhase, TxnSpan]


class FaultKind(enum.Enum):
    """Classes of anomaly the TMU distinguishes."""

    TIMEOUT = "timeout"
    HANDSHAKE_VIOLATION = "handshake_violation"
    ID_MISMATCH = "id_mismatch"
    UNREQUESTED_RESPONSE = "unrequested_response"
    WRONG_LAST = "wrong_last"
    ERROR_RESPONSE = "error_response"


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One detected fault, as recorded in the TMU error log."""

    kind: FaultKind
    direction: AxiDir
    phase: Optional[PhaseLike]
    detect_cycle: int
    txn_id: Optional[int] = None
    orig_id: Optional[int] = None
    addr: Optional[int] = None
    detail: str = ""

    @property
    def phase_label(self) -> str:
        return self.phase.label if self.phase is not None else "-"

    def __str__(self) -> str:  # pragma: no cover - human-readable log line
        where = f"id={self.txn_id}" if self.txn_id is not None else "front"
        return (
            f"[cycle {self.detect_cycle}] {self.kind.value} "
            f"{self.direction.value} phase={self.phase_label} {where} "
            f"{self.detail}".rstrip()
        )


class ErrorLog:
    """Bounded FIFO of fault events (hardware error-log model)."""

    def __init__(self, depth: int = 32) -> None:
        self.depth = depth
        self._events: List[FaultEvent] = []
        self.dropped = 0

    def push(self, event: FaultEvent) -> None:
        if len(self._events) >= self.depth:
            self.dropped += 1
            return
        self._events.append(event)

    def pop(self) -> Optional[FaultEvent]:
        if not self._events:
            return None
        return self._events.pop(0)

    def peek_all(self) -> List[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
