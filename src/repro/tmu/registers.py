"""Software-visible TMU register file (paper §II-A).

"A set of software-configurable registers enables or disables the TMU
and adjusts parameters such as time budgets, latency statistics,
interrupt behavior, and error logging."  This module models that
interface as a word-addressed register map so system-level software
(the CPU model in the Cheshire integration) can configure and service
the TMU exactly as a driver would.
"""

from __future__ import annotations

from typing import Dict

from .events import FaultKind
from .unit import TransactionMonitoringUnit

# Register offsets (byte addresses, word-aligned).
REG_CTRL = 0x00          # bit0: enable
REG_STATUS = 0x04        # bit0: irq pending, bit1: fault active (severed)
REG_IRQ_CLEAR = 0x08     # write 1 to clear the interrupt
REG_FAULT_KIND = 0x0C    # enum index of the most recent fault
REG_FAULT_ID = 0x10      # original AXI ID of the most recent fault
REG_PRESCALE = 0x14      # prescaler step (read-only mirror)
REG_SPAN_BASE = 0x18     # Tc span budget base (RW)
REG_SPAN_PER_BEAT = 0x1C  # Tc span budget per-beat term (RW)
REG_ERRLOG_COUNT = 0x20  # pending error-log entries
REG_ERRLOG_POP = 0x24    # read pops one entry, returns its kind index
REG_WR_COMPLETED = 0x28  # completed write transactions
REG_RD_COMPLETED = 0x2C  # completed read transactions
REG_WR_LAT_MAX = 0x30    # worst observed write latency
REG_RD_LAT_MAX = 0x34    # worst observed read latency
REG_FAULT_COUNT = 0x38   # fault episodes handled
REG_OCCUPANCY = 0x3C     # current OTT occupancy (write<<8 | read)
REG_WR_PHASE_MEAN = 0x40  # 6 words: mean latency per write phase (Fig. 4)
REG_RD_PHASE_MEAN = 0x60  # 4 words: mean latency per read phase (Fig. 5)
REG_WR_LAT_P99 = 0x78    # 99th-percentile write latency (histogram bucket)
REG_RD_LAT_P99 = 0x7C    # 99th-percentile read latency

_FAULT_KIND_INDEX = {kind: i + 1 for i, kind in enumerate(FaultKind)}


class TmuRegisters:
    """Word-addressed software window onto one TMU instance."""

    def __init__(self, tmu: TransactionMonitoringUnit) -> None:
        self.tmu = tmu

    # ------------------------------------------------------------------
    # Bus-facing API
    # ------------------------------------------------------------------
    def read(self, offset: int) -> int:
        tmu = self.tmu
        if offset == REG_CTRL:
            return int(tmu.config.enabled)
        if offset == REG_STATUS:
            return int(tmu.irq_pending) | (int(tmu.fault_active) << 1)
        if offset == REG_FAULT_KIND:
            fault = tmu.last_fault
            return _FAULT_KIND_INDEX[fault.kind] if fault else 0
        if offset == REG_FAULT_ID:
            fault = tmu.last_fault
            if fault is None or fault.orig_id is None:
                return 0
            return fault.orig_id
        if offset == REG_PRESCALE:
            return tmu.config.prescale_step
        if offset == REG_SPAN_BASE:
            return tmu.config.budgets.span.base
        if offset == REG_SPAN_PER_BEAT:
            return tmu.config.budgets.span.per_beat
        if offset == REG_ERRLOG_COUNT:
            return len(tmu.write_guard.log) + len(tmu.read_guard.log)
        if offset == REG_ERRLOG_POP:
            event = tmu.write_guard.log.pop() or tmu.read_guard.log.pop()
            return _FAULT_KIND_INDEX[event.kind] if event else 0
        if offset == REG_WR_COMPLETED:
            return tmu.write_guard.perf.completed
        if offset == REG_RD_COMPLETED:
            return tmu.read_guard.perf.completed
        if offset == REG_WR_LAT_MAX:
            return tmu.write_guard.perf.txn_latency.maximum or 0
        if offset == REG_RD_LAT_MAX:
            return tmu.read_guard.perf.txn_latency.maximum or 0
        if offset == REG_FAULT_COUNT:
            return tmu.faults_handled
        if offset == REG_OCCUPANCY:
            return (tmu.write_guard.ott.occupancy << 8) | (
                tmu.read_guard.ott.occupancy
            )
        if REG_WR_PHASE_MEAN <= offset < REG_WR_PHASE_MEAN + 6 * 4 and offset % 4 == 0:
            from .phases import WritePhase

            phase = WritePhase((offset - REG_WR_PHASE_MEAN) // 4)
            return int(tmu.write_guard.perf.phase_stats[phase].mean)
        if REG_RD_PHASE_MEAN <= offset < REG_RD_PHASE_MEAN + 4 * 4 and offset % 4 == 0:
            from .phases import ReadPhase

            phase = ReadPhase((offset - REG_RD_PHASE_MEAN) // 4)
            return int(tmu.read_guard.perf.phase_stats[phase].mean)
        if offset == REG_WR_LAT_P99:
            return tmu.write_guard.perf.latency_histogram.percentile(0.99)
        if offset == REG_RD_LAT_P99:
            return tmu.read_guard.perf.latency_histogram.percentile(0.99)
        raise KeyError(f"unmapped TMU register offset {offset:#x}")

    def write(self, offset: int, value: int) -> None:
        tmu = self.tmu
        if offset == REG_CTRL:
            tmu.config.enabled = bool(value & 1)
        elif offset == REG_IRQ_CLEAR:
            if value & 1:
                tmu.clear_irq()
        elif offset == REG_SPAN_BASE:
            tmu.config.budgets.span.base = int(value)
        elif offset == REG_SPAN_PER_BEAT:
            tmu.config.budgets.span.per_beat = int(value)
        else:
            raise KeyError(
                f"register offset {offset:#x} is read-only or unmapped"
            )
        # Register writes mutate state the TMU's drive() may read
        # (enable bit, interrupt line) and can re-enable sequential work
        # (monitoring after an enable flip); re-evaluate both phases.
        tmu.schedule_drive()
        tmu.schedule_update()

    def dump(self) -> Dict[str, int]:
        """Snapshot of all readable registers (debug aid)."""
        names = {
            "CTRL": REG_CTRL,
            "STATUS": REG_STATUS,
            "FAULT_KIND": REG_FAULT_KIND,
            "FAULT_ID": REG_FAULT_ID,
            "PRESCALE": REG_PRESCALE,
            "SPAN_BASE": REG_SPAN_BASE,
            "SPAN_PER_BEAT": REG_SPAN_PER_BEAT,
            "ERRLOG_COUNT": REG_ERRLOG_COUNT,
            "WR_COMPLETED": REG_WR_COMPLETED,
            "RD_COMPLETED": REG_RD_COMPLETED,
            "WR_LAT_MAX": REG_WR_LAT_MAX,
            "RD_LAT_MAX": REG_RD_LAT_MAX,
            "FAULT_COUNT": REG_FAULT_COUNT,
            "OCCUPANCY": REG_OCCUPANCY,
        }
        return {name: self.read(offset) for name, offset in names.items()}
