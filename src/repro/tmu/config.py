"""TMU configuration (paper Table I plus §II parameters).

``MaxUniqIDs`` × ``TxnPerUniqID`` = ``MaxOutstdTxns`` — the tracking
capacity of the Outstanding Transaction Table.  The remaining knobs
select the variant (Tiny- vs Full-Counter), the prescaler, and the
budget policy.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from .budget import AdaptiveBudgetPolicy


class Variant(enum.Enum):
    """TMU counter architecture."""

    TINY = "tiny"
    FULL = "full"


@dataclasses.dataclass
class TmuConfig:
    """Complete configuration of one TMU instance.

    Parameters
    ----------
    variant:
        :attr:`Variant.TINY` (one counter per transaction) or
        :attr:`Variant.FULL` (one counter per phase).
    max_uniq_ids:
        ``MaxUniqIDs`` — unique transaction IDs tracked (per direction).
    txn_per_id:
        ``TxnPerUniqID`` — outstanding transactions allowed per ID.
    prescale_step:
        Counter prescaler step; 1 disables prescaling.
    sticky:
        Enable the sticky bit alongside the prescaler.
    budgets:
        Budget policy; the adaptive policy with defaults if omitted.
    protocol_check_immediate:
        Whether protocol violations (ID mismatch, unrequested response,
        wrong ``last``) trigger the fault path the cycle they occur.
        Defaults to True for Full-Counter and False for Tiny-Counter,
        where such faults surface when the transaction budget expires —
        reproducing the detection-latency split of Figs. 9/11.
    max_txn_cycles:
        Longest transaction the counters must represent (paper uses 256);
        sizes counter widths in the area model.
    error_log_depth:
        Capacity of the hardware error log.
    enabled:
        Software enable; a disabled TMU is a pure wire.
    """

    variant: Variant = Variant.FULL
    max_uniq_ids: int = 4
    txn_per_id: int = 8
    prescale_step: int = 1
    sticky: bool = True
    budgets: Optional[AdaptiveBudgetPolicy] = None
    protocol_check_immediate: Optional[bool] = None
    max_txn_cycles: int = 256
    error_log_depth: int = 32
    enabled: bool = True
    trip_on_error_resp: bool = False

    def __post_init__(self) -> None:
        if self.max_uniq_ids <= 0:
            raise ValueError("max_uniq_ids must be positive")
        if self.txn_per_id <= 0:
            raise ValueError("txn_per_id must be positive")
        if self.prescale_step <= 0:
            raise ValueError("prescale_step must be positive")
        if self.budgets is None:
            self.budgets = AdaptiveBudgetPolicy()
        if self.protocol_check_immediate is None:
            self.protocol_check_immediate = self.variant == Variant.FULL

    @property
    def max_outstanding(self) -> int:
        """``MaxOutstdTxns`` (Table I): total outstanding capacity."""
        return self.max_uniq_ids * self.txn_per_id

    @property
    def has_prescaler(self) -> bool:
        return self.prescale_step > 1


def tiny_config(**kwargs) -> TmuConfig:
    """Tiny-Counter configuration with the paper's defaults."""
    kwargs.setdefault("variant", Variant.TINY)
    return TmuConfig(**kwargs)


def full_config(**kwargs) -> TmuConfig:
    """Full-Counter configuration with the paper's defaults."""
    kwargs.setdefault("variant", Variant.FULL)
    return TmuConfig(**kwargs)
