"""Adaptive time-budget allocation (paper §II-F).

Budgets scale with burst length and with the traffic already queued in
the OTT, so long bursts and deep queues do not trigger false timeouts.
The paper splits each budget into *queue waiting time* (address handshake
to first data beat) and *data transfer time* (first to last beat); the
policies here expose exactly those components.

Two policies are provided:

* :class:`AdaptiveBudgetPolicy` — the paper's mechanism: budgets grow
  with burst length and OTT occupancy.
* :class:`FixedBudgetPolicy` — the ablation baseline: constant budgets
  regardless of geometry, as a naive watchdog would use.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from .phases import ReadPhase, WritePhase

PhaseType = Union[WritePhase, ReadPhase]


@dataclasses.dataclass
class PhaseBudgets:
    """Per-phase budget parameters for the Full-Counter variant.

    All values are in clock cycles.  ``*_per_beat`` terms implement the
    burst-length adaptation; ``queue_factor`` adds waiting time per
    transaction already outstanding ahead in the queue.
    """

    aw_handshake: int = 16
    w_entry: int = 32
    w_first_hs: int = 16
    w_data_base: int = 16
    w_data_per_beat: int = 2
    b_wait: int = 32
    b_handshake: int = 16
    ar_handshake: int = 16
    r_entry: int = 32
    r_first_hs: int = 16
    r_data_base: int = 16
    r_data_per_beat: int = 2
    queue_factor: int = 2


@dataclasses.dataclass
class SpanBudgets:
    """Whole-transaction budget parameters for the Tiny-Counter variant."""

    base: int = 64
    per_beat: int = 2
    queue_factor: int = 2


class AdaptiveBudgetPolicy:
    """Burst-length- and occupancy-aware budgets (the paper's mechanism)."""

    def __init__(
        self,
        phases: PhaseBudgets = None,
        span: SpanBudgets = None,
    ) -> None:
        self.phases = phases if phases is not None else PhaseBudgets()
        self.span = span if span is not None else SpanBudgets()

    # -- Full-Counter ---------------------------------------------------
    def write_phase_budget(
        self, phase: WritePhase, beats: int, queued_ahead: int = 0
    ) -> int:
        p = self.phases
        wait_bonus = p.queue_factor * queued_ahead
        if phase == WritePhase.AW_HANDSHAKE:
            return p.aw_handshake
        if phase == WritePhase.W_ENTRY:
            return p.w_entry + wait_bonus
        if phase == WritePhase.W_FIRST_HS:
            return p.w_first_hs
        if phase == WritePhase.W_DATA:
            return p.w_data_base + p.w_data_per_beat * beats
        if phase == WritePhase.B_WAIT:
            return p.b_wait + wait_bonus
        return p.b_handshake

    def read_phase_budget(
        self, phase: ReadPhase, beats: int, queued_ahead: int = 0
    ) -> int:
        p = self.phases
        wait_bonus = p.queue_factor * queued_ahead
        if phase == ReadPhase.AR_HANDSHAKE:
            return p.ar_handshake
        if phase == ReadPhase.R_ENTRY:
            return p.r_entry + wait_bonus
        if phase == ReadPhase.R_FIRST_HS:
            return p.r_first_hs
        return p.r_data_base + p.r_data_per_beat * beats

    # -- Tiny-Counter ---------------------------------------------------
    def span_budget(self, beats: int, queued_ahead: int = 0) -> int:
        s = self.span
        return s.base + s.per_beat * beats + s.queue_factor * queued_ahead

    def max_budget(self, max_beats: int, max_outstanding: int) -> int:
        """Largest budget any counter must represent (sizes counter width)."""
        widest_phase = max(
            self.write_phase_budget(phase, max_beats, max_outstanding)
            for phase in WritePhase
        )
        widest_read = max(
            self.read_phase_budget(phase, max_beats, max_outstanding)
            for phase in ReadPhase
        )
        return max(
            widest_phase,
            widest_read,
            self.span_budget(max_beats, max_outstanding),
        )


class FixedBudgetPolicy(AdaptiveBudgetPolicy):
    """Constant budgets, the naive baseline for the ablation bench.

    Whatever the burst geometry, every phase gets ``phase_budget`` cycles
    and every Tc span gets ``span_budget_cycles``.  Long bursts then
    falsely time out — exactly the failure mode adaptive budgeting
    prevents.
    """

    def __init__(self, phase_budget: int = 64, span_budget_cycles: int = 128) -> None:
        super().__init__()
        self.phase_budget = phase_budget
        self.span_budget_cycles = span_budget_cycles

    def write_phase_budget(self, phase, beats, queued_ahead=0):
        return self.phase_budget

    def read_phase_budget(self, phase, beats, queued_ahead=0):
        return self.phase_budget

    def span_budget(self, beats, queued_ahead=0):
        return self.span_budget_cycles

    def max_budget(self, max_beats, max_outstanding):
        return max(self.phase_budget, self.span_budget_cycles)
