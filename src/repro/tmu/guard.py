"""Shared guard machinery: stability watches, front watches, guard base.

A *guard* is the per-direction monitoring engine of the TMU (paper
Figs. 1-2 show the Write Guard and Read Guard as mirrored blocks).  The
concrete :class:`~repro.tmu.write_guard.WriteGuard` and
:class:`~repro.tmu.read_guard.ReadGuard` subclass :class:`GuardBase`,
which provides:

* the Outstanding Transaction Table and its enqueue gating,
* the shared prescaler and counter construction,
* the *front watch* — the pre-handshake timer covering the address
  channel before a transaction owns an OTT entry (the ``AWVLD_AWRDY`` /
  ``ARVLD_ARRDY`` span),
* handshake *stability watches* — AXI4 requires ``valid`` to stay
  asserted (with stable payload) until ``ready``; a drop is a protocol
  violation,
* the error log and performance log.

Guards are passive observers: the TMU top level calls
:meth:`GuardBase.observe` once per clock cycle with the settled device-
side channels, and decides from the returned events whether to trip the
fault-recovery path.
"""

from __future__ import annotations

from typing import List, Optional

from ..axi.types import AxiDir
from ..sim.signal import Channel
from .budget import AdaptiveBudgetPolicy
from .config import TmuConfig, Variant
from .counters import (
    Prescaler,
    PrescaledCounter,
    catch_up_array,
    edges_to_expiry_array,
)
from .events import ErrorLog, FaultEvent, FaultKind, PhaseLike
from .ott import LdEntry, OutstandingTransactionTable
from .perf import PerfLog


class StabilityWatch:
    """Detects ``valid`` deasserted before ``ready`` (AXI4 violation)."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending = False

    def check(self, valid: bool, ready: bool) -> bool:
        """Feed one cycle's handshake state; True when a drop occurred."""
        violated = self._pending and not valid
        self._pending = bool(valid and not ready)
        return violated

    def clear(self) -> None:
        self._pending = False


class FrontWatch:
    """Times the address channel before the handshake completes.

    The front watch owns the only counter a transaction has before it is
    enqueued in the OTT; for the Tiny-Counter variant the counter is
    handed over to the LD entry on handshake so the single counter spans
    the whole ``AWVALID→BRESP`` window (Fig. 6).
    """

    __slots__ = ("counter", "start_cycle")

    def __init__(self) -> None:
        self.counter: Optional[PrescaledCounter] = None
        self.start_cycle: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.counter is not None

    def arm(self, counter: PrescaledCounter, cycle: int) -> None:
        self.counter = counter
        self.start_cycle = cycle

    def release(self) -> Optional[PrescaledCounter]:
        counter = self.counter
        self.counter = None
        self.start_cycle = None
        return counter


class GuardBase:
    """Common state and helpers for the Write and Read Guards."""

    direction: AxiDir

    def __init__(self, config: TmuConfig, direction: AxiDir) -> None:
        self.config = config
        self.direction = direction
        self.budgets: AdaptiveBudgetPolicy = config.budgets
        self.ott = OutstandingTransactionTable(
            config.max_uniq_ids, config.txn_per_id
        )
        self.prescaler = Prescaler(config.prescale_step)
        self.perf = PerfLog(direction)
        self.log = ErrorLog(config.error_log_depth)
        self.front = FrontWatch()
        self.stab_addr = StabilityWatch()
        self.stab_data = StabilityWatch()
        self.stab_resp = StabilityWatch()
        self.timeouts_detected = 0
        self.violations_detected = 0
        self._edge_state: dict = {}
        self.completed_tids: List[int] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @property
    def tiny(self) -> bool:
        return self.config.variant == Variant.TINY

    def new_counter(self, budget: int) -> PrescaledCounter:
        return PrescaledCounter(
            budget, self.config.prescale_step, self.config.sticky
        )

    def can_accept(self, tid: int) -> bool:
        """Whether a new transaction with compact ID *tid* can be tracked."""
        return self.ott.can_enqueue(tid)

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------
    def _event(
        self,
        kind: FaultKind,
        phase: Optional[PhaseLike],
        cycle: int,
        entry: Optional[LdEntry] = None,
        detail: str = "",
    ) -> FaultEvent:
        event = FaultEvent(
            kind=kind,
            direction=self.direction,
            phase=phase,
            detect_cycle=cycle,
            txn_id=entry.tid if entry is not None else None,
            orig_id=entry.orig_id if entry is not None else None,
            addr=entry.addr if entry is not None else None,
            detail=detail,
        )
        self.log.push(event)
        if kind == FaultKind.TIMEOUT:
            self.timeouts_detected += 1
        else:
            self.violations_detected += 1
        return event

    def should_trip(self, event: FaultEvent) -> bool:
        """Whether *event* triggers the fault-recovery path.

        Timeouts always trip.  Protocol violations trip immediately only
        when the configuration says so (Full-Counter default); otherwise
        they are logged and surface as timeouts when the transaction's
        budget expires — the Tiny-Counter behaviour of Figs. 9/11.
        """
        if event.kind == FaultKind.TIMEOUT:
            return True
        if event.kind == FaultKind.ERROR_RESPONSE:
            return bool(getattr(self.config, "trip_on_error_resp", False))
        return bool(self.config.protocol_check_immediate)

    def _edge(self, key: str, condition: bool) -> bool:
        """Rising-edge detector so persistent anomalies log only once."""
        previous = self._edge_state.get(key, False)
        self._edge_state[key] = condition
        return condition and not previous

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def outstanding_orig_ids(self) -> List[int]:
        """Original IDs of every tracked transaction (for fault aborts)."""
        return [entry.orig_id for entry in self.ott.live_entries()]

    def drain_completed(self) -> List[int]:
        """Compact IDs completed since the last drain (for remap release)."""
        completed, self.completed_tids = self.completed_tids, []
        return completed

    def clear(self) -> None:
        """Abort all tracking state (fault recovery)."""
        self.ott.clear()
        self.front.release()
        self.stab_addr.clear()
        self.stab_data.clear()
        self.stab_resp.clear()
        self._edge_state.clear()
        self.completed_tids.clear()

    @property
    def idle(self) -> bool:
        """No armed counters: nothing enqueued, front watch released.

        The TMU's update-quiescence precondition — with the channels
        idle on top, :meth:`observe` moves nothing but the free-running
        prescaler (which resyncs in O(1) on wake).
        """
        return self.ott.occupancy == 0 and not self.front.active

    def _armed_counters(self) -> List[PrescaledCounter]:
        """Counters still consuming prescaler edges (front + live entries)."""
        counters: List[PrescaledCounter] = []
        if self.front.counter is not None:
            counters.append(self.front.counter)
        for entry in self.ott.live_entries():
            if entry.counter is not None and not entry.timeout:
                counters.append(entry.counter)
        return counters

    def next_timeout_stamp(self, now: int) -> Optional[int]:
        """Stamp of the earliest possible counter expiry after *now*.

        Assumes the channels stay frozen from here (every armed counter
        enabled every cycle, no re-arms) — exactly the span the TMU
        sleeps through.  Any channel movement wakes the TMU first and
        the prediction is recomputed.  ``None`` when nothing is armed.
        """
        counters = self._armed_counters()
        if not counters:
            return None
        # cycles_to_edge is monotone in the edge count, so the earliest
        # stamp is the one for the fewest edges; the vectorized helper
        # computes the whole population's edges in one pass.
        return now + self.prescaler.cycles_to_edge(
            min(edges_to_expiry_array(counters))
        )

    def catch_up(self, cycles: int) -> None:
        """Replay *cycles* frozen-channel observations in O(#counters).

        Equivalent to calling :meth:`observe` *cycles* times with every
        channel unchanged and fire-free: the prescaler advances, armed
        counters consume its edges, and nothing else moves.  Valid only
        when no expiry falls inside the span — the TMU's timed wake
        (from :meth:`next_timeout_stamp`) guarantees that.
        """
        if cycles <= 0:
            return
        prescaler = self.prescaler
        edges = prescaler.edges_in(cycles)
        end_on_edge = edges > 0 and (prescaler.phase + cycles) % prescaler.step == 0
        prescaler.skip(cycles)
        catch_up_array(self._armed_counters(), edges, end_on_edge)

    def snapshot_state(self):
        """Wake-independent registered state, for verify-strategy diffs.

        Excludes the prescaler phase *and* the armed counters' counts —
        both are clock-derived now that the TMU sleeps through frozen
        stalls under a timed wake (the counts advance deterministically
        with the skipped edges and are replayed by :meth:`catch_up`) —
        and normalizes the rising-edge detector map (absent and False
        entries are equivalent).  The expiry *transitions* (events,
        ``entry.timeout``, trip bookkeeping) stay snapshotted, which is
        what lets ``strategy="verify"`` catch an under-declared wake.
        """
        return (
            self.ott.occupancy,
            tuple(
                (entry.tid, entry.beats_seen, entry.timeout, entry.state)
                for entry in self.ott.live_entries()
            ),
            self.front.active,
            self.timeouts_detected,
            self.violations_detected,
            tuple(self.completed_tids),
            len(self.log),
            self.perf.completed,
            self.perf.beats_transferred,
            self.stab_addr._pending,
            self.stab_data._pending,
            self.stab_resp._pending,
            tuple(sorted(k for k, v in self._edge_state.items() if v)),
        )

    # ------------------------------------------------------------------
    # Counter sweep
    # ------------------------------------------------------------------
    def _tick_counters(self, edge: bool, cycle: int) -> List[FaultEvent]:
        """Advance the front-watch and per-entry counters; emit timeouts."""
        events: List[FaultEvent] = []
        front_counter = self.front.counter
        if front_counter is not None:
            if front_counter.tick(enabled=True, edge=edge):
                events.append(
                    self._event(
                        FaultKind.TIMEOUT,
                        self._front_phase(),
                        cycle,
                        detail="address handshake timeout",
                    )
                )
                self.front.release()
        for entry in self.ott.live_entries():
            counter = entry.counter
            if counter is None or entry.timeout:
                continue
            if counter.tick(enabled=True, edge=edge):
                entry.timeout = True
                events.append(
                    self._event(
                        FaultKind.TIMEOUT,
                        self._entry_phase(entry),
                        cycle,
                        entry=entry,
                        detail=f"budget expired ({counter.units} units)",
                    )
                )
        return events

    # Subclass hooks -----------------------------------------------------
    def _front_phase(self) -> PhaseLike:
        raise NotImplementedError

    def _entry_phase(self, entry: LdEntry) -> PhaseLike:
        raise NotImplementedError

    def observe(self, *channels: Channel, cycle: int) -> List[FaultEvent]:
        raise NotImplementedError
