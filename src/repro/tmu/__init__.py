"""Transaction Monitoring Unit — the paper's primary contribution."""

from .budget import (
    AdaptiveBudgetPolicy,
    FixedBudgetPolicy,
    PhaseBudgets,
    SpanBudgets,
)
from .config import TmuConfig, Variant, full_config, tiny_config
from .counters import Prescaler, PrescaledCounter, counter_width, units_for
from .events import ErrorLog, FaultEvent, FaultKind
from .ott import LdEntry, OttFullError, OutstandingTransactionTable
from .perf import LatencyHistogram, LatencyStat, PerfLog
from .phases import ReadPhase, TxnSpan, WritePhase
from .read_guard import ReadGuard
from .registers import TmuRegisters
from .unit import TmuState, TransactionMonitoringUnit
from .write_guard import WriteGuard

__all__ = [
    "AdaptiveBudgetPolicy",
    "ErrorLog",
    "FaultEvent",
    "FaultKind",
    "FixedBudgetPolicy",
    "LatencyHistogram",
    "LatencyStat",
    "LdEntry",
    "OttFullError",
    "OutstandingTransactionTable",
    "PerfLog",
    "PhaseBudgets",
    "Prescaler",
    "PrescaledCounter",
    "ReadGuard",
    "ReadPhase",
    "SpanBudgets",
    "TmuConfig",
    "TmuRegisters",
    "TmuState",
    "TransactionMonitoringUnit",
    "TxnSpan",
    "Variant",
    "WriteGuard",
    "WritePhase",
    "counter_width",
    "full_config",
    "tiny_config",
    "units_for",
]
