"""Performance logging (paper §II-H: latency metrics, bottleneck analysis).

The Full-Counter variant records per-phase latencies for every completed
transaction; both variants record whole-transaction latency and
throughput.  The log exposes summary statistics (count/min/max/mean) per
phase, the raw material for the paper's "detailed error logs for
performance and bottleneck analysis".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..axi.types import AxiDir
from .phases import ReadPhase, WritePhase


@dataclasses.dataclass
class LatencyStat:
    """Streaming min/max/mean accumulator for one metric."""

    count: int = 0
    total: int = 0
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            self.minimum = bound if self.minimum is None else min(self.minimum, bound)
            self.maximum = bound if self.maximum is None else max(self.maximum, bound)


class LatencyHistogram:
    """Power-of-two-bucketed latency distribution.

    Hardware-friendly (bucket index = position of the highest set bit),
    the same structure Kyung et al.'s PMU uses for its read/write
    latency distributions.
    """

    def __init__(self, buckets: int = 12) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.counts = [0] * buckets

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        index = min(value.bit_length(), len(self.counts) - 1)
        self.counts[index] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bucket_bounds(self, index: int):
        """(low, high) inclusive latency range of a bucket."""
        if index == 0:
            return (0, 0)
        low = 1 << (index - 1)
        if index == len(self.counts) - 1:
            return (low, None)  # overflow bucket
        return (low, (1 << index) - 1)

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.total == 0:
            return 0
        target = fraction * self.total
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                low, high = self.bucket_bounds(index)
                return high if high is not None else low
        return self.bucket_bounds(len(self.counts) - 1)[0]

    def nonzero(self):
        """(bounds, count) for every populated bucket."""
        return [
            (self.bucket_bounds(i), count)
            for i, count in enumerate(self.counts)
            if count
        ]


@dataclasses.dataclass
class TxnRecord:
    """Completed-transaction record kept in the bounded history ring."""

    direction: AxiDir
    orig_id: int
    addr: int
    beats: int
    start_cycle: int
    end_cycle: int
    phase_latencies: Dict[object, int]

    @property
    def latency(self) -> int:
        return self.end_cycle - self.start_cycle


class PerfLog:
    """Accumulates latency and throughput statistics for one guard."""

    def __init__(self, direction: AxiDir, history_depth: int = 64) -> None:
        self.direction = direction
        self.history_depth = history_depth
        self.txn_latency = LatencyStat()
        self.latency_histogram = LatencyHistogram()
        self.phase_stats: Dict[object, LatencyStat] = {}
        phases = WritePhase if direction == AxiDir.WRITE else ReadPhase
        for phase in phases:
            self.phase_stats[phase] = LatencyStat()
        self.completed = 0
        self.beats_transferred = 0
        self.history: List[TxnRecord] = []

    def record_completion(
        self,
        orig_id: int,
        addr: int,
        beats: int,
        start_cycle: int,
        end_cycle: int,
        phase_latencies: Optional[Dict[object, int]] = None,
    ) -> None:
        self.completed += 1
        self.beats_transferred += beats
        self.txn_latency.record(end_cycle - start_cycle)
        self.latency_histogram.record(end_cycle - start_cycle)
        phase_latencies = phase_latencies or {}
        for phase, latency in phase_latencies.items():
            if phase in self.phase_stats:
                self.phase_stats[phase].record(latency)
        record = TxnRecord(
            direction=self.direction,
            orig_id=orig_id,
            addr=addr,
            beats=beats,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
            phase_latencies=dict(phase_latencies),
        )
        self.history.append(record)
        if len(self.history) > self.history_depth:
            self.history.pop(0)

    def throughput(self, window_cycles: int) -> float:
        """Beats per cycle over *window_cycles* of observation."""
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        return self.beats_transferred / window_cycles

    def phase_summary(self) -> Dict[str, LatencyStat]:
        """Phase-label-keyed statistics, for report rendering."""
        return {phase.label: stat for phase, stat in self.phase_stats.items()}

    def clear(self) -> None:
        self.__init__(self.direction, self.history_depth)
