"""Outstanding Transaction Table (paper §II-C, Fig. 3).

The OTT is the TMU's bookkeeping core, split into three linked subtables
exactly as the paper describes:

* **HT (ID Head-Tail) table** — one entry per tracked unique ID, holding
  head/tail pointers into the LD table.  This gives each ID a FIFO so
  same-ID transactions complete in order, as AXI4 requires.
* **LD (Linked Data) table** — one entry per outstanding transaction:
  ID, address, burst geometry, state, budget counter, latency record,
  timeout status, and the ``next`` link forming the per-ID FIFO.
* **EI (Enqueue Index) table** — the global AW/AR acceptance order.  For
  writes it associates each W beat with the correct transaction (the W
  channel carries no ID in AXI4, so W bursts follow AW order); for reads
  it aligns AR with the R data phase.

Capacity is ``MaxUniqIDs × TxnPerUniqID``; enqueue fails (and the TMU
stalls the request) when either the per-ID FIFO or the LD free list is
exhausted.
"""

from __future__ import annotations

import dataclasses
from bisect import insort
from collections import deque
from typing import Deque, Iterator, List, Optional

from ..axi.types import AxiDir
from .counters import PrescaledCounter


@dataclasses.dataclass
class LdEntry:
    """One Linked-Data table entry: a tracked outstanding transaction."""

    index: int
    used: bool = False
    tid: int = 0
    orig_id: int = 0
    direction: AxiDir = AxiDir.WRITE
    addr: int = 0
    beats: int = 1
    state: int = 0
    counter: Optional[PrescaledCounter] = None
    next: Optional[int] = None
    enqueue_cycle: int = 0
    phase_start_cycle: int = 0
    beats_seen: int = 0
    w_done: bool = False
    timeout: bool = False
    phase_latencies: Optional[dict] = None

    def release(self) -> None:
        self.used = False
        self.next = None
        self.counter = None
        self.beats_seen = 0
        self.w_done = False
        self.timeout = False
        self.phase_latencies = None


@dataclasses.dataclass
class _HtEntry:
    """One Head-Tail table entry: the FIFO anchor for a unique ID."""

    valid: bool = False
    head: Optional[int] = None
    tail: Optional[int] = None
    count: int = 0


class OttFullError(Exception):
    """Raised by strict enqueue when the table cannot accept the request."""


class OutstandingTransactionTable:
    """HT + LD + EI linked tables tracking outstanding transactions.

    One OTT instance serves one guard (one direction); the TMU has a
    write OTT and a read OTT, mirroring the paper's independent Write
    Guard and Read Guard.
    """

    def __init__(self, max_uniq_ids: int, txn_per_id: int) -> None:
        if max_uniq_ids <= 0 or txn_per_id <= 0:
            raise ValueError("table dimensions must be positive")
        self.max_uniq_ids = max_uniq_ids
        self.txn_per_id = txn_per_id
        self.capacity = max_uniq_ids * txn_per_id
        self._ld: List[LdEntry] = [LdEntry(index=i) for i in range(self.capacity)]
        self._free: Deque[int] = deque(range(self.capacity))
        self._ht: List[_HtEntry] = [_HtEntry() for _ in range(max_uniq_ids)]
        self._ei: Deque[int] = deque()
        # Sorted indices of in-use LD entries, so per-cycle iteration
        # (live_entries) costs O(occupancy), not O(capacity).
        self._live: List[int] = []

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self.capacity - len(self._free)

    @property
    def full(self) -> bool:
        return not self._free

    def id_count(self, tid: int) -> int:
        return self._ht[tid].count

    def can_enqueue(self, tid: int) -> bool:
        """True when a new transaction with *tid* can be tracked."""
        if not 0 <= tid < self.max_uniq_ids:
            return False
        return bool(self._free) and self._ht[tid].count < self.txn_per_id

    # ------------------------------------------------------------------
    # Enqueue / dequeue
    # ------------------------------------------------------------------
    def enqueue(
        self,
        tid: int,
        orig_id: int,
        direction: AxiDir,
        addr: int,
        beats: int,
        cycle: int,
    ) -> LdEntry:
        """Allocate and link an LD entry for a newly accepted transaction."""
        if not self.can_enqueue(tid):
            raise OttFullError(
                f"cannot enqueue tid {tid}: "
                f"{'LD table full' if self.full else 'per-ID limit reached'}"
            )
        index = self._free.popleft()
        entry = self._ld[index]
        entry.used = True
        entry.tid = tid
        entry.orig_id = orig_id
        entry.direction = direction
        entry.addr = addr
        entry.beats = beats
        entry.state = 0
        entry.counter = None
        entry.next = None
        entry.enqueue_cycle = cycle
        entry.phase_start_cycle = cycle
        entry.beats_seen = 0
        entry.w_done = False
        entry.timeout = False
        entry.phase_latencies = {}

        ht = self._ht[tid]
        if ht.valid and ht.tail is not None:
            self._ld[ht.tail].next = index
            ht.tail = index
        else:
            ht.valid = True
            ht.head = index
            ht.tail = index
        ht.count += 1
        self._ei.append(index)
        insort(self._live, index)
        return entry

    def head_of(self, tid: int) -> Optional[LdEntry]:
        """The oldest outstanding transaction for *tid*, if any."""
        if not 0 <= tid < self.max_uniq_ids:
            return None
        ht = self._ht[tid]
        if not ht.valid or ht.head is None:
            return None
        return self._ld[ht.head]

    def dequeue_head(self, tid: int) -> LdEntry:
        """Complete the oldest transaction of *tid* and free its entry."""
        ht = self._ht[tid]
        if not ht.valid or ht.head is None:
            raise KeyError(f"no outstanding transaction for tid {tid}")
        index = ht.head
        entry = self._ld[index]
        ht.head = entry.next
        ht.count -= 1
        if ht.head is None:
            ht.valid = False
            ht.tail = None
        if index in self._ei:
            self._ei.remove(index)
        entry.release()
        self._free.append(index)
        self._live.remove(index)
        return entry

    # ------------------------------------------------------------------
    # EI (enqueue-order) queries — W-beat association
    # ------------------------------------------------------------------
    def ei_front(self) -> Optional[LdEntry]:
        """The transaction whose data phase is next in AW/AR order."""
        while self._ei and not self._ld[self._ei[0]].used:
            self._ei.popleft()
        if not self._ei:
            return None
        return self._ld[self._ei[0]]

    def ei_advance(self) -> None:
        """Retire the EI front (its data phase is complete)."""
        if self._ei:
            self._ei.popleft()

    def ei_pending_beats(self) -> int:
        """Data beats still owed by transactions in the EI queue.

        This is the "accumulated outstanding traffic" the adaptive
        budget mechanism (§II-F) charges against a new transaction's
        queue-waiting-time budget: every beat ahead of it must transfer
        before its own data phase can begin.
        """
        total = 0
        for ld_index in self._ei:
            entry = self._ld[ld_index]
            if entry.used and not entry.w_done:
                total += max(0, entry.beats - entry.beats_seen)
        return total

    def ei_position(self, index: int) -> Optional[int]:
        """Queue depth ahead of LD entry *index* in acceptance order."""
        for position, ld_index in enumerate(self._ei):
            if ld_index == index:
                return position
        return None

    # ------------------------------------------------------------------
    # Iteration / maintenance
    # ------------------------------------------------------------------
    def live_entries(self) -> Iterator[LdEntry]:
        ld = self._ld
        for index in self._live:
            yield ld[index]

    def clear(self) -> None:
        """Abort everything (fault recovery path)."""
        for index in self._live:
            self._ld[index].release()
        self._free = deque(range(self.capacity))
        for ht in self._ht:
            ht.valid = False
            ht.head = None
            ht.tail = None
            ht.count = 0
        self._ei.clear()
        self._live.clear()

    def __len__(self) -> int:
        return self.occupancy
