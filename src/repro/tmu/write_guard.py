"""Write Guard: monitors the AW/W/B channels (paper §II-A, Figs. 1-2).

The Write Guard tracks every outstanding write transaction through the
six phases of Fig. 4 (Full-Counter) or as one ``AWVALID→BRESP`` span
(Tiny-Counter, Fig. 6), and performs the four checks the architecture
diagrams name: **Timeout Check**, **Handshake Check**, **ID Match
Check**, and **Unrequested resp**.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..axi.types import AxiDir
from ..sim.signal import Channel
from .config import TmuConfig
from .events import FaultEvent, FaultKind
from .guard import GuardBase
from .ott import LdEntry
from .phases import TxnSpan, WritePhase

_DATA_PHASES = (WritePhase.W_ENTRY, WritePhase.W_FIRST_HS, WritePhase.W_DATA)


class WriteGuard(GuardBase):
    """Per-cycle observer of the write channels on the device side."""

    def __init__(self, config: TmuConfig) -> None:
        super().__init__(config, AxiDir.WRITE)

    def unfinished_write_bursts(self) -> int:
        """Outstanding writes whose W burst has not yet seen ``w_last``.

        The fault-recovery path must keep accepting (and discarding) W
        beats for these — an AXI manager cannot abort a write burst
        midway, so the TMU drains them to avoid wedging the W channel.
        """
        return sum(
            1 for entry in self.ott.live_entries() if not entry.w_done
        )

    # ------------------------------------------------------------------
    # GuardBase hooks
    # ------------------------------------------------------------------
    def _front_phase(self):
        return TxnSpan.WRITE if self.tiny else WritePhase.AW_HANDSHAKE

    def _entry_phase(self, entry: LdEntry):
        return entry.state

    # ------------------------------------------------------------------
    # Main per-cycle observation
    # ------------------------------------------------------------------
    def observe(
        self,
        aw: Channel,
        w: Channel,
        b: Channel,
        cycle: int,
        orig_id_of: Optional[Callable[[int], int]] = None,
    ) -> List[FaultEvent]:
        """Digest one settled cycle of the write channels.

        Returns every fault event raised this cycle; the TMU top level
        decides (via :meth:`GuardBase.should_trip`) whether to enter the
        fault-recovery path.
        """
        edge = self.prescaler.advance()
        events: List[FaultEvent] = []
        self._observe_aw(aw, cycle, events, orig_id_of)
        self._observe_w(w, cycle, events)
        self._observe_b(b, cycle, events)
        events.extend(self._tick_counters(edge, cycle))
        return events

    # ------------------------------------------------------------------
    # AW: address handshake and enqueue
    # ------------------------------------------------------------------
    def _observe_aw(self, aw: Channel, cycle, events, orig_id_of) -> None:
        valid = bool(aw.valid.value)
        ready = bool(aw.ready.value)
        if self.stab_addr.check(valid, ready):
            events.append(
                self._event(
                    FaultKind.HANDSHAKE_VIOLATION,
                    self._front_phase(),
                    cycle,
                    detail="aw_valid deasserted before aw_ready",
                )
            )
            self.front.release()
        if valid and ready:
            self._enqueue(aw.payload.value, cycle, orig_id_of, events)
        elif valid and not self.front.active:
            beat = aw.payload.value
            beats = beat.len + 1
            queued = self.ott.ei_pending_beats()
            if self.tiny:
                budget = self.budgets.span_budget(beats, queued)
            else:
                budget = self.budgets.write_phase_budget(
                    WritePhase.AW_HANDSHAKE, beats, queued
                )
            self.front.arm(self.new_counter(budget), cycle)

    def _enqueue(self, beat, cycle, orig_id_of, events) -> None:
        front_start = self.front.start_cycle
        front_counter = self.front.release()
        hs_latency = cycle - front_start if front_start is not None else 0
        tid = beat.id
        orig = orig_id_of(tid) if orig_id_of is not None else tid
        # Queue-waiting bonus in *beats* ahead (§II-F): the new write's
        # data phase cannot start until every queued beat has moved.
        queued = self.ott.ei_pending_beats()
        entry = self.ott.enqueue(
            tid, orig, AxiDir.WRITE, beat.addr, beat.len + 1, cycle
        )
        entry.phase_latencies[WritePhase.AW_HANDSHAKE] = hs_latency
        if self.tiny:
            entry.state = TxnSpan.WRITE
            if front_counter is not None:
                entry.counter = front_counter  # single span counter, Fig. 6
            else:
                entry.counter = self.new_counter(
                    self.budgets.span_budget(entry.beats, queued)
                )
        else:
            entry.state = WritePhase.W_ENTRY
            entry.counter = self.new_counter(
                self.budgets.write_phase_budget(
                    WritePhase.W_ENTRY, entry.beats, queued
                )
            )
        entry.phase_start_cycle = cycle

    # ------------------------------------------------------------------
    # W: data-phase progression in AW (EI) order
    # ------------------------------------------------------------------
    def _observe_w(self, w: Channel, cycle, events) -> None:
        valid = bool(w.valid.value)
        fired = w.fired()
        if self.stab_data.check(valid, w.ready.value):
            events.append(
                self._event(
                    FaultKind.HANDSHAKE_VIOLATION,
                    WritePhase.W_DATA,
                    cycle,
                    detail="w_valid deasserted before w_ready",
                )
            )
        target = self.ott.ei_front()
        if valid and target is None and self._edge("stray_w", True):
            events.append(
                self._event(
                    FaultKind.UNREQUESTED_RESPONSE,
                    WritePhase.W_DATA,
                    cycle,
                    detail="W beat with no outstanding write",
                )
            )
        if not valid:
            self._edge("stray_w", False)
        if target is None:
            return
        beat = w.payload.value
        if self.tiny:
            if fired:
                self._count_w_beat(target, beat, cycle, events)
            return
        if target.state == WritePhase.W_ENTRY and valid:
            target.phase_latencies[WritePhase.W_ENTRY] = (
                cycle - target.phase_start_cycle
            )
            target.state = WritePhase.W_FIRST_HS
            target.counter.rearm(
                self.budgets.write_phase_budget(
                    WritePhase.W_FIRST_HS, target.beats
                )
            )
            target.phase_start_cycle = cycle
        if target.state == WritePhase.W_FIRST_HS and fired:
            target.phase_latencies[WritePhase.W_FIRST_HS] = (
                cycle - target.phase_start_cycle
            )
            target.state = WritePhase.W_DATA
            target.counter.rearm(
                self.budgets.write_phase_budget(WritePhase.W_DATA, target.beats)
            )
            target.phase_start_cycle = cycle
            self._count_w_beat(target, beat, cycle, events)
        elif target.state == WritePhase.W_DATA and fired:
            self._count_w_beat(target, beat, cycle, events)

    def _count_w_beat(self, target: LdEntry, beat, cycle, events) -> None:
        target.beats_seen += 1
        if beat.last:
            if target.beats_seen != target.beats:
                events.append(
                    self._event(
                        FaultKind.WRONG_LAST,
                        WritePhase.W_DATA,
                        cycle,
                        entry=target,
                        detail=(
                            f"w_last after {target.beats_seen} beats, "
                            f"expected {target.beats}"
                        ),
                    )
                )
            target.w_done = True
            self.ott.ei_advance()
            if not self.tiny:
                target.phase_latencies[WritePhase.W_DATA] = (
                    cycle - target.phase_start_cycle
                )
                target.state = WritePhase.B_WAIT
                # Waiting-time bonus scales with the accumulated
                # outstanding traffic in the OTT (§II-F), since the
                # subordinate may serialize responses across IDs.
                target.counter.rearm(
                    self.budgets.write_phase_budget(
                        WritePhase.B_WAIT,
                        target.beats,
                        max(0, self.ott.occupancy - 1),
                    )
                )
                target.phase_start_cycle = cycle
        elif target.beats_seen >= target.beats:
            events.append(
                self._event(
                    FaultKind.WRONG_LAST,
                    WritePhase.W_DATA,
                    cycle,
                    entry=target,
                    detail=(
                        f"beat {target.beats_seen} of {target.beats} "
                        "without w_last"
                    ),
                )
            )

    # ------------------------------------------------------------------
    # B: response matching and completion
    # ------------------------------------------------------------------
    def _observe_b(self, b: Channel, cycle, events) -> None:
        valid = bool(b.valid.value)
        fired = b.fired()
        if self.stab_resp.check(valid, b.ready.value):
            events.append(
                self._event(
                    FaultKind.HANDSHAKE_VIOLATION,
                    WritePhase.B_WAIT,
                    cycle,
                    detail="b_valid deasserted before b_ready",
                )
            )
        if not valid:
            self._edge("b_unreq", False)
            self._edge("b_early", False)
            return
        beat = b.payload.value
        head = self.ott.head_of(beat.id)
        if head is None:
            if self._edge("b_unreq", True):
                events.append(
                    self._event(
                        FaultKind.UNREQUESTED_RESPONSE,
                        WritePhase.B_WAIT,
                        cycle,
                        detail=f"B response with untracked ID {beat.id}",
                    )
                )
            return
        if self.tiny:
            if fired:
                if head.w_done:
                    if beat.resp.is_error:
                        events.append(
                            self._event(
                                FaultKind.ERROR_RESPONSE,
                                TxnSpan.WRITE,
                                cycle,
                                entry=head,
                                detail=f"subordinate returned {beat.resp.name}",
                            )
                        )
                    self._complete(head, cycle)
                elif self._edge("b_early", True):
                    events.append(
                        self._event(
                            FaultKind.ID_MISMATCH,
                            TxnSpan.WRITE,
                            cycle,
                            entry=head,
                            detail="B response before w_last",
                        )
                    )
            return
        # Full-Counter phase bookkeeping.
        if head.state in _DATA_PHASES:
            if self._edge("b_early", True):
                events.append(
                    self._event(
                        FaultKind.ID_MISMATCH,
                        head.state,
                        cycle,
                        entry=head,
                        detail="B response before w_last",
                    )
                )
            return
        if head.state == WritePhase.B_WAIT:
            head.phase_latencies[WritePhase.B_WAIT] = (
                cycle - head.phase_start_cycle
            )
            head.state = WritePhase.B_HANDSHAKE
            head.counter.rearm(
                self.budgets.write_phase_budget(
                    WritePhase.B_HANDSHAKE, head.beats
                )
            )
            head.phase_start_cycle = cycle
        if head.state == WritePhase.B_HANDSHAKE and fired:
            head.phase_latencies[WritePhase.B_HANDSHAKE] = (
                cycle - head.phase_start_cycle
            )
            if beat.resp.is_error:
                events.append(
                    self._event(
                        FaultKind.ERROR_RESPONSE,
                        WritePhase.B_HANDSHAKE,
                        cycle,
                        entry=head,
                        detail=f"subordinate returned {beat.resp.name}",
                    )
                )
            self._complete(head, cycle)

    def _complete(self, entry: LdEntry, cycle: int) -> None:
        self.perf.record_completion(
            entry.orig_id,
            entry.addr,
            entry.beats,
            entry.enqueue_cycle,
            cycle,
            entry.phase_latencies,
        )
        self.ott.dequeue_head(entry.tid)
        self.completed_tids.append(entry.tid)
        self._edge_state.pop("b_early", None)
