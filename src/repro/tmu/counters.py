"""Timeout counters with prescaler and sticky-bit support (paper §II-G).

A :class:`Prescaler` is the guard's single free-running divider: it emits
an *edge* every ``step`` cycles.  Each :class:`PrescaledCounter` counts
elapsed time in prescaled units and expires when it reaches its budget
(rounded up to whole units).  The *sticky bit* latches an enable seen
between edges, so a stall that appears and disappears between counter
updates is still registered — the paper's guarantee that "critical events
remain detectable" under prescaling.

Counter width (``ceil(log2(units + 1))`` bits) is what the prescaler
trades against detection latency; the area model consumes
:func:`counter_width`.

The module-level array helpers (:func:`edges_to_expiry_array`,
:func:`catch_up_array`) are the guard's lane axis over *counters*: one
vectorized pass over every armed counter of a guard, exactly equivalent
to the per-counter methods (the property tests in
``tests/properties/test_batch_properties.py`` pin that down against
tick-by-tick replay).  They fall back to plain loops when numpy is
unavailable or the counter population is too small to amortize array
setup.
"""

from __future__ import annotations

import math

try:
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the image
    HAVE_NUMPY = False

#: Below this many counters the python loop beats array construction.
VECTOR_THRESHOLD = 4


def units_for(budget: int, step: int) -> int:
    """Budget expressed in prescaled units (rounded up, minimum 1)."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    if step <= 0:
        raise ValueError(f"prescaler step must be positive, got {step}")
    return max(1, math.ceil(budget / step))


def counter_width(budget: int, step: int) -> int:
    """Flip-flop width of a counter sized for *budget* at *step*."""
    return max(1, math.ceil(math.log2(units_for(budget, step) + 1)))


class Prescaler:
    """Free-running clock divider shared by all counters of one guard."""

    def __init__(self, step: int = 1, phase: int = 0) -> None:
        if step <= 0:
            raise ValueError(f"prescaler step must be positive, got {step}")
        if not 0 <= phase < step:
            raise ValueError(f"phase {phase} out of range [0, {step})")
        self.step = step
        self._phase = phase

    def advance(self) -> bool:
        """Advance one cycle; return True on the counting edge."""
        edge = self._phase == self.step - 1
        self._phase = 0 if edge else self._phase + 1
        return edge

    def skip(self, cycles: int) -> None:
        """Fast-forward *cycles* idle advances in O(1).

        Exactly equivalent to calling :meth:`advance` *cycles* times and
        discarding the edges — valid only when no counter is armed to
        consume them (the guard's update-quiescence precondition).
        Armed counters fast-forward through :meth:`edges_in` +
        :meth:`PrescaledCounter.catch_up` instead.
        """
        if cycles < 0:
            raise ValueError(f"cannot skip {cycles} cycles")
        self._phase = (self._phase + cycles) % self.step

    def edges_in(self, cycles: int) -> int:
        """Edges the next *cycles* advances would fire, without advancing.

        An advance fires when its pre-advance phase is ``step - 1``, so
        the count is over phases ``phase .. phase + cycles - 1``.
        """
        return (self._phase + cycles) // self.step

    def cycles_to_edge(self, edges: int) -> int:
        """Advances until the *edges*-th future edge fires (edges >= 1)."""
        if edges <= 0:
            raise ValueError(f"edges must be positive, got {edges}")
        return (self.step - self._phase) + (edges - 1) * self.step

    @property
    def phase(self) -> int:
        return self._phase

    def reset(self) -> None:
        self._phase = 0


class PrescaledCounter:
    """One timeout counter: counts prescaled units toward a budget.

    Counting is *conservative*: only complete prescaler intervals are
    counted (the partial interval between the phase start and the first
    edge is discarded), so a prescaled counter never expires before its
    budget has truly elapsed — no false-early timeouts.  The cost is the
    Fig. 8 trade-off: worst-case detection latency grows by up to two
    prescaler periods.

    Parameters
    ----------
    budget:
        Allotted time in clock cycles.
    step:
        The shared prescaler step (used only to convert the budget to
        units; edges arrive from the guard's :class:`Prescaler`).
    sticky:
        Sticky-bit interval accumulation: with it, an interval counts if
        the monitored condition was observed at *any* cycle within it
        (OR-latching, the paper's "near-timeout condition remains
        recorded even if the counter update is delayed"); without it, an
        interval counts only if the condition held *throughout*
        (AND-accumulation), so pulses between edges are lost.
    """

    __slots__ = ("units", "step", "sticky", "count", "_armed", "_accum")

    def __init__(self, budget: int, step: int = 1, sticky: bool = True) -> None:
        self.units = units_for(budget, step)
        self.step = step
        self.sticky = sticky
        self.count = 0
        # step 1 has no partial interval; arm immediately for exactness.
        self._armed = step == 1
        self._accum = not sticky

    def tick(self, enabled: bool, edge: bool) -> bool:
        """One clock cycle; return True when the counter has expired.

        Parameters
        ----------
        enabled:
            Whether the monitored phase is in progress this cycle.
        edge:
            The shared prescaler's counting edge.
        """
        if self.sticky:
            if enabled:
                self._accum = True
        elif not enabled:
            self._accum = False
        if edge:
            if self._armed and self._accum and self.count < self.units:
                self.count += 1
            self._armed = True
            self._accum = not self.sticky
        return self.expired

    def edges_to_expiry(self) -> int:
        """Counting edges still needed to expire, assuming the monitored
        condition holds every cycle until then (a frozen-channel stall).

        The first future edge only *arms* a counter created mid-interval
        (step > 1), so an unarmed counter needs one extra edge.
        """
        remaining = max(0, self.units - self.count)
        return remaining + (0 if self._armed else 1)

    def catch_up(self, edges: int, end_on_edge: bool) -> None:
        """Replay a frozen span of *edges* edges in O(1).

        Exactly equivalent to ``tick(enabled=True, edge=...)`` once per
        skipped cycle: the first edge arms an unarmed counter, every
        armed edge counts (the sticky/AND accumulators are continuously
        satisfied while the condition holds), and the accumulator ends
        reset when the span's last cycle was an edge.  Valid only while
        no expiry falls inside the span — the wake computed from
        :meth:`edges_to_expiry` guarantees that.
        """
        if edges > 0:
            increments = edges if self._armed else edges - 1
            self._armed = True
            if increments > 0:
                self.count = min(self.units, self.count + increments)
        self._accum = (not self.sticky) if end_on_edge else True

    @property
    def expired(self) -> bool:
        return self.count >= self.units

    @property
    def elapsed_estimate(self) -> int:
        """Elapsed phase time estimate in cycles (count × step)."""
        return self.count * self.step

    def rearm(self, budget: int) -> None:
        """Restart the counter for a new phase with a new budget."""
        self.units = units_for(budget, self.step)
        self.count = 0
        self._armed = self.step == 1
        self._accum = not self.sticky

    @property
    def width(self) -> int:
        return max(1, math.ceil(math.log2(self.units + 1)))


# ----------------------------------------------------------------------
# Vectorized counter-population helpers
# ----------------------------------------------------------------------
def edges_to_expiry_array(counters) -> list:
    """Per-counter :meth:`PrescaledCounter.edges_to_expiry`, batched.

    One fused array expression over the whole population instead of a
    python-level loop; identical results by construction (``max(0,
    units - count) + (0 if armed else 1)`` element-wise).
    """
    if HAVE_NUMPY and len(counters) >= VECTOR_THRESHOLD:
        n = len(counters)
        units = _np.fromiter((c.units for c in counters), _np.int64, n)
        counts = _np.fromiter((c.count for c in counters), _np.int64, n)
        unarmed = _np.fromiter((not c._armed for c in counters), _np.int64, n)
        return (_np.maximum(0, units - counts) + unarmed).tolist()
    return [counter.edges_to_expiry() for counter in counters]


def catch_up_array(counters, edges: int, end_on_edge: bool) -> None:
    """Apply :meth:`PrescaledCounter.catch_up` across *counters* at once.

    The increment/clamp arithmetic runs as three array ops; the scalar
    write-back loop only stores results.  Exactly equivalent to calling
    ``counter.catch_up(edges, end_on_edge)`` on each counter — same
    preconditions (no expiry inside the span) and same post-state.
    """
    if edges > 0 and HAVE_NUMPY and len(counters) >= VECTOR_THRESHOLD:
        n = len(counters)
        units = _np.fromiter((c.units for c in counters), _np.int64, n)
        counts = _np.fromiter((c.count for c in counters), _np.int64, n)
        armed = _np.fromiter((c._armed for c in counters), _np.int64, n)
        increments = edges - 1 + armed
        counts = _np.minimum(units, counts + _np.maximum(increments, 0))
        for counter, count in zip(counters, counts.tolist()):
            counter.count = count
            counter._armed = True
            counter._accum = (not counter.sticky) if end_on_edge else True
        return
    for counter in counters:
        counter.catch_up(edges, end_on_edge)
