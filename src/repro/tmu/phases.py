"""Transaction phase definitions (paper Figs. 4-6).

The Full-Counter (Fc) variant times each transaction *phase* with its own
counter; the Tiny-Counter (Tc) variant times the whole transaction with a
single counter.  Phase members carry the paper's waveform labels
(``AWVLD_AWRDY`` etc.) so logs and benches read like the figures.
"""

from __future__ import annotations

import enum


class WritePhase(enum.IntEnum):
    """The six monitored phases of a write transaction (Fig. 4)."""

    AW_HANDSHAKE = 0  # aw_valid -> aw_ready
    W_ENTRY = 1       # aw_ready -> first w_valid
    W_FIRST_HS = 2    # w_valid -> w_ready (first beat)
    W_DATA = 3        # w_first -> w_last
    B_WAIT = 4        # w_last -> b_valid (incl. ID / correctness checks)
    B_HANDSHAKE = 5   # b_valid -> b_ready

    @property
    def label(self) -> str:
        return _WRITE_LABELS[self]


class ReadPhase(enum.IntEnum):
    """The four monitored phases of a read transaction (Fig. 5)."""

    AR_HANDSHAKE = 0  # ar_valid -> ar_ready
    R_ENTRY = 1       # ar_ready -> first r_valid
    R_FIRST_HS = 2    # r_valid -> r_ready (first beat)
    R_DATA = 3        # r_first (r_valid) -> r_last

    @property
    def label(self) -> str:
        return _READ_LABELS[self]


class TxnSpan(enum.Enum):
    """Tiny-Counter whole-transaction spans (Fig. 6)."""

    WRITE = "AWVALID_BRESP"
    READ = "ARVALID_RLAST"

    @property
    def label(self) -> str:
        return self.value


_WRITE_LABELS = {
    WritePhase.AW_HANDSHAKE: "AWVLD_AWRDY",
    WritePhase.W_ENTRY: "AWRDY_WVLD",
    WritePhase.W_FIRST_HS: "WVLD_WRDY",
    WritePhase.W_DATA: "WFIRST_WLAST",
    WritePhase.B_WAIT: "WLAST_BVLD",
    WritePhase.B_HANDSHAKE: "BVLD_BRDY",
}

_READ_LABELS = {
    ReadPhase.AR_HANDSHAKE: "ARVLD_ARRDY",
    ReadPhase.R_ENTRY: "ARRDY_RVLD",
    ReadPhase.R_FIRST_HS: "RVLD_RRDY",
    ReadPhase.R_DATA: "RVLD_RLAST",
}

#: Phase count per direction, used by the area model (counter replication).
WRITE_PHASE_COUNT = len(WritePhase)
READ_PHASE_COUNT = len(ReadPhase)
