"""Transaction Monitoring Unit top level (paper Figs. 1-2).

The TMU sits between the AXI4 interconnect (the *host* side) and the
subordinate device (the *device* side).  Under normal operation it is a
transparent wire — transactions traverse with **zero added latency**
while the ID remapper compacts the ID space and the Write/Read Guards
listen in parallel.  On a detected fault it:

1. **severs** both request and response paths to stop error propagation,
2. **aborts** every outstanding transaction by answering the manager
   with ``SLVERR`` responses (and accepting/discarding any in-flight
   request traffic so the manager never deadlocks),
3. raises an **interrupt** for software recovery routines, and
4. requests the external **reset unit** to reinitialize the subordinate;
   on acknowledgment it clears its tables and resumes monitoring.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from ..axi.channels import BBeat, RBeat, remap_id
from ..axi.id_remap import IdRemapTable
from ..axi.interface import AxiInterface
from ..axi.types import Resp
from ..sim.component import Component
from ..sim.signal import Wire
from .config import TmuConfig
from .events import FaultEvent
from .read_guard import ReadGuard
from .write_guard import WriteGuard


class TmuState(enum.Enum):
    """Top-level fault-handling FSM."""

    MONITOR = "monitor"
    RECOVER = "recover"


#: The five AXI channels, request side first.
_CHANNELS = ("aw", "w", "ar", "b", "r")

#: Channels whose source is the host side (the rest source from device).
_REQUEST_CHANNELS = frozenset({"aw", "w", "ar"})


class _TmuChannel(Component):
    """Drive-only child covering one AXI channel of the TMU.

    Mirrors the crossbar's per-channel children: the kernel re-runs
    exactly the channels whose wires moved, so a long W burst streams
    through the W passthrough without re-probing the ID remap tables or
    re-evaluating the guards' capacity stalls on AW/AR, and idle
    response channels cost nothing.  All state lives in the parent TMU;
    the parent re-schedules every channel (via its overridden
    ``schedule_drive``) whenever mode or drive-visible monitor state
    changes.
    """

    demand_driven = True
    phase_period = 1

    def __init__(self, tmu: "TransactionMonitoringUnit", channel: str) -> None:
        super().__init__(f"{tmu.name}.{channel}")
        self.tmu = tmu
        self.channel = channel

    def inputs(self):
        src, dst = _channel_endpoints(self.tmu, self.channel)
        return (src.valid, src.payload, dst.ready)

    def outputs(self):
        src, dst = _channel_endpoints(self.tmu, self.channel)
        return (dst.valid, dst.payload, src.ready)

    def drive(self) -> None:
        self.tmu._drive_channel(self.channel)


def _channel_endpoints(tmu: "TransactionMonitoringUnit", ch: str):
    """(source channel, destination channel) for one AXI channel.

    Single source of truth for the direction mapping: the children's
    declared sensitivity lists and the parent's ``_drive_channel`` must
    agree on which side sources each channel, or the scheduler would
    skip re-runs the drive actually needs.
    """
    if ch in _REQUEST_CHANNELS:
        return getattr(tmu.host, ch), getattr(tmu.device, ch)
    return getattr(tmu.device, ch), getattr(tmu.host, ch)


class TransactionMonitoringUnit(Component):
    """Drop-in AXI4 transaction monitor (Tiny- or Full-Counter).

    Parameters
    ----------
    host:
        Interface toward the AXI4 interconnect / manager.
    device:
        Interface toward the monitored subordinate.
    config:
        Variant, capacity, budgets, prescaler — see :class:`TmuConfig`.
    standalone_ack_after:
        When set, the TMU self-acknowledges its reset request after this
        many cycles — convenient for IP-level setups without an external
        reset unit.  System-level setups leave this ``None`` and wire
        ``reset_req``/``reset_ack`` to a real reset unit.
    """

    demand_driven = True
    demand_update = True

    def __init__(
        self,
        name: str,
        host: AxiInterface,
        device: AxiInterface,
        config: Optional[TmuConfig] = None,
        standalone_ack_after: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.host = host
        self.device = device
        self.config = config if config is not None else TmuConfig()
        self.standalone_ack_after = standalone_ack_after

        self.write_guard = WriteGuard(self.config)
        self.read_guard = ReadGuard(self.config)
        self.remap_w = IdRemapTable(self.config.max_uniq_ids)
        self.remap_r = IdRemapTable(self.config.max_uniq_ids)
        self._channels = [_TmuChannel(self, ch) for ch in _CHANNELS]
        # Any traffic on either side keeps the guards observing; the
        # update-quiescence predicate and wake list both key off these.
        self._watch_channels = [
            getattr(bus, ch) for bus in (host, device) for ch in _CHANNELS
        ]
        self._watch_valids = [ch.valid for ch in self._watch_channels]

        #: interrupt request to the platform interrupt controller.
        self.irq = Wire(f"{name}.irq", False)
        #: reset request to the external reset unit.
        self.reset_req = Wire(f"{name}.reset_req", False)
        #: reset acknowledgment from the external reset unit (input).
        self.reset_ack = Wire(f"{name}.reset_ack", False)

        self.state = TmuState.MONITOR
        self.cycle = 0
        self.fault_events: List[FaultEvent] = []
        self.faults_handled = 0
        self._irq_pending = False
        self._req_state = False
        self._ack_seen = False
        self._self_ack_countdown: Optional[int] = None
        self._abort_b: Deque[int] = deque()
        self._abort_r: Deque[int] = deque()
        self._w_drain_remaining = 0

    # ------------------------------------------------------------------
    # Introspection / software API (used by the register file)
    # ------------------------------------------------------------------
    @property
    def phase_period(self) -> int:
        """Lockstep-batch periodicity declaration (see ``sim.component``).

        The guards' free-running prescaler is the TMU's only
        absolute-time state — its phase is ``cycle % prescale_step``
        (resynced in O(1) across skipped spans) — so TMU behaviour is
        invariant under stimulus shifts by multiples of the step.
        """
        return self.config.prescale_step

    @property
    def fault_active(self) -> bool:
        return self.state == TmuState.RECOVER

    @property
    def irq_pending(self) -> bool:
        return self._irq_pending

    def clear_irq(self) -> None:
        """Software interrupt acknowledgment (register write)."""
        self._irq_pending = False
        self.schedule_drive()

    @property
    def last_fault(self) -> Optional[FaultEvent]:
        return self.fault_events[-1] if self.fault_events else None

    # ------------------------------------------------------------------
    # Component protocol
    # ------------------------------------------------------------------
    def wires(self):
        yield from self.host.wires()
        yield from self.device.wires()
        yield self.irq
        yield self.reset_req
        yield self.reset_ack

    def children(self):
        return self._channels

    def inputs(self):
        # Wire sensitivity lives on the per-channel children; the parent
        # drive only refreshes irq/reset_req from registered state and
        # must not re-trigger on datapath wire changes.  reset_ack is
        # only sampled in update(), which always runs.
        return ()

    def outputs(self):
        return (self.irq, self.reset_req)

    def update_inputs(self):
        # A valid rising anywhere (or the reset handshake moving) ends
        # quiescence.  Ready wires are watched too: the TMU may now
        # sleep through a held-valid stall (deaf channel), and the only
        # event that can unfreeze such a channel is its ready rising.
        return (
            *(ch.valid for ch in self._watch_channels),
            *(ch.ready for ch in self._watch_channels),
            self.reset_ack,
        )

    def quiescent(self):
        # Provably no-op update: monitoring, and no handshake can fire
        # next edge (no channel holds valid & ready — any change that
        # could fire one goes through a watched wire and wakes us
        # first).  Guards with armed counters are pure countdowns across
        # such a frozen span, so they may sleep too — but only under a
        # timed wake at the earliest possible expiry; the skipped edges
        # are replayed exactly by GuardBase.catch_up() on wake.  A
        # disabled TMU stays awake: its update is already trivial, and
        # direct config.enabled flips need no wake path.
        if not self.config.enabled or self.state is not TmuState.MONITOR:
            return False
        for ch in self._watch_channels:
            if ch.valid._value and ch.ready._value:
                return False
        wake = None
        for guard in (self.write_guard, self.read_guard):
            if guard.idle:
                continue
            stamp = guard.next_timeout_stamp(self.cycle)
            if stamp is not None and (wake is None or stamp < wake):
                wake = stamp
        if wake is not None:
            # self.cycle is this update's stamp (sim.cycle + 1); the
            # expiry update stamped `wake` runs in the step at wake - 1.
            self.wake_at(self._sim.cycle + (wake - self.cycle))
        return True

    def snapshot_state(self):
        return (
            self.state,
            self.faults_handled,
            len(self.fault_events),
            self._irq_pending,
            self._req_state,
            self._ack_seen,
            self._self_ack_countdown,
            tuple(self._abort_b),
            tuple(self._abort_r),
            self._w_drain_remaining,
            self.remap_w.snapshot_state(),
            self.remap_r.snapshot_state(),
            self.write_guard.snapshot_state(),
            self.read_guard.snapshot_state(),
        )

    def schedule_drive(self) -> None:
        """Invalidate the irq/reset drive *and* every channel drive.

        The TMU's drive-visible state (FSM mode, remap tables, guard
        occupancy, abort queues, the software enable bit) is shared by
        all five channel children, so any mutation conservatively
        re-schedules them all — wire-level sensitivity still keeps idle
        channels from re-running in steady state.  Callers (register
        writes, ``clear_irq``, update-phase changes) go through here
        unchanged.
        """
        super().schedule_drive()
        for channel in self._channels:
            channel.schedule_drive()

    def drive(self) -> None:
        self.irq.value = self._irq_pending
        self.reset_req.value = self._req_state

    # -- drive helpers ---------------------------------------------------
    def _drive_channel(self, ch: str) -> None:
        """Drive one AXI channel according to the current mode."""
        src, dst = _channel_endpoints(self, ch)
        if not self.config.enabled:
            # Disabled TMU: a pure wire, no remapping, no monitoring.
            dst.valid.value = src.valid.value
            dst.payload.value = src.payload.value
            src.ready.value = dst.ready.value
        elif self.state == TmuState.MONITOR:
            self._drive_monitor_channel(ch)
        else:
            self._drive_recover_channel(ch)

    def _drive_monitor_channel(self, ch: str) -> None:
        host, device = self.host, self.device
        if ch == "aw":
            # AW: remap + capacity stall.
            self._drive_request_addr(
                host.aw, device.aw, self.remap_w, self.write_guard
            )
        elif ch == "w":
            # W: straight passthrough (no ID on the W channel).
            device.w.valid.value = host.w.valid.value
            device.w.payload.value = host.w.payload.value
            host.w.ready.value = device.w.ready.value
        elif ch == "ar":
            self._drive_request_addr(
                host.ar, device.ar, self.remap_r, self.read_guard
            )
        elif ch == "b":
            # B / R: un-remap; sink responses whose ID is not live.
            self._drive_response(device.b, host.b, self.remap_w)
        else:
            self._drive_response(device.r, host.r, self.remap_r)

    def _drive_request_addr(self, src, dst, remap, guard) -> None:
        beat = src.payload.value
        stall = True
        slot = None
        if src.valid.value and beat is not None:
            slot = remap.probe(beat.id)
            stall = slot is None or not guard.can_accept(slot)
        forward = bool(src.valid.value and not stall)
        dst.valid.value = forward
        dst.payload.value = remap_id(beat, slot) if forward else None
        src.ready.value = bool(dst.ready.value and forward)

    def _drive_response(self, src, dst, remap) -> None:
        beat = src.payload.value
        if src.valid.value and beat is not None:
            orig = remap.orig_of(beat.id)
            if orig is None:
                # Unrequested response: never propagate toward the host.
                dst.idle()
                src.ready.value = True
                return
            dst.drive(remap_id(beat, orig))
            src.ready.value = dst.ready.value
        else:
            dst.idle()
            src.ready.value = dst.ready.value

    def _drive_recover_channel(self, ch: str) -> None:
        host, device = self.host, self.device
        if ch in _REQUEST_CHANNELS:
            # Device side severed (no requests forwarded); host side
            # accepted and discarded — the TMU acts as a default error
            # subordinate so the manager never deadlocks.
            dst = getattr(device, ch)
            dst.valid.value = False
            dst.payload.value = None
            getattr(host, ch).ready.value = True
        elif ch == "b":
            device.b.ready.value = True  # drain device responses
            if self._abort_b:
                host.b.drive(BBeat(id=self._abort_b[0], resp=Resp.SLVERR))
            else:
                host.b.idle()
        else:
            device.r.ready.value = True
            if self._abort_r:
                host.r.drive(
                    RBeat(id=self._abort_r[0], data=0, resp=Resp.SLVERR, last=True)
                )
            else:
                host.r.idle()

    # -- update ------------------------------------------------------------
    def update(self) -> None:
        sim = self._sim
        if sim is not None:
            now = sim.cycle + 1
            skipped = now - self.cycle - 1
            if skipped > 0:
                # Waking from quiescence (enabled MONITOR, channels
                # frozen — nothing else ever skips): the skipped span
                # advanced the free-running prescalers and fed their
                # edges to any armed counters, with no expiry inside
                # the span (the timed wake from quiescent() lands on
                # the earliest one).  Replay it in O(#counters) so
                # detection timing stays cycle-exact.
                self.write_guard.catch_up(skipped)
                self.read_guard.catch_up(skipped)
            self.cycle = now
        else:
            self.cycle += 1
        if not self.config.enabled:
            return
        if self.state == TmuState.MONITOR:
            self._update_monitor()
        else:
            self._update_recover()

    def _update_monitor(self) -> None:
        host, device = self.host, self.device
        changed = False
        # Commit ID-remap references on accepted addresses.
        if device.aw.fired():
            self.remap_w.acquire(host.aw.payload.value.id)
            changed = True
        if device.ar.fired():
            self.remap_r.acquire(host.ar.payload.value.id)
            changed = True

        events = self.write_guard.observe(
            device.aw,
            device.w,
            device.b,
            cycle=self.cycle,
            orig_id_of=self.remap_w.orig_of,
        )
        events += self.read_guard.observe(
            device.ar,
            device.r,
            cycle=self.cycle,
            orig_id_of=self.remap_r.orig_of,
        )
        # Release remap references for transactions the guards completed.
        for tid in self.write_guard.drain_completed():
            self.remap_w.release(tid)
            changed = True
        for tid in self.read_guard.drain_completed():
            self.remap_r.release(tid)
            changed = True
        # Guard occupancy (can_accept) moves only on the fired/drain
        # events flagged above; budget counters ticking toward a trip are
        # invisible to drive() until the trip itself.

        tripping = [
            event
            for event in events
            if (
                self.write_guard
                if event.direction.value == "write"
                else self.read_guard
            ).should_trip(event)
        ]
        if tripping:
            self._enter_recover(tripping)
            changed = True
        if changed:
            self.schedule_drive()

    def _enter_recover(self, tripping: List[FaultEvent]) -> None:
        self.fault_events.extend(tripping)
        self.faults_handled += 1
        self._abort_b = deque(self.write_guard.outstanding_orig_ids())
        self._abort_r = deque(self.read_guard.outstanding_orig_ids())
        self._w_drain_remaining = self.write_guard.unfinished_write_bursts()
        self.write_guard.clear()
        self.read_guard.clear()
        self.remap_w.clear()
        self.remap_r.clear()
        self._irq_pending = True
        self._req_state = True
        self._ack_seen = False
        self._self_ack_countdown = self.standalone_ack_after
        self.state = TmuState.RECOVER

    def _update_recover(self) -> None:
        host = self.host
        changed = False
        # Requests arriving during recovery are accepted and aborted.
        if host.aw.fired():
            self._abort_b.append(host.aw.payload.value.id)
            self._w_drain_remaining += 1
            changed = True
        if host.ar.fired():
            self._abort_r.append(host.ar.payload.value.id)
            changed = True
        if host.w.fired():
            beat = host.w.payload.value
            if beat is not None and beat.last and self._w_drain_remaining > 0:
                self._w_drain_remaining -= 1
        if host.b.fired() and self._abort_b:
            self._abort_b.popleft()
            changed = True
        if host.r.fired() and self._abort_r:
            self._abort_r.popleft()
            changed = True

        # Reset handshake with the external (or standalone) reset unit.
        if self._self_ack_countdown is not None:
            if self._self_ack_countdown > 0:
                self._self_ack_countdown -= 1
            ack = self._self_ack_countdown == 0
        else:
            ack = bool(self.reset_ack.value)
        if ack and self._req_state:
            self._req_state = False
            self._ack_seen = True
            changed = True
        if (
            self._ack_seen
            and not self._abort_b
            and not self._abort_r
            and self._w_drain_remaining == 0
        ):
            self.state = TmuState.MONITOR
            changed = True
        if changed:
            self.schedule_drive()

    def reset(self) -> None:
        self.write_guard = WriteGuard(self.config)
        self.read_guard = ReadGuard(self.config)
        self.remap_w.clear()
        self.remap_r.clear()
        self.state = TmuState.MONITOR
        self.cycle = 0
        self.fault_events.clear()
        self.faults_handled = 0
        self._irq_pending = False
        self._req_state = False
        self._ack_seen = False
        self._self_ack_countdown = None
        self._abort_b.clear()
        self._abort_r.clear()
        self._w_drain_remaining = 0
        self.schedule_drive()
