"""Read Guard: monitors the AR/R channels (paper §II-A, Figs. 1-2, 5).

Mirrors the Write Guard for the read direction: four phases in the
Full-Counter variant (``ARVLD_ARRDY``, ``ARRDY_RVLD``, ``RVLD_RRDY``,
``RVLD_RLAST``) or a single ``ARVALID→RLAST`` span in the Tiny-Counter
variant.  R beats are routed to the head of their ID's FIFO, honouring
AXI4's same-ID ordering; mismatched or unrequested R IDs are flagged.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..axi.types import AxiDir
from ..sim.signal import Channel
from .config import TmuConfig
from .events import FaultEvent, FaultKind
from .guard import GuardBase
from .ott import LdEntry
from .phases import ReadPhase, TxnSpan


class ReadGuard(GuardBase):
    """Per-cycle observer of the read channels on the device side."""

    def __init__(self, config: TmuConfig) -> None:
        super().__init__(config, AxiDir.READ)

    # ------------------------------------------------------------------
    # GuardBase hooks
    # ------------------------------------------------------------------
    def _front_phase(self):
        return TxnSpan.READ if self.tiny else ReadPhase.AR_HANDSHAKE

    def _entry_phase(self, entry: LdEntry):
        return entry.state

    # ------------------------------------------------------------------
    # Main per-cycle observation
    # ------------------------------------------------------------------
    def observe(
        self,
        ar: Channel,
        r: Channel,
        cycle: int,
        orig_id_of: Optional[Callable[[int], int]] = None,
    ) -> List[FaultEvent]:
        """Digest one settled cycle of the read channels."""
        edge = self.prescaler.advance()
        events: List[FaultEvent] = []
        self._observe_ar(ar, cycle, events, orig_id_of)
        self._observe_r(r, cycle, events)
        events.extend(self._tick_counters(edge, cycle))
        return events

    # ------------------------------------------------------------------
    # AR: address handshake and enqueue
    # ------------------------------------------------------------------
    def _observe_ar(self, ar: Channel, cycle, events, orig_id_of) -> None:
        valid = bool(ar.valid.value)
        ready = bool(ar.ready.value)
        if self.stab_addr.check(valid, ready):
            events.append(
                self._event(
                    FaultKind.HANDSHAKE_VIOLATION,
                    self._front_phase(),
                    cycle,
                    detail="ar_valid deasserted before ar_ready",
                )
            )
            self.front.release()
        if valid and ready:
            self._enqueue(ar.payload.value, cycle, orig_id_of)
        elif valid and not self.front.active:
            beat = ar.payload.value
            beats = beat.len + 1
            queued = self.ott.ei_pending_beats()
            if self.tiny:
                budget = self.budgets.span_budget(beats, queued)
            else:
                budget = self.budgets.read_phase_budget(
                    ReadPhase.AR_HANDSHAKE, beats, queued
                )
            self.front.arm(self.new_counter(budget), cycle)

    def _enqueue(self, beat, cycle, orig_id_of) -> None:
        front_start = self.front.start_cycle
        front_counter = self.front.release()
        hs_latency = cycle - front_start if front_start is not None else 0
        tid = beat.id
        orig = orig_id_of(tid) if orig_id_of is not None else tid
        # Queue-waiting bonus in *beats* ahead (§II-F).
        queued = self.ott.ei_pending_beats()
        entry = self.ott.enqueue(
            tid, orig, AxiDir.READ, beat.addr, beat.len + 1, cycle
        )
        entry.phase_latencies[ReadPhase.AR_HANDSHAKE] = hs_latency
        if self.tiny:
            entry.state = TxnSpan.READ
            if front_counter is not None:
                entry.counter = front_counter  # single span counter, Fig. 6
            else:
                entry.counter = self.new_counter(
                    self.budgets.span_budget(entry.beats, queued)
                )
        else:
            entry.state = ReadPhase.R_ENTRY
            entry.counter = self.new_counter(
                self.budgets.read_phase_budget(
                    ReadPhase.R_ENTRY, entry.beats, queued
                )
            )
        entry.phase_start_cycle = cycle

    # ------------------------------------------------------------------
    # R: data beats routed to the per-ID FIFO head
    # ------------------------------------------------------------------
    def _observe_r(self, r: Channel, cycle, events) -> None:
        valid = bool(r.valid.value)
        fired = r.fired()
        if self.stab_resp.check(valid, r.ready.value):
            events.append(
                self._event(
                    FaultKind.HANDSHAKE_VIOLATION,
                    ReadPhase.R_DATA,
                    cycle,
                    detail="r_valid deasserted before r_ready",
                )
            )
        if not valid:
            self._edge("r_unreq", False)
            return
        beat = r.payload.value
        head = self.ott.head_of(beat.id)
        if head is None:
            if self._edge("r_unreq", True):
                events.append(
                    self._event(
                        FaultKind.UNREQUESTED_RESPONSE,
                        ReadPhase.R_DATA,
                        cycle,
                        detail=f"R beat with untracked ID {beat.id}",
                    )
                )
            return
        if self.tiny:
            if fired:
                self._count_r_beat(head, beat, cycle, events)
            return
        if head.state == ReadPhase.R_ENTRY:
            head.phase_latencies[ReadPhase.R_ENTRY] = (
                cycle - head.phase_start_cycle
            )
            head.state = ReadPhase.R_FIRST_HS
            head.counter.rearm(
                self.budgets.read_phase_budget(ReadPhase.R_FIRST_HS, head.beats)
            )
            head.phase_start_cycle = cycle
        if head.state == ReadPhase.R_FIRST_HS and fired:
            head.phase_latencies[ReadPhase.R_FIRST_HS] = (
                cycle - head.phase_start_cycle
            )
            head.state = ReadPhase.R_DATA
            head.counter.rearm(
                self.budgets.read_phase_budget(ReadPhase.R_DATA, head.beats)
            )
            head.phase_start_cycle = cycle
            self._count_r_beat(head, beat, cycle, events)
        elif head.state == ReadPhase.R_DATA and fired:
            self._count_r_beat(head, beat, cycle, events)

    def _count_r_beat(self, head: LdEntry, beat, cycle, events) -> None:
        head.beats_seen += 1
        if beat.resp.is_error and self._edge(f"r_err_{head.index}", True):
            events.append(
                self._event(
                    FaultKind.ERROR_RESPONSE,
                    head.state,
                    cycle,
                    entry=head,
                    detail=f"subordinate returned {beat.resp.name}",
                )
            )
        if beat.last:
            if head.beats_seen != head.beats:
                events.append(
                    self._event(
                        FaultKind.WRONG_LAST,
                        head.state,
                        cycle,
                        entry=head,
                        detail=(
                            f"r_last after {head.beats_seen} beats, "
                            f"expected {head.beats}"
                        ),
                    )
                )
            if not self.tiny:
                head.phase_latencies[ReadPhase.R_DATA] = (
                    cycle - head.phase_start_cycle
                )
            self._complete(head, cycle)
        elif head.beats_seen >= head.beats:
            events.append(
                self._event(
                    FaultKind.WRONG_LAST,
                    head.state,
                    cycle,
                    entry=head,
                    detail=(
                        f"beat {head.beats_seen} of {head.beats} without r_last"
                    ),
                )
            )

    def _complete(self, entry: LdEntry, cycle: int) -> None:
        self._edge_state.pop(f"r_err_{entry.index}", None)
        self.perf.record_completion(
            entry.orig_id,
            entry.addr,
            entry.beats,
            entry.enqueue_cycle,
            cycle,
            entry.phase_latencies,
        )
        self.ott.dequeue_head(entry.tid)
        self.completed_tids.append(entry.tid)
