"""Campaign orchestration: shard, parallelize and cache injection sweeps.

The paper's headline experiments are fault-injection *campaigns* — many
independent simulations swept over TMU configs, injection stages and
phase offsets.  This package turns any such sweep into a deterministic
shard plan, executes it serially or across a ``multiprocessing`` worker
pool, caches completed shards on disk, and aggregates results back into
the exact order the serial runners produce.

Layers (one module each):

* :mod:`~repro.orchestrate.spec` — :class:`CampaignSpec` → canonical
  :class:`RunSpec` list → :class:`Shard` plan, plus the spec hash.
* :mod:`~repro.orchestrate.executor` — serial and process-pool shard
  executors; per-worker harness construction.
* :mod:`~repro.orchestrate.cache` — shard-granular JSON result cache.
* :mod:`~repro.orchestrate.progress` — live progress/ETA reporting.
* :mod:`~repro.orchestrate.engine` — :func:`run_campaign_spec`, the
  driver tying the above together.

``repro.faults.campaign.run_campaign`` and
``repro.soc.experiment.run_fig11`` are thin wrappers over this engine;
``python -m repro campaign`` exposes it from the shell.
"""

from .cache import ResultCache
from .engine import run_campaign_spec
from .executor import (
    SerialExecutor,
    WorkerPoolExecutor,
    default_workers,
    execute_run,
    execute_shard,
    make_executor,
)
from .progress import ProgressReporter
from .serialize import (
    SpecSerializationError,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from .spec import CampaignSpec, RunSpec, Shard, plan_shards

__all__ = [
    "CampaignSpec",
    "ProgressReporter",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "Shard",
    "SpecSerializationError",
    "WorkerPoolExecutor",
    "config_from_dict",
    "config_to_dict",
    "default_workers",
    "execute_run",
    "execute_shard",
    "make_executor",
    "plan_shards",
    "result_from_dict",
    "result_to_dict",
    "run_campaign_spec",
]
