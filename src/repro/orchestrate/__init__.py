"""Campaign orchestration: shard, parallelize and cache injection sweeps.

The paper's headline experiments are fault-injection *campaigns* — many
independent simulations swept over TMU configs, injection stages and
phase offsets.  This package turns any such sweep into a deterministic
shard plan, executes it serially or across a ``multiprocessing`` worker
pool, caches completed shards on disk, and aggregates results back into
the exact order the serial runners produce.

Layers (one module each):

* :mod:`~repro.orchestrate.spec` — :class:`CampaignSpec` → canonical
  :class:`RunSpec` list → :class:`Shard` plan, plus the spec hash.
* :mod:`~repro.orchestrate.executor` — serial and process-pool shard
  executors; per-worker harness construction.
* :mod:`~repro.orchestrate.remote` — the distributed wire protocol:
  length-prefixed JSON frames and the pull conversation.
* :mod:`~repro.orchestrate.distributed` — the TCP coordinator
  (:class:`DistributedExecutor`), lease-based shard assignment with
  reassignment on worker death, and the worker pull loop.
* :mod:`~repro.orchestrate.batch` — the lockstep batch executor
  (:class:`BatchExecutor`): packs of same-config lanes derived from one
  scalar leader run, with evidence-gated retirement to the scalar
  kernel.
* :mod:`~repro.orchestrate.cache` — shard-granular JSON result cache;
  atomic writes, defensive loads, the campaign-resume substrate.
* :mod:`~repro.orchestrate.store` — the run-granular tiered result
  store (:class:`ResultStore`): hot LRU over warm SQLite over the cold
  shard-JSON archive; the substrate for incremental sub-campaign reuse.
* :mod:`~repro.orchestrate.progress` — live progress/ETA reporting.
* :mod:`~repro.orchestrate.engine` — :func:`run_campaign_spec`, the
  driver tying the above together.

``repro.faults.campaign.run_campaign`` and
``repro.soc.experiment.run_fig11`` are thin wrappers over this engine;
``python -m repro campaign`` (plus ``repro serve`` / ``repro worker``
for the distributed pair) exposes it from the shell.
"""

from .batch import BatchExecutor, BatchStats
from .cache import ResultCache, sweep_stale_tmp
from .distributed import (
    DistributedExecutor,
    DistributedTimeout,
    ShardBoard,
    worker_loop,
)
from .engine import run_campaign_spec
from .executor import (
    SerialExecutor,
    WorkerPoolExecutor,
    default_workers,
    execute_run,
    execute_shard,
    make_executor,
)
from .progress import ProgressReporter
from .remote import PROTOCOL_VERSION, ProtocolError, recv_frame, send_frame
from .serialize import (
    SpecSerializationError,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
    run_from_dict,
    run_to_dict,
    shard_from_dict,
    shard_to_dict,
)
from .spec import CampaignSpec, RunSpec, Shard, plan_shards
from .store import STORE_FORMAT, ResultStore

__all__ = [
    "BatchExecutor",
    "BatchStats",
    "CampaignSpec",
    "DistributedExecutor",
    "DistributedTimeout",
    "PROTOCOL_VERSION",
    "ProgressReporter",
    "ProtocolError",
    "ResultCache",
    "ResultStore",
    "RunSpec",
    "STORE_FORMAT",
    "SerialExecutor",
    "Shard",
    "ShardBoard",
    "SpecSerializationError",
    "WorkerPoolExecutor",
    "config_from_dict",
    "config_to_dict",
    "default_workers",
    "execute_run",
    "execute_shard",
    "make_executor",
    "plan_shards",
    "recv_frame",
    "result_from_dict",
    "result_to_dict",
    "run_campaign_spec",
    "run_from_dict",
    "run_to_dict",
    "send_frame",
    "shard_from_dict",
    "shard_to_dict",
    "sweep_stale_tmp",
    "worker_loop",
]
