"""Lockstep batch executor: N same-config lanes, one interpreter pass.

The third executor axis next to :class:`~repro.orchestrate.executor.
SerialExecutor` and :class:`~repro.orchestrate.executor.
WorkerPoolExecutor`.  Campaign runs that differ only in their seed are
pure *time shifts* of one another (seeds map to the IP harness's
``issue_delay`` / the system experiment's ``start_delay``), so instead
of simulating every lane, the executor:

1. groups pending runs by their *batch key* — everything but seed and
   index — across shard boundaries;
2. splits each group into congruence classes modulo the simulation's
   lockstep period (:func:`repro.sim.batch.lockstep_period`, the lcm of
   every component's declared
   :attr:`~repro.sim.component.Component.phase_period`), then into
   packs of at most ``lanes`` lanes;
3. runs one scalar *leader* per pack with a
   :class:`~repro.sim.batch.LeapTrace` probe attached;
4. checks the leader's inert-prefix evidence and derives every
   follower lane's result as ``leader.shifted(delta)`` — O(1) per lane
   instead of a full simulation;
5. *retires* any lane the evidence does not cover (seed inside the
   startup transient, detection horizon crossed, undeclared component,
   non-leaping kernel, forced divergence) to the scalar kernel, so
   coverage degrades gracefully instead of wrongly.

The full soundness argument lives in :mod:`repro.sim.batch`.  The
executor honours the standard ``map(shards) -> (shard_index, results)``
contract, so planning, caching, progress and aggregation in the engine
are untouched — ``--batch-lanes 64`` is byte-identical to the serial
scalar executor by construction, and the differential test battery
(``tests/integration/test_batch_figures.py``) holds it to that.

With ``verify=True`` the executor extends ``strategy="verify"`` to the
batch path: every *derived* lane is additionally replayed on the
scalar verify kernel (which itself re-executes leaped spans and
skipped updates cycle by cycle) and compared field by field; a
mismatch raises :class:`~repro.sim.kernel.SchedulerDivergenceError`
naming the offending lane.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..sim.batch import HAVE_NUMPY, LeapTrace, lane_classes, lockstep_period
from ..sim.kernel import SchedulerDivergenceError
from .executor import execute_run
from .spec import RunSpec, Shard

if HAVE_NUMPY:  # pragma: no branch - plain import split
    import numpy as _np

ShardResult = Tuple[int, list]


@dataclasses.dataclass
class BatchStats:
    """Per-campaign accounting of what the batch executor did."""

    packs: int = 0
    leaders: int = 0
    derived: int = 0
    retired: int = 0  # lanes that fell back to the scalar kernel
    promoted: int = 0  # followers promoted to leader (no inert evidence)

    @property
    def simulated(self) -> int:
        return self.leaders + self.retired


class BatchExecutor:
    """Executes shards by lockstep packs of same-config lanes.

    Parameters
    ----------
    lanes:
        Maximum pack width.  ``1`` degenerates to per-lane scalar
        execution (every pack is its own leader) — handy as the
        differential baseline.
    verify:
        Replay every derived lane on the scalar ``strategy="verify"``
        kernel and compare; divergence raises
        :class:`SchedulerDivergenceError` naming the lane.
    force_retire:
        Predicate over :class:`RunSpec`; matching lanes are retired to
        the scalar kernel unconditionally.  The differential tests use
        it to force mid-pack divergence; operationally it is a
        guard-rail escape hatch.
    derive_hook:
        Test-only seam: maps ``(run, derived_result)`` to the result
        actually recorded, letting the verify tests plant a corrupted
        derivation and watch it get caught.
    """

    workers = 1

    def __init__(
        self,
        lanes: int,
        verify: bool = False,
        force_retire: Optional[Callable[[RunSpec], bool]] = None,
        derive_hook=None,
    ) -> None:
        if lanes <= 0:
            raise ValueError(f"lanes must be positive, got {lanes}")
        self.lanes = lanes
        self.verify = verify
        self.force_retire = force_retire
        self.derive_hook = derive_hook
        self.stats = BatchStats()
        self._reporter = None
        self._metrics = None
        self._metrics_flushed: Dict[str, int] = {}
        self._period_cache: Dict[Tuple, Optional[int]] = {}

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def attach_progress(self, reporter) -> None:
        self._reporter = reporter

    def attach_metrics(self, metrics) -> None:
        """Publish :class:`BatchStats` into *metrics* as ``batch.*``
        counters when ``map`` completes (engine seam, like
        ``attach_progress``)."""
        self._metrics = metrics

    def _flush_metrics(self) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        # Delta against the last flush so repeated map() calls on one
        # executor never double-count.
        for field in dataclasses.fields(BatchStats):
            value = getattr(self.stats, field.name)
            delta = value - self._metrics_flushed.get(field.name, 0)
            if delta:
                metrics.counter(f"batch.{field.name}").inc(delta)
            self._metrics_flushed[field.name] = value

    def map(self, shards: Sequence[Shard]) -> Iterator[ShardResult]:
        runs = [run for shard in shards for run in shard.runs]
        results: Dict[int, object] = {}
        for group in self._group_runs(runs):
            self._execute_group(group, results)
        self._report_status()
        self._flush_metrics()
        for shard in shards:
            yield shard.index, [results[run.index] for run in shard.runs]

    # ------------------------------------------------------------------
    # Grouping and pack planning
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_key(run: RunSpec) -> Tuple:
        """Everything that must match for two runs to share a pack —
        i.e. the whole spec except the seed (and the run's index)."""
        return (
            run.kind,
            json.dumps(run.config, sort_keys=True),
            run.stage,
            run.beats,
            run.background,
            run.detect_timeout,
            run.recovery_timeout,
            run.harness_kwargs,
            run.size,
            run.outstanding,
            run.reorder_depth,
        )

    def _group_runs(self, runs: Sequence[RunSpec]) -> List[List[RunSpec]]:
        groups: Dict[Tuple, List[RunSpec]] = {}
        for run in runs:
            groups.setdefault(self._batch_key(run), []).append(run)
        return list(groups.values())

    def _period_for(self, run: RunSpec) -> Optional[int]:
        """Lockstep period of the harness *run* would build.

        Probed from a real (never-run) harness so the period reflects
        the actual registered components' ``phase_period``
        declarations, not a parallel bookkeeping table.  Cached per
        (kind, config, harness kwargs) — the stage does not change the
        component inventory.
        """
        key = (run.kind, json.dumps(run.config, sort_keys=True),
               run.beats, run.harness_kwargs, run.reorder_depth)
        if key not in self._period_cache:
            kwargs = dict(run.harness_kwargs)
            if run.kind == "ip":
                from ..faults.campaign import IpHarness
                from .serialize import config_from_dict

                if run.reorder_depth and "reorder_depth" not in kwargs:
                    kwargs["reorder_depth"] = run.reorder_depth
                sim = IpHarness(config_from_dict(run.config), **kwargs).sim
            else:
                from ..soc.cheshire import CheshireSoC, system_tmu_config
                from ..tmu.config import Variant

                kwargs.setdefault("reorder_depth", run.reorder_depth)
                sim = CheshireSoC(
                    system_tmu_config(
                        Variant(run.config["variant"]), frame_beats=run.beats
                    ),
                    **kwargs,
                ).sim
            self._period_cache[key] = lockstep_period(sim.components)
        return self._period_cache[key]

    # ------------------------------------------------------------------
    # Pack execution
    # ------------------------------------------------------------------
    def _execute_group(
        self, group: List[RunSpec], results: Dict[int, object]
    ) -> None:
        period = self._period_for(group[0])
        if period is None:
            # An unaudited component (phase_period undeclared): the
            # conservative answer is to batch nothing.
            for run in group:
                results[run.index] = self._scalar(run)
            return
        by_seed: Dict[int, List[RunSpec]] = {}
        for run in group:
            by_seed.setdefault(run.seed, []).append(run)
        for residue_seeds in lane_classes(sorted(by_seed), period).values():
            members = [run for seed in residue_seeds for run in by_seed[seed]]
            for start in range(0, len(members), self.lanes):
                self._execute_pack(members[start : start + self.lanes], results)

    @staticmethod
    def _onset(run: RunSpec) -> int:
        """First stimulus-dependent cycle of *run*.

        System runs idle the whole SoC for ``start_delay`` cycles
        before the frame is even queued, so the onset is the seed
        itself.  IP runs submit at construction with the seed as the
        manager's issue-delay countdown, whose expiry wake (the update
        that raises AW valid next settle) lands one cycle *before* the
        handshake becomes visible — the onset is ``seed - 1``.  Either
        way every event from the onset onward translates rigidly with
        the seed, which is what :meth:`LeapTrace.inert_before` certifies
        against.
        """
        return run.seed if run.kind == "system" else run.seed - 1

    def _execute_pack(
        self, pack: List[RunSpec], results: Dict[int, object]
    ) -> None:
        self.stats.packs += 1
        forced = self.force_retire or (lambda run: False)
        queue: List[RunSpec] = []
        for run in pack:
            # A lane whose onset is at (or before) cycle 1 can never
            # show an inert pre-onset *gap* — the kernel always steps
            # cycle 0 — so it runs scalar unconditionally, as do lanes
            # the caller forcibly retires.
            if self._onset(run) >= 2 and not forced(run):
                queue.append(run)
            else:
                results[run.index] = self._scalar(run)
        while queue:
            leader = queue.pop(0)
            onset = self._onset(leader)
            trace = LeapTrace(onset=onset)
            results[leader.index] = leader_result = execute_run(
                leader, trace=trace
            )
            self.stats.leaders += 1
            if not queue:
                return
            if not trace.inert_before(onset):
                # No evidence from this lane (non-leaping kernel, or
                # the transient reaches its onset): its own result
                # stands, and the next lane — whose later onset leaves
                # more room for the transient — is promoted to leader.
                self.stats.promoted += 1
                continue
            derivable = self._derivable_lanes(leader, leader_result, queue)
            followers, queue = queue, []
            for run, ok in zip(followers, derivable):
                if not ok:
                    results[run.index] = self._scalar(run)
                    continue
                derived = leader_result.shifted(run.seed - leader.seed)
                if self.derive_hook is not None:
                    derived = self.derive_hook(run, derived)
                if self.verify:
                    self._verify_lane(run, leader, derived)
                results[run.index] = derived
                self.stats.derived += 1
                if self._reporter is not None and hasattr(
                    self._reporter, "runs_derived"
                ):
                    self._reporter.runs_derived(1)
            return

    def _derivable_lanes(
        self,
        leader: RunSpec,
        leader_result,
        followers: Sequence[RunSpec],
    ) -> List[bool]:
        """Horizon containment, vectorized over the pack's lane axis.

        IP runs bound detection by an absolute horizon — ``run_until``
        counts ``detect_timeout`` from cycle 0 — so a lane whose
        shifted detection stamp would cross it (or whose leader never
        detected, leaving the censoring point unshiftable) must retire.
        System runs open their window after ``start_delay``; every lane
        shifts cleanly.
        """
        if leader.kind != "ip":
            return [True] * len(followers)
        detect = leader_result.detect_cycle
        if detect is None:
            return [False] * len(followers)
        if HAVE_NUMPY:
            deltas = (
                _np.asarray([run.seed for run in followers], dtype=_np.int64)
                - leader.seed
            )
            return list(detect + deltas <= leader.detect_timeout)
        return [
            detect + (run.seed - leader.seed) <= leader.detect_timeout
            for run in followers
        ]

    # ------------------------------------------------------------------
    # Scalar fallback and verify replay
    # ------------------------------------------------------------------
    def _scalar(self, run: RunSpec):
        self.stats.retired += 1
        return execute_run(run)

    def _verify_lane(self, run: RunSpec, leader: RunSpec, derived) -> None:
        """Replay a derived lane on the scalar verify kernel and compare.

        The verify strategy re-executes every would-be leaped span and
        skipped update cycle by cycle with differential checks, so the
        replay is the strongest available scalar reference.  Result
        equality excludes the scheduler diagnostics by construction
        (``compare=False`` fields), which is exactly right here: the
        verify kernel never leaps.
        """
        kwargs = dict(run.harness_kwargs)
        kwargs["sim_strategy"] = "verify"
        replay_spec = dataclasses.replace(
            run, harness_kwargs=tuple(sorted(kwargs.items()))
        )
        replay = execute_run(replay_spec)
        if replay != derived:
            raise SchedulerDivergenceError(
                f"lockstep batch divergence at lane {run.run_id} (seed "
                f"{run.seed}, pack leader seed {leader.seed}): derived "
                f"result {derived!r} != scalar verify replay {replay!r}"
            )

    # ------------------------------------------------------------------
    def _report_status(self) -> None:
        if self._reporter is not None and hasattr(self._reporter, "set_status"):
            stats = self.stats
            self._reporter.set_status(
                f"batch: {stats.packs} pack(s) | {stats.leaders} leader(s) | "
                f"{stats.derived} derived | {stats.retired} retired | "
                f"{stats.promoted} promoted"
            )
