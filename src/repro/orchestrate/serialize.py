"""Canonical JSON forms of campaign inputs and outputs.

The orchestration engine ships work to worker processes and persists
results in an on-disk cache, so every object crossing those boundaries
needs a faithful, *stable* JSON representation:

* :func:`config_to_dict` / :func:`config_from_dict` round-trip a
  :class:`~repro.tmu.config.TmuConfig` including its budget policy.
  Stability matters doubly here — the canonical dict also feeds the
  campaign spec hash that keys the result cache.
* :func:`result_to_dict` / :func:`result_from_dict` round-trip both
  :class:`~repro.faults.campaign.InjectionResult` and
  :class:`~repro.soc.experiment.SystemInjectionResult` without losing
  any field, so cache hits reproduce the exact objects a live run
  returns (unlike the lossy report-oriented exports in
  :mod:`repro.analysis.export`).
* :func:`run_to_dict` / :func:`run_from_dict` and :func:`shard_to_dict`
  / :func:`shard_from_dict` round-trip the work units themselves, so
  the distributed executor can ship shards to remote workers as the
  same length-prefixed JSON frames (:mod:`repro.orchestrate.remote`)
  that carry the results back.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..tmu.budget import (
    AdaptiveBudgetPolicy,
    FixedBudgetPolicy,
    PhaseBudgets,
    SpanBudgets,
)
from ..tmu.config import TmuConfig, Variant


class SpecSerializationError(TypeError):
    """Raised when a campaign input cannot be canonically serialized."""


# ----------------------------------------------------------------------
# TmuConfig
# ----------------------------------------------------------------------
def budgets_to_dict(budgets: AdaptiveBudgetPolicy) -> Dict[str, Any]:
    """Canonical dict of a budget policy (adaptive or fixed)."""
    if type(budgets) is FixedBudgetPolicy:
        return {
            "type": "fixed",
            "phase_budget": budgets.phase_budget,
            "span_budget_cycles": budgets.span_budget_cycles,
        }
    if type(budgets) is AdaptiveBudgetPolicy:
        return {
            "type": "adaptive",
            "phases": dataclasses.asdict(budgets.phases),
            "span": dataclasses.asdict(budgets.span),
        }
    raise SpecSerializationError(
        f"cannot serialize budget policy of type {type(budgets).__name__}; "
        f"campaign specs support AdaptiveBudgetPolicy and FixedBudgetPolicy"
    )


def budgets_from_dict(data: Dict[str, Any]) -> AdaptiveBudgetPolicy:
    if data["type"] == "fixed":
        return FixedBudgetPolicy(
            phase_budget=data["phase_budget"],
            span_budget_cycles=data["span_budget_cycles"],
        )
    return AdaptiveBudgetPolicy(
        PhaseBudgets(**data["phases"]), SpanBudgets(**data["span"])
    )


def config_to_dict(config: TmuConfig) -> Dict[str, Any]:
    """Canonical, JSON-ready dict of a :class:`TmuConfig`."""
    return {
        "variant": config.variant.value,
        "max_uniq_ids": config.max_uniq_ids,
        "txn_per_id": config.txn_per_id,
        "prescale_step": config.prescale_step,
        "sticky": config.sticky,
        "budgets": budgets_to_dict(config.budgets),
        "protocol_check_immediate": config.protocol_check_immediate,
        "max_txn_cycles": config.max_txn_cycles,
        "error_log_depth": config.error_log_depth,
        "enabled": config.enabled,
        "trip_on_error_resp": config.trip_on_error_resp,
    }


def config_from_dict(data: Dict[str, Any]) -> TmuConfig:
    return TmuConfig(
        variant=Variant(data["variant"]),
        max_uniq_ids=data["max_uniq_ids"],
        txn_per_id=data["txn_per_id"],
        prescale_step=data["prescale_step"],
        sticky=data["sticky"],
        budgets=budgets_from_dict(data["budgets"]),
        protocol_check_immediate=data["protocol_check_immediate"],
        max_txn_cycles=data["max_txn_cycles"],
        error_log_depth=data["error_log_depth"],
        enabled=data["enabled"],
        trip_on_error_resp=data["trip_on_error_resp"],
    )


# ----------------------------------------------------------------------
# Work units (RunSpec / Shard) — shipped to remote workers
# ----------------------------------------------------------------------
def run_to_dict(run) -> Dict[str, Any]:
    """Canonical, JSON-ready dict of a :class:`~.spec.RunSpec`."""
    payload = dataclasses.asdict(run)
    # Tuples flatten to lists under JSON; normalize here so encoded and
    # decoded runs compare equal on both ends of the wire.
    payload["harness_kwargs"] = [list(item) for item in run.harness_kwargs]
    return payload


def run_param_dict(run) -> Dict[str, Any]:
    """The simulation-determining parameters of a run, as plain data.

    Everything that changes what :func:`~.executor.execute_run` computes
    is here; everything that merely names the run's place inside one
    campaign (``index``, and the ``run_id`` derived from it) is not.
    This is the identity the run-granular result store keys on, so the
    same injection reused by two different sweeps hashes identically in
    both.
    """
    return {
        "kind": run.kind,
        "config": run.config,
        "stage": run.stage,
        "seed": run.seed,
        "beats": run.beats,
        "background": run.background,
        "detect_timeout": run.detect_timeout,
        "recovery_timeout": run.recovery_timeout,
        "harness_kwargs": [list(item) for item in run.harness_kwargs],
        "size": run.size,
        "outstanding": run.outstanding,
        "reorder_depth": run.reorder_depth,
    }


def run_from_dict(data: Dict[str, Any]):
    from .spec import RunSpec

    payload = dict(data)
    payload["harness_kwargs"] = tuple(
        (key, value) for key, value in payload.get("harness_kwargs", ())
    )
    return RunSpec(**payload)


def shard_to_dict(shard) -> Dict[str, Any]:
    """Canonical, JSON-ready dict of a :class:`~.spec.Shard`."""
    return {
        "index": shard.index,
        "count": shard.count,
        "runs": [run_to_dict(run) for run in shard.runs],
    }


def shard_from_dict(data: Dict[str, Any]):
    from .spec import Shard

    return Shard(
        index=data["index"],
        count=data["count"],
        runs=tuple(run_from_dict(run) for run in data["runs"]),
    )


# ----------------------------------------------------------------------
# Injection results (IP and system level)
# ----------------------------------------------------------------------
def result_to_dict(result) -> Dict[str, Any]:
    """Full-fidelity dict of an IP- or system-level injection result."""
    # Imported here: the orchestrator is a layer above the runners, and
    # the runners import it lazily for their parallel paths.
    from ..faults.campaign import InjectionResult
    from ..soc.experiment import SystemInjectionResult

    if isinstance(result, InjectionResult):
        kind = "ip"
    elif isinstance(result, SystemInjectionResult):
        kind = "system"
    else:
        raise SpecSerializationError(
            f"cannot serialize result of type {type(result).__name__}"
        )
    payload = dataclasses.asdict(result)
    payload["stage"] = result.stage.value
    payload["kind"] = kind
    return payload


def result_from_dict(data: Dict[str, Any]):
    from ..faults.campaign import InjectionResult
    from ..faults.types import InjectionStage
    from ..soc.experiment import SystemInjectionResult

    payload = dict(data)
    kind = payload.pop("kind")
    payload["stage"] = InjectionStage(payload["stage"])
    cls = InjectionResult if kind == "ip" else SystemInjectionResult
    return cls(**payload)
