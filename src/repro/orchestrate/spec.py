"""Work partitioning: campaign specs, run enumeration, shard plans.

A fault-injection campaign is a cross-product sweep — TMU configs ×
injection stages × phase-offset seeds.  :class:`CampaignSpec` captures
the whole sweep as plain, canonically-ordered data; :meth:`runs` expands
it into :class:`RunSpec` units in the exact order the serial runners
(:func:`repro.faults.campaign.run_campaign`,
:func:`repro.soc.experiment.run_fig11`) iterate, so the aggregated
result list of any executor is byte-for-byte the serial one.

Every run carries a stable, human-readable ``run_id`` and its canonical
``index``; :func:`plan_shards` groups runs into contiguous
:class:`Shard` units of work.  The spec's :meth:`spec_hash` keys the
on-disk result cache: any parameter change produces a different hash and
therefore a fresh cache namespace.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..faults.types import InjectionStage
from ..tmu.config import TmuConfig, Variant
from .serialize import SpecSerializationError, config_to_dict, run_param_dict

#: Campaign kinds understood by the executors.
KINDS = ("ip", "system")


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One simulation unit: a single fault injection.

    Everything here is plain JSON-able data so a run can cross a process
    boundary and key a cache entry.  ``config`` is the canonical TMU
    config dict for IP runs; system runs only need ``{"variant": ...}``
    (the system runner derives the paper's budgets itself).
    """

    kind: str
    index: int
    config: Dict[str, Any]
    stage: str
    seed: int
    beats: int
    background: int
    detect_timeout: int
    recovery_timeout: int
    harness_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: AxSIZE of the workload's beats (3 = full-width on the 64-bit bus;
    #: smaller values sweep the narrow-transfer axis).
    size: int = 3
    #: Concurrent outstanding transactions in the workload (1 = the
    #: legacy single-stream shape; higher values stack same- and
    #: cross-ID streams to exercise deep outstanding windows).
    outstanding: int = 1
    #: Subordinate response reorder window (0/1 = strict in-order).
    reorder_depth: int = 0

    @property
    def run_id(self) -> str:
        """Stable identifier, unique within the campaign."""
        return (
            f"{self.kind}-{self.index:06d}-{self.config['variant']}"
            f"-{self.stage}-s{self.seed}"
        )

    def param_key(self) -> str:
        """Content hash of the simulation-determining parameters.

        Unlike :attr:`run_id` (which embeds the campaign-local
        ``index``), this key is independent of the enclosing sweep: the
        same (config, stage, seed, run parameters) tuple hashes the same
        whether it sits in a 12-run subset or a 1200-run superset.  It
        is the lookup identity of the run-granular result store
        (:mod:`repro.orchestrate.store`), which is what lets a superset
        sweep fetch the intersection and simulate only the frontier.
        """
        canonical = json.dumps(run_param_dict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]


@dataclasses.dataclass(frozen=True)
class Shard:
    """A contiguous slice of a campaign's runs, executed as one unit."""

    index: int
    count: int  # total shards in the plan
    runs: Tuple[RunSpec, ...]

    @property
    def run_ids(self) -> List[str]:
        return [run.run_id for run in self.runs]


@dataclasses.dataclass
class CampaignSpec:
    """A complete sweep: configs × stages × seeds, plus run parameters."""

    kind: str
    configs: List[Dict[str, Any]]
    stages: List[str]
    beats: int
    seeds: List[int]
    background: int = 0
    detect_timeout: int = 10_000
    recovery_timeout: int = 2_000
    harness_kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    size: int = 3
    outstanding: int = 1
    reorder_depth: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown campaign kind {self.kind!r}")
        if not self.configs or not self.stages or not self.seeds:
            raise ValueError("campaign needs at least one config, stage and seed")
        try:
            json.dumps(self.canonical_dict(), sort_keys=True)
        except TypeError as exc:
            raise SpecSerializationError(
                f"campaign spec is not JSON-serializable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def ip(
        cls,
        configs: Iterable[TmuConfig],
        stages: Iterable[InjectionStage],
        beats: int = 8,
        seeds: Sequence[int] = (0,),
        detect_timeout: int = 10_000,
        recovery_timeout: int = 2_000,
        harness_kwargs: Optional[Dict[str, Any]] = None,
        size: int = 3,
        outstanding: int = 1,
        reorder_depth: int = 0,
    ) -> "CampaignSpec":
        """IP-level sweep over full TMU configurations (Fig. 9 shape)."""
        return cls(
            kind="ip",
            configs=[config_to_dict(config) for config in configs],
            stages=[stage.value for stage in stages],
            beats=beats,
            seeds=list(seeds),
            detect_timeout=detect_timeout,
            recovery_timeout=recovery_timeout,
            harness_kwargs=dict(harness_kwargs or {}),
            size=size,
            outstanding=outstanding,
            reorder_depth=reorder_depth,
        )

    @classmethod
    def system(
        cls,
        variants: Iterable[Variant],
        stages: Iterable[InjectionStage],
        beats: int = 250,
        seeds: Sequence[int] = (0,),
        background: int = 0,
        detect_timeout: int = 20_000,
        recovery_timeout: int = 5_000,
        harness_kwargs: Optional[Dict[str, Any]] = None,
        size: int = 3,
        outstanding: int = 1,
        reorder_depth: int = 0,
    ) -> "CampaignSpec":
        """System-level sweep over TMU variants (Fig. 11 shape).

        *harness_kwargs* (e.g. ``{"sim_strategy": "exhaustive"}`` or
        ``{"sim_time_leaping": False}``) are forwarded to
        :func:`~repro.soc.experiment.run_system_injection` — the hook
        the kernel-scheduling differential tests use to pit the
        dirty/quiescent/time-leaping kernel against the reference
        sweep on the very same campaign.
        """
        return cls(
            kind="system",
            configs=[{"variant": variant.value} for variant in variants],
            stages=[stage.value for stage in stages],
            beats=beats,
            seeds=list(seeds),
            background=background,
            detect_timeout=detect_timeout,
            recovery_timeout=recovery_timeout,
            harness_kwargs=dict(harness_kwargs or {}),
            size=size,
            outstanding=outstanding,
            reorder_depth=reorder_depth,
        )

    # ------------------------------------------------------------------
    # Enumeration and identity
    # ------------------------------------------------------------------
    def runs(self) -> List[RunSpec]:
        """All runs in canonical (config-major, then stage, then seed) order.

        This is exactly the nesting of the serial runners, which is what
        lets the engine's aggregated output replace their result lists.
        """
        harness_items = tuple(sorted(self.harness_kwargs.items()))
        out: List[RunSpec] = []
        for config in self.configs:
            for stage in self.stages:
                for seed in self.seeds:
                    out.append(
                        RunSpec(
                            kind=self.kind,
                            index=len(out),
                            config=config,
                            stage=stage,
                            seed=seed,
                            beats=self.beats,
                            background=self.background,
                            detect_timeout=self.detect_timeout,
                            recovery_timeout=self.recovery_timeout,
                            harness_kwargs=harness_items,
                            size=self.size,
                            outstanding=self.outstanding,
                            reorder_depth=self.reorder_depth,
                        )
                    )
        return out

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec as plain data, suitable for hashing and archiving.

        A deep copy: the canonical dict gets embedded in campaign JSON
        exports and handed to callers, and a mutation over there must
        never reach back into this spec (whose hash keys the cache).
        """
        return copy.deepcopy(
            {
                "kind": self.kind,
                "configs": self.configs,
                "stages": self.stages,
                "beats": self.beats,
                "seeds": self.seeds,
                "background": self.background,
                "detect_timeout": self.detect_timeout,
                "recovery_timeout": self.recovery_timeout,
                "harness_kwargs": dict(sorted(self.harness_kwargs.items())),
                "size": self.size,
                "outstanding": self.outstanding,
                "reorder_depth": self.reorder_depth,
            }
        )

    def spec_hash(self) -> str:
        """Content hash keying the result cache (first 16 hex chars)."""
        canonical = json.dumps(self.canonical_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def plan_shards(runs: Sequence[RunSpec], shard_size: int = 1) -> List[Shard]:
    """Partition *runs* into contiguous shards of at most *shard_size*.

    The default of one run per shard maximizes both pool load balancing
    and cache granularity (a completed run is never re-simulated, even
    if a later shard of the same campaign crashed).  Larger shards
    amortize per-task pickling for very short runs.
    """
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    chunks = [runs[i : i + shard_size] for i in range(0, len(runs), shard_size)]
    return [
        Shard(index=i, count=len(chunks), runs=tuple(chunk))
        for i, chunk in enumerate(chunks)
    ]
