"""On-disk result cache: completed shards of a campaign are never re-run.

Layout, under the user-chosen cache root::

    <root>/<spec_hash>/spec.json                   # the canonical spec
    <root>/<spec_hash>/shard-000007-of-000024.json # one file per shard

The directory name is the campaign's content hash, so a changed
parameter (budget, stage list, beats, …) can never alias a stale
result.  Each shard file additionally records its run IDs; a file whose
IDs do not match the current plan (e.g. written under a different shard
size) is ignored rather than trusted.

Writes go through a temp file + :func:`os.replace` so a crashed or
killed campaign leaves only loadable shard files behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from .serialize import result_from_dict, result_to_dict
from .spec import CampaignSpec, Shard

#: Bump when the shard-file layout changes incompatibly.
CACHE_FORMAT = 1


class ResultCache:
    """Shard-granular JSON cache for one campaign spec."""

    def __init__(self, root: Union[str, Path], spec: CampaignSpec) -> None:
        self.root = Path(root)
        self.spec = spec
        self.dir = self.root / spec.spec_hash()
        self.dir.mkdir(parents=True, exist_ok=True)
        spec_file = self.dir / "spec.json"
        if not spec_file.exists():
            self._write_atomic(
                spec_file,
                {"format": CACHE_FORMAT, "spec": spec.canonical_dict()},
            )

    # ------------------------------------------------------------------
    def _shard_path(self, shard: Shard) -> Path:
        return self.dir / f"shard-{shard.index:06d}-of-{shard.count:06d}.json"

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def load_shard(self, shard: Shard) -> Optional[List]:
        """Cached results for *shard*, or ``None`` on miss/mismatch."""
        path = self._shard_path(shard)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            payload.get("format") != CACHE_FORMAT
            or payload.get("run_ids") != shard.run_ids
        ):
            return None
        return [result_from_dict(entry) for entry in payload["results"]]

    def store_shard(self, shard: Shard, results: List) -> None:
        self._write_atomic(
            self._shard_path(shard),
            {
                "format": CACHE_FORMAT,
                "shard": shard.index,
                "of": shard.count,
                "run_ids": shard.run_ids,
                "results": [result_to_dict(result) for result in results],
            },
        )

    def completed_shards(self) -> int:
        """Number of shard files currently present (diagnostics)."""
        return sum(1 for _ in self.dir.glob("shard-*.json"))
