"""On-disk result cache: completed shards of a campaign are never re-run.

Layout, under the user-chosen cache root::

    <root>/<spec_hash>/spec.json                   # the canonical spec
    <root>/<spec_hash>/shard-000007-of-000024.json # one file per shard

The directory name is the campaign's content hash, so a changed
parameter (budget, stage list, beats, …) can never alias a stale
result.  Each shard file additionally records its run IDs; a file whose
IDs do not match the current plan (e.g. written under a different shard
size) is ignored rather than trusted.

The cache directory is the crash-safety story for whole campaigns, so
both directions are hardened:

* **Writes are atomic.**  Payloads go to a uniquely-named temp file in
  the same directory (flushed and fsynced) and land via
  :func:`os.replace` — a SIGKILLed coordinator, a concurrent worker on
  another machine sharing the directory, or a full disk can leave stale
  ``*.tmp`` litter but never a half-written shard file.  Opening a
  cache (or store) sweeps litter older than an hour via
  :func:`sweep_stale_tmp`, so crashed writers no longer accumulate
  forever.
* **Loads are defensive.**  A truncated, hand-corrupted or
  schema-mangled entry is logged and treated as a miss — the shard is
  simply re-simulated — instead of crashing or, worse, half-loading.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Union

from .serialize import result_from_dict, result_to_dict
from .spec import CampaignSpec, Shard

log = logging.getLogger(__name__)

#: Bump when the shard-file layout changes incompatibly.  Format 2 added
#: the per-run scheduler statistics (``sim_leaps``/``sim_cycles_leaped``)
#: to every serialized result.
CACHE_FORMAT = 2

#: Age (seconds) past which ``*.tmp`` litter is presumed orphaned.  A
#: fresh temp file may belong to a concurrent writer mid-``os.replace``
#: on a shared directory, so only stale ones are swept.
STALE_TMP_SECONDS = 3600.0


def sweep_stale_tmp(
    directory: Union[str, Path],
    max_age_seconds: float = STALE_TMP_SECONDS,
    clock: Optional[float] = None,
) -> int:
    """Delete orphaned ``*.tmp`` files under *directory*; return count.

    Crashed atomic writers (SIGKILL between ``mkstemp`` and
    ``os.replace``) leave uniquely-named temp files behind; before this
    sweep they accumulated forever.  Both the shard cache and the result
    store call it at open.  Only files older than *max_age_seconds* go —
    a young temp file may be a live writer on a directory shared between
    coordinators.  Unlinking races (another opener sweeping the same
    litter) and permission defects are ignored: the sweep is hygiene,
    never a correctness step.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    now = time.time() if clock is None else clock
    swept = 0
    for tmp in directory.glob("*.tmp"):
        try:
            if now - tmp.stat().st_mtime < max_age_seconds:
                continue
            tmp.unlink()
            swept += 1
        except OSError:
            continue
    if swept:
        log.info("swept %d stale temp file(s) from %s", swept, directory)
    return swept


class ResultCache:
    """Shard-granular JSON cache for one campaign spec.

    *metrics* (a :class:`~repro.telemetry.MetricsRegistry`) receives
    ``cache.hit`` / ``cache.miss`` / ``cache.corrupt`` / ``cache.store``
    counters — one event per shard lookup: ``miss`` covers absent and
    intact-but-inapplicable entries (format version, foreign shard
    plan), ``corrupt`` the unreadable or malformed ones.
    """

    def __init__(
        self,
        root: Union[str, Path],
        spec: CampaignSpec,
        metrics=None,
    ) -> None:
        self.root = Path(root)
        self.spec = spec
        self.metrics = metrics
        self.dir = self.root / spec.spec_hash()
        self.dir.mkdir(parents=True, exist_ok=True)
        sweep_stale_tmp(self.dir)
        spec_file = self.dir / "spec.json"
        if not spec_file.exists():
            self._write_atomic(
                spec_file,
                {"format": CACHE_FORMAT, "spec": spec.canonical_dict()},
            )

    # ------------------------------------------------------------------
    def _shard_path(self, shard: Shard) -> Path:
        return self.dir / f"shard-{shard.index:06d}-of-{shard.count:06d}.json"

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        # A unique temp name per writer: two coordinators (or a
        # coordinator racing a resumed run) sharing one cache directory
        # must never interleave writes into the same temp file.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                stream.write(json.dumps(payload, indent=2, sort_keys=True))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def load_shard(self, shard: Shard) -> Optional[List]:
        """Cached results for *shard*, or ``None`` on miss/mismatch.

        Any defect in the entry — unreadable file, truncated or invalid
        JSON, wrong format version, foreign run IDs, results that fail
        to deserialize — demotes it to a miss: the shard re-simulates
        and the defective file is overwritten by the fresh result.
        """
        path = self._shard_path(shard)
        if not path.exists():
            self._count("cache.miss")
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            log.warning(
                "cache entry %s is unreadable (%s); re-simulating", path.name, exc
            )
            self._count("cache.corrupt")
            return None
        try:
            if payload.get("format") != CACHE_FORMAT:
                log.info(
                    "cache entry %s has format %r (want %d); re-simulating",
                    path.name,
                    payload.get("format"),
                    CACHE_FORMAT,
                )
                self._count("cache.miss")
                return None
            if payload.get("run_ids") != shard.run_ids:
                log.info(
                    "cache entry %s belongs to a different shard plan; "
                    "re-simulating",
                    path.name,
                )
                self._count("cache.miss")
                return None
            results = [result_from_dict(entry) for entry in payload["results"]]
            if len(results) != len(shard.runs):
                raise ValueError(
                    f"{len(results)} results for {len(shard.runs)} runs"
                )
            self._count("cache.hit")
            return results
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            log.warning(
                "cache entry %s is malformed (%s); re-simulating", path.name, exc
            )
            self._count("cache.corrupt")
            return None

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def store_shard(self, shard: Shard, results: List) -> None:
        self._count("cache.store")
        self._write_atomic(
            self._shard_path(shard),
            {
                "format": CACHE_FORMAT,
                "shard": shard.index,
                "of": shard.count,
                "run_ids": shard.run_ids,
                "results": [result_to_dict(result) for result in results],
            },
        )

    def completed_shards(self) -> int:
        """Number of shard files currently present (diagnostics)."""
        return sum(1 for _ in self.dir.glob("shard-*.json"))
