"""Distributed campaign execution: TCP coordinator + pull-based workers.

The third executor behind :func:`~repro.orchestrate.executor.make_executor`:
:class:`DistributedExecutor` exposes the same ``map(shards)`` contract as
the serial and process-pool executors, but serves the shards over a
localhost/LAN TCP socket (length-prefixed JSON frames, see
:mod:`repro.orchestrate.remote`) to any number of worker processes —
spawned locally over loopback, or joined from other machines with
``repro worker --connect HOST:PORT``.

Fault tolerance is the point:

* **Leases, not handoffs.**  :class:`ShardBoard` tracks every assigned
  shard with a deadline.  A worker that disconnects forfeits its leases
  immediately; one that goes silent past ``lease_timeout`` has its
  shard stolen by the next idle worker.
* **At-least-once, deterministically.**  A stolen shard may complete
  twice; runs are deterministic and results are deduplicated
  first-wins, so duplicates are invisible downstream.
* **The cache directory is the source of truth.**  The engine persists
  every completed shard atomically as it streams in, so a killed
  coordinator resumes from the shard after the last one it cached, and
  machines sharing one cache directory never repeat each other's work.

Nothing here touches planning or aggregation — the engine hands this
executor the pending shards exactly as it would hand them to a pool,
and reorders the streamed results by run index exactly as before.
"""

from __future__ import annotations

import collections
import logging
import multiprocessing
import os
import queue
import socket
import threading
import time
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.events import EventLog
from ..telemetry.logs import worker_log_prefix
from .executor import START_METHOD_ENV, ShardResult, execute_shard
from .remote import (
    PROTOCOL_VERSION,
    ProtocolError,
    done_message,
    expect,
    hello_message,
    ping_message,
    recv_frame,
    result_message,
    send_frame,
    shard_message,
    status_message,
    status_request_message,
    welcome_message,
)
from .serialize import result_from_dict, shard_from_dict
from .spec import Shard

log = logging.getLogger(__name__)

#: Default seconds of silence after which an assigned shard is stolen.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Default seconds a connecting worker keeps retrying an unbound port.
DEFAULT_CONNECT_RETRY = 10.0


class DistributedTimeout(RuntimeError):
    """No worker produced a result within the configured window."""


class ShardBoard:
    """Thread-safe lease ledger for one campaign's pending shards.

    The board owns three disjoint populations: *pending* shards nobody
    holds, *leased* shards assigned to a worker with a deadline, and
    *completed* shard indexes.  ``claim`` blocks until it can hand out a
    pending shard, steal an expired lease, or report the campaign done.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
        event_hook: Optional[Callable[..., None]] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._cond = threading.Condition()
        self._pending: Deque[Shard] = collections.deque(shards)
        #: shard index -> (shard, worker, lease deadline)
        self._leases: Dict[int, Tuple[Shard, str, float]] = {}
        self._completed: set = set()
        self.total = len(shards)
        self.lease_timeout = lease_timeout
        self._clock = clock
        #: Stolen-lease count (visible in progress/status lines).
        self.reassignments = 0
        #: ``event_hook(event, **fields)`` narrates the lease lifecycle
        #: (claimed/renewed/expired/completed/released) — typically an
        #: :class:`repro.telemetry.EventLog` appender.  Called with the
        #: board lock held, so the hook must not call back into the
        #: board.
        self._event_hook = event_hook

    def _event(self, event: str, **fields) -> None:
        if self._event_hook is not None:
            self._event_hook(event, **fields)

    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        with self._cond:
            return len(self._completed) >= self.total

    def claim(
        self,
        worker: str,
        should_stop: Optional[Callable[[], bool]] = None,
        poll: float = 0.05,
    ) -> Optional[Shard]:
        """Next shard for *worker*, or ``None`` when there is no more work.

        Blocks while every remaining shard is validly leased elsewhere;
        wakes on completions, releases, and lease expiry.  *should_stop*
        lets a serving thread bail out when the campaign is torn down.
        """
        with self._cond:
            while True:
                if len(self._completed) >= self.total:
                    return None
                if should_stop is not None and should_stop():
                    return None
                shard = self._claimable(worker)
                if shard is not None:
                    return shard
                self._cond.wait(timeout=poll)

    def _claimable(self, worker: str) -> Optional[Shard]:
        # Skip stale pending entries: a shard requeued by a dying thief
        # may have been completed by its original holder in the
        # meantime, and handing it out again would only burn a worker
        # on a result the dedup in complete() is guaranteed to drop.
        while self._pending and self._pending[0].index in self._completed:
            self._pending.popleft()
        if self._pending:
            shard = self._pending.popleft()
        else:
            expired = self._expired_lease()
            if expired is None:
                return None
            shard, holder = expired
            self.reassignments += 1
            log.warning(
                "lease on shard %d expired; reassigning to %s", shard.index, worker
            )
            self._event(
                "lease_expired", shard=shard.index, worker=holder
            )
            self._event(
                "lease_stolen", shard=shard.index, worker=worker, stolen_from=holder
            )
        self._leases[shard.index] = (
            shard,
            worker,
            self._clock() + self.lease_timeout,
        )
        self._event("lease_claimed", shard=shard.index, worker=worker)
        return shard

    def _expired_lease(self) -> Optional[Tuple[Shard, str]]:
        now = self._clock()
        for shard, worker, deadline in self._leases.values():
            if deadline <= now:
                return shard, worker
        return None

    def renew(self, index: int, worker: str) -> bool:
        """Extend *worker*'s lease on shard *index* (heartbeat arrival).

        A ping from a worker whose lease was already stolen or whose
        shard already completed is ignored — renewal never resurrects a
        forfeited assignment.
        """
        with self._cond:
            lease = self._leases.get(index)
            if lease is None or lease[1] != worker:
                return False
            self._leases[index] = (
                lease[0],
                worker,
                self._clock() + self.lease_timeout,
            )
            self._event("lease_renewed", shard=index, worker=worker)
            return True

    def complete(self, index: int, worker: str) -> bool:
        """Record shard *index* done; ``False`` if it already was.

        At-least-once execution funnels through here: when a stolen
        shard finishes twice, only the first result is accepted and the
        duplicate is dropped without a trace downstream.
        """
        with self._cond:
            if index in self._completed:
                log.info(
                    "dropping duplicate result for shard %d from %s", index, worker
                )
                self._event("duplicate_dropped", shard=index, worker=worker)
                return False
            self._completed.add(index)
            self._leases.pop(index, None)
            self._event("shard_completed", shard=index, worker=worker)
            self._cond.notify_all()
            return True

    def release_worker(self, worker: str) -> int:
        """Return all of *worker*'s leases to the pending queue."""
        with self._cond:
            forfeited = [
                index
                for index, (_shard, holder, _deadline) in self._leases.items()
                if holder == worker
            ]
            for index in forfeited:
                shard, _holder, _deadline = self._leases.pop(index)
                # Front of the queue: a forfeited shard is the oldest
                # outstanding work, so it should not wait behind the tail.
                self._pending.appendleft(shard)
            if forfeited:
                log.warning(
                    "worker %s gone; requeued shard(s) %s", worker, forfeited
                )
                self._event(
                    "leases_released", worker=worker, shards=sorted(forfeited)
                )
                self._cond.notify_all()
            return len(forfeited)

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time board state for the ``status`` wire frame."""
        with self._cond:
            now = self._clock()
            return {
                "total": self.total,
                "pending": len(self._pending),
                "completed": len(self._completed),
                "reassignments": self.reassignments,
                "leases": [
                    {
                        "shard": index,
                        "worker": worker,
                        "expires_in": round(deadline - now, 3),
                        "expired": deadline <= now,
                    }
                    for index, (_shard, worker, deadline) in sorted(
                        self._leases.items()
                    )
                ],
            }


class DistributedExecutor:
    """Coordinator side: serve shards over TCP, stream results back.

    Same ``map(shards)`` contract as the in-process executors.  Workers
    are pull clients: any mix of *local_workers* loopback processes
    spawned here and external ``repro worker`` processes on other
    machines.  ``bind()`` may be called ahead of ``map`` to learn the
    ephemeral port before any worker needs it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        local_workers: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        result_timeout: Optional[float] = None,
        store_dir: Optional[str] = None,
    ) -> None:
        if local_workers < 0:
            raise ValueError("local_workers must be >= 0")
        self.host = host
        self.port = port
        self.local_workers = local_workers
        self.lease_timeout = lease_timeout
        self.result_timeout = result_timeout
        #: Result-store path handed to spawned loopback workers, so they
        #: short-circuit against the same shared store the engine uses.
        self.store_dir = store_dir
        self.workers = max(local_workers, 1)  # parity with the other executors
        self._server: Optional[socket.socket] = None
        self._board: Optional[ShardBoard] = None
        self._reporter = None
        self._metrics = None
        self._connected = 0
        self._status_lock = threading.Lock()
        #: Structured fleet history: lease lifecycle (via the board's
        #: event hook), worker connect/EOF, heartbeat observations.
        #: Served verbatim in ``status_reply`` frames.
        self.events = EventLog()
        #: worker id -> liveness/throughput bookkeeping for the status
        #: frame (guarded by ``_status_lock``).
        self._worker_info: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Bind the listening socket now and return ``(host, port)``."""
        if self._server is None:
            server = socket.create_server((self.host, self.port), backlog=64)
            server.settimeout(0.1)
            self._server = server
            self.port = server.getsockname()[1]
        return self.host, self.port

    def attach_progress(self, reporter) -> None:
        """Let the engine's progress line show worker/reassignment state."""
        self._reporter = reporter

    def attach_metrics(self, metrics) -> None:
        """Count fleet events (``fleet.<event>``) and track connected
        workers (``fleet.workers_connected`` gauge) in *metrics*."""
        self._metrics = metrics

    def _record_event(self, event: str, **fields) -> None:
        self.events.append(event, **fields)
        if self._metrics is not None:
            self._metrics.counter(f"fleet.{event}").inc()

    # ------------------------------------------------------------------
    def map(self, shards: Sequence[Shard]) -> Iterator[ShardResult]:
        if not shards:
            # Nothing to serve (e.g. a resume whose cache is already
            # complete).  Close any pre-bound socket so workers waiting
            # on the announced port see EOF and exit cleanly now rather
            # than hanging until the coordinator process dies.
            if self._server is not None:
                self._server.close()
                self._server = None
            return
        board = ShardBoard(
            shards,
            lease_timeout=self.lease_timeout,
            event_hook=self._record_event,
        )
        self._board = board
        results: "queue.Queue[ShardResult]" = queue.Queue()
        stop = threading.Event()
        self.bind()
        server = self._server
        assert server is not None
        # Local loopback workers fork *before* any serving thread starts,
        # so the children never inherit a mid-transition lock.
        processes = self._spawn_local_workers()
        connections: List[socket.socket] = []
        accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(server, board, results, stop, connections),
            name="repro-coordinator-accept",
            daemon=True,
        )
        accept_thread.start()
        try:
            last_result = time.monotonic()
            for _ in range(len(shards)):
                while True:
                    try:
                        item = results.get(timeout=0.5)
                        break
                    except queue.Empty:
                        if (
                            self.result_timeout is not None
                            and time.monotonic() - last_result > self.result_timeout
                        ):
                            raise DistributedTimeout(
                                f"no shard completed within {self.result_timeout}s "
                                f"({self._connected} worker(s) connected)"
                            )
                last_result = time.monotonic()
                yield item
        finally:
            stop.set()
            self._server = None
            server.close()
            for conn in list(connections):
                _close_quietly(conn)
            accept_thread.join(timeout=2.0)
            self._reap_local_workers(processes)

    # ------------------------------------------------------------------
    def _accept_loop(self, server, board, results, stop, connections) -> None:
        while not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            connections.append(conn)
            threading.Thread(
                target=self._serve_worker,
                args=(conn, board, results, stop),
                name="repro-coordinator-serve",
                daemon=True,
            ).start()

    def _serve_worker(self, conn, board: ShardBoard, results, stop) -> None:
        worker: Optional[str] = None
        try:
            first = recv_frame(conn)
            if first is not None and first.get("type") == "status":
                # A monitor, not a worker: one snapshot and goodbye.
                send_frame(conn, status_message(self.status_snapshot()))
                return
            hello = expect(first, "hello")
            if hello.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"worker speaks protocol {hello.get('version')}, "
                    f"coordinator speaks {PROTOCOL_VERSION}"
                )
            worker = str(hello["worker"])
            # Workers heartbeat at a third of the lease timeout, so a
            # healthy long-running shard renews its lease twice over
            # before it could be stolen.
            send_frame(
                conn, welcome_message(board.total, heartbeat=self.lease_timeout / 3)
            )
            now = time.monotonic()
            with self._status_lock:
                self._worker_info[worker] = {
                    "connected": True,
                    "connected_at": now,
                    "last_seen": now,
                    "shards_completed": 0,
                    "heartbeat_gap_seconds": None,
                }
            self._record_event("worker_connect", worker=worker)
            self._worker_event(+1)
            while not stop.is_set():
                shard = board.claim(worker, should_stop=stop.is_set)
                if shard is None:
                    send_frame(conn, done_message())
                    break
                send_frame(conn, shard_message(shard))
                while True:
                    reply = recv_frame(conn)
                    if reply is not None and reply.get("type") == "ping":
                        board.renew(shard.index, worker)
                        self._note_heartbeat(worker)
                        continue
                    reply = expect(reply, "result")
                    break
                if (
                    reply.get("shard") != shard.index
                    or reply.get("run_ids") != shard.run_ids
                ):
                    raise ProtocolError(
                        f"result for shard {reply.get('shard')!r} does not match "
                        f"assigned shard {shard.index}"
                    )
                decoded = [result_from_dict(entry) for entry in reply["results"]]
                if len(decoded) != len(shard.runs):
                    raise ProtocolError(
                        f"shard {shard.index}: {len(decoded)} results for "
                        f"{len(shard.runs)} runs"
                    )
                with self._status_lock:
                    info = self._worker_info.get(worker)
                    if info is not None:
                        info["last_seen"] = time.monotonic()
                        info["shards_completed"] += 1
                if board.complete(shard.index, worker):
                    results.put((shard.index, decoded))
                self._status()
        except (OSError, ProtocolError, KeyError, TypeError, ValueError) as exc:
            if not stop.is_set():
                log.warning("worker %s dropped: %s", worker or "<handshake>", exc)
        finally:
            if worker is not None:
                board.release_worker(worker)
                with self._status_lock:
                    info = self._worker_info.get(worker)
                    if info is not None:
                        info["connected"] = False
                self._record_event("worker_eof", worker=worker)
                self._worker_event(-1)
            _close_quietly(conn)

    # ------------------------------------------------------------------
    def _note_heartbeat(self, worker: str) -> None:
        """Record a ping arrival: liveness stamp + observed gap.

        The gap between successive frames from one worker is the
        fleet's heartbeat-latency signal — a healthy worker pings at
        the period the welcome requested, so a gap stretching toward
        the lease timeout is pre-steal evidence of distress.
        """
        now = time.monotonic()
        gap: Optional[float] = None
        with self._status_lock:
            info = self._worker_info.get(worker)
            if info is not None:
                gap = now - float(info["last_seen"])
                info["last_seen"] = now
                info["heartbeat_gap_seconds"] = round(gap, 3)
        if gap is not None and self._metrics is not None:
            self._metrics.histogram("fleet.heartbeat_seconds").observe(gap)

    def _worker_event(self, delta: int) -> None:
        with self._status_lock:
            self._connected += delta
            connected = self._connected
        if self._metrics is not None:
            self._metrics.gauge("fleet.workers_connected").set(connected)
        self._status()

    def status_snapshot(self) -> Dict[str, object]:
        """The fleet-health payload served to ``status`` connections.

        Worker timestamps are reported as *ago* seconds (relative to
        now) so the payload is meaningful off-machine, where the
        coordinator's monotonic clock is not.
        """
        board = self._board
        now = time.monotonic()
        with self._status_lock:
            connected = self._connected
            workers = {
                name: {
                    "connected": info["connected"],
                    "connected_ago_seconds": round(
                        now - float(info["connected_at"]), 3
                    ),
                    "last_seen_ago_seconds": round(
                        now - float(info["last_seen"]), 3
                    ),
                    "shards_completed": info["shards_completed"],
                    "heartbeat_gap_seconds": info["heartbeat_gap_seconds"],
                }
                for name, info in self._worker_info.items()
            }
        return {
            "connected_workers": connected,
            "workers": workers,
            "campaign": board.snapshot() if board is not None else None,
            "events": self.events.snapshot(),
        }

    def _status(self) -> None:
        reporter = self._reporter
        if reporter is None or not hasattr(reporter, "set_status"):
            return
        parts = [f"{self._connected} worker(s)"]
        board = self._board
        if board is not None and board.reassignments:
            parts.append(f"{board.reassignments} reassigned")
        reporter.set_status(" | ".join(parts))

    def _spawn_local_workers(self) -> List:
        if not self.local_workers:
            return []
        method = os.environ.get(START_METHOD_ENV, "").strip() or None
        context = multiprocessing.get_context(method)
        processes = []
        for index in range(self.local_workers):
            process = context.Process(
                target=worker_loop,
                args=(self.host, self.port),
                kwargs={
                    "worker_id": f"local-{index}-{os.getpid()}",
                    "store": self.store_dir,
                },
                name=f"repro-worker-{index}",
                daemon=True,
            )
            process.start()
            processes.append(process)
        return processes

    @staticmethod
    def _reap_local_workers(processes) -> None:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=1.0)


# ----------------------------------------------------------------------
# Monitor side
# ----------------------------------------------------------------------
def request_status(host: str, port: int, timeout: float = 5.0) -> Dict:
    """Poll a live coordinator for its fleet-health snapshot.

    Opens a one-shot connection, sends the ``status`` frame and returns
    the decoded snapshot dict (see
    :meth:`DistributedExecutor.status_snapshot`).  This is what
    ``repro status --connect HOST:PORT`` runs.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        send_frame(sock, status_request_message())
        reply = expect(recv_frame(sock), "status_reply")
        status = reply.get("status")
        if not isinstance(status, dict):
            raise ProtocolError(f"status_reply carries no snapshot: {reply!r:.80}")
        return status
    finally:
        _close_quietly(sock)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def connect_with_retry(
    host: str, port: int, retry_seconds: float = DEFAULT_CONNECT_RETRY
) -> socket.socket:
    """Dial the coordinator, retrying refused connections for a while.

    Lets workers start before (or race) the coordinator's bind — the CI
    smoke job and ``repro serve`` both lean on this.
    """
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            return socket.create_connection((host, port))
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def worker_loop(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    retry_seconds: float = DEFAULT_CONNECT_RETRY,
    store=None,
) -> int:
    """Pull-execute-reply until the coordinator says ``done``.

    Every shard is executed with the exact same
    :func:`~repro.orchestrate.executor.execute_shard` the in-process
    executors use — a fresh harness per run, nothing shared — so where a
    shard runs can never change what it computes.  While a shard
    executes, a heartbeat thread pings at the period the coordinator
    requested in its welcome, renewing the lease so a slow-but-healthy
    shard is never stolen.  Returns the number of shards executed.

    *store* (a :class:`~repro.orchestrate.store.ResultStore`, or a path
    to open one at) makes the worker consult the shared result store
    before simulating each run of a shard and write every simulated run
    back — so a shard stolen from a dead-but-productive worker, or one
    whose runs an earlier campaign already computed, costs only the
    missing simulations.  ``repro worker --store DIR`` is this knob.

    A coordinator that disappears during the handshake (finished its
    campaign from cache, or died) is a clean zero-shard exit, not an
    error: the worker joined a queue that simply had nothing for it.
    """
    worker_id = worker_id or default_worker_id()
    if store is not None and not hasattr(store, "get"):
        from .store import ResultStore

        store = ResultStore.open(store)
    # Tag this process's log records so interleaved multi-worker output
    # on a shared terminal stays attributable.
    worker_log_prefix(worker_id)
    sock = connect_with_retry(host, port, retry_seconds=retry_seconds)
    send_lock = threading.Lock()

    def send(payload) -> None:
        # Heartbeats and results share the socket; frames must not
        # interleave mid-write.
        with send_lock:
            send_frame(sock, payload)

    executed = 0
    try:
        send(hello_message(worker_id))
        try:
            welcome = recv_frame(sock)
        except (OSError, ProtocolError):
            return executed  # coordinator gone before offering work
        if welcome is None:
            return executed
        heartbeat = float(expect(welcome, "welcome").get("heartbeat") or 0.0)
        while True:
            message = recv_frame(sock)
            if message is None or message["type"] == "done":
                break
            if message["type"] != "shard":
                raise ProtocolError(f"unexpected message {message['type']!r}")
            shard = shard_from_dict(message["shard"])
            stop_ping = threading.Event()
            pinger: Optional[threading.Thread] = None
            if heartbeat > 0:
                pinger = threading.Thread(
                    target=_ping_until, args=(send, heartbeat, stop_ping),
                    daemon=True,
                )
                pinger.start()
            try:
                # Positional call when storeless: tests (and embedders)
                # substitute plain ``f(shard)`` executors.
                if store is None:
                    index, shard_results = execute_shard(shard)
                else:
                    index, shard_results = execute_shard(shard, store=store)
            finally:
                stop_ping.set()
                if pinger is not None:
                    pinger.join(timeout=5.0)
            send(result_message(index, shard.run_ids, shard_results))
            executed += 1
    finally:
        _close_quietly(sock)
    return executed


def _ping_until(send, period: float, stop: threading.Event) -> None:
    while not stop.wait(period):
        try:
            send(ping_message())
        except OSError:
            return  # coordinator gone; the main loop will notice too


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - best-effort cleanup
        pass
