"""Wire protocol for distributed campaigns: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Framing is the *only* transport concern this
module owns; what travels inside the frames are the canonical dict
forms from :mod:`repro.orchestrate.serialize`, so a shard executed on a
remote machine is byte-for-byte the shard a local executor would run.

The conversation is worker-initiated pull::

    worker                         coordinator
    ------                         -----------
    hello {worker, version}  --->
                             <---  welcome {version, shards, heartbeat}
                             <---  shard {shard: {...}}   (a lease)
    ping {}                  --->                  (while executing,
    ping {}                  --->                   renews the lease)
    result {shard, run_ids,
            results}         --->
                             <---  shard {...} | done {}
    ...

A *monitor* (``repro status --connect``) opens its own connection and
sends ``status`` as its first frame instead of ``hello``; the
coordinator answers with one ``status_reply`` frame carrying its fleet
snapshot and closes the connection.

Every message is a dict with a ``type`` key.  A worker that
disconnects (or never answers within its lease) simply forfeits its
leased shards — the coordinator reassigns them, and deterministic runs
plus first-result-wins dedup make the resulting at-least-once execution
safe.

:class:`ProtocolError` covers everything that should tear down one
connection without touching the campaign: a truncated frame, an
oversized length prefix, undecodable JSON, or a message that does not
fit the conversation.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional

#: Bump when the frame layout or message schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame; a length prefix beyond this is treated
#: as garbage (e.g. a non-protocol peer) rather than allocated.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A connection spoke the protocol wrong; drop it, keep the campaign."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Encode *payload* as one length-prefixed JSON frame and send it."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary.

    EOF *inside* a frame (a peer that died mid-send) and undecodable
    payloads raise :class:`ProtocolError` — the caller must treat the
    connection as gone either way, but only the clean ``None`` means the
    peer finished talking on purpose.
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exactly(sock, length) if length else b""
    if body is None:
        raise ProtocolError(f"connection closed before {length}-byte frame body")
    try:
        message = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed message: {message!r:.80}")
    return message


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; ``None`` on EOF before the first byte."""
    buffer = bytearray()
    while len(buffer) < count:
        chunk = sock.recv(count - len(buffer))
        if not chunk:
            if not buffer:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({len(buffer)}/{count} bytes)"
            )
        buffer.extend(chunk)
    return bytes(buffer)


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
def hello_message(worker: str) -> Dict[str, Any]:
    return {"type": "hello", "version": PROTOCOL_VERSION, "worker": worker}


def welcome_message(total_shards: int, heartbeat: float = 0.0) -> Dict[str, Any]:
    """Handshake reply; *heartbeat* asks the worker to ping at that period.

    The coordinator derives it from its lease timeout, so workers renew
    healthy long-running leases without ever being told the timeout
    itself — a worker that predates (or ignores) heartbeats simply
    risks its lease on shards slower than the coordinator's patience.
    """
    return {
        "type": "welcome",
        "version": PROTOCOL_VERSION,
        "shards": total_shards,
        "heartbeat": heartbeat,
    }


def ping_message() -> Dict[str, Any]:
    """Mid-execution liveness beacon; renews the sender's shard lease."""
    return {"type": "ping"}


def shard_message(shard) -> Dict[str, Any]:
    from .serialize import shard_to_dict

    return {"type": "shard", "shard": shard_to_dict(shard)}


def result_message(index: int, run_ids: List[str], results: List) -> Dict[str, Any]:
    from .serialize import result_to_dict

    return {
        "type": "result",
        "shard": index,
        "run_ids": list(run_ids),
        "results": [result_to_dict(result) for result in results],
    }


def done_message() -> Dict[str, Any]:
    return {"type": "done"}


def status_request_message() -> Dict[str, Any]:
    """Sent *instead of* ``hello`` as a connection's first frame.

    A status connection is a one-shot poll, not a worker: the
    coordinator answers with a single ``status_reply`` frame and closes.
    ``repro status --connect HOST:PORT`` is the canonical sender.
    """
    return {"type": "status", "version": PROTOCOL_VERSION}


def status_message(status: Dict[str, Any]) -> Dict[str, Any]:
    """Coordinator's reply to a status poll; *status* is the snapshot
    from :meth:`~repro.orchestrate.distributed.DistributedExecutor.
    status_snapshot` (campaign board, workers, recent events)."""
    return {
        "type": "status_reply",
        "version": PROTOCOL_VERSION,
        "status": status,
    }


def expect(message: Optional[Dict[str, Any]], kind: str) -> Dict[str, Any]:
    """Validate that *message* exists and is of *kind*, else raise."""
    if message is None:
        raise ProtocolError(f"connection closed while waiting for {kind!r}")
    if message.get("type") != kind:
        raise ProtocolError(
            f"expected {kind!r} message, got {message.get('type')!r}"
        )
    return message
