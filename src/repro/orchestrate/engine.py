"""The campaign orchestration engine.

Glues the layers of this package together: expand a
:class:`~repro.orchestrate.spec.CampaignSpec` into its canonical run
list, plan shards, satisfy what it can from the on-disk cache, fan the
rest out through an executor, and re-assemble the result stream into
the exact ordering the serial runners produce.

The engine is deliberately deterministic end to end: run enumeration is
canonical, shard planning is contiguous, and aggregation is by run
index — so ``workers=16`` and ``workers=1`` return *equal* result
lists, and a cache hit returns the same objects a fresh simulation
would.  ``strategy="verify"`` campaigns (via ``harness_kwargs``) plus
the determinism tests in ``tests/orchestrate/`` are the correctness
harness for that claim.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import IO, Dict, List, Optional, Union

from .cache import ResultCache
from .executor import default_workers, make_executor
from .progress import ProgressReporter
from .spec import CampaignSpec, plan_shards


def run_campaign_spec(
    spec: CampaignSpec,
    workers: Optional[int] = None,
    shard_size: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Union[bool, IO[str], ProgressReporter]] = None,
    executor=None,
    batch_lanes: Optional[int] = None,
    batch_verify: bool = False,
    metrics=None,
) -> List:
    """Execute *spec* and return results in canonical run order.

    Parameters
    ----------
    workers:
        Process count; ``None`` consults ``REPRO_WORKERS`` (default 1 =
        serial, in-process).  Each worker builds its own harness per
        run, so no simulator state is shared.
    shard_size:
        Runs per unit of work; 1 (the default) gives the best load
        balancing and the finest cache granularity.
    cache_dir:
        When set, completed shards are persisted there (keyed by the
        spec hash) and re-runs skip them without simulating.  Completed
        shards are written atomically as they stream in, so a killed
        campaign resumes from exactly what it finished.
    progress:
        ``True`` / a text stream for a live status line with ETA, or a
        pre-built :class:`ProgressReporter`.
    executor:
        A pre-built executor (anything with the ``map(shards)``
        contract, e.g. a
        :class:`~repro.orchestrate.distributed.DistributedExecutor`)
        overriding the *workers*-based choice.  Planning, caching and
        aggregation are identical whichever executor runs the shards.
    batch_lanes:
        When set, runs the pending shards through the lockstep batch
        executor (:class:`~repro.orchestrate.batch.BatchExecutor`) with
        packs of at most that many lanes; *batch_verify* additionally
        replays every derived lane on the scalar verify kernel.  The
        aggregated results are byte-identical to the serial executor's.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` collecting campaign
        accounting: run/shard counters, cache hit/miss/corrupt counts,
        a ``campaign.shard_seconds`` histogram of coordinator-observed
        shard completion spacing, and whatever the executor contributes
        through ``attach_metrics`` (discovered by ``hasattr``, the same
        seam as ``attach_progress``).  Purely observational — results
        are identical with or without it.
    """
    if workers is None:
        workers = default_workers()
    runs = spec.runs()
    shards = plan_shards(runs, shard_size=shard_size)
    cache = (
        ResultCache(cache_dir, spec, metrics=metrics)
        if cache_dir is not None
        else None
    )

    reporter: Optional[ProgressReporter] = None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(
            len(runs), stream=None if progress is True else progress
        )

    results_by_shard: Dict[int, List] = {}
    pending = []
    for shard in shards:
        cached = cache.load_shard(shard) if cache is not None else None
        if cached is not None:
            results_by_shard[shard.index] = cached
            if reporter:
                reporter.shard_done(len(shard.runs), cached=True)
            if metrics is not None:
                metrics.counter("campaign.runs_cached").inc(len(shard.runs))
        else:
            pending.append(shard)

    if executor is None:
        if batch_lanes is not None:
            executor = make_executor(
                workers, batch_lanes=batch_lanes, batch_verify=batch_verify
            )
        else:
            executor = make_executor(workers)
    if reporter is not None and hasattr(executor, "attach_progress"):
        executor.attach_progress(reporter)
    if metrics is not None:
        metrics.counter("campaign.runs").inc(len(runs))
        metrics.counter("campaign.shards").inc(len(shards))
        metrics.counter("campaign.shards_executed").inc(len(pending))
        if hasattr(executor, "attach_metrics"):
            executor.attach_metrics(metrics)
    started = perf_counter()
    last = started
    for index, results in executor.map(pending):
        results_by_shard[index] = results
        if metrics is not None:
            now = perf_counter()
            metrics.histogram("campaign.shard_seconds").observe(now - last)
            metrics.counter("campaign.runs_executed").inc(
                len(shards[index].runs)
            )
            last = now
        if cache is not None:
            cache.store_shard(shards[index], results)
        if reporter:
            reporter.shard_done(len(shards[index].runs))
    if metrics is not None:
        metrics.gauge("campaign.elapsed_seconds").set(
            round(perf_counter() - started, 6)
        )
    if reporter:
        reporter.finish()

    ordered: List = [None] * len(runs)
    for shard in shards:
        for run, result in zip(shard.runs, results_by_shard[shard.index]):
            ordered[run.index] = result
    return ordered
