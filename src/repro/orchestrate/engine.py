"""The campaign orchestration engine.

Glues the layers of this package together: expand a
:class:`~repro.orchestrate.spec.CampaignSpec` into its canonical run
list, plan shards, satisfy what it can from the shard cache and the
run-granular result store, fan the *frontier* out through an executor,
and re-assemble the result stream into the exact ordering the serial
runners produce.

The engine is deliberately deterministic end to end: run enumeration is
canonical, shard planning is contiguous, and aggregation is by run
index — so ``workers=16`` and ``workers=1`` return *equal* result
lists, and a cache or store hit returns the same objects a fresh
simulation would.  ``strategy="verify"`` campaigns (via
``harness_kwargs``) plus the determinism tests in ``tests/orchestrate/``
are the correctness harness for that claim.

Reuse happens at two granularities, consulted in order:

1. **Shard cache** (*cache_dir*): whole shards of *this exact spec*
   loaded from disk — the crash-safe ``--resume`` substrate.
2. **Result store** (*store*): individual runs keyed by their
   campaign-independent parameter hash.  A sweep that is a superset of
   any earlier one (more seeds, more stages) fetches the intersection
   here and simulates only the frontier; ``--resume`` degenerates to a
   frontier of zero.

When both are configured they feed each other: cache hits are promoted
into the store, executed frontier runs land in both, and the cache
directory doubles as the store's cold tier.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import IO, Any, Dict, List, Optional, Union

from .cache import ResultCache
from .executor import default_workers, make_executor
from .progress import ProgressReporter
from .spec import CampaignSpec, RunSpec, plan_shards


def run_campaign_spec(
    spec: CampaignSpec,
    workers: Optional[int] = None,
    shard_size: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Union[bool, IO[str], ProgressReporter]] = None,
    executor=None,
    batch_lanes: Optional[int] = None,
    batch_verify: bool = False,
    metrics=None,
    store=None,
    collect: bool = True,
) -> Optional[List]:
    """Execute *spec* and return results in canonical run order.

    Parameters
    ----------
    workers:
        Process count; ``None`` consults ``REPRO_WORKERS`` (default 1 =
        serial, in-process).  Each worker builds its own harness per
        run, so no simulator state is shared.
    shard_size:
        Runs per unit of work; 1 (the default) gives the best load
        balancing and the finest cache granularity.
    cache_dir:
        When set, completed shards are persisted there (keyed by the
        spec hash) and re-runs skip them without simulating.  Completed
        shards are written atomically as they stream in, so a killed
        campaign resumes from exactly what it finished.
    progress:
        ``True`` / a text stream for a live status line with ETA, or a
        pre-built :class:`ProgressReporter`.
    executor:
        A pre-built executor (anything with the ``map(shards)``
        contract, e.g. a
        :class:`~repro.orchestrate.distributed.DistributedExecutor`)
        overriding the *workers*-based choice.  Planning, caching and
        aggregation are identical whichever executor runs the shards.
    batch_lanes:
        When set, runs the pending shards through the lockstep batch
        executor (:class:`~repro.orchestrate.batch.BatchExecutor`) with
        packs of at most that many lanes; *batch_verify* additionally
        replays every derived lane on the scalar verify kernel.  The
        aggregated results are byte-identical to the serial executor's.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` collecting campaign
        accounting: run/shard counters, cache hit/miss/corrupt counts,
        per-tier ``store.*`` hit/miss/frontier counters, a
        ``campaign.shard_seconds`` histogram of coordinator-observed
        shard completion spacing, and whatever the executor contributes
        through ``attach_metrics`` (discovered by ``hasattr``, the same
        seam as ``attach_progress``).  Purely observational — results
        are identical with or without it.
    store:
        A :class:`~repro.orchestrate.store.ResultStore` (or a path to
        open one at) providing run-granular reuse: pending runs already
        present in any tier are fetched instead of simulated, and every
        executed or cache-loaded run is written back.  When *cache_dir*
        is also set it is mounted as the store's cold tier, so shard
        caches written by earlier campaigns hit at run granularity.
    collect:
        ``False`` skips materializing the result list (the call returns
        ``None``); every result is still reachable through the store's
        streamed, index-ordered query
        (:meth:`~repro.orchestrate.store.ResultStore.iter_results`).
        Requires *store*.
    """
    if workers is None:
        workers = default_workers()
    runs = spec.runs()
    shards = plan_shards(runs, shard_size=shard_size)
    cache = (
        ResultCache(cache_dir, spec, metrics=metrics)
        if cache_dir is not None
        else None
    )
    store = _open_store(store, cache_dir, metrics)
    if not collect and store is None:
        raise ValueError("collect=False requires a result store")

    reporter: Optional[ProgressReporter] = None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(
            len(runs), stream=None if progress is True else progress
        )

    results_by_index: Dict[int, Any] = {}

    def keep(run: RunSpec, result) -> None:
        if collect:
            results_by_index[run.index] = result

    # ------------------------------------------------------------------
    # Tier 1: whole shards of this exact spec, from the cache directory.
    # ------------------------------------------------------------------
    pending = []
    for shard in shards:
        cached = cache.load_shard(shard) if cache is not None else None
        if cached is not None:
            for run, result in zip(shard.runs, cached):
                keep(run, result)
                if store is not None:
                    store.put(run, result)
            if reporter:
                reporter.shard_done(len(shard.runs), cached=True)
            if metrics is not None:
                metrics.counter("campaign.runs_cached").inc(len(shard.runs))
        else:
            pending.append(shard)

    # ------------------------------------------------------------------
    # Tier 2: individual runs from the result store; what remains is the
    # frontier — the only work any executor will see.
    # ------------------------------------------------------------------
    if store is not None:
        frontier: List[RunSpec] = []
        reused = 0
        for shard in pending:
            for run in shard.runs:
                result = store.get(run)
                if result is None:
                    frontier.append(run)
                else:
                    keep(run, result)
                    reused += 1
        if reporter and reused:
            reporter.shard_done(reused, cached=True)
        if metrics is not None:
            metrics.counter("store.reused_runs").inc(reused)
            metrics.counter("store.frontier_runs").inc(len(frontier))
        exec_shards = plan_shards(frontier, shard_size=shard_size)
    else:
        exec_shards = pending

    if executor is None:
        if batch_lanes is not None:
            executor = make_executor(
                workers, batch_lanes=batch_lanes, batch_verify=batch_verify
            )
        else:
            executor = make_executor(workers)
    if reporter is not None and hasattr(executor, "attach_progress"):
        executor.attach_progress(reporter)
    if metrics is not None:
        metrics.counter("campaign.runs").inc(len(runs))
        metrics.counter("campaign.shards").inc(len(shards))
        metrics.counter("campaign.shards_executed").inc(len(exec_shards))
        if hasattr(executor, "attach_metrics"):
            executor.attach_metrics(metrics)
    started = perf_counter()
    last = started
    # Executors report completions by the shard's own index (which is
    # campaign-global for cache-filtered pending shards, plan-local for
    # frontier-planned ones), so resolve through a map, not a position.
    exec_by_index = {shard.index: shard for shard in exec_shards}
    for index, results in executor.map(exec_shards):
        shard = exec_by_index[index]
        for run, result in zip(shard.runs, results):
            keep(run, result)
            if store is not None:
                store.put(run, result)
        if metrics is not None:
            now = perf_counter()
            metrics.histogram("campaign.shard_seconds").observe(now - last)
            metrics.counter("campaign.runs_executed").inc(len(shard.runs))
            last = now
        if cache is not None and store is None:
            cache.store_shard(shard, results)
        if reporter:
            reporter.shard_done(len(shard.runs))

    # With a store in play the executed shards were frontier-planned and
    # need not align with the cache's shard plan, so the write-back
    # happens here: every originally-pending shard is assembled (from
    # the collected results or the store's hot tier) and persisted,
    # keeping --resume and the cold tier exactly as complete as before.
    if cache is not None and store is not None:
        for shard in pending:
            cache.store_shard(
                shard,
                [
                    results_by_index[run.index]
                    if collect
                    else store.get(run)
                    for run in shard.runs
                ],
            )

    if metrics is not None:
        metrics.gauge("campaign.elapsed_seconds").set(
            round(perf_counter() - started, 6)
        )
    if reporter:
        reporter.finish()

    if not collect:
        return None
    return [results_by_index[run.index] for run in runs]


def _open_store(store, cache_dir, metrics):
    """Normalize the *store* argument: path -> opened ResultStore.

    A pre-built store gains the campaign's metrics registry (if it has
    none) and the cache directory as a cold root, so callers never have
    to pre-wire the tiers to match the engine's.
    """
    if store is None:
        return None
    if isinstance(store, (str, Path)):
        from .store import ResultStore

        return ResultStore.open(
            store,
            cold_roots=(cache_dir,) if cache_dir is not None else (),
            metrics=metrics,
        )
    if metrics is not None and getattr(store, "metrics", None) is None:
        store.metrics = metrics
    if cache_dir is not None:
        store.add_cold_root(cache_dir)
    return store
