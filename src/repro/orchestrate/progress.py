"""Campaign progress and ETA reporting.

A :class:`ProgressReporter` receives per-shard completion events from
the engine and renders a single self-overwriting status line::

    campaign: 132/288 runs (45.8%) | 12 cached | elapsed 14.2s | eta 16.9s

ETA extrapolates from *executed* runs only — cached runs and runs the
batch executor *derived* without simulating (see
:meth:`ProgressReporter.runs_derived`) are excluded from the rate — so
a warm cache or a wide lockstep pack does not skew the estimate for the
remaining work.  Reporting is
measurement-only; the engine works identically with ``reporter=None``.

Executors may contribute a live status segment through
:meth:`ProgressReporter.set_status` — the distributed coordinator uses
it to show connected workers and lease reassignments::

    campaign: 7/24 runs (29.2%) | elapsed 3.1s | eta 7.6s | 2 worker(s)

Status updates arrive from coordinator threads, so rendering is guarded
by a lock; everything else stays single-threaded.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Optional


class ProgressReporter:
    """Streams campaign progress to a terminal-style text stream."""

    def __init__(
        self,
        total_runs: int,
        stream: Optional[IO[str]] = None,
        clock=time.monotonic,
    ) -> None:
        self.total = total_runs
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self.done = 0
        self.cached = 0
        self.derived = 0
        self.status = ""
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def shard_done(self, runs: int, cached: bool = False) -> None:
        """Record one finished shard of *runs* runs and redraw the line."""
        self.done += runs
        if cached:
            self.cached += runs
        self._render(final=False)

    def runs_derived(self, runs: int) -> None:
        """Record *runs* runs completed without simulating.

        Called by the batch executor for every lane it derives from a
        pack leader.  Derived runs still count towards ``done`` when
        their shard completes; flagging them here keeps them out of the
        runs-per-second estimate, which would otherwise project the
        near-free derivation rate onto the remaining *simulated* work
        and under-report the ETA.
        """
        self.derived += runs

    def set_status(self, status: str) -> None:
        """Set the executor-contributed trailing segment and redraw."""
        self.status = status
        self._render(final=False)

    def finish(self) -> None:
        """Draw the final state and terminate the status line."""
        self.status = ""
        self._render(final=True)
        self.stream.write("\n")
        self.stream.flush()

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to completion, or ``None`` if unknowable.

        Never negative.  ``derived`` lanes are flagged *before* their
        shard reports done, so mid-pack the executed count can dip
        below zero — that window is "no rate information yet"
        (``None``), not a negative rate; and the final projection is
        clamped so a clock hiccup can never surface as ``eta -0.3s``.
        """
        executed = self.done - self.cached - self.derived
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if executed <= 0:
            return None
        return max(0.0, self.elapsed / executed * remaining)

    def _render(self, final: bool) -> None:
        # A zero-run campaign (e.g. an empty stage filter) is vacuously
        # complete: 100%, no division by its empty total.
        percent = 100.0 * self.done / self.total if self.total else 100.0
        parts = [f"campaign: {self.done}/{self.total} runs ({percent:.1f}%)"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        parts.append(f"elapsed {self.elapsed:.1f}s")
        if not final:
            eta = self.eta_seconds()
            parts.append(f"eta {eta:.1f}s" if eta is not None else "eta --")
        if self.status:
            parts.append(self.status)
        with self._lock:
            self.stream.write("\r" + " | ".join(parts))
            self.stream.flush()
