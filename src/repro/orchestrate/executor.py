"""Shard executors: in-process serial and multiprocessing worker pool.

Both executors expose the same contract — ``map(shards)`` yields
``(shard_index, [result, ...])`` pairs, in *any* order — and both build
every harness inside the process that simulates it, so no
:class:`~repro.sim.kernel.Simulator` state ever crosses a process
boundary.  Only plain :class:`~repro.orchestrate.spec.RunSpec` data
travels to workers and only result dataclasses travel back.

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).  The
multiprocessing start method honours ``REPRO_MP_START`` when set
(``fork``/``spawn``/``forkserver``) and otherwise uses the platform
default.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, Iterator, List, Sequence, Tuple

from .spec import RunSpec, Shard

#: Environment variable selecting the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START"

ShardResult = Tuple[int, list]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, defaulting to serial."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    count = int(raw)
    if count <= 0:
        raise ValueError(f"{WORKERS_ENV} must be positive, got {raw!r}")
    return count


def execute_run(run: RunSpec, trace=None):
    """Simulate one injection described by *run*, in this process.

    A fresh harness/SoC is constructed per run — sharing nothing is what
    makes campaigns embarrassingly parallel and results independent of
    execution order.  *trace* (a simulator probe, e.g. a
    :class:`~repro.sim.batch.LeapTrace`) is registered on the run's
    simulator before it starts — the lockstep batch executor uses it to
    collect inert-prefix evidence from pack leaders.
    """
    # Imported lazily: this module is imported by repro.faults.campaign
    # (via the orchestrate package) for its parallel path, so top-level
    # imports of the runners would cycle.
    from ..faults.types import InjectionStage
    from ..tmu.config import Variant

    stage = InjectionStage(run.stage)
    if run.kind == "ip":
        from ..faults.campaign import run_injection
        from .serialize import config_from_dict

        return run_injection(
            config_from_dict(run.config),
            stage,
            beats=run.beats,
            detect_timeout=run.detect_timeout,
            recovery_timeout=run.recovery_timeout,
            harness_kwargs=dict(run.harness_kwargs) or None,
            issue_delay=run.seed,
            trace=trace,
            size=run.size,
            outstanding=run.outstanding,
            reorder_depth=run.reorder_depth,
        )
    from ..soc.experiment import run_system_injection

    return run_system_injection(
        Variant(run.config["variant"]),
        stage,
        beats=run.beats,
        background=run.background,
        detect_timeout=run.detect_timeout,
        recovery_timeout=run.recovery_timeout,
        start_delay=run.seed,
        trace=trace,
        size=run.size,
        outstanding=run.outstanding,
        reorder_depth=run.reorder_depth,
        **dict(run.harness_kwargs),
    )


def execute_shard(shard: Shard, store=None) -> ShardResult:
    """Worker entry point: run every injection of one shard, in order.

    *store* (a :class:`~repro.orchestrate.store.ResultStore`) is the
    worker-side short-circuit: each run is looked up before it is
    simulated and written back after — so a distributed worker handed a
    reassigned shard whose original holder already pushed results into
    the shared store only simulates the genuinely missing runs.  The
    returned results are identical either way (store hits round-trip
    the exact result objects).
    """
    if store is None:
        return shard.index, [execute_run(run) for run in shard.runs]
    results = []
    for run in shard.runs:
        result = store.get(run)
        if result is None:
            result = execute_run(run)
            store.put(run, result)
        results.append(result)
    return shard.index, results


class SerialExecutor:
    """Runs shards one after another in the calling process."""

    workers = 1

    def map(self, shards: Sequence[Shard]) -> Iterator[ShardResult]:
        for shard in shards:
            yield execute_shard(shard)


class WorkerPoolExecutor:
    """Fans shards out across a ``multiprocessing`` pool.

    Completion order is arbitrary (``imap_unordered``); the engine
    re-assembles results by run index, so scheduling jitter never
    changes the aggregated output.
    """

    def __init__(self, workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers

    def map(self, shards: Sequence[Shard]) -> Iterator[ShardResult]:
        if not shards:
            return
        method = os.environ.get(START_METHOD_ENV, "").strip() or None
        context = multiprocessing.get_context(method)
        processes = min(self.workers, len(shards))
        with context.Pool(processes=processes) as pool:
            yield from pool.imap_unordered(execute_shard, shards, chunksize=1)


def make_executor(
    workers: int, distributed=None, batch_lanes=None, batch_verify=False
):
    """Pick the executor: serial, process pool, distributed, or batch.

    *distributed* selects the distributed executor
    (:class:`~repro.orchestrate.distributed.DistributedExecutor`): pass
    a pre-built executor to use it as-is, ``True`` for the defaults, or
    a kwargs mapping (``host``/``port``/``local_workers``/
    ``lease_timeout``) to construct one.  *batch_lanes* selects the
    lockstep batch executor
    (:class:`~repro.orchestrate.batch.BatchExecutor`) with packs of at
    most that many lanes (*batch_verify* adds a scalar verify replay of
    every derived lane).  Otherwise *workers* picks between the
    in-process executors (1 → serial).  The batch axis is exclusive
    with the other two: packs are planned over the whole pending run
    set in one process.
    """
    if batch_lanes is not None:
        if distributed is not None and distributed is not False:
            raise ValueError("batch_lanes cannot be combined with distributed")
        if workers > 1:
            raise ValueError(
                f"batch_lanes requires workers=1, got workers={workers}"
            )
        from .batch import BatchExecutor

        return BatchExecutor(batch_lanes, verify=batch_verify)
    if distributed is not None and distributed is not False:
        # Imported lazily — distributed.py imports execute_shard from
        # this module, so a top-level import would cycle.
        from .distributed import DistributedExecutor

        if isinstance(distributed, DistributedExecutor):
            return distributed
        if distributed is True:
            return DistributedExecutor()
        return DistributedExecutor(**dict(distributed))
    return SerialExecutor() if workers <= 1 else WorkerPoolExecutor(workers)
