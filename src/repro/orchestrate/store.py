"""Run-granular result store: hot LRU, warm SQLite, cold shard archive.

The shard cache (:mod:`repro.orchestrate.cache`) reuses results at the
granularity of a whole campaign: its namespace is the spec hash, so a
sweep that is a *superset* of a previous one misses everything and
re-simulates runs the machine already computed.  This store drops the
granularity to the individual run.  Results are keyed by
:meth:`~repro.orchestrate.spec.RunSpec.param_key` — a content hash of
the simulation-determining parameters, independent of the enclosing
campaign — so the engine can compute the *frontier* of any sweep: fetch
the intersection from the store, simulate only what is genuinely new.

Three tiers, consulted in order:

* **Hot** — a bounded in-memory LRU of decoded result objects.  Free
  repeats within one process (aggregation queries, shard write-back).
* **Warm** — an append-only SQLite table in WAL mode.  WAL plus
  ``INSERT OR IGNORE`` makes the file safe for concurrent writers
  sharing a directory (coordinator + workers, or two campaigns): the
  first result for a key wins and later duplicates are dropped, the
  same at-least-once discipline the distributed board enforces.
  Defects are demoted to logged misses *per row* — a truncated payload,
  a foreign or future format marker, or a result that fails to
  deserialize costs one re-simulated run, never the store.
* **Cold** — existing shard-JSON cache directories mounted read-only.
  The index maps param keys to ``(shard file, position)`` by expanding
  each namespace's archived ``spec.json``, so format-2 caches written
  by earlier releases keep hitting without migration; a hit is promoted
  to the warm and hot tiers on the way out.  ``repro store migrate``
  runs the same mapping eagerly as a one-shot, idempotent import.

Everything returned is a full-fidelity result object (the cache's
round-trip codec), so a store hit is byte-identical to a fresh
simulation all the way into campaign JSON exports — scheduler statistics
included.
"""

from __future__ import annotations

import collections
import json
import logging
import sqlite3
import threading
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .cache import CACHE_FORMAT, sweep_stale_tmp
from .serialize import result_from_dict, result_to_dict
from .spec import CampaignSpec, RunSpec, plan_shards

log = logging.getLogger(__name__)

#: Row-payload format marker.  Kept in lockstep with the shard cache's
#: :data:`~repro.orchestrate.cache.CACHE_FORMAT`: a store row carries
#: exactly one cache-format result dict, so cold-tier promotion and
#: ``store migrate`` never re-encode anything.
STORE_FORMAT = CACHE_FORMAT

#: SQLite schema version (``PRAGMA user_version``).
SCHEMA_VERSION = 1

#: Default hot-tier capacity (decoded result objects).
DEFAULT_HOT_CAPACITY = 4096

#: Warm-tier database filename inside the store root.
DB_NAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    param_key TEXT PRIMARY KEY,
    run_id    TEXT NOT NULL,
    format    INTEGER NOT NULL,
    payload   TEXT NOT NULL
) WITHOUT ROWID
"""


class ResultStore:
    """Tiered, append-only store of injection results keyed per run.

    Open one with :meth:`open`; ``get``/``put`` take the campaign's own
    :class:`~repro.orchestrate.spec.RunSpec` objects, so callers never
    handle keys or payload dicts.  *metrics* (a
    :class:`~repro.telemetry.MetricsRegistry`) receives per-tier
    ``store.hot_hit`` / ``store.warm_hit`` / ``store.cold_hit`` /
    ``store.miss`` / ``store.corrupt`` / ``store.put`` /
    ``store.duplicate`` counters plus a ``store.lookup_seconds``
    histogram — purely observational, like every other instrument here.
    """

    def __init__(
        self,
        root: Union[str, Path],
        cold_roots: Sequence[Union[str, Path]] = (),
        hot_capacity: int = DEFAULT_HOT_CAPACITY,
        metrics=None,
    ) -> None:
        if hot_capacity < 0:
            raise ValueError("hot_capacity must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        sweep_stale_tmp(self.root)
        self.metrics = metrics
        self.hot_capacity = hot_capacity
        self._hot: "collections.OrderedDict[str, Any]" = collections.OrderedDict()
        self._lock = threading.Lock()
        self.cold_roots = [Path(p) for p in cold_roots]
        #: param_key -> (shard file, position, expected run_id); built
        #: lazily on the first lookup that falls through the warm tier.
        self._cold_index: Optional[Dict[str, Tuple[Path, int, str]]] = None
        #: One-file cold read cache: consecutive runs of a sweep live in
        #: consecutive positions of the same shard file.
        self._cold_file: Tuple[Optional[Path], Optional[dict]] = (None, None)
        self._db = self._connect()

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        cold_roots: Sequence[Union[str, Path]] = (),
        hot_capacity: int = DEFAULT_HOT_CAPACITY,
        metrics=None,
    ) -> "ResultStore":
        """Open (creating if needed) the store rooted at *root*."""
        return cls(
            root, cold_roots=cold_roots, hot_capacity=hot_capacity,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Warm tier (SQLite, WAL)
    # ------------------------------------------------------------------
    @property
    def db_path(self) -> Path:
        return self.root / DB_NAME

    def _connect(self) -> sqlite3.Connection:
        try:
            return self._open_db()
        except sqlite3.DatabaseError as exc:
            # The whole file is unreadable (not SQLite, hopeless
            # corruption).  Losing cached results costs re-simulation
            # only, so move the wreck aside and start fresh rather than
            # wedging every campaign that names this store.
            wreck = self.db_path.with_suffix(".sqlite.corrupt")
            log.warning(
                "store database %s is unusable (%s); moving it to %s and "
                "starting empty", self.db_path, exc, wreck.name,
            )
            self.db_path.replace(wreck)
            return self._open_db()

    def _open_db(self) -> sqlite3.Connection:
        db = sqlite3.connect(
            self.db_path, timeout=30.0, check_same_thread=False
        )
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
        db.execute("PRAGMA busy_timeout=30000")
        version = db.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            raise sqlite3.DatabaseError(
                f"store schema version {version}, this code speaks "
                f"{SCHEMA_VERSION}"
            )
        with db:
            db.execute(_SCHEMA)
            db.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
        return db

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, run: RunSpec):
        """The stored result for *run*, or ``None`` on miss.

        Hot, then warm, then cold; lower-tier hits are promoted upward
        so the next fetch of the same run is cheaper.  Any defective
        entry is a logged miss for that run alone.
        """
        started = perf_counter()
        try:
            return self._get(run)
        finally:
            if self.metrics is not None:
                from ..telemetry.metrics import DEFAULT_LOOKUP_BOUNDS

                self.metrics.histogram(
                    "store.lookup_seconds", DEFAULT_LOOKUP_BOUNDS
                ).observe(perf_counter() - started)

    def _get(self, run: RunSpec):
        key = run.param_key()
        with self._lock:
            if key in self._hot:
                self._hot.move_to_end(key)
                self._count("store.hot_hit")
                return self._hot[key]
            row = self._db.execute(
                "SELECT format, payload FROM results WHERE param_key=?",
                (key,),
            ).fetchone()
        if row is not None:
            result = self._decode_row(run, key, *row)
            if result is not None:
                self._count("store.warm_hit")
                self._remember(key, result)
                return result
            # Defective row: evict it so the re-simulated (or cold-tier)
            # result can repair the store, then fall through to the cold
            # tier, which may still hold an intact copy of the same run.
            self._evict_row(key)
        result = self._cold_get(run, key)
        if result is not None:
            self._count("store.cold_hit")
            self.put(run, result)  # promote: warm insert + hot remember
            return result
        self._count("store.miss")
        return None

    def put(self, run: RunSpec, result) -> bool:
        """Record *result* for *run*; ``False`` if the key already had one.

        First-result-wins: ``INSERT OR IGNORE`` under WAL means two
        processes (a worker and a thief re-executing its stolen shard,
        say) can race a put and the store keeps exactly one row —
        whichever committed first — without either writer failing.
        """
        key = run.param_key()
        payload = json.dumps(result_to_dict(result), sort_keys=True)
        with self._lock:
            with self._db:
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO results "
                    "(param_key, run_id, format, payload) VALUES (?, ?, ?, ?)",
                    (key, run.run_id, STORE_FORMAT, payload),
                )
            inserted = cursor.rowcount > 0
        self._remember(key, result)
        self._count("store.put" if inserted else "store.duplicate")
        return inserted

    def get_many(self, runs: Iterable[RunSpec]) -> Dict[int, Any]:
        """Store hits for *runs*, keyed by each run's campaign index."""
        out: Dict[int, Any] = {}
        for run in runs:
            result = self.get(run)
            if result is not None:
                out[run.index] = result
        return out

    def iter_results(self, runs: Sequence[RunSpec]) -> Iterator[Any]:
        """Yield every run's stored result, in the order given.

        The streamed, index-ordered aggregation query: nothing beyond
        the hot LRU is held in memory, so a million-run campaign export
        walks the store instead of materializing a result list.  Raises
        ``KeyError`` on the first run the store cannot satisfy — callers
        stream this only after the frontier has executed.
        """
        for run in runs:
            result = self.get(run)
            if result is None:
                raise KeyError(
                    f"store {self.root} has no result for {run.run_id}"
                )
            yield result

    def _evict_row(self, key: str) -> None:
        """Drop one defective warm row (put can then repair the key)."""
        with self._lock:
            with self._db:
                self._db.execute(
                    "DELETE FROM results WHERE param_key=?", (key,)
                )

    def _remember(self, key: str, result) -> None:
        if self.hot_capacity <= 0:
            return
        with self._lock:
            self._hot[key] = result
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_capacity:
                self._hot.popitem(last=False)

    def _decode_row(self, run: RunSpec, key: str, fmt, payload):
        """Row -> result object, or ``None`` (logged) on any defect."""
        if fmt != STORE_FORMAT:
            log.warning(
                "store row %s (run %s) has format %r, want %d; ignoring",
                key, run.run_id, fmt, STORE_FORMAT,
            )
            self._count("store.corrupt")
            return None
        try:
            return result_from_dict(json.loads(payload))
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            log.warning(
                "store row %s (run %s) is malformed (%s); re-simulating",
                key, run.run_id, exc,
            )
            self._count("store.corrupt")
            return None

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # ------------------------------------------------------------------
    # Cold tier: read-through over shard-JSON cache directories
    # ------------------------------------------------------------------
    def add_cold_root(self, root: Union[str, Path]) -> None:
        """Mount another shard-cache directory as a cold tier."""
        root = Path(root)
        if root in self.cold_roots:
            return
        self.cold_roots.append(root)
        self._cold_index = None  # rebuilt lazily with the new root

    def _cold_get(self, run: RunSpec, key: str):
        if not self.cold_roots:
            return None
        if self._cold_index is None:
            self._cold_index = self._build_cold_index()
        entry = self._cold_index.get(key)
        if entry is None:
            return None
        path, position, run_id = entry
        payload = self._cold_payload(path)
        if payload is None:
            return None
        run_ids = payload.get("run_ids")
        if not isinstance(run_ids, list) or not (
            0 <= position < len(run_ids) and run_ids[position] == run_id
        ):
            log.warning(
                "cold entry %s no longer matches its indexed plan; "
                "ignoring for run %s", path.name, run.run_id,
            )
            return None
        try:
            return result_from_dict(payload["results"][position])
        except (AttributeError, IndexError, KeyError, TypeError, ValueError) as exc:
            log.warning(
                "cold entry %s position %d is malformed (%s); re-simulating",
                path.name, position, exc,
            )
            self._count("store.corrupt")
            return None

    def _cold_payload(self, path: Path) -> Optional[dict]:
        cached_path, cached_payload = self._cold_file
        if cached_path == path:
            return cached_payload
        payload = _load_shard_file(path)
        self._cold_file = (path, payload)
        return payload

    def _build_cold_index(self) -> Dict[str, Tuple[Path, int, str]]:
        """Map param keys to shard-file positions across the cold roots.

        Each campaign namespace archives its canonical ``spec.json``;
        expanding it reproduces the exact run list and shard plan the
        cache was written under, which places every run_id in a known
        file at a known position — no shard file is opened until a
        lookup actually lands in it.  Defective namespaces are skipped
        with a log line; first mapping of a key wins (results are
        deterministic, so duplicates across campaigns agree anyway).
        """
        index: Dict[str, Tuple[Path, int, str]] = {}
        for root in self.cold_roots:
            if not root.is_dir():
                continue
            for spec_file in sorted(root.glob("*/spec.json")):
                for key, entry in _index_namespace(spec_file.parent):
                    index.setdefault(key, entry)
        log.info(
            "cold index: %d run(s) across %d root(s)",
            len(index), len(self.cold_roots),
        )
        return index

    # ------------------------------------------------------------------
    # Maintenance: stats and migration
    # ------------------------------------------------------------------
    def index_cold(self) -> int:
        """Build the lazy cold index now; returns the indexed run count.

        ``repro store stats`` calls this so its report covers the cold
        tier without waiting for a lookup to fall through to it.
        """
        if self._cold_index is None:
            self._cold_index = self._build_cold_index()
        return len(self._cold_index)

    def stats(self) -> Dict[str, Any]:
        """Point-in-time store accounting (``repro store stats``)."""
        with self._lock:
            rows = self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            hot = len(self._hot)
        try:
            db_bytes = self.db_path.stat().st_size
        except OSError:
            db_bytes = 0
        cold_indexed = (
            len(self._cold_index) if self._cold_index is not None else None
        )
        return {
            "root": str(self.root),
            "format": STORE_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "warm_rows": rows,
            "warm_bytes": db_bytes,
            "hot_entries": hot,
            "hot_capacity": self.hot_capacity,
            "cold_roots": [str(p) for p in self.cold_roots],
            "cold_indexed_runs": cold_indexed,
        }

    def migrate_cache(self, cache_root: Union[str, Path]) -> Dict[str, int]:
        """Import every run of every format-2 campaign under *cache_root*.

        One-shot, idempotent: rows are inserted first-result-wins, so a
        re-run (or a migrate racing a live campaign) imports only what
        is genuinely new.  Returns ``{"imported": n, "skipped": m}``
        where *skipped* counts rows the store already had.
        """
        imported = skipped = 0
        cache_root = Path(cache_root)
        for spec_file in sorted(cache_root.glob("*/spec.json")):
            for key, (path, position, run_id) in _index_namespace(
                spec_file.parent
            ):
                payload = self._cold_payload(path)
                if payload is None:
                    continue
                run_ids = payload.get("run_ids")
                if (
                    not isinstance(run_ids, list)
                    or position >= len(run_ids)
                    or run_ids[position] != run_id
                ):
                    continue
                try:
                    entry = payload["results"][position]
                    result_from_dict(entry)  # only intact rows migrate
                    blob = json.dumps(entry, sort_keys=True)
                except (AttributeError, IndexError, KeyError, TypeError,
                        ValueError) as exc:
                    log.warning(
                        "skipping malformed result %s[%d] (%s)",
                        path.name, position, exc,
                    )
                    continue
                with self._lock:
                    with self._db:
                        cursor = self._db.execute(
                            "INSERT OR IGNORE INTO results "
                            "(param_key, run_id, format, payload) "
                            "VALUES (?, ?, ?, ?)",
                            (key, run_id, STORE_FORMAT, blob),
                        )
                    if cursor.rowcount > 0:
                        imported += 1
                    else:
                        skipped += 1
        return {"imported": imported, "skipped": skipped}


# ----------------------------------------------------------------------
# Cold-tier helpers (module-level: migrate and the index share them)
# ----------------------------------------------------------------------
def _load_shard_file(path: Path) -> Optional[dict]:
    """A shard file's payload, or ``None`` (logged) on any defect."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        log.warning("cold entry %s is unreadable (%s)", path.name, exc)
        return None
    if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
        log.info(
            "cold entry %s has foreign format %r; ignoring",
            path.name,
            payload.get("format") if isinstance(payload, dict) else None,
        )
        return None
    return payload


def _index_namespace(
    namespace: Path,
) -> Iterator[Tuple[str, Tuple[Path, int, str]]]:
    """Yield ``(param_key, (shard file, position, run_id))`` for one
    campaign namespace, consulting only ``spec.json`` and filenames."""
    spec = _load_namespace_spec(namespace)
    if spec is None:
        return
    runs = spec.runs()
    by_id = {run.run_id: run for run in runs}
    shard_files = sorted(namespace.glob("shard-*-of-*.json"))
    if not shard_files:
        return
    count = _shard_count(shard_files[0])
    if count is None or count <= 0:
        return
    # Reproduce the writer's plan from the filename arithmetic: C
    # contiguous chunks of ceil(R / C) runs each.  A cache written under
    # an exotic shard size that breaks this equation simply fails the
    # per-file run_id check at read time — a miss, never a wrong result.
    shard_size = -(-len(runs) // count)
    plan = plan_shards(runs, shard_size=shard_size)
    present = {path.name for path in shard_files}
    for shard in plan:
        name = f"shard-{shard.index:06d}-of-{shard.count:06d}.json"
        if name not in present:
            continue
        path = namespace / name
        for position, run in enumerate(shard.runs):
            if run.run_id in by_id:
                yield run.param_key(), (path, position, run.run_id)


def _load_namespace_spec(namespace: Path) -> Optional[CampaignSpec]:
    try:
        payload = json.loads((namespace / "spec.json").read_text())
        if payload.get("format") != CACHE_FORMAT:
            log.info(
                "cache namespace %s has foreign format %r; skipping",
                namespace.name, payload.get("format"),
            )
            return None
        return CampaignSpec(**payload["spec"])
    except (AttributeError, KeyError, OSError, TypeError, ValueError) as exc:
        log.warning(
            "cache namespace %s is unreadable (%s); skipping",
            namespace.name, exc,
        )
        return None


def _shard_count(path: Path) -> Optional[int]:
    """Total shard count from a ``shard-IIIIII-of-CCCCCC.json`` name."""
    parts = path.stem.split("-")
    if len(parts) == 4 and parts[0] == "shard" and parts[3].isdigit():
        return int(parts[3])
    return None
