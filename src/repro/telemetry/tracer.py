"""Kernel tracing: per-component schedule counters + Chrome trace spans.

The :class:`~repro.sim.kernel.Simulator` accepts a *tracer* object and
calls a small hook set around its scheduling decisions.  The default is
``None`` — every hook site is a ``tracer is not None`` branch on a
hoisted local, the same idiom as the kernel's probe guard, so the
un-traced hot path pays nothing.

Two verbosity tiers keep even an *installed* tracer cheap when only
cycle-level data is wanted:

* ``trace_components = False`` (the :class:`Tracer` base): the kernel
  calls only the per-*step* hooks (``step_begin``/``step_end``) plus
  ``wake_fired`` and ``leap``.  Inner settle/update loops stay
  untouched — this is the "no-op tracer" tier the benchmark gate holds
  to ≤5% overhead.
* ``trace_components = True`` (:class:`KernelTracer`): the kernel
  additionally times every executed ``drive()`` / ``update()`` with
  ``perf_counter_ns`` and reports them per component.

:class:`KernelTracer` aggregates both tiers into per-component
drive/update/skip/wake counters and (optionally) a Chrome trace-event
timeline loadable in Perfetto / ``chrome://tracing``.  The timeline's
timebase is *simulated* time — one cycle is one microsecond of trace
time — so the schedule is inspected in the clock domain the figures are
measured in; measured wall-clock nanoseconds ride along in each span's
``args``.  A clock fast-forward renders as a single ``leap`` span
covering the whole jumped region, which is exactly how a 60k-cycle
stall should look: one span, not sixty thousand.
"""

from __future__ import annotations

import json
from time import perf_counter_ns
from typing import Any, Dict, List, Optional

#: Trace-time microseconds per simulated cycle (Chrome trace ``ts`` is
#: in microseconds; one cycle maps to 1.0 so ts values read as cycles).
_CYCLE_US = 1.0


class Tracer:
    """Base tracer: cycle-level hooks only, all of them no-ops.

    Subclass and override what you need.  Set ``trace_components = True``
    to additionally receive the timed per-component hooks — that is the
    expensive tier; leave it False for cycle-granularity observers.
    """

    #: When False, the kernel skips the per-component hooks entirely —
    #: the settle/update inner loops run exactly as if untraced.
    trace_components: bool = False

    def step_begin(self, sim) -> None:
        """A stepped (never leaped) cycle is about to run its phases."""

    def step_end(self, sim) -> None:
        """The stepped cycle finished; ``sim.cycle`` already advanced."""

    def wake_fired(self, component, cycle: int) -> None:
        """A timed wake moved *component* into the live updater set."""

    def leap(self, sim, start: int, dest: int) -> None:
        """The clock fast-forwarded from *start* to *dest* in one jump."""

    def drive_executed(self, component, elapsed_ns: int) -> None:
        """One ``drive()`` ran (``trace_components`` tier only)."""

    def update_executed(self, component, elapsed_ns: int) -> None:
        """One ``update()`` ran (``trace_components`` tier only)."""


class _ComponentCounters:
    """Mutable per-component tally (kept dict-free for speed)."""

    __slots__ = ("drives", "updates", "skips", "wakes", "drive_ns", "update_ns")

    def __init__(self) -> None:
        self.drives = 0
        self.updates = 0
        self.skips = 0
        self.wakes = 0
        self.drive_ns = 0
        self.update_ns = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "drives": self.drives,
            "updates": self.updates,
            "skips": self.skips,
            "wakes": self.wakes,
            "drive_ns": self.drive_ns,
            "update_ns": self.update_ns,
        }


class KernelTracer(Tracer):
    """Full-fat tracer: counters plus a Chrome trace-event timeline.

    Parameters
    ----------
    events:
        When False, only the counters are kept — no span timeline, no
        per-cycle allocation beyond the tallies.  Counter-only tracing
        is what campaign-wide byte-identity tests run with.
    max_events:
        Upper bound on recorded trace events; once reached, further
        spans are dropped (counted in ``dropped_events``) so a
        pathological run cannot exhaust memory.  Metadata (thread
        names) is exempt.
    """

    trace_components = True

    def __init__(self, events: bool = True, max_events: int = 1_000_000) -> None:
        self.counters_by_name: Dict[str, _ComponentCounters] = {}
        self.steps = 0
        self.leaps = 0
        self.cycles_leaped = 0
        self.record_events = events
        self.max_events = max_events
        self.dropped_events = 0
        self._events: List[Dict[str, Any]] = []
        self._tids: Dict[str, int] = {}
        #: Per-cycle scratch: component -> [count, ns], flushed at step_end.
        self._cycle_drives: Dict[Any, List[int]] = {}
        self._cycle_updates: Dict[Any, List[int]] = {}
        self._cycle_wakes: List[Any] = []
        self._cycle_start: Optional[int] = None
        self._demand_updaters = ()

    # ------------------------------------------------------------------
    # Hook implementations
    # ------------------------------------------------------------------
    def step_begin(self, sim) -> None:
        self._cycle_start = sim.cycle
        self._demand_updaters = sim._demand_updaters
        if self._cycle_drives:
            self._cycle_drives.clear()
        if self._cycle_updates:
            self._cycle_updates.clear()

    def step_end(self, sim) -> None:
        self.steps += 1
        cycle = self._cycle_start
        if cycle is None:  # step_end without step_begin: tolerate
            cycle = sim.cycle - 1
        updated = self._cycle_updates
        # A demand updater that did not run this stepped cycle was
        # skipped by quiescence (or slept through it on a timed wake).
        for component in self._demand_updaters:
            if component not in updated:
                self._tally(component).skips += 1
        for component, (count, ns) in self._cycle_drives.items():
            tally = self._tally(component)
            tally.drives += count
            tally.drive_ns += ns
            if self.record_events:
                self._span(
                    component.name,
                    "drive",
                    cycle * _CYCLE_US + 0.05,
                    0.40,
                    {"runs": count, "wall_ns": ns},
                )
        for component, (count, ns) in updated.items():
            tally = self._tally(component)
            tally.updates += count
            tally.update_ns += ns
            if self.record_events:
                self._span(
                    component.name,
                    "update",
                    cycle * _CYCLE_US + 0.55,
                    0.40,
                    {"runs": count, "wall_ns": ns},
                )
        if self.record_events:
            for component in self._cycle_wakes:
                self._instant(component.name, "wake", cycle * _CYCLE_US)
        self._cycle_wakes.clear()
        self._cycle_drives.clear()
        self._cycle_updates.clear()
        self._cycle_start = None

    def wake_fired(self, component, cycle: int) -> None:
        self._tally(component).wakes += 1
        if self.record_events:
            self._cycle_wakes.append(component)

    def leap(self, sim, start: int, dest: int) -> None:
        self.leaps += 1
        self.cycles_leaped += dest - start
        if self.record_events:
            self._span(
                None,
                "leap",
                start * _CYCLE_US,
                (dest - start) * _CYCLE_US,
                {"from_cycle": start, "to_cycle": dest, "cycles": dest - start},
            )

    def drive_executed(self, component, elapsed_ns: int) -> None:
        entry = self._cycle_drives.get(component)
        if entry is None:
            self._cycle_drives[component] = [1, elapsed_ns]
        else:
            entry[0] += 1
            entry[1] += elapsed_ns

    def update_executed(self, component, elapsed_ns: int) -> None:
        entry = self._cycle_updates.get(component)
        if entry is None:
            self._cycle_updates[component] = [1, elapsed_ns]
        else:
            entry[0] += 1
            entry[1] += elapsed_ns

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _tally(self, component) -> _ComponentCounters:
        tally = self.counters_by_name.get(component.name)
        if tally is None:
            tally = self.counters_by_name[component.name] = _ComponentCounters()
        return tally

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-component ``{drives, updates, skips, wakes, *_ns}`` dicts."""
        return {
            name: tally.as_dict()
            for name, tally in sorted(self.counters_by_name.items())
        }

    # ------------------------------------------------------------------
    # Chrome trace-event timeline
    # ------------------------------------------------------------------
    def _tid(self, name: Optional[str]) -> int:
        """Stable per-track thread id; track 0 is the kernel itself."""
        if name is None:
            name = "kernel"
        tid = self._tids.get(name)
        if tid is None:
            tid = self._tids[name] = len(self._tids)
            self._events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return tid

    def _span(
        self,
        track: Optional[str],
        name: str,
        ts: float,
        dur: float,
        args: Dict[str, Any],
    ) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 1,
                "tid": self._tid(track),
                "ts": ts,
                "dur": dur,
                "args": args,
            }
        )

    def _instant(self, track: Optional[str], name: str, ts: float) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append(
            {
                "name": name,
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": self._tid(track),
                "ts": ts,
            }
        )

    def chrome_trace(self) -> Dict[str, Any]:
        """The recorded timeline in Chrome trace-event JSON form.

        Load the serialized form in Perfetto (https://ui.perfetto.dev)
        or ``chrome://tracing``.  ``ts``/``dur`` are microseconds of
        *simulated* time (1 cycle = 1µs); one track per component plus
        the ``kernel`` track carrying leap spans.
        """
        # The kernel track always exists, even for an event-free run, so
        # an empty trace still names its process/track structure.
        self._tid(None)
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.telemetry.KernelTracer",
                "timebase": "simulated cycles (1 cycle = 1us of trace time)",
                "steps": self.steps,
                "leaps": self.leaps,
                "cycles_leaped": self.cycles_leaped,
                "dropped_events": self.dropped_events,
            },
        }


def write_chrome_trace(tracer: KernelTracer, path) -> None:
    """Serialize *tracer*'s timeline to *path* as Perfetto-loadable JSON."""
    with open(path, "w") as stream:
        json.dump(tracer.chrome_trace(), stream, indent=2, sort_keys=True)
        stream.write("\n")


def timed_ns() -> int:
    """Alias for :func:`time.perf_counter_ns` (patchable in tests)."""
    return perf_counter_ns()
