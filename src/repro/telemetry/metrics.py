"""Campaign metrics: counters, gauges and histograms with shard merge.

A :class:`MetricsRegistry` is the orchestration layer's tally sheet:
the engine, the executors and the result cache record what they did
(shards executed, cache hits, lanes derived, seconds per shard) into
one registry, which serializes to the ``telemetry.json`` artifact next
to a campaign's JSON export and renders through
``repro report --telemetry``.

Design constraints, in order:

* **Measurement-only.**  Nothing reads a metric to make a decision;
  a campaign run with ``metrics=None`` is byte-identical to one with a
  registry attached (asserted by the integration tests).
* **Mergeable.**  Shards execute in many places — worker processes,
  remote machines, batch packs — so registries must combine:
  counters and histograms add, gauges are last-write-wins.  The
  hypothesis property test holds ``merge`` to "splitting a stream of
  observations across registries and merging equals observing the
  stream in one registry".
* **Thread-tolerant.**  The distributed coordinator increments from
  its per-worker serving threads; one registry-wide lock covers every
  mutation (all of them shard-granular, so contention is irrelevant).
* **Plain JSON.**  ``to_dict``/``from_dict`` round-trip exactly; no
  dependencies beyond the standard library.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: ``telemetry.json`` envelope identity; bump on incompatible layout.
TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1

#: Default histogram bucket upper bounds (seconds): sub-millisecond
#: derived lanes through multi-minute distributed shards.
DEFAULT_SECONDS_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)

#: Fine-grained bucket bounds (seconds) for point lookups — result-store
#: gets sit in the microsecond-to-millisecond range, far below the
#: shard-latency buckets above.
DEFAULT_LOOKUP_BOUNDS: Tuple[float, ...] = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 1.0
)


class Counter:
    """Monotonic count of events (hits, retirements, reassignments)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock, value: int = 0) -> None:
        self.value = value
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-observed value (connected workers, queue depth)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock, value: float = 0.0) -> None:
        self.value = value
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Bucketed distribution (shard latency, heartbeat intervals).

    *bounds* are inclusive upper bounds of the finite buckets; one
    overflow bucket catches everything beyond the last bound, so
    ``len(counts) == len(bounds) + 1`` and no observation is ever lost.
    """

    __slots__ = ("bounds", "counts", "total", "count", "_lock")

    def __init__(
        self,
        lock: threading.Lock,
        bounds: Sequence[float] = DEFAULT_SECONDS_BOUNDS,
    ) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def nonzero(self) -> List[Tuple[str, int]]:
        """``(bucket label, count)`` pairs for the populated buckets."""
        labels = ["0"] + [repr(bound) for bound in self.bounds]
        out = []
        for i, count in enumerate(self.counts):
            if not count:
                continue
            upper = repr(self.bounds[i]) if i < len(self.bounds) else "inf"
            out.append((f"{labels[i]}-{upper}", count))
        return out


class MetricsRegistry:
    """Create-on-demand namespace of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BOUNDS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._lock, bounds
                )
            elif instrument.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} already exists with bounds "
                    f"{instrument.bounds}, requested {tuple(bounds)}"
                )
        return instrument

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry in place; returns self.

        Counters and histogram buckets add; a gauge takes the other
        registry's value (last writer wins — gauges are snapshots, not
        accumulations).  Histograms merged under one name must share
        bucket bounds.
        """
        with other._lock:
            counters = {k: v.value for k, v in other._counters.items()}
            gauges = {k: v.value for k, v in other._gauges.items()}
            histograms = {
                k: (v.bounds, list(v.counts), v.total, v.count)
                for k, v in other._histograms.items()
            }
        for name, value in counters.items():
            self.counter(name).inc(value)
        for name, value in gauges.items():
            self.gauge(name).set(value)
        for name, (bounds, counts, total, count) in histograms.items():
            histogram = self.histogram(name, bounds)
            with self._lock:
                for i, bucket in enumerate(counts):
                    histogram.counts[i] += bucket
                histogram.total += total
                histogram.count += count
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON snapshot (stable key order for diff-friendliness)."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "bounds": list(histogram.bounds),
                        "counts": list(histogram.counts),
                        "sum": histogram.total,
                        "count": histogram.count,
                    }
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, payload in data.get("histograms", {}).items():
            histogram = registry.histogram(name, payload["bounds"])
            counts = [int(count) for count in payload["counts"]]
            if len(counts) != len(histogram.counts):
                raise ValueError(
                    f"histogram {name!r}: {len(counts)} buckets for "
                    f"{len(histogram.counts)} bounds"
                )
            histogram.counts = counts
            histogram.total = float(payload["sum"])
            histogram.count = int(payload["count"])
        return registry


# ----------------------------------------------------------------------
# telemetry.json artifact
# ----------------------------------------------------------------------
def write_telemetry(registry: MetricsRegistry, path: Union[str, "Path"]) -> None:
    """Serialize *registry* as a ``telemetry.json`` artifact.

    The envelope carries format/version markers so a reader (``repro
    report --telemetry``, the CI schema check) can reject foreign or
    future files instead of misrendering them.
    """
    payload = {
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "metrics": registry.to_dict(),
    }
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def read_telemetry(path: Union[str, "Path"]) -> Dict[str, Any]:
    """Load a ``telemetry.json`` artifact and return its metrics dict.

    Raises ``ValueError`` on a file that is not a telemetry artifact of
    a version this code understands.
    """
    with open(path) as stream:
        payload = json.load(stream)
    if not isinstance(payload, dict) or payload.get("format") != TELEMETRY_FORMAT:
        raise ValueError(f"{path}: not a {TELEMETRY_FORMAT} file")
    if payload.get("version") != TELEMETRY_VERSION:
        raise ValueError(
            f"{path}: telemetry version {payload.get('version')!r}, "
            f"this reader understands {TELEMETRY_VERSION}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: telemetry file carries no metrics dict")
    return metrics
