"""Zero-dependency, opt-in instrumentation for the whole stack.

The paper's TMU exists because SoCs are blind to where time goes when a
transaction stalls; this package removes the same blindness about the
reproduction itself.  Three layers, all off by default and all
measurement-only (enabling any of them never changes a figure):

* **Kernel tracing** (:mod:`.tracer`) — a :class:`Tracer` object
  installed on a :class:`~repro.sim.kernel.Simulator` receives
  step/drive/update/wake/leap hooks.  :class:`KernelTracer` turns them
  into per-component execution counters plus a Chrome trace-event
  (Perfetto-loadable) span timeline of the schedule.
* **Campaign metrics** (:mod:`.metrics`) — a :class:`MetricsRegistry`
  of counters/gauges/histograms threaded through the orchestration
  engine, executors and cache; serialized into a ``telemetry.json``
  artifact next to campaign exports and summarized by
  ``repro report --telemetry``.
* **Fleet health** (:mod:`.events`) — a bounded, thread-safe
  :class:`EventLog` of structured coordinator events (leases, worker
  connects, heartbeats) behind the ``status`` wire frame and the
  ``repro status --connect`` command.

:mod:`.logs` rounds the story out with the ``repro --log-level /
--log-json`` root logger setup.
"""

from .events import EventLog
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_telemetry,
    write_telemetry,
)
from .logs import setup_logging, worker_log_prefix
from .tracer import KernelTracer, Tracer, write_chrome_trace

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "KernelTracer",
    "MetricsRegistry",
    "Tracer",
    "read_telemetry",
    "setup_logging",
    "worker_log_prefix",
    "write_chrome_trace",
    "write_telemetry",
]
