"""Root logger setup behind ``repro --log-level / --log-json``.

The orchestration modules already log (``repro.orchestrate.cache``
warns about corrupt shards, ``repro.orchestrate.distributed`` narrates
lease reassignment) but nothing configured a handler, so the records
died in ``logging.lastResort`` at WARNING and above and everything
below was invisible.  :func:`setup_logging` attaches one stream handler
to the ``repro`` logger — text or JSON-lines — and
:func:`worker_log_prefix` tags every record with a worker id so
multi-process worker output is attributable when it interleaves on the
coordinator's terminal.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional, TextIO

#: The package-level logger every ``repro.*`` module logger rolls up to.
ROOT_LOGGER = "repro"

_TEXT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class _JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: machine-tailable campaign logs."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        worker = getattr(record, "worker", None)
        if worker is not None:
            payload["worker"] = worker
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class _WorkerTag(logging.Filter):
    """Stamp records with a worker id (and prefix text messages)."""

    def __init__(self, worker_id: str) -> None:
        super().__init__()
        self.worker_id = worker_id

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "worker", None) is None:
            record.worker = self.worker_id
        return True


#: Worker id to re-apply when setup_logging (re)installs its handler —
#: worker_loop tags before the CLI may have configured logging.
_worker_id: Optional[str] = None


def worker_log_prefix(worker_id: str) -> None:
    """Tag all subsequent ``repro`` log records with *worker_id*.

    Text-formatted handlers render the tag as a ``[worker_id]`` message
    prefix; the JSON formatter emits it as a ``worker`` field.  The tag
    lives on the *handler* (logger-level filters never see records that
    propagate up from child loggers like ``repro.orchestrate.cache``),
    and is remembered so a later :func:`setup_logging` re-applies it.
    """
    global _worker_id
    _worker_id = worker_id
    tag = _WorkerTag(worker_id)
    for handler in logging.getLogger(ROOT_LOGGER).handlers:
        handler.filters = [
            f for f in handler.filters if not isinstance(f, _WorkerTag)
        ]
        handler.addFilter(tag)


class _TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        worker = getattr(record, "worker", None)
        return f"[{worker}] {text}" if worker is not None else text


def setup_logging(
    level: str = "warning",
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
    worker_id: Optional[str] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger; returns it.

    Idempotent: repeated calls replace the previously installed handler
    rather than stacking duplicates (the CLI calls this once per
    process, tests call it per-case).  Logs go to *stream* (default
    stderr, so ``--json`` table output on stdout stays clean).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        _JsonLinesFormatter() if json_lines else _TextFormatter(_TEXT_FORMAT)
    )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    # Everything is handled here; don't also bubble to the root logger.
    logger.propagate = False
    if worker_id is None:
        worker_id = _worker_id  # keep a pre-existing worker tag alive
    if worker_id is not None:
        worker_log_prefix(worker_id)
    return logger
