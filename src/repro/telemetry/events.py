"""Structured event log for fleet health.

The distributed coordinator narrates its lease and worker lifecycle
(claimed/renewed/expired/stolen, connect/EOF, heartbeats) into an
:class:`EventLog` — a bounded, thread-safe ring of plain dicts.  The
``status`` wire frame ships a snapshot of the tail to
``repro status --connect``, so the log must stay cheap to append from
the per-worker serving threads and safe to read concurrently.

Timestamps are ``time.monotonic()`` (same clock the lease ledger uses
for expiry), recorded relative to the log's creation so snapshots read
as "seconds into the campaign" rather than meaningless absolute values.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import Any, Deque, Dict, List


class EventLog:
    """Bounded ring of ``{"t": seconds, "event": name, **fields}`` dicts.

    Appends beyond *maxlen* silently evict the oldest entries (the total
    accepted count survives in :attr:`total`), so a long campaign keeps
    a recent-history window instead of an unbounded transcript.
    """

    def __init__(self, maxlen: int = 256) -> None:
        self._events: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._epoch = monotonic()
        self.total = 0

    def append(self, event: str, **fields: Any) -> None:
        entry = {"t": round(monotonic() - self._epoch, 3), "event": event}
        entry.update(fields)
        with self._lock:
            self._events.append(entry)
            self.total += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """Oldest-first copy of the retained window."""
        with self._lock:
            return [dict(entry) for entry in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
