"""ARM SP805-class watchdog baseline (paper ref. [6]).

A software-kicked countdown: the first expiry raises an interrupt, a
second expiry with the interrupt still pending asserts the reset output.
It observes no bus signals at all — which is precisely its Table II
profile (fault detection ✓ through liveness only, everything else ✗).
"""

from __future__ import annotations

from ..sim.component import Component
from ..sim.signal import Wire


class Sp805Watchdog(Component):
    """Two-stage (interrupt, then reset) software watchdog.

    Demand-driven: the countdown itself is invisible to ``drive()``
    (which only mirrors the irq/reset flags), so ticks schedule nothing
    and only the expiry transitions — plus ``clear_irq`` and reset —
    re-run the drive.  A kicked, healthy watchdog costs the scheduler
    zero work.

    The update phase holds an *armed counter*, but a pure one: between
    software interactions nothing can change its trajectory, so the
    countdown is kept as an absolute expiry stamp plus the stamp of the
    last accounted update, ``update()`` applies the elapsed span in
    O(1), and the component sleeps under a timed wake at the expiry —
    the exact component the paper's stall campaigns keep alive, now
    reduced to one heap pop per stage.
    """

    demand_driven = True
    demand_update = True

    def __init__(self, name: str, load: int = 1000) -> None:
        super().__init__(name)
        if load <= 0:
            raise ValueError("load must be positive")
        self.load = load
        self.irq = Wire(f"{name}.irq", False)
        self.reset_out = Wire(f"{name}.reset_out", False)
        self._enabled = True
        # Countdown as timestamps: the expiry update is stamped
        # `_deadline`; `_stamp` is the last update (or software poke)
        # already accounted, so `_deadline - _stamp` is the classical
        # counter value.
        self._deadline = load
        self._stamp = 0
        self._irq_state = False
        self._reset_state = False
        self.interrupts_raised = 0
        self.resets_raised = 0

    # ------------------------------------------------------------------
    # Software interface
    # ------------------------------------------------------------------
    def _now(self) -> int:
        """Stamp of the latest completed update (for software pokes)."""
        return self._sim.cycle if self._sim is not None else self._stamp

    @property
    def counter(self) -> int:
        """Cycles until the current stage expires (0 once latched)."""
        if self._reset_state:
            return 0
        if not self._enabled:
            return self._deadline - self._stamp
        return max(0, self._deadline - self._now())

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        # A property so campaign code flipping the switch directly
        # re-arms (or freezes) the countdown, mirroring
        # DriveSensitiveState.  The deadline is rebased around the
        # flip so disabled spans do not count — exactly the behaviour
        # of the per-cycle tick that froze while disabled.
        value = bool(value)
        if value != self._enabled:
            now = self._now()
            if value:
                # Re-enable: push the expiry out by the frozen span.
                self._deadline = now + (self._deadline - self._stamp)
            self._stamp = now
            self._enabled = value
        self.schedule_update()

    def kick(self) -> None:
        """Reload the counter (the periodic software 'pet')."""
        now = self._now()
        self._deadline = now + self.load
        self._stamp = now
        # No wake re-arm needed: kicks only push the expiry out, so if
        # asleep the superseded wake pops as a spurious (harmless) wake
        # whose update re-arms the new one.

    def clear_irq(self) -> None:
        now = self._now()
        self._irq_state = False
        self._deadline = now + self.load
        self._stamp = now
        self.schedule_drive()
        self.schedule_update()

    # ------------------------------------------------------------------
    def wires(self):
        yield self.irq
        yield self.reset_out

    def inputs(self):
        return ()  # drive() reads registered state only

    def outputs(self):
        return (self.irq, self.reset_out)

    def drive(self) -> None:
        self.irq.value = self._irq_state
        self.reset_out.value = self._reset_state

    def update_inputs(self):
        return ()  # nothing on the wire side can re-arm the countdown

    def quiescent(self):
        # Always: disabled and latched-reset states need no wake at all,
        # and an armed countdown sleeps under the timed wake update()
        # arms at its expiry stamp.
        return True

    def snapshot_state(self):
        # _stamp is clock-derived; _deadline moves only on the expiry /
        # software transitions verify must observe.
        return (
            self._deadline,
            self._enabled,
            self._irq_state,
            self._reset_state,
            self.interrupts_raised,
            self.resets_raised,
        )

    def update(self) -> None:
        sim = self._sim
        now = sim.cycle + 1 if sim is not None else self._stamp + 1
        if not self._enabled or self._reset_state:
            # Frozen: the span does not count.  _stamp stays at the
            # freeze boundary (the last counted stamp) so the enabled
            # setter can rebase the deadline around the frozen span.
            return
        self._stamp = now
        if now < self._deadline:
            # Still counting: sleep until the expiry update's step.
            if sim is not None:
                self.wake_at(sim.cycle + (self._deadline - now))
            return
        if not self._irq_state:
            self._irq_state = True
            self.interrupts_raised += 1
            self._deadline = now + self.load
            if sim is not None:
                self.wake_at(sim.cycle + self.load)
        else:
            # Second expiry with the interrupt unserviced: assert reset.
            self._reset_state = True
            self.resets_raised += 1
        self.schedule_drive()

    def reset(self) -> None:
        self._deadline = self.load
        self._stamp = 0
        self._irq_state = False
        self._reset_state = False
        self.interrupts_raised = 0
        self.resets_raised = 0
        self.cancel_wake()
        self.schedule_drive()
        self.schedule_update()
