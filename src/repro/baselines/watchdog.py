"""ARM SP805-class watchdog baseline (paper ref. [6]).

A software-kicked countdown: the first expiry raises an interrupt, a
second expiry with the interrupt still pending asserts the reset output.
It observes no bus signals at all — which is precisely its Table II
profile (fault detection ✓ through liveness only, everything else ✗).
"""

from __future__ import annotations

from ..sim.component import Component
from ..sim.signal import Wire


class Sp805Watchdog(Component):
    """Two-stage (interrupt, then reset) software watchdog.

    Demand-driven: the countdown itself is invisible to ``drive()``
    (which only mirrors the irq/reset flags), so ticks schedule nothing
    and only the expiry transitions — plus ``clear_irq`` and reset —
    re-run the drive.  A kicked, healthy watchdog costs the scheduler
    zero work.

    The update phase is the opposite story: an enabled watchdog is an
    *armed counter* and must tick every cycle — exactly the component
    the paper's stall campaigns keep alive — so it is only
    update-quiescent while disabled or after its reset output latched.
    """

    demand_driven = True
    demand_update = True

    def __init__(self, name: str, load: int = 1000) -> None:
        super().__init__(name)
        if load <= 0:
            raise ValueError("load must be positive")
        self.load = load
        self.irq = Wire(f"{name}.irq", False)
        self.reset_out = Wire(f"{name}.reset_out", False)
        self._enabled = True
        self._counter = load
        self._irq_state = False
        self._reset_state = False
        self.interrupts_raised = 0
        self.resets_raised = 0

    # ------------------------------------------------------------------
    # Software interface
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        # A property so campaign code flipping the switch directly
        # re-arms the countdown, mirroring DriveSensitiveState.
        self._enabled = bool(value)
        self.schedule_update()

    def kick(self) -> None:
        """Reload the counter (the periodic software 'pet')."""
        self._counter = self.load

    def clear_irq(self) -> None:
        self._irq_state = False
        self._counter = self.load
        self.schedule_drive()

    # ------------------------------------------------------------------
    def wires(self):
        yield self.irq
        yield self.reset_out

    def inputs(self):
        return ()  # drive() reads registered state only

    def outputs(self):
        return (self.irq, self.reset_out)

    def drive(self) -> None:
        self.irq.value = self._irq_state
        self.reset_out.value = self._reset_state

    def update_inputs(self):
        return ()  # nothing on the wire side can re-arm the countdown

    def quiescent(self):
        return not self._enabled or self._reset_state

    def snapshot_state(self):
        return (
            self._counter,
            self._irq_state,
            self._reset_state,
            self.interrupts_raised,
            self.resets_raised,
        )

    def update(self) -> None:
        if not self._enabled or self._reset_state:
            return
        self._counter -= 1
        if self._counter > 0:
            return
        if not self._irq_state:
            self._irq_state = True
            self.interrupts_raised += 1
            self._counter = self.load
        else:
            # Second expiry with the interrupt unserviced: assert reset.
            self._reset_state = True
            self.resets_raised += 1
        self.schedule_drive()

    def reset(self) -> None:
        self._counter = self.load
        self._irq_state = False
        self._reset_state = False
        self.interrupts_raised = 0
        self.resets_raised = 0
        self.schedule_drive()
        self.schedule_update()
