"""Xilinx AXI Timeout Block-class baseline (paper ref. [5]).

Detects *stalls*: whenever transactions are outstanding and the response
channels make no progress for a programmable window, it flags an error
and raises an interrupt.  Faithful to the limitations Table II lists —
no phase-level latency metrics, no protocol checks, no per-transaction
tracking (a single shared window timer), and no notion of multiple
outstanding transactions beyond a counter.
"""

from __future__ import annotations

from typing import List, Optional

from ..axi.interface import AxiInterface
from ..sim.component import Component
from ..sim.signal import Wire


class XilinxStyleTimeout(Component):
    """Single-window stall detector on one AXI interface.

    Demand-driven: the shared stall timer only feeds ``drive()`` through
    the irq flag, so the window counting schedules nothing until the
    expiry itself (or ``clear_irq``/reset) flips it.
    """

    demand_driven = True
    demand_update = True

    def __init__(self, name: str, bus: AxiInterface, window: int = 256) -> None:
        super().__init__(name)
        if window <= 0:
            raise ValueError("window must be positive")
        self.bus = bus
        self.window = window
        self.irq = Wire(f"{name}.irq", False)
        self._outstanding_w = 0
        self._outstanding_r = 0
        # The shared stall timer as a timestamp: its classical value at
        # update stamp `t` is `t - _stall_since`; None while rewound.
        # A stalled-but-frozen interface is then a pure countdown, slept
        # through under a timed wake at `_stall_since + window`.
        self._stall_since: Optional[int] = None
        self._irq_state = False
        self.timeouts: List[int] = []
        self._cycle = 0

    @property
    def stall_timer(self) -> int:
        """The classical running stall-timer value (for introspection)."""
        if self._stall_since is None:
            return 0
        now = self._sim.cycle if self._sim is not None else self._cycle
        return max(0, now - self._stall_since)

    def wires(self):
        yield from self.bus.wires()
        yield self.irq

    def inputs(self):
        return ()  # drive() reads registered state only

    def outputs(self):
        return (self.irq,)

    def update_inputs(self):
        # Ready wires are watched alongside the valids: the block may
        # now sleep through a held-valid (deaf-channel) stall, and the
        # only event that can unfreeze such a handshake is its ready
        # rising.
        bus = self.bus
        return (
            bus.aw.valid, bus.aw.ready, bus.ar.valid, bus.ar.ready,
            bus.b.valid, bus.b.ready, bus.r.valid, bus.r.ready,
        )

    def quiescent(self):
        # No observed handshake can fire next edge (any change that
        # could complete one passes through a watched wire first).  An
        # armed stall window is a pure countdown across such a frozen
        # span: sleep under a timed wake at its expiry stamp.
        bus = self.bus
        for ch in (bus.aw, bus.ar, bus.b, bus.r):
            if ch.valid._value and ch.ready._value:
                return False
        if self._irq_state or self._outstanding_w + self._outstanding_r == 0:
            return True
        if self._stall_since is None:
            return False  # timer not engaged yet: let the update run
        if self._sim is not None:
            expiry = self._stall_since + self.window
            self.wake_at(self._sim.cycle + (expiry - self._cycle))
        return True

    def snapshot_state(self):
        # _cycle (timeout timestamps) is clock-derived and excluded;
        # _stall_since moves only on progress/engagement transitions.
        return (
            self._outstanding_w,
            self._outstanding_r,
            self._stall_since,
            self._irq_state,
            tuple(self.timeouts),
        )

    def drive(self) -> None:
        self.irq.value = self._irq_state

    def update(self) -> None:
        sim = self._sim
        self._cycle = sim.cycle + 1 if sim is not None else self._cycle + 1
        bus = self.bus
        if bus.aw.fired():
            self._outstanding_w += 1
        if bus.ar.fired():
            self._outstanding_r += 1
        progress = False
        if bus.b.fired():
            self._outstanding_w = max(0, self._outstanding_w - 1)
            progress = True
        if bus.r.fired():
            progress = True
            beat = bus.r.payload.value
            if beat is not None and beat.last:
                self._outstanding_r = max(0, self._outstanding_r - 1)
        # One shared timer: any response progress rewinds it, which is
        # exactly why this block cannot attribute stalls per transaction.
        if self._outstanding_w + self._outstanding_r > 0 and not progress:
            if self._stall_since is None:
                # First stalled update counts 1: value = now - since.
                self._stall_since = self._cycle - 1
            if (
                self._cycle - self._stall_since >= self.window
                and not self._irq_state
            ):
                self.timeouts.append(self._cycle)
                self._irq_state = True
                self.schedule_drive()
        else:
            self._stall_since = None

    def clear_irq(self) -> None:
        self._irq_state = False
        self._stall_since = None
        self.schedule_drive()
        # A still-stalled interface must re-engage the window timer.
        self.schedule_update()

    def reset(self) -> None:
        self._outstanding_w = 0
        self._outstanding_r = 0
        self._stall_since = None
        self._irq_state = False
        self.timeouts.clear()
        self._cycle = 0
        self.cancel_wake()
        self.schedule_drive()
        self.schedule_update()
