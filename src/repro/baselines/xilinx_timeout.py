"""Xilinx AXI Timeout Block-class baseline (paper ref. [5]).

Detects *stalls*: whenever transactions are outstanding and the response
channels make no progress for a programmable window, it flags an error
and raises an interrupt.  Faithful to the limitations Table II lists —
no phase-level latency metrics, no protocol checks, no per-transaction
tracking (a single shared window timer), and no notion of multiple
outstanding transactions beyond a counter.
"""

from __future__ import annotations

from typing import List

from ..axi.interface import AxiInterface
from ..sim.component import Component
from ..sim.signal import Wire


class XilinxStyleTimeout(Component):
    """Single-window stall detector on one AXI interface.

    Demand-driven: the shared stall timer only feeds ``drive()`` through
    the irq flag, so the window counting schedules nothing until the
    expiry itself (or ``clear_irq``/reset) flips it.
    """

    demand_driven = True
    demand_update = True

    def __init__(self, name: str, bus: AxiInterface, window: int = 256) -> None:
        super().__init__(name)
        if window <= 0:
            raise ValueError("window must be positive")
        self.bus = bus
        self.window = window
        self.irq = Wire(f"{name}.irq", False)
        self._outstanding_w = 0
        self._outstanding_r = 0
        self._stall_timer = 0
        self._irq_state = False
        self.timeouts: List[int] = []
        self._cycle = 0

    def wires(self):
        yield from self.bus.wires()
        yield self.irq

    def inputs(self):
        return ()  # drive() reads registered state only

    def outputs(self):
        return (self.irq,)

    def update_inputs(self):
        bus = self.bus
        return (bus.aw.valid, bus.ar.valid, bus.b.valid, bus.r.valid)

    def quiescent(self):
        # With nothing outstanding the stall timer cannot run, and with
        # the channels idle nothing can fire; a valid rising re-arms.
        bus = self.bus
        return (
            self._outstanding_w == 0
            and self._outstanding_r == 0
            and self._stall_timer == 0
            and not bus.aw.valid._value
            and not bus.ar.valid._value
            and not bus.b.valid._value
            and not bus.r.valid._value
        )

    def snapshot_state(self):
        # _cycle (timeout timestamps) is clock-derived and excluded.
        return (
            self._outstanding_w,
            self._outstanding_r,
            self._stall_timer,
            self._irq_state,
            tuple(self.timeouts),
        )

    def drive(self) -> None:
        self.irq.value = self._irq_state

    def update(self) -> None:
        sim = self._sim
        self._cycle = sim.cycle + 1 if sim is not None else self._cycle + 1
        bus = self.bus
        if bus.aw.fired():
            self._outstanding_w += 1
        if bus.ar.fired():
            self._outstanding_r += 1
        progress = False
        if bus.b.fired():
            self._outstanding_w = max(0, self._outstanding_w - 1)
            progress = True
        if bus.r.fired():
            progress = True
            beat = bus.r.payload.value
            if beat is not None and beat.last:
                self._outstanding_r = max(0, self._outstanding_r - 1)
        # One shared timer: any response progress rewinds it, which is
        # exactly why this block cannot attribute stalls per transaction.
        if self._outstanding_w + self._outstanding_r > 0 and not progress:
            self._stall_timer += 1
            if self._stall_timer >= self.window and not self._irq_state:
                self.timeouts.append(self._cycle)
                self._irq_state = True
                self.schedule_drive()
        else:
            self._stall_timer = 0

    def clear_irq(self) -> None:
        self._irq_state = False
        self._stall_timer = 0
        self.schedule_drive()

    def reset(self) -> None:
        self._outstanding_w = 0
        self._outstanding_r = 0
        self._stall_timer = 0
        self._irq_state = False
        self.timeouts.clear()
        self._cycle = 0
        self.schedule_drive()
        self.schedule_update()
