"""AXI performance-monitor baseline (paper refs. [7], [8], [10], [12], [14]).

Represents the AMD AXI Performance Monitor / Synopsys Smart Monitor
class of IP: rich transaction-level statistics — counts, byte volumes,
latency min/max/mean, windowed throughput — but **no** fault detection,
protocol checking, or recovery hooks (their Table II profile).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List

from ..axi.interface import AxiInterface
from ..sim.component import Component
from ..tmu.perf import LatencyStat


@dataclasses.dataclass
class TrafficCounters:
    """Aggregate statistics for one direction."""

    transactions: int = 0
    beats: int = 0
    bytes: int = 0
    latency: LatencyStat = dataclasses.field(default_factory=LatencyStat)


class AxiPerfMonitor(Component):
    """Statistics-only observer on one AXI interface."""

    def __init__(
        self, name: str, bus: AxiInterface, window: int = 1024
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self.window = window
        self.write = TrafficCounters()
        self.read = TrafficCounters()
        self._cycle = 0
        # Per-ID FIFO of (start_cycle, bytes_per_beat) for latency pairing.
        self._w_pending: Dict[int, Deque[int]] = {}
        self._r_pending: Dict[int, Deque[int]] = {}
        self._window_beats: Deque[int] = deque()
        self.window_history: List[float] = []

    def wires(self):
        yield from self.bus.wires()

    def update(self) -> None:
        self._cycle += 1
        bus = self.bus
        beats_this_cycle = 0
        if bus.aw.fired():
            beat = bus.aw.payload.value
            self._w_pending.setdefault(beat.id, deque()).append(self._cycle)
            self.write.transactions += 1
        if bus.ar.fired():
            beat = bus.ar.payload.value
            self._r_pending.setdefault(beat.id, deque()).append(self._cycle)
            self.read.transactions += 1
        if bus.w.fired():
            beat = bus.w.payload.value
            self.write.beats += 1
            self.write.bytes += bin(beat.strb).count("1")
            beats_this_cycle += 1
        if bus.b.fired():
            beat = bus.b.payload.value
            queue = self._w_pending.get(beat.id)
            if queue:
                self.write.latency.record(self._cycle - queue.popleft())
        if bus.r.fired():
            beat = bus.r.payload.value
            self.read.beats += 1
            beats_this_cycle += 1
            if beat.last:
                queue = self._r_pending.get(beat.id)
                if queue:
                    self.read.latency.record(self._cycle - queue.popleft())
        self._window_beats.append(beats_this_cycle)
        if len(self._window_beats) >= self.window:
            self.window_history.append(
                sum(self._window_beats) / len(self._window_beats)
            )
            self._window_beats.clear()

    @property
    def total_transactions(self) -> int:
        return self.write.transactions + self.read.transactions

    def throughput(self) -> float:
        """Beats per cycle observed so far."""
        if self._cycle == 0:
            return 0.0
        return (self.write.beats + self.read.beats) / self._cycle

    def reset(self) -> None:
        self.write = TrafficCounters()
        self.read = TrafficCounters()
        self._cycle = 0
        self._w_pending.clear()
        self._r_pending.clear()
        self._window_beats.clear()
        self.window_history.clear()
