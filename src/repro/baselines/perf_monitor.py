"""AXI performance-monitor baseline (paper refs. [7], [8], [10], [12], [14]).

Represents the AMD AXI Performance Monitor / Synopsys Smart Monitor
class of IP: rich transaction-level statistics — counts, byte volumes,
latency min/max/mean, windowed throughput — but **no** fault detection,
protocol checking, or recovery hooks (their Table II profile).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List

from ..axi.interface import AxiInterface
from ..sim.component import Component
from ..tmu.perf import LatencyStat


@dataclasses.dataclass
class TrafficCounters:
    """Aggregate statistics for one direction."""

    transactions: int = 0
    beats: int = 0
    bytes: int = 0
    latency: LatencyStat = dataclasses.field(default_factory=LatencyStat)


class AxiPerfMonitor(Component):
    """Statistics-only observer on one AXI interface.

    Update-quiescent while the bus is idle: idle cycles contribute only
    zeros to the windowed-throughput accumulator, so a skipped span is
    reconstructed exactly (same window boundaries, same averages) from
    the simulator clock on wake.
    """

    demand_update = True

    def __init__(
        self, name: str, bus: AxiInterface, window: int = 1024
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self.window = window
        self.write = TrafficCounters()
        self.read = TrafficCounters()
        self._cycle = 0
        # Per-ID FIFO of (start_cycle, bytes_per_beat) for latency pairing.
        self._w_pending: Dict[int, Deque[int]] = {}
        self._r_pending: Dict[int, Deque[int]] = {}
        # Windowed throughput as a running (sum, count) pair — O(1) to
        # fast-forward over skipped idle cycles.
        self._window_sum = 0
        self._window_count = 0
        self._window_history: List[float] = []

    def wires(self):
        yield from self.bus.wires()

    def update_inputs(self):
        # Valids and readys: the monitor observes fires only, so it may
        # sleep through a held-valid (stalled) span — the only event
        # that can complete such a handshake is its ready rising.
        bus = self.bus
        wires = []
        for ch in (bus.aw, bus.ar, bus.w, bus.b, bus.r):
            wires.extend((ch.valid, ch.ready))
        return tuple(wires)

    def quiescent(self):
        # No handshake can fire next edge: every skipped cycle
        # contributes zero beats, which _sync() reconstructs exactly
        # into the throughput window on wake.
        bus = self.bus
        return not any(
            ch.valid._value and ch.ready._value
            for ch in (bus.aw, bus.ar, bus.w, bus.b, bus.r)
        )

    def snapshot_state(self):
        # The window accumulator and _cycle are clock-derived (resynced
        # on wake) and excluded; window_history flushes driven purely by
        # idle cycles are likewise reconstruction, not new information.
        return (
            self.write.transactions, self.write.beats, self.write.bytes,
            self.read.transactions, self.read.beats, self.read.bytes,
            tuple(sorted(
                (tid, tuple(queue)) for tid, queue in self._w_pending.items()
            )),
            tuple(sorted(
                (tid, tuple(queue)) for tid, queue in self._r_pending.items()
            )),
        )

    @property
    def window_history(self) -> List[float]:
        """Completed window averages, including any quiescent tail."""
        self._sync()
        return self._window_history

    def _tick_window(self, beats: int) -> None:
        self._window_sum += beats
        self._window_count += 1
        if self._window_count >= self.window:
            self._window_history.append(self._window_sum / self._window_count)
            self._window_sum = 0
            self._window_count = 0

    def _sync(self) -> None:
        """Account every skipped idle (zero-beat) cycle into the window.

        Idempotent reconstruction from the simulator clock — called on
        wake and before any windowed read, so observers cannot tell the
        monitor ever slept.
        """
        sim = self._sim
        if sim is None:
            return
        skipped = sim.cycle - self._cycle
        if skipped <= 0:
            return
        self._cycle = sim.cycle
        fill = self.window - self._window_count
        if skipped >= fill:
            self._window_history.append(self._window_sum / self.window)
            skipped -= fill
            full_windows, skipped = divmod(skipped, self.window)
            self._window_history.extend([0.0] * full_windows)
            self._window_sum = 0
            self._window_count = 0
        self._window_count += skipped

    def update(self) -> None:
        self._sync()
        self._cycle += 1
        bus = self.bus
        beats_this_cycle = 0
        if bus.aw.fired():
            beat = bus.aw.payload.value
            self._w_pending.setdefault(beat.id, deque()).append(self._cycle)
            self.write.transactions += 1
        if bus.ar.fired():
            beat = bus.ar.payload.value
            self._r_pending.setdefault(beat.id, deque()).append(self._cycle)
            self.read.transactions += 1
        if bus.w.fired():
            beat = bus.w.payload.value
            self.write.beats += 1
            self.write.bytes += bin(beat.strb).count("1")
            beats_this_cycle += 1
        if bus.b.fired():
            beat = bus.b.payload.value
            queue = self._w_pending.get(beat.id)
            if queue:
                self.write.latency.record(self._cycle - queue.popleft())
        if bus.r.fired():
            beat = bus.r.payload.value
            self.read.beats += 1
            beats_this_cycle += 1
            if beat.last:
                queue = self._r_pending.get(beat.id)
                if queue:
                    self.read.latency.record(self._cycle - queue.popleft())
        self._tick_window(beats_this_cycle)

    @property
    def total_transactions(self) -> int:
        return self.write.transactions + self.read.transactions

    def throughput(self) -> float:
        """Beats per cycle observed so far."""
        self._sync()
        if self._cycle == 0:
            return 0.0
        return (self.write.beats + self.read.beats) / self._cycle

    def reset(self) -> None:
        self.write = TrafficCounters()
        self.read = TrafficCounters()
        self._cycle = 0
        self._w_pending.clear()
        self._r_pending.clear()
        self._window_sum = 0
        self._window_count = 0
        self._window_history.clear()
        self.schedule_update()
