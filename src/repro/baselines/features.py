"""Capability matrix for Table II (comparison of AXI transaction monitors).

Each row of the paper's Table II becomes a :class:`MonitorProfile`.
Rows for monitors implemented in this repository are derived from the
implementation (and cross-checked by tests); rows for literature-only
monitors carry the paper's reported feature set.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class MonitorProfile:
    """One Table II row."""

    name: str
    target_protocol: str
    hw_based: bool
    timing_metrics: bool
    transaction_level: bool
    phase_level: bool
    protocol_check: bool
    perf_metrics: bool
    fault_detection: bool
    multiple_outstanding: bool
    scalable: bool
    implemented_as: Optional[str] = None  # repro class, when built here

    def row(self) -> List[str]:
        def mark(flag: bool) -> str:
            return "Y" if flag else "x"

        return [
            self.name,
            self.target_protocol,
            "HW" if self.hw_based else "SW",
            mark(self.timing_metrics),
            mark(self.transaction_level),
            mark(self.phase_level),
            mark(self.protocol_check),
            mark(self.perf_metrics),
            mark(self.fault_detection),
            mark(self.multiple_outstanding),
            mark(self.scalable),
        ]


TABLE2_COLUMNS = [
    "Reference",
    "Prot.",
    "HW/SW",
    "Timing",
    "Txn-Lvl",
    "Phase-Lvl",
    "ProtChk",
    "PerfMet",
    "FaultDet",
    "M.O.",
    "Scal.",
]


def table2_profiles() -> List[MonitorProfile]:
    """All Table II rows, literature order, TMU variants last."""
    return [
        MonitorProfile(
            "Xilinx AXI Timeout [5]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=False, fault_detection=True,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.XilinxStyleTimeout",
        ),
        MonitorProfile(
            "ARM Watchdog [6]", "APB", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=False, fault_detection=True,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.Sp805Watchdog",
        ),
        MonitorProfile(
            "AMD Perf. Mon. [7]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.AxiPerfMonitor",
        ),
        MonitorProfile(
            "Synopsys Smart Mon. [8]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.AxiPerfMonitor",
        ),
        MonitorProfile(
            "Lazaro AXI Firewall [9]", "AXI", True,
            timing_metrics=False, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=False, fault_detection=False,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.AxiFirewall",
        ),
        MonitorProfile(
            "Ravi Bus Monitor [10]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
        ),
        MonitorProfile(
            "Lee Bus Monitor [11]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=True, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
        ),
        MonitorProfile(
            "Kyung Perf. Mon. [12]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
        ),
        MonitorProfile(
            "Chen AXIChecker [13]", "AXI", True,
            timing_metrics=False, transaction_level=True, phase_level=False,
            protocol_check=True, perf_metrics=False, fault_detection=False,
            multiple_outstanding=False, scalable=False,
            implemented_as="repro.baselines.AxiChecker",
        ),
        MonitorProfile(
            "Tan Perf. Mon. [14]", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=False, perf_metrics=True, fault_detection=False,
            multiple_outstanding=False, scalable=False,
        ),
        MonitorProfile(
            "Edelman Transac. Mon. [15]", "AXI", False,
            timing_metrics=False, transaction_level=False, phase_level=True,
            protocol_check=False, perf_metrics=False, fault_detection=False,
            multiple_outstanding=False, scalable=False,
        ),
        MonitorProfile(
            "This work: Tiny-Counter", "AXI", True,
            timing_metrics=True, transaction_level=True, phase_level=False,
            protocol_check=True, perf_metrics=True, fault_detection=True,
            multiple_outstanding=True, scalable=True,
            implemented_as="repro.tmu.TransactionMonitoringUnit(variant=TINY)",
        ),
        MonitorProfile(
            "This work: Full-Counter", "AXI", True,
            timing_metrics=True, transaction_level=False, phase_level=True,
            protocol_check=True, perf_metrics=True, fault_detection=True,
            multiple_outstanding=True, scalable=True,
            implemented_as="repro.tmu.TransactionMonitoringUnit(variant=FULL)",
        ),
    ]


def implemented_profiles() -> List[MonitorProfile]:
    return [p for p in table2_profiles() if p.implemented_as is not None]
