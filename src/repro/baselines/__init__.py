"""Baseline monitors from the paper's Table II comparison."""

from .axichecker import AxiChecker
from .features import (
    TABLE2_COLUMNS,
    MonitorProfile,
    implemented_profiles,
    table2_profiles,
)
from .firewall import AxiFirewall, FirewallRule
from .perf_monitor import AxiPerfMonitor, TrafficCounters
from .watchdog import Sp805Watchdog
from .xilinx_timeout import XilinxStyleTimeout

__all__ = [
    "AxiChecker",
    "AxiFirewall",
    "AxiPerfMonitor",
    "FirewallRule",
    "MonitorProfile",
    "Sp805Watchdog",
    "TABLE2_COLUMNS",
    "TrafficCounters",
    "XilinxStyleTimeout",
    "implemented_profiles",
    "table2_profiles",
]
