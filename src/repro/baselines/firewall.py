"""AXI transaction firewall baseline (paper ref. [9], Lazaro et al.).

Filters transactions by operation type and address range against
predefined rules, rejecting unauthorized requests with ``SLVERR``
without forwarding them — but (per Table II) performs no timing
monitoring and no protocol checking, which is exactly the gap the TMU
fills.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Sequence

from ..axi.channels import BBeat, RBeat
from ..axi.interface import AxiInterface
from ..axi.types import AxiDir, Resp
from ..sim.component import Component


@dataclasses.dataclass(frozen=True)
class FirewallRule:
    """One allow rule: direction + address window."""

    base: int
    size: int
    allow_write: bool = True
    allow_read: bool = True

    def permits(self, addr: int, direction: AxiDir) -> bool:
        if not self.base <= addr < self.base + self.size:
            return False
        return self.allow_write if direction == AxiDir.WRITE else self.allow_read


class AxiFirewall(Component):
    """Allow-list firewall between a host and a device interface.

    Demand-driven with automatic read tracing for the wire side;
    ``update()`` reports every mutation of the rejection queues and the
    per-burst forwarding order, which is all the registered state the
    drive consults.  The rule list is treated as construction-time
    configuration — mutate it only between simulations.
    """

    demand_driven = True
    demand_update = True

    def __init__(
        self,
        name: str,
        host: AxiInterface,
        device: AxiInterface,
        rules: Sequence[FirewallRule],
    ) -> None:
        super().__init__(name)
        self.host = host
        self.device = device
        self.rules = list(rules)
        self.rejected_writes = 0
        self.rejected_reads = 0
        self._reject_b: Deque[int] = deque()
        self._reject_r: Deque[int] = deque()
        self._w_drain = 0  # rejected-write bursts whose W beats we must sink
        self._w_forward: Deque[bool] = deque()  # per accepted AW, in order

    def permitted(self, addr: int, direction: AxiDir) -> bool:
        return any(rule.permits(addr, direction) for rule in self.rules)

    def wires(self):
        yield from self.host.wires()
        yield from self.device.wires()

    def update_inputs(self):
        host, device = self.host, self.device
        return (
            host.aw.valid, host.ar.valid, host.w.valid,
            host.b.valid, host.r.valid,
            device.b.valid, device.r.valid,
        )

    def quiescent(self):
        # Queue movement needs a fired handshake, which needs a valid;
        # rejection responses keep host.b/host.r asserted until drained.
        return not any(wire._value for wire in self.update_inputs())

    def snapshot_state(self):
        return (
            self.rejected_writes,
            self.rejected_reads,
            tuple(self._reject_b),
            tuple(self._reject_r),
            tuple(self._w_forward),
        )

    # ------------------------------------------------------------------
    def drive(self) -> None:
        host, device = self.host, self.device
        # AW: forward only permitted requests; accept denied ones locally.
        aw = host.aw.payload.value
        aw_ok = (
            host.aw.valid.value
            and aw is not None
            and self.permitted(aw.addr, AxiDir.WRITE)
        )
        device.aw.valid.value = bool(aw_ok)
        device.aw.payload.value = aw if aw_ok else None
        host.aw.ready.value = bool(
            device.aw.ready.value if aw_ok else host.aw.valid.value
        )
        # AR: same policy.
        ar = host.ar.payload.value
        ar_ok = (
            host.ar.valid.value
            and ar is not None
            and self.permitted(ar.addr, AxiDir.READ)
        )
        device.ar.valid.value = bool(ar_ok)
        device.ar.payload.value = ar if ar_ok else None
        host.ar.ready.value = bool(
            device.ar.ready.value if ar_ok else host.ar.valid.value
        )
        # W: forward when the current burst belongs to a forwarded AW,
        # otherwise sink the beats of a rejected write.
        forward_w = bool(self._w_forward and self._w_forward[0])
        if forward_w:
            device.w.valid.value = host.w.valid.value
            device.w.payload.value = host.w.payload.value
            host.w.ready.value = device.w.ready.value
        else:
            device.w.idle()
            host.w.ready.value = bool(self._w_forward) and not self._w_forward[0]
        # Responses: device responses pass through; rejections take
        # priority only when the device has nothing to say.
        # A rejection B may only go out once the rejected burst's W beats
        # have been drained (front of the order queue is a forwarded one).
        reject_b_ready = bool(
            self._reject_b and (not self._w_forward or self._w_forward[0])
        )
        if device.b.valid.value:
            host.b.valid.value = True
            host.b.payload.value = device.b.payload.value
            device.b.ready.value = host.b.ready.value
        elif reject_b_ready:
            host.b.drive(BBeat(id=self._reject_b[0], resp=Resp.SLVERR))
            device.b.ready.value = False
        else:
            host.b.idle()
            device.b.ready.value = host.b.ready.value
        if device.r.valid.value:
            host.r.valid.value = True
            host.r.payload.value = device.r.payload.value
            device.r.ready.value = host.r.ready.value
        elif self._reject_r:
            host.r.drive(
                RBeat(id=self._reject_r[0], data=0, resp=Resp.SLVERR, last=True)
            )
            device.r.ready.value = False
        else:
            host.r.idle()
            device.r.ready.value = host.r.ready.value

    def update(self) -> None:
        host = self.host
        changed = False
        if host.aw.fired():
            beat = host.aw.payload.value
            ok = self.permitted(beat.addr, AxiDir.WRITE)
            self._w_forward.append(ok)
            if not ok:
                self.rejected_writes += 1
                self._reject_b.append(beat.id)
            changed = True
        if host.ar.fired():
            beat = host.ar.payload.value
            if not self.permitted(beat.addr, AxiDir.READ):
                self.rejected_reads += 1
                self._reject_r.append(beat.id)
                changed = True
        if host.w.fired():
            beat = host.w.payload.value
            if beat is not None and beat.last and self._w_forward:
                self._w_forward.popleft()
                changed = True
        if host.b.fired() and not self.device.b.valid.value and self._reject_b:
            self._reject_b.popleft()
            changed = True
        if host.r.fired() and not self.device.r.valid.value and self._reject_r:
            self._reject_r.popleft()
            changed = True
        if changed:
            self.schedule_drive()

    def reset(self) -> None:
        self.rejected_writes = 0
        self.rejected_reads = 0
        self._reject_b.clear()
        self._reject_r.clear()
        self._w_drain = 0
        self._w_forward.clear()
        self.schedule_drive()
        self.schedule_update()
