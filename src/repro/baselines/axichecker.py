"""AXIChecker-class baseline (paper ref. [13], Chen, Ju and Huang).

A rule-based protocol checker: it logs violations for debugging but has
no timing metrics, no timeout counters, and no recovery action — the
Table II profile of the original.  It wraps the reusable rule library in
:mod:`repro.axi.protocol`.
"""

from __future__ import annotations

from typing import List

from ..axi.interface import AxiInterface
from ..axi.protocol import ProtocolChecker, RuleViolation
from ..sim.component import Component
from ..sim.signal import Wire


class AxiChecker(Component):
    """Protocol-rule checker with a violation log and an error flag.

    Demand-driven: ``drive()`` only mirrors ``_error_state`` onto the
    error wire, so it is re-run exactly when that flag moves (a fresh
    violation, ``clear_error``, reset).
    """

    demand_driven = True
    demand_update = True

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        log_depth: int = 64,
        max_r_interleave: "int | None" = None,
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self._checker = ProtocolChecker(
            f"{name}.rules", bus, max_r_interleave=max_r_interleave
        )
        self.log_depth = log_depth
        self.error = Wire(f"{name}.error", False)
        self._error_state = False

    def wires(self):
        yield from self._checker.wires()
        yield self.error

    def inputs(self):
        return ()  # drive() reads registered state only

    def outputs(self):
        return (self.error,)

    def update_inputs(self):
        # Valid, ready *and* payload on every channel: the checker may
        # sleep through a frozen (held-valid) stall, and each of the
        # events that could produce a fresh observation — a handshake
        # completing (ready rise), a valid drop (stability violation),
        # a payload mutating under a held valid (stability violation) —
        # is a change on one of these wires.
        bus = self.bus
        wires = []
        for ch in ("aw", "w", "b", "ar", "r"):
            channel = getattr(bus, ch)
            wires.extend((channel.valid, channel.ready, channel.payload))
        return tuple(wires)

    def quiescent(self):
        # No handshake can fire next edge: every rule sweep over a
        # frozen interface observes exactly what this one did.  The
        # armed stability watches hold their pending state (valid high,
        # ready low is a legal wait, not a violation) and any wire
        # movement that could change the verdict re-arms us first.
        bus = self.bus
        return not any(
            getattr(bus, ch).valid._value and getattr(bus, ch).ready._value
            for ch in ("aw", "w", "b", "ar", "r")
        )

    def snapshot_state(self):
        checker = self._checker
        return (
            len(checker.violations),
            self._error_state,
            tuple(stab.pending for stab in checker._stab.values()),
            tuple(sorted(
                (tid, len(queue)) for tid, queue in checker._writes.items()
            )),
            len(checker._write_order),
            tuple(sorted(
                (tid, len(queue)) for tid, queue in checker._reads.items()
            )),
        )

    def drive(self) -> None:
        self.error.value = self._error_state

    def update(self) -> None:
        checker = self._checker
        if checker._sim is not self._sim:
            checker._sim = self._sim  # share the wrapper's clock source
        before = len(checker.violations)
        checker.update()
        if len(self._checker.violations) > before:
            if not self._error_state:
                self._error_state = True
                self.schedule_drive()
            # Bounded log, as in the synthesizable original.
            del self._checker.violations[self.log_depth:]

    @property
    def violations(self) -> List[RuleViolation]:
        return self._checker.violations

    @property
    def clean(self) -> bool:
        return self._checker.clean

    def clear_error(self) -> None:
        self._error_state = False
        self.schedule_drive()

    def reset(self) -> None:
        self._checker.reset()
        self._error_state = False
        self.schedule_drive()
        self.schedule_update()
