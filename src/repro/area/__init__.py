"""GF12-calibrated structural area model (reproduces Figs. 7-8)."""

from . import gf12
from .model import (
    AreaReport,
    detection_latency_bound,
    estimate_area,
    prescaler_saving,
    tmu_area,
)

__all__ = [
    "AreaReport",
    "detection_latency_bound",
    "estimate_area",
    "gf12",
    "prescaler_saving",
    "tmu_area",
]
