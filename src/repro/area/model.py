"""Structural area model for the TMU (reproduces Figs. 7-8 area axes).

``area(variant, outstanding, step) = base + prescaler_overhead
                                     + outstanding × entry(step)``

The per-entry cost splits into a control share (OTT links, state, meta)
and a counter share whose width scales as ``log2(budget / step)`` — the
mechanism by which the prescaler trades timing resolution for area.
Constants are calibrated in :mod:`repro.area.gf12` against the paper's
published GF12 synthesis numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..tmu.config import TmuConfig, Variant
from . import gf12


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """Area estimate with a per-component breakdown (µm², GF12)."""

    variant: Variant
    outstanding: int
    prescale_step: int
    base_um2: float
    prescaler_um2: float
    entries_um2: float
    counters_um2: float
    sticky_um2: float

    @property
    def total_um2(self) -> float:
        return (
            self.base_um2
            + self.prescaler_um2
            + self.entries_um2
            + self.counters_um2
            + self.sticky_um2
        )

    def breakdown(self) -> Dict[str, float]:
        return {
            "base (HT/EI/FSM)": self.base_um2,
            "prescaler": self.prescaler_um2,
            "entry control": self.entries_um2,
            "counters": self.counters_um2,
            "sticky bits": self.sticky_um2,
            "total": self.total_um2,
        }


def _variant_constants(variant: Variant):
    if variant == Variant.TINY:
        return (
            gf12.TC_BASE_UM2,
            gf12.TC_CTRL_UM2,
            gf12.TC_BIT_UM2,
            gf12.TC_COUNTER_SETS,
            gf12.TC_PRESCALER_OVERHEAD_UM2,
        )
    return (
        gf12.FC_BASE_UM2,
        gf12.FC_CTRL_UM2,
        gf12.FC_BIT_UM2,
        gf12.FC_COUNTER_SETS,
        gf12.FC_PRESCALER_OVERHEAD_UM2,
    )


def estimate_area(
    variant: Variant,
    outstanding: int,
    prescale_step: int = 1,
    sticky: bool = True,
    budget_cycles: int = gf12.REFERENCE_BUDGET_CYCLES,
) -> AreaReport:
    """Estimate the GF12 area of a TMU instance.

    Parameters
    ----------
    variant:
        Tiny- or Full-Counter.
    outstanding:
        ``MaxOutstdTxns`` — tracked outstanding transactions.
    prescale_step:
        Prescaler step; 1 means no prescaler (and no overhead).
    sticky:
        Whether sticky bits are instantiated (only meaningful with a
        prescaler).
    budget_cycles:
        Longest transaction the counters must represent.
    """
    if outstanding <= 0:
        raise ValueError("outstanding must be positive")
    base, ctrl, bit_cost, counter_sets, pre_overhead = _variant_constants(variant)
    width = gf12.counter_bits(budget_cycles, prescale_step)
    counters = outstanding * counter_sets * 2 * width * bit_cost
    has_prescaler = prescale_step > 1
    sticky_area = (
        outstanding * gf12.STICKY_BIT_UM2 if (has_prescaler and sticky) else 0.0
    )
    return AreaReport(
        variant=variant,
        outstanding=outstanding,
        prescale_step=prescale_step,
        base_um2=base,
        prescaler_um2=pre_overhead if has_prescaler else 0.0,
        entries_um2=outstanding * ctrl,
        counters_um2=counters,
        sticky_um2=sticky_area,
    )


def tmu_area(config: TmuConfig) -> AreaReport:
    """Area of a TMU described by a :class:`TmuConfig`."""
    return estimate_area(
        config.variant,
        config.max_outstanding,
        config.prescale_step,
        config.sticky,
        config.max_txn_cycles,
    )


def prescaler_saving(
    variant: Variant,
    outstanding: int,
    prescale_step: int = gf12.REFERENCE_PRESCALE_STEP,
    budget_cycles: int = gf12.REFERENCE_BUDGET_CYCLES,
) -> float:
    """Fractional area saved by adding a prescaler at *prescale_step*."""
    plain = estimate_area(
        variant, outstanding, 1, sticky=False, budget_cycles=budget_cycles
    ).total_um2
    prescaled = estimate_area(
        variant,
        outstanding,
        prescale_step,
        sticky=True,
        budget_cycles=budget_cycles,
    ).total_um2
    return (plain - prescaled) / plain


def detection_latency_bound(
    budget_cycles: int, prescale_step: int, sticky: bool = True
) -> int:
    """Analytic worst-case detection latency for a total-stall fault.

    Counting is conservative (the partial interval before the first
    prescaler edge is discarded), so detection takes ``ceil(budget/step)``
    complete intervals plus up to one full period of arming delay:
    ``(units + 1) * step`` cycles in the worst phase alignment.  Without
    a prescaler the bound is the budget exactly.  (The Fig. 8 bench
    *measures* this by simulation; this closed form is the
    property-test oracle.)
    """
    units = max(1, -(-budget_cycles // prescale_step))
    del sticky  # latency bound holds with or without the sticky bit
    if prescale_step == 1:
        return budget_cycles
    return (units + 1) * prescale_step


__all__ = [
    "AreaReport",
    "detection_latency_bound",
    "estimate_area",
    "prescaler_saving",
    "tmu_area",
]
