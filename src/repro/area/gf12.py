"""GF12 area-model calibration constants.

The paper synthesizes the TMU in GlobalFoundries 12 nm and reports
(§III-A2):

* Tiny-Counter, 16–32 outstanding: **1330–2616 µm²**
* Full-Counter, 16–32 outstanding: **3452–6787 µm²**
* prescaler savings: **18–39 %** (Tc) and **19–32 %** (Fc)
* "On average, Tc requires about 38 % of Fc's area."

We cannot run Synopsys DC on GF12 here, so the area model is
*structural* — linear in OTT entries, logarithmic in budget/prescale for
counter widths — with the per-entry and base constants below solved so
the model passes exactly through the paper's published no-prescaler
endpoints:

``entry = (area(32) - area(16)) / 16``, ``base = area(16) - 16 * entry``

giving Tc: 80.375 µm²/entry, 44.0 µm² base; Fc: 208.4375 µm²/entry,
117.0 µm² base (Tc/Fc per-entry ratio 0.386, matching the quoted 38 %).

Each entry's counter/budget registers account for the prescaler-
dependent share.  The per-bit cost is chosen so that the asymptotic
prescaler saving approaches the top of the paper's quoted band (39 % Tc,
32 % Fc at prescale step 32), and the fixed per-guard prescaler overhead
is kept small so the prescaled variants remain the cheaper option at
every capacity, as Fig. 7 shows ("Tc+Pre consistently consumes the least
area").
"""

from __future__ import annotations

import math

#: Reference budget: the paper sizes counters for transactions lasting
#: up to 256 clock cycles (§III-A1).
REFERENCE_BUDGET_CYCLES = 256

#: Prescaler step used for the "+Pre" configurations in Fig. 7.
REFERENCE_PRESCALE_STEP = 32

# -- Anchors solved from the paper's published endpoints -----------------
TC_ENTRY_UM2 = (2616.0 - 1330.0) / 16  # 80.375 µm² per outstanding txn
TC_BASE_UM2 = 1330.0 - 16 * TC_ENTRY_UM2  # 44.0 µm²
FC_ENTRY_UM2 = (6787.0 - 3452.0) / 16  # 208.4375 µm² per outstanding txn
FC_BASE_UM2 = 3452.0 - 16 * FC_ENTRY_UM2  # 117.0 µm²

# -- Counter composition --------------------------------------------------
#: Register pairs (counter + budget) ticking concurrently per LD entry.
#: Tc keeps one whole-transaction pair; Fc keeps a phase timer plus a
#: transaction-latency accumulator (its per-phase latency log registers
#: are part of the non-counter control share).
TC_COUNTER_SETS = 1
FC_COUNTER_SETS = 2

#: Area per counter/budget register bit (flop + increment/compare share),
#: tuned so the asymptotic step-32 saving sits at the top of the paper's
#: quoted bands.
TC_BIT_UM2 = 3.13
FC_BIT_UM2 = 3.34

#: Per-guard fixed prescaler overhead (shared divider + unit conversion).
TC_PRESCALER_OVERHEAD_UM2 = 25.0
FC_PRESCALER_OVERHEAD_UM2 = 40.0

#: One sticky bit per LD entry when the sticky mechanism is enabled.
STICKY_BIT_UM2 = 3.13


def counter_bits(budget_cycles: int, step: int) -> int:
    """Width in bits of a timeout counter for *budget_cycles* at *step*."""
    if budget_cycles <= 0 or step <= 0:
        raise ValueError("budget and step must be positive")
    units = max(1, math.ceil(budget_cycles / step))
    return max(1, math.ceil(math.log2(units)) if units > 1 else 1)


# Derived control (non-counter) share of one LD entry, at step 1.
_TC_FULL_WIDTH = counter_bits(REFERENCE_BUDGET_CYCLES, 1)  # 8 bits
TC_CTRL_UM2 = TC_ENTRY_UM2 - TC_COUNTER_SETS * 2 * _TC_FULL_WIDTH * TC_BIT_UM2
FC_CTRL_UM2 = FC_ENTRY_UM2 - FC_COUNTER_SETS * 2 * _TC_FULL_WIDTH * FC_BIT_UM2
