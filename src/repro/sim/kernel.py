"""The simulation kernel: a two-phase (settle / update) synchronous engine.

One simulated clock cycle proceeds as:

1. **Settle** — component ``drive()`` methods run until every wire holds
   its fixed-point value.  This resolves combinational chains (e.g. a
   subordinate asserting ``ready`` in response to a manager's ``valid``
   routed through a crossbar and a TMU passthrough) exactly as a
   delta-cycle RTL simulator would.
2. **Update** — every component's ``update()`` runs once against the
   settled wire values; registered state advances.  Handshakes "fire"
   here: both endpoints of a channel observe ``valid & ready``.

Three settle strategies share those semantics:

``dirty`` (default)
    A dependency-aware worklist scheduler in the style of event-driven
    RTL simulators (cocotb et al.): only components whose input wires
    changed — or that invalidated themselves via
    :meth:`~repro.sim.component.Component.schedule_drive` — are
    re-evaluated.  Components that do not opt into demand-driven
    scheduling are conservatively re-seeded every cycle.
``exhaustive``
    The original brute-force fixed point: sweep every component and
    snapshot every wire until nothing changes.  Kept as the reference
    implementation for differential testing.
``verify``
    Runs the dirty scheduler, then replays one exhaustive sweep and
    raises :class:`SchedulerDivergenceError` if any wire moves — i.e.
    the dirty scheduler skipped a component it should not have.  Slower
    than both; meant for tests and debugging of sensitivity contracts.

A combinational loop (no fixed point) raises :class:`SettleError` under
every strategy rather than silently oscillating.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from .component import Component
from .signal import _ACTIVE_READER, Wire

#: Valid values for ``Simulator(strategy=...)``.
STRATEGIES = ("dirty", "exhaustive", "verify")

_BY_ORDER = operator.attrgetter("_order")


class SettleError(RuntimeError):
    """Raised when the combinational phase fails to reach a fixed point."""


class SchedulerDivergenceError(RuntimeError):
    """Raised by ``strategy="verify"`` when the dirty-set scheduler left a
    wire short of its exhaustive-sweep fixed point — i.e. a component's
    sensitivity declaration (``inputs()`` / ``schedule_drive()`` calls)
    missed a dependency."""


class Simulator:
    """Owns components and advances simulated time cycle by cycle.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on drive sweeps (exhaustive) or worklist rounds
        (dirty) per cycle before declaring a combinational loop.  Deep
        hierarchies (manager → crossbar → TMU → fault injector →
        subordinate and back) need one round per level; the default is
        generous.
    strategy:
        One of :data:`STRATEGIES`; see the module docstring.
    """

    def __init__(
        self,
        max_settle_iterations: int = 64,
        strategy: str = "dirty",
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.components: List[Component] = []
        self.cycle = 0
        self.max_settle_iterations = max_settle_iterations
        self.strategy = strategy
        self._wires: Dict[int, Wire] = {}
        self._probes: List[Callable[["Simulator"], None]] = []
        #: Worklist of components whose drive() must (re)run.  Shared by
        #: identity with every registered wire's dirty sink and every
        #: component's schedule_drive().
        self._pending: set = set()
        #: Components re-seeded every cycle (not demand-driven).
        self._always: List[Component] = []
        #: All components with a real drive(), for reset re-seeding.
        self._drivers: List[Component] = []
        #: Pre-bound update() methods (no-op updates excluded).
        self._updaters: List[Callable[[], None]] = []
        #: Declared writers per wire id, from Component.outputs().
        self._declared_writers: Dict[int, List[Component]] = {}
        #: Wires that changed since the end of the last step's probes;
        #: only populated once track_changes() has been called.
        self._changed_wires: set = set()
        self._track_changes = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its wires) with the simulator."""
        component._order = len(self.components)
        self.components.append(component)
        incremental = self.strategy != "exhaustive"
        # Repoint (or, for exhaustive simulators, detach) each wire's
        # dirty sink: a wire feeds the worklist of the simulator it was
        # most recently registered with, and only that one.
        sink = self._pending if incremental else None
        log = self._changed_wires if self._track_changes else None
        for wire in component.wires():
            self._wires[id(wire)] = wire
            self._adopt_wire(wire, sink, log)

        declared = component.inputs()
        component._auto_trace = declared is None
        if declared is not None:
            for wire in declared:
                self._wires.setdefault(id(wire), wire)
                self._adopt_wire(wire, sink, log)
                if incremental:
                    wire.readers.add(component)

        outputs = component.outputs()
        if outputs is not None:
            for wire in outputs:
                self._declared_writers.setdefault(id(wire), []).append(component)

        # Like the wires, a component invalidates the worklist of the
        # simulator it was most recently registered with — or none, when
        # that simulator sweeps exhaustively.
        component._scheduler = sink
        if type(component).drive is not Component.drive:
            self._drivers.append(component)
            if incremental:
                if component.demand_driven:
                    self._pending.add(component)
                else:
                    self._always.append(component)
        if type(component).update is not Component.update:
            self._updaters.append(component.update)
        for child in component.children():
            self.add(child)
        return component

    @staticmethod
    def _adopt_wire(
        wire: Wire, sink: Optional[set], log: Optional[set] = None
    ) -> None:
        """Point *wire* at this simulator's worklist (or detach it).

        Changing owners also drops the reader set: readers accumulated
        under a previous simulator would otherwise be scheduled — and
        executed — by this one.  The new owner's components re-trace (or
        re-declare) their reads on their first evaluation here.  The
        change log follows ownership the same way.
        """
        if wire._dirty_sink is not sink:
            wire._dirty_sink = sink
            wire.readers.clear()
        wire._change_log = log

    def track_changes(self) -> set:
        """Start recording which wires change each cycle; return the live set.

        The returned set always holds the wires that changed since the
        end of the previous step's probes (the kernel clears it after
        each step's probes run), so a probe reading it sees every
        settle-, update- and between-cycle change of the step it is
        observing — a superset of the wires whose settled values differ.
        Wires registered after this call are tracked too.  Probes such
        as the VCD writer use this instead of re-formatting every wire
        every cycle.
        """
        if not self._track_changes:
            self._track_changes = True
            for wire in self._wires.values():
                wire._change_log = self._changed_wires
        return self._changed_wires

    def add_probe(self, probe: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked after every cycle's update phase.

        Probes are for measurement only (detection-latency probes, VCD
        writers); they must not mutate simulation state.
        """
        self._probes.append(probe)

    @property
    def wires(self) -> List[Wire]:
        return list(self._wires.values())

    def wire_writers(self, wire: Wire) -> List[Component]:
        """Components that declared *wire* in their ``outputs()`` (debug aid)."""
        return list(self._declared_writers.get(id(wire), ()))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronously reset every wire and component; rewind the clock."""
        for wire in self._wires.values():
            wire.reset()
        for component in self.components:
            component.reset()
        self.cycle = 0
        # Registered state moved arbitrarily: every drive is stale.
        self._pending.update(self._drivers)

    def _snapshot(self) -> Tuple[Any, ...]:
        return tuple(wire._value for wire in self._wires.values())

    def _run_drive(self, component: Component) -> None:
        if component._auto_trace:
            _ACTIVE_READER[0] = component
            try:
                component.drive()
            finally:
                _ACTIVE_READER[0] = None
        else:
            component.drive()

    def _settle_exhaustive(self) -> None:
        previous = self._snapshot()
        for _ in range(self.max_settle_iterations):
            for component in self.components:
                component.drive()
            current = self._snapshot()
            if current == previous:
                return
            previous = current
        raise SettleError(
            f"combinational loop: wires did not settle within "
            f"{self.max_settle_iterations} iterations at cycle {self.cycle}"
        )

    def _settle_dirty(self) -> None:
        pending = self._pending
        # Seed: conservatively-scheduled components, plus everything
        # invalidated since the last settle (update-phase state changes,
        # schedule_drive() calls, wires poked between cycles).
        pending.update(self._always)
        for _ in range(self.max_settle_iterations):
            if not pending:
                return
            batch = sorted(pending, key=_BY_ORDER)
            for component in batch:
                # Discard before running: any write *after* this run —
                # by a later batch member or the component itself —
                # legitimately re-queues it for the next round.
                pending.discard(component)
                self._run_drive(component)
        if not pending:
            # The final allowed round drained the worklist: settled.
            return
        raise SettleError(
            f"combinational loop: wires did not settle within "
            f"{self.max_settle_iterations} iterations at cycle {self.cycle}"
        )

    def _settle_verify(self) -> None:
        self._settle_dirty()
        before = self._snapshot()
        for component in self.components:
            self._run_drive(component)
        after = self._snapshot()
        if before != after:
            moved = [
                wire.name
                for wire, old, new in zip(self._wires.values(), before, after)
                if old is not new and old != new
            ]
            raise SchedulerDivergenceError(
                f"dirty-set scheduler under-evaluated at cycle {self.cycle}: "
                f"an exhaustive sweep still changed {moved}; a component is "
                f"missing an inputs() entry or a schedule_drive() call"
            )

    def _settle(self) -> None:
        if self.strategy == "dirty":
            self._settle_dirty()
        elif self.strategy == "exhaustive":
            self._settle_exhaustive()
        else:
            self._settle_verify()

    def step(self) -> None:
        """Advance simulated time by one clock cycle."""
        self._settle()
        for update in self._updaters:
            update()
        self.cycle += 1
        for probe in self._probes:
            probe(self)
        if self._track_changes:
            self._changed_wires.clear()

    def run(self, cycles: int) -> None:
        """Advance by *cycles* clock cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        condition: Callable[["Simulator"], bool],
        timeout: int = 100_000,
    ) -> Optional[int]:
        """Step until *condition* holds; return the cycle it first held.

        Returns ``None`` if *timeout* cycles elapse first.  The condition
        is evaluated after each cycle's update phase.
        """
        for _ in range(timeout):
            self.step()
            if condition(self):
                return self.cycle
        return None
