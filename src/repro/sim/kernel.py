"""The simulation kernel: a two-phase (settle / update) synchronous engine.

One simulated clock cycle proceeds as:

1. **Settle** — component ``drive()`` methods run until every wire holds
   its fixed-point value.  This resolves combinational chains (e.g. a
   subordinate asserting ``ready`` in response to a manager's ``valid``
   routed through a crossbar and a TMU passthrough) exactly as a
   delta-cycle RTL simulator would.
2. **Update** — component ``update()`` methods run once against the
   settled wire values; registered state advances.  Handshakes "fire"
   here: both endpoints of a channel observe ``valid & ready``.  The
   kernel maintains a *live updater set*: components that opted into the
   quiescence contract (``demand_update = True``) leave it when their
   ``quiescent()`` predicate holds — their ``update()`` is provably a
   no-op — and re-arm when a declared ``update_inputs()`` wire changes
   or ``schedule_update()`` is called.  Components that did not opt in
   run every cycle, interleaved in registration order.

Timed wakes and clock fast-forward ("time leap")
------------------------------------------------

A quiescent component whose only future work is a *countdown* — a
watchdog expiry, a timeout-counter budget, a handshake-delay crossing —
declares the cycle that work falls due via
:meth:`~repro.sim.component.Component.wake_at`.  Wakes live in a min-
heap; at the start of each step every wake due at the current cycle
moves its component back into the live updater set, exactly as a
``schedule_update()`` at that instant would.  Cancellation and re-arm
are lazy: a component carries its single authoritative ``_wake_cycle``
and superseded heap entries are discarded when they surface.

``run()`` / ``run_until()`` exploit the heap: when a step ends with the
settle worklist empty, the live updater set empty, no always-scheduled
drives, no static updaters, and only timed wakes pending, every
intervening cycle is provably a no-op — no drive can run, no update can
run, no wire can change — so the clock *leaps* directly to
``min(next_wake, target)`` instead of ticking through the span.  Probes
pin the clock (no leap happens while one is registered) unless they
declare ``leap_aware = True``; a leap-aware probe may also implement
``on_leap(sim, from_cycle, to_cycle)`` to observe the jump.
``Simulator(time_leaping=False)`` disables the fast-forward for A/B
ablations while keeping the wake heap as a plain re-arm mechanism.

Three settle strategies share those semantics:

``dirty`` (default)
    A dependency-aware worklist scheduler in the style of event-driven
    RTL simulators (cocotb et al.): only components whose input wires
    changed — or that invalidated themselves via
    :meth:`~repro.sim.component.Component.schedule_drive` — are
    re-evaluated.  Components that do not opt into demand-driven
    scheduling are conservatively re-seeded every cycle.
``exhaustive``
    The original brute-force fixed point: sweep every component and
    snapshot every wire until nothing changes.  Kept as the reference
    implementation for differential testing.
``verify``
    Runs the dirty scheduler, then replays one exhaustive sweep and
    raises :class:`SchedulerDivergenceError` if any wire moves — i.e.
    the dirty scheduler skipped a component it should not have.  It
    also covers the update phase: every cycle, the updates of skipped
    (quiescent) components are differentially replayed against their
    declared state snapshots, so an under-declared wake path raises
    :class:`SchedulerDivergenceError` instead of silently dropping a
    clock edge.  Slower than both; meant for tests and debugging of
    sensitivity and quiescence contracts.

A combinational loop (no fixed point) raises :class:`SettleError` under
every strategy rather than silently oscillating.
"""

from __future__ import annotations

import heapq
import operator
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Tuple

from .component import Component
from .signal import _ACTIVE_READER, Wire

#: Valid values for ``Simulator(strategy=...)``.
STRATEGIES = ("dirty", "exhaustive", "verify")

_BY_ORDER = operator.attrgetter("_order")


class SettleError(RuntimeError):
    """Raised when the combinational phase fails to reach a fixed point."""


class SchedulerDivergenceError(RuntimeError):
    """Raised by ``strategy="verify"`` when the dirty-set scheduler left a
    wire short of its exhaustive-sweep fixed point — i.e. a component's
    sensitivity declaration (``inputs()`` / ``schedule_drive()`` calls)
    missed a dependency."""


class Simulator:
    """Owns components and advances simulated time cycle by cycle.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on drive sweeps (exhaustive) or worklist rounds
        (dirty) per cycle before declaring a combinational loop.  Deep
        hierarchies (manager → crossbar → TMU → fault injector →
        subordinate and back) need one round per level; the default is
        generous.
    strategy:
        One of :data:`STRATEGIES`; see the module docstring.
    update_skipping:
        When False, every ``update()`` runs every cycle even for
        components that opted into the quiescence contract — the
        pre-quiescence behaviour, kept for A/B debugging and benchmark
        ablations.  ``exhaustive`` simulators never skip regardless.
    time_leaping:
        When False, ``run()``/``run_until()`` never fast-forward the
        clock over idle spans; timed wakes still re-arm components at
        their declared cycles, just via ordinary per-cycle stepping.
        Leaping is only ever active on the ``dirty`` strategy with
        update skipping on — ``verify`` deliberately replays would-be
        leaped spans cycle by cycle so its differential checks can
        catch an under-declared wake, and ``exhaustive`` runs
        everything everywhere anyway.
    """

    def __init__(
        self,
        max_settle_iterations: int = 64,
        strategy: str = "dirty",
        update_skipping: bool = True,
        time_leaping: bool = True,
        tracer=None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.components: List[Component] = []
        self.cycle = 0
        self.max_settle_iterations = max_settle_iterations
        self.strategy = strategy
        self.update_skipping = update_skipping and strategy != "exhaustive"
        self.time_leaping = (
            time_leaping and self.update_skipping and strategy == "dirty"
        )
        self._wires: Dict[int, Wire] = {}
        self._probes: List[Callable[["Simulator"], None]] = []
        #: Worklist of components whose drive() must (re)run.  Shared by
        #: identity with every registered wire's dirty sink and every
        #: component's schedule_drive().
        self._pending: set = set()
        #: Components re-seeded every cycle (not demand-driven).
        self._always: List[Component] = []
        #: All components with a real drive(), for reset re-seeding.
        self._drivers: List[Component] = []
        #: Live updater set: demand_update components currently awake.
        #: Shared by identity with every registered wire's update sink
        #: and every component's schedule_update().
        self._update_pending: set = set()
        #: Components whose update() runs unconditionally every cycle
        #: (did not opt into quiescence), in registration order, plus
        #: their pre-bound update() methods for the statics-only path.
        self._static_updaters: List[Component] = []
        self._static_updates: List[Callable[[], None]] = []
        #: Every demand_update component, for reset re-seeding and the
        #: verify strategy's differential update replay.
        self._demand_updaters: List[Component] = []
        #: Ordered update queue cache, valid while the awake membership
        #: recorded in _update_queue_key holds.
        self._update_queue: List[Component] = []
        self._update_queue_key: Optional[set] = None
        #: Declared writers per wire id, from Component.outputs().
        self._declared_writers: Dict[int, List[Component]] = {}
        #: Flat wire list for the verify settle check; None until built.
        self._verify_wires: Optional[List[Wire]] = None
        #: Wires that changed since the end of the last step's probes;
        #: only populated once track_changes() has been called.
        self._changed_wires: set = set()
        self._track_changes = False
        #: Timed-wake min-heap of (cycle, registration order, component).
        #: Entries are superseded lazily: only an entry matching its
        #: component's current _wake_cycle is honoured when it surfaces.
        self._wake_heap: List[Tuple[int, int, Component]] = []
        #: Fast-forward statistics (for benchmarks and BENCH_kernel.json).
        self.leaps = 0
        self.cycles_leaped = 0
        #: Optional telemetry tracer (see :mod:`repro.telemetry.tracer`).
        #: Every hook site guards on a hoisted ``tracer is not None``
        #: local — the probe-guard idiom — so the default costs nothing.
        #: Tracers observing only step/wake/leap boundaries leave
        #: ``trace_components`` False and the settle/update inner loops
        #: run exactly as untraced; ``trace_components = True`` opts into
        #: the timed per-component drive/update hooks.
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its wires) with the simulator."""
        component._order = len(self.components)
        self.components.append(component)
        self._verify_wires = None
        # A new updater (static or demand) invalidates the queue cache.
        self._update_queue_key = None
        incremental = self.strategy != "exhaustive"
        # Repoint (or, for exhaustive simulators, detach) each wire's
        # dirty sink: a wire feeds the worklist of the simulator it was
        # most recently registered with, and only that one.
        sink = self._pending if incremental else None
        usink = self._update_pending if self.update_skipping else None
        log = self._changed_wires if self._track_changes else None
        for wire in component.wires():
            self._wires[id(wire)] = wire
            self._adopt_wire(wire, sink, usink, log)

        declared = component.inputs()
        component._auto_trace = declared is None
        if declared is not None:
            for wire in declared:
                self._wires.setdefault(id(wire), wire)
                self._adopt_wire(wire, sink, usink, log)
                if incremental:
                    wire.readers.add(component)

        outputs = component.outputs()
        if outputs is not None:
            for wire in outputs:
                self._declared_writers.setdefault(id(wire), []).append(component)

        # Like the wires, a component invalidates the worklist of the
        # simulator it was most recently registered with — or none, when
        # that simulator sweeps exhaustively.
        component._scheduler = sink
        component._sim = self
        # A fresh registration voids any wake armed under a previous
        # simulator; stale heap entries there are discarded lazily.
        component._wake_cycle = None
        if type(component).drive is not Component.drive:
            self._drivers.append(component)
            if incremental:
                if component.demand_driven:
                    self._pending.add(component)
                else:
                    self._always.append(component)
        if type(component).update is not Component.update:
            if usink is not None and component.demand_update:
                component._update_scheduler = usink
                self._demand_updaters.append(component)
                # Seed awake: the first cycle after registration always
                # runs, and quiescence is re-judged from there.
                usink.add(component)
                declared_wakes = component.update_inputs()
                if declared_wakes is not None:
                    for wire in declared_wakes:
                        self._wires.setdefault(id(wire), wire)
                        self._adopt_wire(wire, sink, usink, log)
                        wire.update_readers.add(component)
            else:
                component._update_scheduler = None
                self._static_updaters.append(component)
                self._static_updates.append(component.update)
        for child in component.children():
            self.add(child)
        return component

    @staticmethod
    def _adopt_wire(
        wire: Wire,
        sink: Optional[set],
        usink: Optional[set],
        log: Optional[set] = None,
    ) -> None:
        """Point *wire* at this simulator's worklists (or detach it).

        Changing owners also drops the reader sets: readers accumulated
        under a previous simulator would otherwise be scheduled — and
        executed — by this one.  The new owner's components re-trace (or
        re-declare) their reads on their first evaluation here.  The
        update sink and change log follow ownership the same way.
        """
        if wire._dirty_sink is not sink:
            wire._dirty_sink = sink
            wire.readers.clear()
            wire.update_readers.clear()
        wire._update_sink = usink
        wire._change_log = log

    def track_changes(self) -> set:
        """Start recording which wires change each cycle; return the live set.

        The returned set always holds the wires that changed since the
        end of the previous step's probes (the kernel clears it after
        each step's probes run), so a probe reading it sees every
        settle-, update- and between-cycle change of the step it is
        observing — a superset of the wires whose settled values differ.
        Wires registered after this call are tracked too.  Probes such
        as the VCD writer use this instead of re-formatting every wire
        every cycle.
        """
        if not self._track_changes:
            self._track_changes = True
            for wire in self._wires.values():
                wire._change_log = self._changed_wires
        return self._changed_wires

    def add_probe(self, probe: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked after every cycle's update phase.

        Probes are for measurement only (detection-latency probes, VCD
        writers); they must not mutate simulation state.
        """
        self._probes.append(probe)

    @property
    def wires(self) -> List[Wire]:
        return list(self._wires.values())

    def wire_writers(self, wire: Wire) -> List[Component]:
        """Components that declared *wire* in their ``outputs()`` (debug aid)."""
        return list(self._declared_writers.get(id(wire), ()))

    # ------------------------------------------------------------------
    # Timed wakes
    # ------------------------------------------------------------------
    def _register_wake(self, component: Component, cycle: int) -> None:
        """Arm *component*'s update to run in the step starting at *cycle*.

        The latest call wins: re-arming with a different cycle (earlier
        or later) supersedes the previous wake, whose heap entry is
        discarded lazily when it surfaces.  ``cycle == self.cycle``
        degenerates to :meth:`Component.schedule_update` — the step at
        the current cycle has not run yet when called between cycles,
        and mid-phase the ordinary wake-splicing rules apply.
        """
        if cycle < self.cycle:
            raise ValueError(
                f"wake-in-the-past: {component!r} asked to wake at cycle "
                f"{cycle} but the simulator is already at {self.cycle}"
            )
        if cycle == self.cycle:
            component._wake_cycle = None
            component.schedule_update()
            return
        if component._wake_cycle == cycle:
            return  # already armed for exactly that cycle
        component._wake_cycle = cycle
        heapq.heappush(self._wake_heap, (cycle, component._order, component))

    def _pop_due_wakes(self) -> None:
        """Move every wake due at the current cycle into the live set."""
        heap = self._wake_heap
        now = self.cycle
        awake = self._update_pending
        tracer = self._tracer
        while heap and heap[0][0] <= now:
            cycle, _, component = heapq.heappop(heap)
            if component._wake_cycle == cycle and component._sim is self:
                component._wake_cycle = None
                awake.add(component)
                if tracer is not None:
                    tracer.wake_fired(component, cycle)

    def _next_wake(self) -> Optional[int]:
        """Earliest still-armed wake cycle, pruning superseded entries."""
        heap = self._wake_heap
        while heap:
            cycle, _, component = heap[0]
            if component._wake_cycle == cycle and component._sim is self:
                return cycle
            heapq.heappop(heap)
        return None

    def _leap_ready(self) -> bool:
        """Whether this simulator is ever allowed to fast-forward.

        Any always-scheduled drive or static updater produces real work
        every cycle, and a probe that did not opt in via ``leap_aware``
        expects to observe every cycle — each of them pins the clock.
        """
        return (
            self.time_leaping
            and not self._always
            and not self._static_updaters
            and all(getattr(probe, "leap_aware", False) for probe in self._probes)
        )

    def _leap_to(self, cycle: int) -> None:
        """Jump the clock to *cycle* across a provably inert span."""
        start = self.cycle
        self.cycle = cycle
        self.leaps += 1
        self.cycles_leaped += cycle - start
        tracer = self._tracer
        if tracer is not None:
            tracer.leap(self, start, cycle)
        for probe in self._probes:
            on_leap = getattr(probe, "on_leap", None)
            if on_leap is not None:
                on_leap(self, start, cycle)
            elif getattr(probe, "leap_resample", False):
                # The probe asked to be invoked once per jump instead
                # of receiving the boundary (e.g. the VCD writer's
                # initial-value flush).
                probe(self)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    #: Scalar scheduler statistics, in the order they export.  This is
    #: the single authority consumed by ``stats()``, the campaign result
    #: dataclasses (as ``sim_<key>`` fields) and
    #: ``analysis.export.scheduler_stats_dict`` — adding a key here is
    #: what extends the exported ``scheduler`` JSON block.
    STAT_KEYS: Tuple[str, ...] = ("leaps", "cycles_leaped")

    def stats(self) -> Dict[str, Any]:
        """Scheduler statistics as one dict.

        Always carries the scalar ``STAT_KEYS`` counters; when the
        installed tracer aggregates per-component counters (it has a
        ``counters()`` method, as :class:`~repro.telemetry.KernelTracer`
        does), they ride along under ``"components"``.
        """
        stats: Dict[str, Any] = {
            key: getattr(self, key) for key in self.STAT_KEYS
        }
        counters = getattr(self._tracer, "counters", None)
        if counters is not None:
            stats["components"] = counters()
        return stats

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronously reset every wire and component; rewind the clock."""
        for wire in self._wires.values():
            wire.reset()
        for component in self.components:
            component.reset()
            component._wake_cycle = None
        self._wake_heap.clear()
        self.cycle = 0
        # Registered state moved arbitrarily: every drive is stale and
        # every quiescence judgment is void.
        self._pending.update(self._drivers)
        self._update_pending.update(self._demand_updaters)

    def _snapshot(self) -> Tuple[Any, ...]:
        return tuple(wire._value for wire in self._wires.values())

    def _verify_watch_wires(self) -> List[Wire]:
        """Every wire, as a cached flat list, for the verify settle check.

        Deliberately *not* narrowed to declared ``outputs()`` — the
        verify strategy exists to distrust declarations, and a drive
        writing a wire missing from its outputs() list must still trip
        the cross-check.  The cached list plus the caller's in-place
        slot comparison is what replaced the old per-cycle double
        ``_snapshot()`` tuple rebuild.
        """
        wires = self._verify_wires
        if wires is None:
            wires = list(self._wires.values())
            self._verify_wires = wires
        return wires

    def _run_drive(self, component: Component) -> None:
        if component._auto_trace:
            _ACTIVE_READER[0] = component
            try:
                component.drive()
            finally:
                _ACTIVE_READER[0] = None
        else:
            component.drive()

    def _timed_drive(self, component: Component) -> None:
        """`_run_drive` wrapped in the tracer's wall-clock measurement."""
        start = perf_counter_ns()
        self._run_drive(component)
        self._tracer.drive_executed(component, perf_counter_ns() - start)

    def _drive_runner(self) -> Callable[[Component], None]:
        """The drive executor for this settle: timed only when a
        component-tier tracer is installed, so the untraced (and the
        cycle-tier traced) hot path keeps the direct call."""
        tracer = self._tracer
        if tracer is not None and tracer.trace_components:
            return self._timed_drive
        return self._run_drive

    def _settle_exhaustive(self) -> None:
        previous = self._snapshot()
        tracer = self._tracer
        timed = tracer is not None and tracer.trace_components
        for _ in range(self.max_settle_iterations):
            if timed:
                for component in self.components:
                    start = perf_counter_ns()
                    component.drive()
                    tracer.drive_executed(
                        component, perf_counter_ns() - start
                    )
            else:
                for component in self.components:
                    component.drive()
            current = self._snapshot()
            if current == previous:
                return
            previous = current
        raise SettleError(
            f"combinational loop: wires did not settle within "
            f"{self.max_settle_iterations} iterations at cycle {self.cycle}"
        )

    def _settle_dirty(self) -> None:
        pending = self._pending
        # Seed: conservatively-scheduled components, plus everything
        # invalidated since the last settle (update-phase state changes,
        # schedule_drive() calls, wires poked between cycles).
        pending.update(self._always)
        run = self._drive_runner()
        for _ in range(self.max_settle_iterations):
            if not pending:
                return
            batch = sorted(pending, key=_BY_ORDER)
            for component in batch:
                # Discard before running: any write *after* this run —
                # by a later batch member or the component itself —
                # legitimately re-queues it for the next round.
                pending.discard(component)
                run(component)
        if not pending:
            # The final allowed round drained the worklist: settled.
            return
        raise SettleError(
            f"combinational loop: wires did not settle within "
            f"{self.max_settle_iterations} iterations at cycle {self.cycle}"
        )

    def _settle_verify(self) -> None:
        self._settle_dirty()
        watched = self._verify_watch_wires()
        before = [wire._value for wire in watched]
        run = self._drive_runner()
        for component in self.components:
            run(component)
        moved = [
            wire.name
            for wire, old in zip(watched, before)
            if old is not wire._value and old != wire._value
        ]
        if moved:
            raise SchedulerDivergenceError(
                f"dirty-set scheduler under-evaluated at cycle {self.cycle}: "
                f"an exhaustive sweep still changed {moved}; a component is "
                f"missing an inputs() entry or a schedule_drive() call"
            )

    def _settle(self) -> None:
        if self.strategy == "dirty":
            self._settle_dirty()
        elif self.strategy == "exhaustive":
            self._settle_exhaustive()
        else:
            self._settle_verify()

    @staticmethod
    def _merge_by_order(
        left: List[Component], right: List[Component]
    ) -> List[Component]:
        """Merge two `_order`-sorted component lists into one."""
        return list(heapq.merge(left, right, key=_BY_ORDER))

    def _update_phase(self) -> None:
        """Run the sequential phase: static updaters plus the live set.

        All updates run in registration (`_order`) sequence, exactly as
        the pre-quiescence static list did.
        """
        awake = self._update_pending
        if not awake:
            tracer = self._tracer
            if tracer is not None and tracer.trace_components:
                # Component-tier tracing forgoes the pre-bound statics
                # fast path: the general queue runner (of which this
                # path is a pure optimization — statics never quiesce,
                # and its splice handles mid-phase wakes identically)
                # carries the per-update timing.
                self._run_update_queue(self._static_updaters)
                return
            statics = self._static_updaters
            for i, update in enumerate(self._static_updates):
                update()
                if awake:
                    # Rare: this static update woke demand components
                    # (e.g. a stimulus component submitting traffic).
                    # Finish the phase through the general path so wakes
                    # whose registration slot has not yet passed still
                    # run this cycle, exactly as the static order would.
                    last_order = statics[i]._order
                    self._run_update_queue(
                        self._merge_by_order(
                            statics[i + 1:],
                            sorted(
                                (c for c in awake if c._order > last_order),
                                key=_BY_ORDER,
                            ),
                        )
                    )
                    return
            return
        # Stall-dominated runs keep the same components awake for
        # thousands of cycles; reuse the ordered queue until the set
        # actually changes (any wake, sleep or registration rebuilds).
        if awake == self._update_queue_key:
            queue = self._update_queue
        else:
            queue = sorted(awake, key=_BY_ORDER)
            if self._static_updaters:
                queue = self._merge_by_order(self._static_updaters, queue)
            self._update_queue = queue
            self._update_queue_key = set(awake)
        self._run_update_queue(queue)

    def _run_update_queue(self, queue: List[Component]) -> None:
        """Run *queue* (order-sorted) with mid-phase wake splicing.

        Never mutates *queue* in place (the caller may be handing over
        the cached ordered queue); a splice rebinds to a fresh list.
        """
        awake = self._update_pending
        expected = len(awake)
        tracer = self._tracer
        if tracer is not None and not tracer.trace_components:
            tracer = None  # cycle-tier tracer: skip per-update hooks
        i = 0
        n = len(queue)
        while i < n:
            component = queue[i]
            i += 1
            if tracer is None:
                component.update()
            else:
                start = perf_counter_ns()
                component.update()
                tracer.update_executed(component, perf_counter_ns() - start)
            # Registration truth, not the class attribute: statics (and
            # everything under update_skipping=False) never quiesce.
            if component._update_scheduler is not None and component.quiescent():
                awake.discard(component)
                expected -= 1
            if len(awake) != expected:
                # Rare: this update() woke components mid-phase.  To
                # match the static reference exactly, only wakes whose
                # registration-order turn has not yet passed run this
                # cycle; an earlier-ordered wake was quiescent when its
                # turn came (its update would have been the no-op it
                # declared) and keeps its arming for the next cycle.
                known = set(queue)
                late = [
                    c
                    for c in awake
                    if c not in known and c._order > component._order
                ]
                expected = len(awake)
                if late:
                    queue = queue[:i] + sorted(
                        queue[i:] + late, key=_BY_ORDER
                    )
                    n = len(queue)

    def _update_phase_verify(self) -> None:
        """Update phase with in-slot differential replay of skipped work.

        Every updater — static, awake, or quiescent — runs at its
        registration-order slot, so a replayed (skipped) update observes
        exactly the state its real counterpart would have: earlier
        components' mutations applied, later components' not.  Awake
        components run normally; quiescent components run under the
        no-op contract — any state-snapshot movement or newly scheduled
        drive/update work raises :class:`SchedulerDivergenceError`.
        Clock-derived state (cycle stamps, prescaler phases, idle window
        accumulators) is excluded by the components' ``snapshot_state()``
        and resyncs idempotently, so a legitimate replay leaves no trace.
        """
        awake = self._update_pending
        queue = self._merge_by_order(
            self._static_updaters, self._demand_updaters
        )
        pending = self._pending
        tracer = self._tracer
        if tracer is not None and not tracer.trace_components:
            tracer = None  # cycle-tier tracer: skip per-update hooks
        for component in queue:
            # Classify by how the component was *registered*, not by its
            # class attribute: with update_skipping=False every updater
            # (demand_update or not) is a static and must simply run.
            if component._update_scheduler is None:
                if tracer is None:
                    component.update()
                else:
                    start = perf_counter_ns()
                    component.update()
                    tracer.update_executed(
                        component, perf_counter_ns() - start
                    )
                continue
            if component in awake:
                if tracer is None:
                    component.update()
                else:
                    start = perf_counter_ns()
                    component.update()
                    tracer.update_executed(
                        component, perf_counter_ns() - start
                    )
                if component.quiescent():
                    awake.discard(component)
                continue
            # Quiescence replays below run under the no-op contract and
            # are deliberately *not* reported as executed updates.
            # Skipped by quiescence: replay it in place and require a
            # provable no-op.
            before = component.snapshot_state()
            drives_before = len(pending)
            awake_before = len(awake)
            component.update()
            if component.snapshot_state() != before:
                raise SchedulerDivergenceError(
                    f"update-quiescence under-declared at cycle "
                    f"{self.cycle}: {component!r} was skipped but replaying "
                    f"its update() changed registered state; a wake path "
                    f"(update_inputs() wire or schedule_update() call) is "
                    f"missing"
                )
            if len(pending) != drives_before or len(awake) != awake_before:
                raise SchedulerDivergenceError(
                    f"update-quiescence under-declared at cycle "
                    f"{self.cycle}: replaying {component!r} scheduled new "
                    f"work; its quiescent() returned True while sequential "
                    f"work was still pending"
                )

    def step(self) -> None:
        """Advance simulated time by one clock cycle."""
        tracer = self._tracer
        if tracer is not None:
            tracer.step_begin(self)
        if self._wake_heap:
            self._pop_due_wakes()
        self._settle()
        if self.strategy == "verify":
            self._update_phase_verify()
        else:
            self._update_phase()
        self.cycle += 1
        if self._probes:
            for probe in self._probes:
                probe(self)
        if self._track_changes:
            self._changed_wires.clear()
        if tracer is not None:
            tracer.step_end(self)

    def run(self, cycles: int) -> None:
        """Advance simulated time by *cycles* clock cycles.

        With time leaping active, spans where nothing can happen — no
        pending drives, empty live updater set, only timed wakes ahead —
        are crossed in one jump to ``min(next_wake, target)`` instead of
        being ticked through; the observable end state is identical.
        """
        target = self.cycle + cycles
        step = self.step
        if not self._leap_ready():
            while self.cycle < target:
                step()
            return
        while self.cycle < target:
            if self._wake_heap:
                self._pop_due_wakes()
            if not self._pending and not self._update_pending:
                nxt = self._next_wake()
                dest = target if nxt is None else min(nxt, target)
                if dest > self.cycle:
                    self._leap_to(dest)
                    continue
            step()

    def run_until(
        self,
        condition: Callable[["Simulator"], bool],
        timeout: int = 100_000,
    ) -> Optional[int]:
        """Step until *condition* holds; return the cycle it first held.

        Returns ``None`` if *timeout* cycles elapse first.  The condition
        is evaluated after each cycle's update phase.  Under time
        leaping the condition must be a function of simulation state
        (wires, component state): such a condition cannot change across
        a leaped span — nothing runs and no wire moves — so it is
        additionally consulted once *before* each jump (skipping the
        jump when it already holds) and not re-evaluated inside the
        span.  Conditions keyed on wall-clock cycle counts alone should
        run with ``time_leaping=False``.
        """
        target = self.cycle + timeout
        step = self.step
        if not self._leap_ready():
            while self.cycle < target:
                step()
                if condition(self):
                    return self.cycle
            return None
        while self.cycle < target:
            if self._wake_heap:
                self._pop_due_wakes()
            if (
                not self._pending
                and not self._update_pending
                and not condition(self)
                # Re-checked *after* the condition ran: a side-effecting
                # condition (fault injection, schedule_update) may have
                # just created work, which must be stepped, not leaped.
                and not self._pending
                and not self._update_pending
            ):
                nxt = self._next_wake()
                dest = target if nxt is None else min(nxt, target)
                if dest > self.cycle:
                    self._leap_to(dest)
                    continue
            step()
            if condition(self):
                return self.cycle
        return None
