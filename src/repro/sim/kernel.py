"""The simulation kernel: a two-phase (settle / update) synchronous engine.

One simulated clock cycle proceeds as:

1. **Settle** — every component's ``drive()`` runs; the kernel repeats
   the sweep until no wire changes value.  This resolves combinational
   chains (e.g. a subordinate asserting ``ready`` in response to a
   manager's ``valid`` routed through a crossbar and a TMU passthrough)
   exactly as a delta-cycle RTL simulator would.
2. **Update** — every component's ``update()`` runs once against the
   settled wire values; registered state advances.  Handshakes "fire"
   here: both endpoints of a channel observe ``valid & ready``.

A combinational loop (no fixed point) raises :class:`SettleError` rather
than silently oscillating.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .component import Component
from .signal import Wire


class SettleError(RuntimeError):
    """Raised when the combinational phase fails to reach a fixed point."""


class Simulator:
    """Owns components and advances simulated time cycle by cycle.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on drive sweeps per cycle before declaring a
        combinational loop.  Deep hierarchies (manager → crossbar → TMU →
        fault injector → subordinate and back) need one sweep per level;
        the default is generous.
    """

    def __init__(self, max_settle_iterations: int = 64) -> None:
        self.components: List[Component] = []
        self.cycle = 0
        self.max_settle_iterations = max_settle_iterations
        self._wires: Dict[int, Wire] = {}
        self._probes: List[Callable[["Simulator"], None]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its wires) with the simulator."""
        self.components.append(component)
        for wire in component.wires():
            self._wires[id(wire)] = wire
        return component

    def add_probe(self, probe: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked after every cycle's update phase.

        Probes are for measurement only (detection-latency probes, VCD
        writers); they must not mutate simulation state.
        """
        self._probes.append(probe)

    @property
    def wires(self) -> List[Wire]:
        return list(self._wires.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronously reset every wire and component; rewind the clock."""
        for wire in self._wires.values():
            wire.reset()
        for component in self.components:
            component.reset()
        self.cycle = 0

    def _snapshot(self) -> Tuple[Any, ...]:
        return tuple(wire.value for wire in self._wires.values())

    def _settle(self) -> None:
        previous = self._snapshot()
        for _ in range(self.max_settle_iterations):
            for component in self.components:
                component.drive()
            current = self._snapshot()
            if current == previous:
                return
            previous = current
        raise SettleError(
            f"combinational loop: wires did not settle within "
            f"{self.max_settle_iterations} iterations at cycle {self.cycle}"
        )

    def step(self) -> None:
        """Advance simulated time by one clock cycle."""
        self._settle()
        for component in self.components:
            component.update()
        self.cycle += 1
        for probe in self._probes:
            probe(self)

    def run(self, cycles: int) -> None:
        """Advance by *cycles* clock cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        condition: Callable[["Simulator"], bool],
        timeout: int = 100_000,
    ) -> Optional[int]:
        """Step until *condition* holds; return the cycle it first held.

        Returns ``None`` if *timeout* cycles elapse first.  The condition
        is evaluated after each cycle's update phase.
        """
        for _ in range(timeout):
            self.step()
            if condition(self):
                return self.cycle
        return None
